"""Figure 13: L3-Switch packet forwarding rates.

Forwarding rate (Gbps, 64 B packets at 3 Gbps offered) for one to six
MEs at every cumulative optimization level.

Expected shape (paper): BASE/-O1/-O2 flatten almost immediately
(memory-bound at ~0.3-0.7 Gbps); PAC is the largest jump; SOAR adds a
further instruction-count win; the fully optimized configuration scales
near-linearly to 4+ MEs and reaches ~2.5 Gbps or more.
"""

from __future__ import annotations

import pytest

from benchmarks.figures_common import run_figure, assert_figure_shape

APP = "l3switch"


def test_fig13_l3switch_rates(sweep_cache, report, benchmark, trace_sink):
    series = benchmark.pedantic(
        lambda: run_figure(APP, sweep_cache, trace_sink),
        rounds=1, iterations=1)
    assert_figure_shape(APP, series, report, "fig13_l3switch",
                        best_at_6_min=2.3)
