"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation (section 6) on the simulated IXP2400 and writes its rows to
``benchmarks/results/<name>.txt`` (also echoed to stdout) so the numbers
survive pytest's output capture.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro import obs
from repro.apps import get_app
from repro.compiler import compile_baker
from repro.options import options_for

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
METRICS_JSONL = os.path.join(RESULTS_DIR, "metrics.jsonl")

TRACE_PACKETS = 200
TRACE_SEED = 5


def pytest_addoption(parser):
    # Not "--trace": pytest owns that (its pdb-on-test-start hook).
    parser.addoption(
        "--packet-trace", action="store_true", default=False,
        help="record a per-packet lifecycle trace for each benchmark's "
             "fully-optimized 6-ME run and export it as Chrome "
             "trace-event JSON (benchmarks/results/<name>.trace.json; "
             "open in https://ui.perfetto.dev)")


@pytest.fixture(scope="session")
def trace_sink(request):
    """name -> output path for a Perfetto trace, or None when
    --packet-trace is off. Arms compile-stage span capture so
    compilation shows up on the same timeline as the simulated run."""
    if not request.config.getoption("--packet-trace"):
        return lambda name: None
    obs.capture_compile_spans()
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def sink(name: str):
        return os.path.join(RESULTS_DIR, name + ".trace.json")

    return sink


@pytest.fixture(scope="session", autouse=True)
def obs_registry():
    """Benchmarks always run with observability on; the whole session's
    metrics land in benchmarks/results/metrics.jsonl (render them with
    ``python -m repro.obs.report``)."""
    reg = obs.enable()
    yield reg
    os.makedirs(RESULTS_DIR, exist_ok=True)
    reg.dump_jsonl(METRICS_JSONL)
    print("\nmetrics: %s (render: python -m repro.obs.report %s)"
          % (METRICS_JSONL, METRICS_JSONL))


@pytest.fixture(scope="session")
def compile_cache():
    """(app, level) -> (CompileResult, trace); compiled once per session.
    Compile-time metrics are scoped under {app=..., level=...}."""
    cache = {}

    def get(app_name: str, level: str):
        key = (app_name, level)
        if key not in cache:
            app = get_app(app_name)
            trace = app.make_trace(TRACE_PACKETS, seed=TRACE_SEED)
            with obs.get_registry().labels(app=app_name, level=level):
                result = compile_baker(app.source, options_for(level), trace)
            cache[key] = (result, trace)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def report():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(name: str, lines):
        text = "\n".join(lines)
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print("\n" + text)
        return path

    return write
