"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation (section 6) on the simulated IXP2400 and writes its rows to
``benchmarks/results/<name>.txt`` (also echoed to stdout) so the numbers
survive pytest's output capture.

Imports resolve through package configuration only (``pythonpath =
["src"]`` in pyproject.toml, or an explicit ``PYTHONPATH=src``): the
old ``sys.path.insert`` hack lived only in the parent process, so
spawn-based sweep worker processes could not import ``repro`` at all.
"""

import os
import time

import pytest

from repro import obs
from repro.sweep import CompileCache

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
METRICS_JSONL = os.path.join(RESULTS_DIR, "metrics.jsonl")

TRACE_PACKETS = 200
TRACE_SEED = 5


def pytest_addoption(parser):
    # Not "--trace": pytest owns that (its pdb-on-test-start hook).
    parser.addoption(
        "--packet-trace", action="store_true", default=False,
        help="record a per-packet lifecycle trace for each benchmark's "
             "fully-optimized 6-ME run and export it as Chrome "
             "trace-event JSON (benchmarks/results/<name>.trace.json; "
             "open in https://ui.perfetto.dev)")


@pytest.fixture(scope="session")
def trace_sink(request):
    """name -> output path for a Perfetto trace, or None when
    --packet-trace is off. Arms compile-stage span capture so
    compilation shows up on the same timeline as the simulated run."""
    if not request.config.getoption("--packet-trace"):
        return lambda name: None
    obs.capture_compile_spans()
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def sink(name: str):
        return os.path.join(RESULTS_DIR, name + ".trace.json")

    return sink


@pytest.fixture(scope="session", autouse=True)
def obs_registry():
    """Benchmarks always run with observability on; the session's
    metrics are *appended* to benchmarks/results/metrics.jsonl under a
    run header (mode "w" used to silently erase the previous run's
    metrics). Render all runs with ``python -m repro.obs.report``."""
    reg = obs.enable()
    yield reg
    os.makedirs(RESULTS_DIR, exist_ok=True)
    run_id = "bench-%s-p%d" % (
        time.strftime("%Y%m%dT%H%M%S", time.gmtime()), os.getpid())
    reg.dump_jsonl(METRICS_JSONL, append=True,
                   header={"run": run_id, "source": "benchmarks"})
    print("\nmetrics: %s (run %s; render: python -m repro.obs.report %s)"
          % (METRICS_JSONL, run_id, METRICS_JSONL))


@pytest.fixture(scope="session")
def sweep_cache():
    """The session's disk-backed compile-artifact cache
    (:class:`repro.sweep.CompileCache`): each (app, level) compiles
    once *ever* -- a warm cache makes benchmark sessions compile-free.
    ``REPRO_COMPILE_CACHE=0`` disables the disk layer (in-process memo
    still applies); ``REPRO_CACHE_DIR`` moves it."""
    return CompileCache()


@pytest.fixture(scope="session")
def compile_cache(sweep_cache):
    """(app, level) -> (CompileResult, trace); disk-cached.
    Compile-time metrics are scoped under {app=..., level=...} when a
    registry is enabled (sweep worker processes may run with it off,
    so the label scope is guarded rather than assumed)."""

    def get(app_name: str, level: str):
        reg = obs.get_registry()
        if reg.enabled:
            with reg.labels(app=app_name, level=level):
                result, trace, _hit = sweep_cache.get_or_compile(
                    app_name, level, TRACE_PACKETS, TRACE_SEED)
        else:
            result, trace, _hit = sweep_cache.get_or_compile(
                app_name, level, TRACE_PACKETS, TRACE_SEED)
        return result, trace

    return get


@pytest.fixture(scope="session")
def report():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(name: str, lines):
        text = "\n".join(lines)
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print("\n" + text)
        return path

    return write
