"""Table 1: dynamic memory accesses per packet.

For each application and each cumulative optimization level the paper
reports per-packet accesses split into packet-handling (Scratch / SRAM /
DRAM) and application (Scratch / SRAM) categories. We measure the same
split with the simulator's access counters over a steady-state window.

Expected shape (paper): counts fall monotonically as optimizations are
enabled; PAC produces the largest drop in packet SRAM/DRAM accesses;
SWC removes application SRAM accesses for L3-Switch and MPLS but leaves
Firewall unchanged.
"""

from __future__ import annotations

from types import SimpleNamespace

from benchmarks.figures_common import write_bench_json
from repro.sweep import TABLE1_LEVELS, build_jobs, run_sweep

# The paper's Table 1 rows, bottom-up: BASE, +O1, +PAC, +PHR, +SWC
# (-O2 and SOAR do not change access counts and are omitted there).
LEVELS = list(TABLE1_LEVELS)
APPS = ["l3switch", "firewall", "mpls"]

# Table 1 access counts ride along in the per-figure BENCH files.
FIG_BY_APP = {"l3switch": "fig13", "firewall": "fig14", "mpls": "fig15"}

HEADER = "%-9s %-5s | %8s %8s %8s | %8s %8s | %7s" % (
    "app", "level", "pktScr", "pktSRAM", "pktDRAM", "appScr", "appSRAM", "total")


def measure_profiles(sweep_cache):
    """Drive the Table 1 jobs through the sweep orchestrator (the same
    code path as ``python -m repro.sweep``), inline."""
    jobs = build_jobs(APPS, me_counts=[], table1=True)
    sweep = run_sweep(jobs, n_procs=1, cache=sweep_cache)
    rows = {}
    for app in APPS:
        for level, profile in sweep.profiles(app).items():
            rows[(app, level)] = SimpleNamespace(**profile)
    return rows


def test_table1_memory_accesses(sweep_cache, report, benchmark):
    rows = benchmark.pedantic(lambda: measure_profiles(sweep_cache),
                              rounds=1, iterations=1)

    lines = ["Table 1: dynamic memory accesses per packet", HEADER]
    for app in APPS:
        for level in LEVELS:
            p = rows[(app, level)]
            lines.append("%-9s %-5s | %8.1f %8.1f %8.1f | %8.1f %8.1f | %7.1f" % (
                app, level, p.pkt_scratch, p.pkt_sram, p.pkt_dram,
                p.app_scratch, p.app_sram, p.total))
        lines.append("-" * len(HEADER))
    report("table1_mem_accesses", lines)

    for app in APPS:
        write_bench_json(FIG_BY_APP[app], {
            "app": app,
            "mem_accesses": {
                level: {
                    "pkt_scratch": round(rows[(app, level)].pkt_scratch, 3),
                    "pkt_sram": round(rows[(app, level)].pkt_sram, 3),
                    "pkt_dram": round(rows[(app, level)].pkt_dram, 3),
                    "app_scratch": round(rows[(app, level)].app_scratch, 3),
                    "app_sram": round(rows[(app, level)].app_sram, 3),
                    "total": round(rows[(app, level)].total, 3),
                }
                for level in LEVELS
            },
        })

    for app in APPS:
        base = rows[(app, "BASE")]
        o1 = rows[(app, "O1")]
        pac = rows[(app, "PAC")]
        phr = rows[(app, "PHR")]
        swc = rows[(app, "SWC")]

        # Monotone improvement along the cumulative levels.
        assert o1.total <= base.total + 0.5, app
        assert pac.total < o1.total, app
        assert phr.total <= pac.total + 0.5, app
        assert swc.total <= phr.total + 0.5, app

        # PAC's packet-access reduction is the largest single step.
        pac_gain = (o1.pkt_sram + o1.pkt_dram) - (pac.pkt_sram + pac.pkt_dram)
        assert pac_gain >= 0.25 * (o1.pkt_sram + o1.pkt_dram), app

        # Roughly two scratch ring operations per packet at every level
        # (dispatch get + tx put), as in the paper's constant 2.0 column.
        assert 1.5 <= swc.pkt_scratch <= 4.0, app

    # SWC: app-SRAM relief for L3-Switch and MPLS; Firewall unchanged.
    for app in ("l3switch", "mpls"):
        assert rows[(app, "SWC")].app_sram < rows[(app, "PHR")].app_sram, app
    fw_phr, fw_swc = rows[("firewall", "PHR")], rows[("firewall", "SWC")]
    assert abs(fw_swc.app_sram - fw_phr.app_sram) < 0.5

    # Fully optimized L3-Switch reaches the paper's ~2 DRAM accesses.
    assert rows[("l3switch", "SWC")].pkt_dram <= 3.0
