"""Figure 15: MPLS packet forwarding rates.

Forwarding rate (Gbps) for one to six MEs at every cumulative level.

Expected shape (paper): the optimization ordering of Figures 13/14
holds; MPLS's offsets are not statically resolvable (arbitrary label
stacks, Figure 9), so SOAR contributes little and the dynamic-offset
access paths dominate. Our absolute ceiling is below the paper's
3 Gbps for the same reason our MPLS issues more per-packet metadata
accesses than theirs (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from benchmarks.figures_common import run_figure, assert_figure_shape

APP = "mpls"


def test_fig15_mpls_rates(sweep_cache, report, benchmark, trace_sink):
    series = benchmark.pedantic(
        lambda: run_figure(APP, sweep_cache, trace_sink),
        rounds=1, iterations=1)
    # Our MPLS saturates its (dynamic-offset) memory accesses earlier
    # than the paper's, so the scaling requirement is relaxed here; the
    # gap is quantified in EXPERIMENTS.md.
    assert_figure_shape(APP, series, report, "fig15_mpls",
                        best_at_6_min=0.6, scale_4_vs_2=1.0)
    # SOAR adds little for MPLS: dynamic label stacks defeat it.
    assert series["SOAR"][-1] <= series["PAC"][-1] * 1.25
