"""Ablation: stack layout optimization (paper section 5.4).

The paper reports that before the compact pSP/vSP layout, stack frames
were rounded to 16 words, quickly overflowing each thread's 48 words of
Local Memory into SRAM -- "even simple programs would generate too many
SRAM accesses to achieve respectable packet forwarding rates" (L3-Switch
saw over 100 stack SRAM accesses per packet).

We compile L3-Switch at -O1 (no inlining: the call-heavy configuration
where frames stack deepest) with the layout optimization on and off and
compare stack placement, application SRAM traffic and forwarding rate.
"""

from __future__ import annotations

import pytest

from repro.apps import get_app
from repro.compiler import compile_baker
from repro.options import options_for
from repro.rts.system import run_on_simulator


def _compile(stack_opt: bool):
    app = get_app("l3switch")
    trace = app.make_trace(200, seed=5)
    result = compile_baker(app.source,
                           options_for("O1", stack_opt=stack_opt), trace)
    return result, trace


def test_stack_layout_ablation(report, benchmark):
    def run():
        rows = {}
        for flag in (True, False):
            result, trace = _compile(flag)
            run_result = run_on_simulator(result, trace, n_mes=2,
                                          warmup_packets=60,
                                          measure_packets=220)
            layouts = [img.stack_layout for img in result.images.values()]
            rows[flag] = {
                "gbps": run_result.forwarding_gbps,
                "app_sram": run_result.access_profile.app_sram,
                "sram_frames": any(l.any_sram_frames for l in layouts),
                "lm_words": max(l.lm_words_used for l in layouts),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    opt, unopt = rows[True], rows[False]
    lines = [
        "Stack layout ablation (L3-Switch, -O1, 2 MEs)",
        "%-28s %10s %10s" % ("", "optimized", "16-word"),
        "%-28s %10.2f %10.2f" % ("forwarding rate (Gbps)", opt["gbps"], unopt["gbps"]),
        "%-28s %10.1f %10.1f" % ("app SRAM accesses/packet",
                                 opt["app_sram"], unopt["app_sram"]),
        "%-28s %10s %10s" % ("frames spilled to SRAM",
                             opt["sram_frames"], unopt["sram_frames"]),
        "%-28s %10d %10d" % ("thread LM words used",
                             opt["lm_words"], unopt["lm_words"]),
    ]
    report("ablation_stack", lines)

    # The compact layout keeps every frame in Local Memory; the 16-word
    # layout overflows and pays per-packet SRAM stack traffic.
    assert not opt["sram_frames"]
    assert unopt["sram_frames"]
    assert unopt["app_sram"] > opt["app_sram"] + 5
    assert opt["gbps"] >= unopt["gbps"]
