"""Two-speed engine: fast-forward wall-clock speedup at matched accuracy.

The figure benchmarks measure the *simulated* forwarding rate; this one
measures the fast-forward engine (``src/repro/ixp/fastforward.py``)
against the cycle-accurate engine running the **converged reference
protocol** (600 warm-up + 2500 measured packets, the depth at which the
cycle-accurate estimator's own run-to-run wander flattens out). That is
the honest comparison: the sweep's shallow 280-packet cells are faster
than fast-forward but carry +/-2-5% self-noise and cannot certify the
2% accuracy bound this engine documents, while deeper windows (5000+)
measurably *wander* rather than converge.

Per app the benchmark runs both engines over the full 1..6-ME column:

* **accuracy** -- every fast-forward cell must land within
  ``RATE_ERROR_BOUND_PCT`` (2%) of the converged cycle-accurate rate;
* **speed** -- the fast-forward column (cold calibration included) must
  be at least ``FFSPEED_MIN_SPEEDUP`` x faster than the cycle-accurate
  reference column on mpls (the acceptance column; the other apps'
  speedups are reported but not gated).

Columns are interleaved rep by rep and each side reports its best-of-N
wall time (the min is the standard low-noise throughput estimator).
The modelled rates themselves are deterministic -- timing reps never
change them -- so ``BENCH_ffspeed.json`` carries only reproducible
fields (rates, pricing modes, reference rates, errors, the calibration
plan) and **no wall-clock numbers**; the speed assertion lives here,
in the run, where host variance belongs.

Environment knobs (the CI smoke job uses both):
  FFSPEED_APPS         comma-separated app subset (default: all three)
  FFSPEED_REPEATS      interleaved repetitions per column (default 3)
  FFSPEED_MIN_SPEEDUP  mpls speed gate (default 5.0; CI uses a
                       conservative floor because shared runners are
                       noisy)
"""

from __future__ import annotations

import os
import time

import pytest

from repro.ixp import fastforward as ff
from repro.rts.system import run_on_simulator
from repro.sweep import merge_bench_json

from benchmarks.figures_common import REPO_ROOT

ME_COUNTS = [1, 2, 3, 4, 5, 6]
LEVEL = "SWC"

REPEATS = max(1, int(os.environ.get("FFSPEED_REPEATS", "3")))
APPS = [a for a in os.environ.get(
    "FFSPEED_APPS", "l3switch,firewall,mpls").split(",") if a]
MIN_SPEEDUP = float(os.environ.get("FFSPEED_MIN_SPEEDUP", "5.0"))


def _ff_column(result, trace, app_name):
    """(wall seconds, {n: (gbps, mode)}) for a *cold* fast-forward
    column: evidence + fusion + functional batch + calibration + resync
    all inside the timed region, exactly what a sweep user pays."""
    ff._PLAN_MEMO.clear()
    t0 = time.perf_counter()
    plan = ff.get_plan(result, trace,
                       plan_key=(app_name, LEVEL, 200, 5))
    cells = {n: plan.rate(n) for n in ME_COUNTS}
    return time.perf_counter() - t0, cells, plan


def _ca_column(result, trace):
    """(wall seconds, {n: gbps}) for the cycle-accurate engine running
    the converged reference protocol over the same column."""
    t0 = time.perf_counter()
    rates = {}
    for n in ME_COUNTS:
        run = run_on_simulator(result, trace, n_mes=n,
                               warmup_packets=ff.REF_WARMUP,
                               measure_packets=ff.REF_MEASURE,
                               max_cycles=ff.ANCHOR_MAX_CYCLES,
                               dispatch="fast")
        rates[n] = run.forwarding_gbps
    return time.perf_counter() - t0, rates


@pytest.mark.parametrize("app_name", APPS)
def test_ffspeed(app_name, compile_cache, report):
    result, trace = compile_cache(app_name, LEVEL)

    best_ff, best_ca = float("inf"), float("inf")
    cells = refs = plan = None
    for _ in range(REPEATS):
        wall_ff, rep_cells, rep_plan = _ff_column(result, trace, app_name)
        wall_ca, rep_refs = _ca_column(result, trace)
        if cells is not None:
            # Determinism across reps is part of the contract on both
            # engines; a flap here would invalidate the accuracy table.
            assert rep_cells == cells, "fast-forward rates flapped"
            assert rep_refs == refs, "cycle-accurate rates flapped"
        cells, refs, plan = rep_cells, rep_refs, rep_plan
        best_ff = min(best_ff, wall_ff)
        best_ca = min(best_ca, wall_ca)
    speedup = best_ca / best_ff

    rows, bench_cells = [], {}
    worst = 0.0
    for n in ME_COUNTS:
        gbps, mode = cells[n]
        err = 100.0 * (gbps - refs[n]) / refs[n]
        worst = max(worst, abs(err))
        rows.append("%3d  %9.4f  %9.4f  %+6.2f%%  %s"
                    % (n, gbps, refs[n], err, mode))
        bench_cells[str(n)] = {
            "gbps": round(gbps, 4),
            "mode": mode,
            "ref_gbps": round(refs[n], 4),
            "err_pct": round(err, 2),
        }

    report("ffspeed_%s" % app_name, [
        "%s/%s: fast-forward vs converged cycle-accurate "
        "(%d+%d packets), best of %d"
        % (app_name, LEVEL, ff.REF_WARMUP, ff.REF_MEASURE, REPEATS),
        "MEs  ff (Gbps)  ca (Gbps)   error   mode",
    ] + rows + [
        "column wall: ff %.3fs, ca %.3fs -> %.2fx speedup "
        "(worst |error| %.2f%%, bound %.1f%%)"
        % (best_ff, best_ca, speedup, worst, ff.RATE_ERROR_BOUND_PCT),
    ])

    info = plan.describe()
    merge_bench_json(os.path.join(REPO_ROOT, "BENCH_ffspeed.json"),
                     "ffspeed", {
                         "engine": "fastforward",
                         "error_bound_pct": ff.RATE_ERROR_BOUND_PCT,
                         "reference": {
                             "warmup_packets": ff.REF_WARMUP,
                             "measure_packets": ff.REF_MEASURE,
                             "dispatch": "fast",
                         },
                         "apps": {app_name: {"levels": {LEVEL: {
                             "plan": info,
                             "cells": bench_cells,
                         }}}},
                     }, kind="bench_ffspeed")

    assert worst <= ff.RATE_ERROR_BOUND_PCT, (
        "%s: fast-forward drifted %.2f%% from the converged "
        "cycle-accurate rate (documented bound %.1f%%)"
        % (app_name, worst, ff.RATE_ERROR_BOUND_PCT))
    if app_name == "mpls":
        assert speedup >= MIN_SPEEDUP, (
            "fast-forward column only %.2fx faster than the converged "
            "cycle-accurate column (floor %.1fx)" % (speedup, MIN_SPEEDUP))
