"""Figure 6: maximum forwarding rate vs memory accesses per 64 B packet.

The paper's experiment: all six programmable MEs run a tight loop that
issues only memory accesses; the forwarding rate achieved for 1..128
accesses per packet is plotted per memory level (Scratch/SRAM/DRAM) and
access width (narrow vs 32 B / 64 B).

We rebuild the same microbenchmark as a hand-written ME image: the
dispatch loop pops a packet handle, issues N accesses of the chosen
kind against a fixed buffer, and forwards the handle.

Expected shape (paper): 2.5 Gbps is sustainable with at most ~2 DRAM,
~8 SRAM or ~64 Scratch accesses per packet; wider accesses sit
fractionally below the narrow curves; low access counts saturate at the
3 Gbps offered load.
"""

from __future__ import annotations

import pytest

from repro.cg import abi, isa
from repro.cg.assemble import MEImage
from repro.ixp.chip import IXP2400
from repro.ixp.memory import ME_HZ
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.profiler.trace import Trace, TracePacket

ACCESS_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128]

# (label, space, units, regs_per_access)
VARIANTS = [
    ("Scratch 4B", "scratch", 1, 1),
    ("Scratch 32B", "scratch", 8, 8),
    ("SRAM 4B", "sram", 1, 1),
    ("SRAM 32B", "sram", 8, 8),
    ("DRAM 8B", "dram", 1, 2),
    ("DRAM 64B", "dram", 8, 16),
]


def build_loop_image(space: str, units: int, accesses: int) -> MEImage:
    """Dispatch loop issuing ``accesses`` reads per forwarded packet."""
    a0 = isa.PReg("a", 0)
    b1 = isa.PReg("b", 1)
    regs = [isa.PReg("a", 2 + i // 8) for i in range(units * (2 if space == "dram" else 1))]
    insns = [
        isa.RingGet(b1, isa.SymRef("ring.rx")),
        isa.Cmp(b1, isa.Imm(0)),
        isa.Br("eq", "idle"),
    ]
    for _ in range(accesses):
        insns.append(isa.Mem(space, "read", list(regs), isa.SymRef("buf"),
                             isa.Imm(0), units, category=isa.CAT_APP))
    insns += [
        isa.RingPut(isa.SymRef("ring.tx"), b1),
        isa.Br("always", "loop"),
        isa.CtxArb(),  # label 'idle'
        isa.Br("always", "loop"),
    ]
    image = MEImage(name="fig6-%s-%d" % (space, accesses))
    image.insns = insns
    image.label_index = {"loop": 0, "idle": len(insns) - 2}
    for insn in insns:
        if isinstance(insn, isa.Br):
            insn.resolved = image.label_index[insn.target]
    image.entry = 0
    return image


def measure(space: str, units: int, accesses: int, n_mes: int = 6) -> float:
    from repro.ixp.microengine import Microengine

    chip = IXP2400(n_programmable_mes=n_mes)
    chip.symbols["buf"] = 4096
    chip.rings.create("ring.rx", capacity=128)
    chip.rings.create("ring.tx", capacity=128)
    chip.rings.create("ring.__buf_free", capacity=2048)
    chip.rings.create("ring.__meta_free", capacity=2048)
    for i in range(1024):
        chip.rings["ring.__buf_free"].put(2048 + i * 2048)
        chip.rings["ring.__meta_free"].put(1024 + i * 64)
    image = build_loop_image(space, units, accesses)
    for i in range(n_mes):
        chip.add_me(Microengine(i, image, chip))
    trace = Trace([TracePacket(bytes(64), 0)])
    rx = RxEngine(chip, trace, offered_gbps=3.0)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)

    chip.run(80_000, stop=lambda: tx.packets_out() >= 120)
    t0, p0, b0 = chip.now, tx.packets_out(), tx.bytes_out
    chip.run_for(400_000, stop=lambda: tx.packets_out() >= p0 + 400)
    dt = (chip.now - t0) / ME_HZ
    return (tx.bytes_out - b0) * 8 / dt / 1e9 if dt > 0 else 0.0


def test_fig06_memory_rates(report, benchmark):
    series = {}

    def run_all():
        for label, space, units, _ in VARIANTS:
            series[label] = [
                round(measure(space, units, n), 3) for n in ACCESS_COUNTS
            ]
        return series

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["Figure 6: forwarding rate (Gbps) vs memory accesses per 64B packet",
             "accesses/packet: " + "  ".join("%6d" % n for n in ACCESS_COUNTS)]
    for label, rates in series.items():
        lines.append("%-12s " % label + "  ".join("%6.2f" % r for r in rates))
    report("fig06_memory_rates", lines)

    # Paper-shape assertions.
    dram8 = dict(zip(ACCESS_COUNTS, series["DRAM 8B"]))
    sram4 = dict(zip(ACCESS_COUNTS, series["SRAM 4B"]))
    scratch4 = dict(zip(ACCESS_COUNTS, series["Scratch 4B"]))
    assert dram8[2] >= 2.4, "2 DRAM accesses should sustain ~2.5 Gbps"
    assert dram8[4] < 2.0, "4 DRAM accesses must fall well short"
    assert sram4[8] >= 2.3, "8 SRAM accesses should sustain ~2.5 Gbps"
    assert scratch4[64] >= 2.3, "64 Scratch accesses should sustain ~2.5 Gbps"
    # Offered-load saturation at low access counts.
    assert scratch4[1] >= 2.8
    # Wider accesses are fractionally slower at equal counts.
    wide = dict(zip(ACCESS_COUNTS, series["DRAM 64B"]))
    assert wide[8] <= dram8[8] + 1e-9
    # Monotone decay with access count for every series.
    for label, rates in series.items():
        for a, b in zip(rates, rates[1:]):
            assert b <= a + 0.05, label
