"""Simulator throughput: packets simulated per wall-clock second.

Unlike the figure benchmarks (which measure the *simulated* forwarding
rate), this one measures the simulator itself: how fast
``run_on_simulator`` turns packets over on the host, per app and ME
count, for both dispatch cores (``legacy`` handler-table interpreter vs
the predecoded ``fast`` path, ``src/repro/ixp/predecode.py``).

Methodology: legacy/fast runs are interleaved rep by rep so host-load
drift hits both modes equally, and each mode reports its best-of-N wall
time (the min is the standard low-noise estimator for a throughput
benchmark; everything slower is measurement interference). Every rep's
results are also checked bit-identical across modes -- a speedup that
changed simulated behavior would be a bug, not a win.

Writes ``BENCH_simspeed.json`` (repo root, merge-on-write) with
``rates`` rows keyed ``<app>.<mode>`` (packets/s) and ``<app>.speedup``
so ``python -m repro.obs.diff old new`` gates regressions the same way
it gates the forwarding-rate figures.

Environment knobs (the CI smoke job uses both):
  SIMSPEED_APPS     comma-separated app subset (default: all three)
  SIMSPEED_REPEATS  interleaved repetitions per mode (default 5)
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.figures_common import write_bench_json
from repro.rts.system import run_on_simulator

#: Small/mid/full parallelism; the 4-ME column is the headline number.
ME_COUNTS = [1, 4, 6]
WARMUP_PACKETS = 100
MEASURE_PACKETS = 1000
LEVEL = "SWC"

REPEATS = max(1, int(os.environ.get("SIMSPEED_REPEATS", "5")))
APPS = [a for a in os.environ.get(
    "SIMSPEED_APPS", "l3switch,firewall,mpls").split(",") if a]


def _signature(run):
    """Everything the equivalence contract covers, in one comparable."""
    return (run.tx_signature(), run.sim_cycles,
            tuple(run.me_executed_instrs), tuple(run.me_times),
            run.forwarding_gbps, run.access_profile.row())


def _measure(result, trace, n_mes):
    """{mode: packets-per-wall-second} at best-of-REPEATS, with the two
    modes' simulated results asserted bit-identical."""
    best = {"legacy": float("inf"), "fast": float("inf")}
    sigs = {}
    for _ in range(REPEATS):
        for mode in ("legacy", "fast"):
            t0 = time.perf_counter()
            run = run_on_simulator(result, trace, n_mes=n_mes,
                                   warmup_packets=WARMUP_PACKETS,
                                   measure_packets=MEASURE_PACKETS,
                                   dispatch=mode)
            dt = time.perf_counter() - t0
            if dt < best[mode]:
                best[mode] = dt
            sigs[mode] = _signature(run)
    assert sigs["legacy"] == sigs["fast"], (
        "legacy and fast dispatch diverged at %d MEs" % n_mes)
    packets = WARMUP_PACKETS + MEASURE_PACKETS
    return {mode: packets / dt for mode, dt in best.items()}


@pytest.mark.parametrize("app_name", APPS)
def test_simspeed(app_name, compile_cache, report):
    result, trace = compile_cache(app_name, LEVEL)
    legacy_row, fast_row, speedup_row = [], [], []
    for n_mes in ME_COUNTS:
        pps = _measure(result, trace, n_mes)
        legacy_row.append(round(pps["legacy"], 1))
        fast_row.append(round(pps["fast"], 1))
        speedup_row.append(round(pps["fast"] / pps["legacy"], 2))

    report("simspeed_%s" % app_name, [
        "%s: simulator throughput (packets/wall-second), best of %d"
        % (app_name, REPEATS),
        "MEs:     " + "  ".join("%8d" % n for n in ME_COUNTS),
        "legacy   " + "  ".join("%8.0f" % v for v in legacy_row),
        "fast     " + "  ".join("%8.0f" % v for v in fast_row),
        "speedup  " + "  ".join("%8.2f" % v for v in speedup_row),
    ])
    write_bench_json("simspeed", {
        "me_counts": list(ME_COUNTS),
        "warmup_packets": WARMUP_PACKETS,
        "measure_packets": MEASURE_PACKETS,
        "rates": {
            "%s.legacy" % app_name: legacy_row,
            "%s.fast" % app_name: fast_row,
            "%s.speedup" % app_name: speedup_row,
        },
    })

    # The smoke floor is deliberately conservative (CI runners are
    # noisy); the tracked artifact carries the real numbers, and
    # repro.obs.diff gates drift between runs.
    for n_mes, s in zip(ME_COUNTS, speedup_row):
        assert s >= 1.3, (
            "predecoded dispatch only %.2fx legacy at %d MEs" % (s, n_mes))
