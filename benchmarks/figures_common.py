"""Shared driver for the Figures 13-15 forwarding-rate benchmarks.

The actual grid execution lives in :mod:`repro.sweep` -- the same
orchestrator behind ``python -m repro.sweep`` -- so the pytest
benchmarks and the CLI produce identical ``BENCH_*.json`` files from
one code path. This module keeps the per-figure shape assertions.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.options import LEVEL_ORDER
from repro.sweep import build_jobs, merge_bench_json, run_sweep
from repro.sweep.orchestrator import ME_COUNTS  # noqa: F401  (re-export)

#: BENCH_*.json files land at the repo root so the perf trajectory
#: accumulates across PRs (ROADMAP's BENCH_* convention).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_json(figure: str, payload: Dict) -> str:
    """Merge ``payload`` into ``BENCH_<figure>.json`` at the repo root.

    Delegates to :func:`repro.sweep.merge_bench_json`: top-level keys
    merge key-wise (dict values update), ``kind``/``figure`` are forced
    after the merge, and the read-merge-write runs atomically under a
    file lock so concurrent writers cannot interleave. Output is
    deterministic: stable key order, no timestamps. ``python -m
    repro.obs.diff old new`` compares two of these files.
    """
    path = os.path.join(REPO_ROOT, "BENCH_%s.json" % figure)
    return merge_bench_json(path, figure, payload)


def run_figure(app_name: str, sweep_cache,
               trace_sink: Optional[Callable] = None) -> Dict[str, List[float]]:
    """level -> [rate at 1..6 MEs] (Gbps), via the sweep orchestrator.

    ``sweep_cache`` is the session :class:`repro.sweep.CompileCache`
    (disk-backed: each (app, level) compiles once ever, not once per
    session). ``trace_sink(name)`` (the benchmark ``--packet-trace``
    fixture) selects a ``.trace.json`` output path; the fully-optimized
    run at the highest ME count is the one traced.
    """
    jobs = build_jobs([app_name], table1=False, trace_sink=trace_sink)
    sweep = run_sweep(jobs, n_procs=1, cache=sweep_cache)
    return sweep.series(app_name)


def assert_figure_shape(app_name: str, series: Dict[str, List[float]],
                        report, report_name: str,
                        best_at_6_min: float,
                        scale_4_vs_2: float = 1.15) -> None:
    lines = ["%s: forwarding rate (Gbps) vs MEs enabled" % report_name,
             "MEs:   " + "  ".join("%6d" % n for n in ME_COUNTS)]
    for level in LEVEL_ORDER:
        lines.append("%-5s  " % level
                     + "  ".join("%6.2f" % r for r in series[level]))
    report(report_name, lines)

    # "fig13_l3switch" -> BENCH_fig13.json
    write_bench_json(report_name.split("_")[0], {
        "app": app_name,
        "me_counts": list(ME_COUNTS),
        "rates": {level: list(rates) for level, rates in series.items()},
    })

    base, o1 = series["BASE"], series["O1"]
    pac, soar = series["PAC"], series["SOAR"]
    best = series["SWC"]

    # BASE flattens almost immediately (memory-bound): little gain past
    # two MEs.
    assert base[5] <= base[1] * 1.45, "BASE should be flat (memory-bound)"

    # PAC is a substantial improvement over -O1 at full ME count.
    assert pac[5] >= 1.3 * o1[5], "PAC should be the major jump"

    # Cumulative levels never regress much at 6 MEs.
    order = ["BASE", "O1", "O2", "PAC", "SOAR", "PHR", "SWC"]
    for prev, cur in zip(order, order[1:]):
        assert series[cur][5] >= series[prev][5] * 0.9, (prev, cur)

    # The fully optimized configuration keeps scaling past two MEs
    # (BASE cannot), and reaches the expected ceiling.
    assert best[3] >= best[1] * scale_4_vs_2, "optimized code should scale with MEs"
    assert best[5] >= best_at_6_min

    # Rates never exceed the 3 Gbps offered load.
    for level, rates in series.items():
        assert max(rates) <= 3.05, level
