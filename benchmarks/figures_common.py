"""Shared driver for the Figures 13-15 forwarding-rate benchmarks."""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional

from repro.options import LEVEL_ORDER
from repro.rts.system import run_on_simulator

ME_COUNTS = [1, 2, 3, 4, 5, 6]

#: BENCH_*.json files land at the repo root so the perf trajectory
#: accumulates across PRs (ROADMAP's BENCH_* convention).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_json(figure: str, payload: Dict) -> str:
    """Merge ``payload`` into ``BENCH_<figure>.json`` at the repo root.

    Merge-on-write (top-level keys; dict values update key-wise) lets the
    rate benchmarks and the Table 1 access-count benchmark both
    contribute to one file regardless of test execution order. Output is
    deterministic: stable key order, no timestamps. ``python -m
    repro.obs.diff old new`` compares two of these files.
    """
    path = os.path.join(REPO_ROOT, "BENCH_%s.json" % figure)
    data: Dict = {"kind": "bench", "figure": figure}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if isinstance(existing, dict):
                data.update(existing)
        except (OSError, json.JSONDecodeError):
            pass  # rewrite a corrupt file from scratch
    for key, value in payload.items():
        if isinstance(value, dict) and isinstance(data.get(key), dict):
            data[key].update(value)
        else:
            data[key] = value
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_figure(app_name: str, compile_cache,
               trace_sink: Optional[Callable] = None) -> Dict[str, List[float]]:
    """level -> [rate at 1..6 MEs] (Gbps).

    ``trace_sink(name)`` (the benchmark ``--packet-trace`` fixture) selects a
    ``.trace.json`` output path; the fully-optimized run at the highest
    ME count is the one traced.
    """
    series: Dict[str, List[float]] = {}
    for level in LEVEL_ORDER:
        result, trace = compile_cache(app_name, level)
        rates = []
        for n_mes in ME_COUNTS:
            trace_json = None
            if (trace_sink is not None and level == LEVEL_ORDER[-1]
                    and n_mes == ME_COUNTS[-1]):
                trace_json = trace_sink(app_name)
            run = run_on_simulator(result, trace, n_mes=n_mes,
                                   warmup_packets=60, measure_packets=220,
                                   trace_json=trace_json)
            rates.append(round(run.forwarding_gbps, 3))
        series[level] = rates
    return series


def assert_figure_shape(app_name: str, series: Dict[str, List[float]],
                        report, report_name: str,
                        best_at_6_min: float,
                        scale_4_vs_2: float = 1.15) -> None:
    lines = ["%s: forwarding rate (Gbps) vs MEs enabled" % report_name,
             "MEs:   " + "  ".join("%6d" % n for n in ME_COUNTS)]
    for level in LEVEL_ORDER:
        lines.append("%-5s  " % level
                     + "  ".join("%6.2f" % r for r in series[level]))
    report(report_name, lines)

    # "fig13_l3switch" -> BENCH_fig13.json
    write_bench_json(report_name.split("_")[0], {
        "app": app_name,
        "me_counts": list(ME_COUNTS),
        "rates": {level: list(rates) for level, rates in series.items()},
    })

    base, o1 = series["BASE"], series["O1"]
    pac, soar = series["PAC"], series["SOAR"]
    best = series["SWC"]

    # BASE flattens almost immediately (memory-bound): little gain past
    # two MEs.
    assert base[5] <= base[1] * 1.45, "BASE should be flat (memory-bound)"

    # PAC is a substantial improvement over -O1 at full ME count.
    assert pac[5] >= 1.3 * o1[5], "PAC should be the major jump"

    # Cumulative levels never regress much at 6 MEs.
    order = ["BASE", "O1", "O2", "PAC", "SOAR", "PHR", "SWC"]
    for prev, cur in zip(order, order[1:]):
        assert series[cur][5] >= series[prev][5] * 0.9, (prev, cur)

    # The fully optimized configuration keeps scaling past two MEs
    # (BASE cannot), and reaches the expected ceiling.
    assert best[3] >= best[1] * scale_4_vs_2, "optimized code should scale with MEs"
    assert best[5] >= best_at_6_min

    # Rates never exceed the 3 Gbps offered load.
    for level, rates in series.items():
        assert max(rates) <= 3.05, level
