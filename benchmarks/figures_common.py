"""Shared driver for the Figures 13-15 forwarding-rate benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.options import LEVEL_ORDER
from repro.rts.system import run_on_simulator

ME_COUNTS = [1, 2, 3, 4, 5, 6]


def run_figure(app_name: str, compile_cache,
               trace_sink: Optional[Callable] = None) -> Dict[str, List[float]]:
    """level -> [rate at 1..6 MEs] (Gbps).

    ``trace_sink(name)`` (the benchmark ``--packet-trace`` fixture) selects a
    ``.trace.json`` output path; the fully-optimized run at the highest
    ME count is the one traced.
    """
    series: Dict[str, List[float]] = {}
    for level in LEVEL_ORDER:
        result, trace = compile_cache(app_name, level)
        rates = []
        for n_mes in ME_COUNTS:
            trace_json = None
            if (trace_sink is not None and level == LEVEL_ORDER[-1]
                    and n_mes == ME_COUNTS[-1]):
                trace_json = trace_sink(app_name)
            run = run_on_simulator(result, trace, n_mes=n_mes,
                                   warmup_packets=60, measure_packets=220,
                                   trace_json=trace_json)
            rates.append(round(run.forwarding_gbps, 3))
        series[level] = rates
    return series


def assert_figure_shape(app_name: str, series: Dict[str, List[float]],
                        report, report_name: str,
                        best_at_6_min: float,
                        scale_4_vs_2: float = 1.15) -> None:
    lines = ["%s: forwarding rate (Gbps) vs MEs enabled" % report_name,
             "MEs:   " + "  ".join("%6d" % n for n in ME_COUNTS)]
    for level in LEVEL_ORDER:
        lines.append("%-5s  " % level
                     + "  ".join("%6.2f" % r for r in series[level]))
    report(report_name, lines)

    base, o1 = series["BASE"], series["O1"]
    pac, soar = series["PAC"], series["SOAR"]
    best = series["SWC"]

    # BASE flattens almost immediately (memory-bound): little gain past
    # two MEs.
    assert base[5] <= base[1] * 1.45, "BASE should be flat (memory-bound)"

    # PAC is a substantial improvement over -O1 at full ME count.
    assert pac[5] >= 1.3 * o1[5], "PAC should be the major jump"

    # Cumulative levels never regress much at 6 MEs.
    order = ["BASE", "O1", "O2", "PAC", "SOAR", "PHR", "SWC"]
    for prev, cur in zip(order, order[1:]):
        assert series[cur][5] >= series[prev][5] * 0.9, (prev, cur)

    # The fully optimized configuration keeps scaling past two MEs
    # (BASE cannot), and reaches the expected ceiling.
    assert best[3] >= best[1] * scale_4_vs_2, "optimized code should scale with MEs"
    assert best[5] >= best_at_6_min

    # Rates never exceed the 3 Gbps offered load.
    for level, rates in series.items():
        assert max(rates) <= 3.05, level
