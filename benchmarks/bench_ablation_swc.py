"""Ablation: delayed-update software-controlled caching (section 5.2).

Two experiments:

1. **Check-period sweep** -- the coherency check runs every i-th packet
   (Equation 2 relates i to the tolerable packet-error rate). Sweeping i
   shows the trade: rare checks cost almost nothing, frequent checks
   re-introduce the Scratch flag read they were meant to amortize.
2. **Staleness window** -- after a control-plane store, packets may be
   forwarded with stale data until the next check fires; the observed
   stale count stays within the check period.
"""

from __future__ import annotations

import pytest

from repro.apps import get_app
from repro.compiler import compile_baker
from repro.opt.swc import min_check_rate
from repro.options import options_for
from repro.rts.system import run_on_simulator


def test_swc_check_period_sweep(report, benchmark):
    app = get_app("l3switch")
    trace = app.make_trace(200, seed=5)

    def run():
        rows = {}
        for period in (2, 8, 32, 128):
            result = compile_baker(
                app.source, options_for("SWC", swc_check_period=period), trace)
            r = run_on_simulator(result, trace, n_mes=4,
                                 warmup_packets=60, measure_packets=220)
            rows[period] = (r.forwarding_gbps, r.access_profile.app_scratch)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["SWC coherency-check period sweep (L3-Switch, 4 MEs)",
             "%-10s %12s %18s" % ("period", "Gbps", "appScratch/pkt")]
    for period, (gbps, scratch) in rows.items():
        lines.append("%-10d %12.2f %18.2f" % (period, gbps, scratch))
    report("ablation_swc_period", lines)

    # Frequent checking costs more Scratch flag reads per packet.
    assert rows[2][1] > rows[128][1]


def test_swc_equation2_examples(report, benchmark):
    def compute():
        return [
            (r_store, r_load, r_error, min_check_rate(r_error, r_store, r_load))
            for r_store, r_load, r_error in
            [(1e-4, 2.0, 1e-2), (1e-3, 1.0, 1e-3), (1e-5, 4.0, 1e-4)]
        ]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["Equation 2: minimum per-packet update-check rates",
             "r_store      r_load   r_error  -> r_check"]
    for r_store, r_load, r_error, r in rows:
        lines.append("%8.0e  %8.1f  %8.0e  -> %8.3f" % (r_store, r_load, r_error, r))
    report("ablation_swc_equation2", lines)
    assert min_check_rate(0.01, 0.001, 2.0) == pytest.approx(0.2)
