"""Figure 14: Firewall packet forwarding rates.

Forwarding rate (Gbps) for one to six MEs at every cumulative level.

Expected shape (paper): same ordering as L3-Switch -- BASE/-O1 flat and
low, PAC the biggest single improvement, and SWC indistinguishable from
PHR (the rule table defeats the software cache). The absolute ceiling
of our Firewall is lower than the paper's (its ordered-rule scan issues
more application SRAM accesses than theirs did; see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from benchmarks.figures_common import run_figure, assert_figure_shape

APP = "firewall"


def test_fig14_firewall_rates(sweep_cache, report, benchmark, trace_sink):
    series = benchmark.pedantic(
        lambda: run_figure(APP, sweep_cache, trace_sink),
        rounds=1, iterations=1)
    assert_figure_shape(APP, series, report, "fig14_firewall",
                        best_at_6_min=0.8)
    # SWC gives Firewall nothing (paper section 6.2).
    assert abs(series["SWC"][-1] - series["PHR"][-1]) < 0.15
