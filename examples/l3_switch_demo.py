"""L3-Switch walkthrough: the paper's flagship benchmark end to end.

Shows the whole Shangri-La story on one application:

1. the functional profiler's statistics (PPF costs, channel loads);
2. aggregation (hot PPFs merged onto the MEs, control path on XScale);
3. the packet optimizations' effect on per-packet memory accesses;
4. forwarding rates at BASE vs fully optimized;
5. semantic spot checks: TTL/checksum rewriting and ARP replies.

Run:  python examples/l3_switch_demo.py
"""

from repro.apps import get_app
from repro.baker import parse_and_check
from repro.baker.lowering import lower_program
from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.interpreter import run_reference
from repro.profiler.trace import ipv4_checksum
from repro.rts.system import run_on_simulator


def main() -> None:
    app = get_app("l3switch")
    trace = app.make_trace(200, seed=5)

    print("== functional profile (interpreting the IR over the trace)")
    ref = run_reference(lower_program(parse_and_check(app.source)), trace)
    profile = ref.profile
    for ppf in sorted(profile.ppf_invocations):
        print("  %-28s rate %.2f  cost %5.1f IR-instrs/invocation" % (
            ppf, profile.invocation_rate(ppf), profile.ppf_cost_per_packet(ppf)))

    print("\n== compiling BASE and +SWC")
    runs = {}
    for level in ("BASE", "SWC"):
        result = compile_baker(app.source, options_for(level), trace)
        if level == "SWC":
            print("  ME aggregates:", [a.ppfs for a in result.plan.me_aggregates])
            print("  XScale (control path):",
                  [a.ppfs for a in result.plan.xscale_aggregates])
            print("  SWC cached structures:", result.swc_result.cached_names())
        run = run_on_simulator(result, trace, n_mes=6,
                               warmup_packets=60, measure_packets=220)
        runs[level] = run
        p = run.access_profile
        print("  %-4s  %.2f Gbps | accesses/pkt: scratch %.1f sram %.1f dram %.1f app %.1f"
              % (level, run.forwarding_gbps, p.pkt_scratch, p.pkt_sram,
                 p.pkt_dram, p.app_scratch + p.app_sram))

    speedup = runs["SWC"].forwarding_gbps / max(runs["BASE"].forwarding_gbps, 1e-9)
    print("  optimization speedup at 6 MEs: %.1fx" % speedup)

    print("\n== semantic spot checks (reference output)")
    routed = next(p for p in ref.tx
                  if p.payload()[12:14] == b"\x08\x00" and p.payload()[22] == 63)
    frame = routed.payload()
    print("  routed packet: TTL 64 -> %d, header checksum %s" % (
        frame[22], "valid" if ipv4_checksum(frame[14:34]) == 0 else "BROKEN"))
    dst_ip = int.from_bytes(frame[30:34], "big")
    nh = app.expected_nexthop(dst_ip)
    print("  next hop for %d.%d.%d.%d: id %d, MAC %012x (oracle agrees: %s)" % (
        *dst_ip.to_bytes(4, "big"), nh, app.routes.nexthops[nh][0],
        frame[0:6] == app.routes.nexthops[nh][0].to_bytes(6, "big")))
    arp = [p for p in ref.tx if p.payload()[12:14] == b"\x08\x06"]
    print("  ARP replies generated on the XScale: %d" % len(arp))


if __name__ == "__main__":
    main()
