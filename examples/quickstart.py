"""Quickstart: compile a small Baker program and run it on the simulated
IXP2400.

A Baker program is a dataflow of packet processing functions (PPFs)
connected by channels. This one classifies Ethernet frames, forwards
IPv4 packets addressed to the router (decrementing TTL), and bridges
everything else. The compiler profiles it, merges the hot PPFs onto the
microengines, applies the packet optimizations, and produces ME images;
the runtime loads them onto the simulated chip and we measure the
forwarding rate under 3 Gbps of 64-byte packets.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.trace import ipv4_trace
from repro.rts.system import run_on_simulator, verify_against_reference

SOURCE = r"""
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
}

protocol ipv4 {
  ver : 4;    ihl : 4;    tos : 8;    length : 16;
  ident : 16; flags_frag : 16;
  ttl : 8;    proto : 8;  checksum : 16;
  src : 32;   dst : 32;
  demux { ihl << 2 };
}

const u32 ETH_TYPE_IP = 0x0800;
u64 my_macs[4] = { 0x0a0000000001, 0x0a0000000002, 0x0a0000000003, 0 };
u64 gateway_mac = 0x0c0000000099;

module quick {
  channel route_cc;

  ppf classify(ether_pkt *ph) from rx {
    bool mine = ph->dst == my_macs[ph->meta.rx_port];
    if (mine && ph->type == ETH_TYPE_IP) {
      ipv4_pkt *iph = packet_decap(ph);
      channel_put(route_cc, iph);
    } else {
      channel_put(tx, ph);  // bridge unmodified
    }
  }

  ppf route(ipv4_pkt *iph) from route_cc {
    iph->ttl = iph->ttl - 1;
    ether_pkt *eph = packet_encap(iph, ether);
    eph->dst = gateway_mac;
    eph->src = my_macs[0];
    eph->type = ETH_TYPE_IP;
    channel_put(tx, eph);
  }
}
"""


def main() -> None:
    macs = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]
    trace = ipv4_trace(200, dst_addrs=[0xC0A80101, 0x08080808],
                       router_macs=macs, seed=1)

    print("compiling at the full optimization level (+SWC)...")
    result = compile_baker(SOURCE, options_for("SWC"), trace)

    for name, image in result.images.items():
        print("  ME image %s" % image.describe())
    print("  aggregation: %d ME aggregate(s), %d on the XScale"
          % (len(result.plan.me_aggregates), len(result.plan.xscale_aggregates)))

    print("verifying against the functional reference...", end=" ")
    print("OK" if verify_against_reference(result, trace, packets=40) else "MISMATCH")

    for n_mes in (1, 2, 4, 6):
        run = run_on_simulator(result, trace, n_mes=n_mes,
                               warmup_packets=60, measure_packets=200)
        print("  %d ME(s): %.2f Gbps" % (n_mes, run.forwarding_gbps))

    run = run_on_simulator(result, trace, n_mes=4)
    p = run.access_profile
    print("per-packet memory accesses: "
          "pkt scratch %.1f / sram %.1f / dram %.1f, app sram %.1f"
          % (p.pkt_scratch, p.pkt_sram, p.pkt_dram, p.app_sram))


if __name__ == "__main__":
    main()
