"""Firewall walkthrough: ordered-rule classification on the fast path.

Demonstrates first-match rule semantics against the Python oracle, the
pass/drop split, and why the software-controlled cache declines to cache
the rule table (its working set overflows the 16-entry CAM) -- the
paper's explanation for Firewall's unchanged +SWC row in Table 1.

Run:  python examples/firewall_demo.py
"""

from repro.apps import get_app
from repro.baker import parse_and_check
from repro.baker.lowering import lower_program
from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.interpreter import Interpreter
from repro.rts.system import run_on_simulator


def main() -> None:
    app = get_app("firewall")
    trace = app.make_trace(300, seed=7)

    print("== rule set (first match wins; last rule is the catch-all)")
    for i, rule in enumerate(app.config.rules[:6]):
        print("  #%-2d dst %08x/%08x dport %5d-%-5d proto %2d -> %s (flow %d)" % (
            i, rule.dst_ip, rule.dst_mask, rule.dport_lo, rule.dport_hi,
            rule.proto, "DROP" if rule.action else "pass", rule.flow_id))
    print("  ... (%d rules total)" % len(app.config.rules))

    print("\n== classification vs oracle")
    mod = lower_program(parse_and_check(app.source))
    interp = Interpreter(mod)
    interp.run_inits()
    res = interp.run_trace(trace)
    oracle_drops = 0
    for tp in trace:
        f = tp.data
        action, _ = app.expected_action(
            int.from_bytes(f[26:30], "big"), int.from_bytes(f[30:34], "big"),
            int.from_bytes(f[34:36], "big"), int.from_bytes(f[36:38], "big"),
            f[23])
        oracle_drops += action
    print("  packets: %d in, %d passed, %d dropped (oracle predicts %d drops)"
          % (res.profile.packets_in, res.profile.packets_out,
             res.profile.packets_dropped, oracle_drops))
    per_rule = [(i, interp.globals.load("fw_drop_count", i * 4, 4))
                for i in range(64)]
    hot = [(i, c) for i, c in per_rule if c]
    print("  per-rule drop counters:", hot)

    print("\n== compile + simulate (+SWC)")
    result = compile_baker(app.source, options_for("SWC"), trace)
    print("  SWC cached:", result.swc_result.cached_names() or "(nothing)")
    reason = next((v for k, v in result.swc_result.rejected.items()
                   if k == "fw_rules"), None)
    print("  fw_rules rejected because:", reason)
    run = run_on_simulator(result, trace, n_mes=6, warmup_packets=60,
                           measure_packets=220)
    print("  forwarding rate at 6 MEs: %.2f Gbps "
          "(app SRAM %.1f accesses/packet -- the rule scan dominates)"
          % (run.forwarding_gbps, run.access_profile.app_sram))


if __name__ == "__main__":
    main()
