"""MPLS walkthrough: label switching and why offsets resist SOAR.

Shows the three label operations (swap/pop/push) flowing through the
compiled pipeline, and queries the SOAR results to demonstrate the
paper's Figure 9 point: with arbitrary label stacks, packet field
offsets cannot be resolved statically, so MPLS keeps the generic
(dynamic-offset) access paths.

Run:  python examples/mpls_demo.py
"""

from repro.apps import get_app
from repro.apps.tables import MPLS_OP_POP, MPLS_OP_PUSH, MPLS_OP_SWAP
from repro.baker import parse_and_check
from repro.baker.lowering import lower_program
from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.interpreter import run_reference
from repro.rts.system import run_on_simulator

OP_NAMES = {MPLS_OP_SWAP: "swap", MPLS_OP_POP: "pop", MPLS_OP_PUSH: "push"}


def main() -> None:
    app = get_app("mpls")
    trace = app.make_trace(250, seed=9)

    print("== incoming label map (ILM)")
    for label, (op, out_label, nh) in sorted(app.config.ilm.items()):
        print("  label %4d -> %-4s out %4d nexthop %d"
              % (label, OP_NAMES[op], out_label, nh))

    print("\n== reference run")
    ref = run_reference(lower_program(parse_and_check(app.source)), trace)
    mpls_out = sum(1 for p in ref.tx if p.payload()[12:14] == b"\x88\x47")
    ip_out = sum(1 for p in ref.tx if p.payload()[12:14] == b"\x08\x00")
    print("  %d in -> %d out (%d still labeled, %d egressed as IPv4 after a "
          "final pop)" % (ref.profile.packets_in, ref.profile.packets_out,
                          mpls_out, ip_out))

    print("\n== SOAR on MPLS (the Figure 9 effect)")
    result = compile_baker(app.source, options_for("SWC"), trace)
    soar = result.soar_result
    print("  statically resolved packet accesses: %d of %d (%.0f%%)"
          % (soar.resolved_accesses, soar.total_accesses,
             100 * soar.resolution_rate))
    print("  (the label-stack loop makes the head offset join to 'unknown';"
          " compare ~100% for L3-Switch)")
    print("  SWC cached structures:", result.swc_result.cached_names())

    run = run_on_simulator(result, trace, n_mes=6, warmup_packets=60,
                           measure_packets=220)
    print("\n== simulated forwarding rate at 6 MEs: %.2f Gbps" % run.forwarding_gbps)
    p = run.access_profile
    print("   accesses/packet: pkt sram %.1f, pkt dram %.1f (dynamic-offset"
          " paths pay extra metadata reads)" % (p.pkt_sram, p.pkt_dram))


if __name__ == "__main__":
    main()
