"""Extending Baker with a new protocol: 802.1Q VLAN tagging.

The paper's protocol construct makes new encapsulations a few lines of
code (section 2.2). This example defines a VLAN header, writes a small
access-port switch that tags untagged frames and untags/forwards tagged
ones, and shows the compiler's optimization reports: how many accesses
PAC combined and how many encapsulations PHR elided on the new protocol.

Run:  python examples/custom_protocol.py
"""

from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.trace import (
    Trace,
    TracePacket,
    build_ethernet,
    build_ipv4,
)
from repro.rts.system import run_on_simulator, verify_against_reference

SOURCE = r"""
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
}

// 802.1Q tag as its own protocol: pushed between the MAC addresses and
// the original ethertype by re-encapsulation.
protocol vlan {
  dst : 48;
  src : 48;
  tpid : 16;
  pcp : 3;
  dei : 1;
  vid : 12;
  type : 16;
  demux { 18 };
}

const u32 TPID = 0x8100;
u32 port_vlan[4] = { 100, 200, 300, 0 };

module vlan_switch {
  channel tag_cc;
  channel untag_cc;

  ppf classify(ether_pkt *ph) from rx {
    if (ph->type == TPID) {
      // Already tagged: reinterpret the frame as a VLAN frame.
      vlan_pkt *vph = packet_as(ph, vlan);
      channel_put(untag_cc, vph);
    } else {
      channel_put(tag_cc, ph);
    }
  }

  // Access port -> trunk: push a tag for the ingress port's VLAN.
  ppf tagger(ether_pkt *ph) from tag_cc {
    u64 dst = ph->dst;
    u64 src = ph->src;
    u32 t = ph->type;
    u32 vid = port_vlan[ph->meta.rx_port];
    packet_extend(ph, 4);  // four bytes of new header space
    vlan_pkt *vph = packet_as(ph, vlan);
    vph->dst = dst;
    vph->src = src;
    vph->tpid = TPID;
    vph->pcp = 0;
    vph->dei = 0;
    vph->vid = vid;
    vph->type = t;
    channel_put(tx, vph);
  }

  // Trunk -> access port: strip the tag.
  ppf untagger(vlan_pkt *vph) from untag_cc {
    u64 dst = vph->dst;
    u64 src = vph->src;
    u32 inner_type = vph->type;
    packet_shorten(vph, 4);
    ether_pkt *eph = packet_as(vph, ether);
    eph->dst = dst;
    eph->src = src;
    eph->type = inner_type;
    channel_put(tx, eph);
  }
}
"""


def make_trace(count: int) -> Trace:
    trace = Trace()
    for i in range(count):
        ip = build_ipv4(0x0A000001 + i, 0xC0A80101, total_length=46)
        if i % 3 == 2:
            # Pre-tagged frame: 0x8100 tag with VID 77 spliced in.
            plain = build_ethernet(0x0C0000000001, 0x020000000000 | i, 0x0800, ip)
            tagged = plain[:12] + b"\x81\x00" + (77).to_bytes(2, "big") + plain[12:]
            trace.packets.append(TracePacket(tagged[:64], i % 3))
        else:
            frame = build_ethernet(0x0C0000000001, 0x020000000000 | i, 0x0800, ip)
            trace.packets.append(TracePacket(frame, i % 3))
    return trace


def main() -> None:
    trace = make_trace(150)
    result = compile_baker(SOURCE, options_for("SWC"), trace)

    print("compiled VLAN switch:")
    for image in result.images.values():
        print(" ", image.describe())
    print("  PAC: %d packet accesses combined into %d wide ops"
          % (result.pac_result.combined_loads + result.pac_result.combined_stores,
             result.pac_result.wide_loads + result.pac_result.wide_stores))
    print("  SOAR: %.0f%% of packet accesses statically resolved"
          % (100 * result.soar_result.resolution_rate))

    ok = verify_against_reference(result, trace, packets=45)
    print("  differential check vs reference:", "OK" if ok else "MISMATCH")

    run = run_on_simulator(result, trace, n_mes=4, warmup_packets=50,
                           measure_packets=180)
    print("  forwarding rate at 4 MEs: %.2f Gbps" % run.forwarding_gbps)

    outs = run.tx_payloads
    n_tagged = sum(1 for p in outs if p[12:14] == b"\x81\x00")
    n_plain = len(outs) - n_tagged
    print("  transmitted: %d tagged (pushed), %d untagged (popped)"
          % (n_tagged, n_plain))
    sample = next(p for p in outs if p[12:14] == b"\x81\x00")
    vid = int.from_bytes(sample[14:16], "big") & 0xFFF
    print("  sample pushed tag: VID %d (port VLANs are 100/200/300)" % vid)


if __name__ == "__main__":
    main()
