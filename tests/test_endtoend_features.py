"""End-to-end coverage of individual Baker language features: each small
program runs through the complete pipeline (profile, optimize, codegen)
and must match the functional reference on the simulated chip at both
BASE and the full optimization level."""

import pytest

from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.trace import Trace, TracePacket, build_ethernet, ipv4_trace
from repro.rts.system import verify_against_reference
from tests.samples import ETHER_IPV4_PROTOCOLS

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def check(src: str, trace=None, levels=("BASE", "SWC"), packets=30):
    trace = trace or ipv4_trace(60, [0xC0A80101, 0xC0A80202], MACS, seed=21)
    for level in levels:
        result = compile_baker(src, options_for(level), trace)
        assert verify_against_reference(result, trace, packets=packets), level
    return result


def ppf(body: str, extra: str = "") -> str:
    return (
        ETHER_IPV4_PROTOCOLS
        + extra
        + "\nmodule m { ppf go(ether_pkt *ph) from rx { %s } }" % body
    )


# -- control flow -----------------------------------------------------------------


def test_for_loop_checksum_over_header():
    check(ppf(
        "u32 acc = 0;"
        "for (u32 i = 0; i < 7; i++) { acc = acc + (u32) (ph->dst >> (i * 4)); }"
        "ph->type = acc & 0xffff; channel_put(tx, ph);"
    ))


def test_do_while_loop():
    check(ppf(
        "u32 n = ph->type & 7; u32 acc = 1;"
        "do { acc = acc * 3; n = n - 1; } while (n != 0 && n < 8);"
        "ph->type = acc & 0xffff; channel_put(tx, ph);"
    ))


def test_nested_if_ladder():
    check(ppf(
        "u32 t = ph->type; u32 c = 0;"
        "if (t == 0x800) { if ((ph->dst & 1) == 1) { c = 1; } else { c = 2; } }"
        "else { if (t < 0x600) { c = 3; } else { c = 4; } }"
        "ph->type = c; channel_put(tx, ph);"
    ))


def test_break_continue_in_loop():
    check(ppf(
        "u32 acc = 0;"
        "for (u32 i = 0; i < 16; i++) {"
        "  if ((i & 1) == 1) { continue; }"
        "  if (i > 10) { break; }"
        "  acc = acc + i;"
        "}"
        "ph->type = acc; channel_put(tx, ph);"
    ))


def test_ternary_expression():
    check(ppf(
        "u32 t = ph->type;"
        "u32 v = t == 0x800 ? (t >> 4) : (t << 2);"
        "ph->type = v & 0xffff; channel_put(tx, ph);"
    ))


# -- data features ------------------------------------------------------------------


def test_local_array_on_stack():
    check(ppf(
        "u32 hist[8];"
        "for (u32 i = 0; i < 8; i++) { hist[i] = 0; }"
        "hist[ph->type & 7] = 42;"
        "hist[(ph->type + 1) & 7] += 5;"
        "u32 acc = 0;"
        "for (u32 i = 0; i < 8; i++) { acc = acc + hist[i]; }"
        "ph->type = acc; channel_put(tx, ph);"
    ))


def test_struct_global_member_access():
    check(ppf(
        "stats[ph->meta.rx_port].seen = stats[ph->meta.rx_port].seen + 1;"
        "ph->type = stats[0].tag & 0xffff;"
        "channel_put(tx, ph);",
        extra="struct stat { u32 seen; u32 tag; }\nstruct stat stats[4];",
    ))


def test_u64_local_across_branches():
    check(ppf(
        "u64 mac = ph->dst;"
        "u64 other = ph->src;"
        "if ((mac & 1) == 1) { mac = mac ^ other; }"
        "ph->dst = mac;"
        "channel_put(tx, ph);"
    ))


def test_u64_value_survives_call_frame():
    # At BASE the helper calls clobber registers: the u64 must be homed.
    check(
        ETHER_IPV4_PROTOCOLS
        + """
u32 mixer(u32 x) { return (x * 2654435761) >> 16; }
module m {
  ppf go(ether_pkt *ph) from rx {
    u64 mac = ph->dst;
    u32 h = mixer(ph->type);
    ph->dst = mac + h;
    channel_put(tx, ph);
  }
}
"""
    )


def test_signed_arithmetic_end_to_end():
    check(ppf(
        "int delta = (int) ph->type - 0x900;"
        "if (delta < 0) { delta = -delta; }"
        "ph->type = (u32) delta & 0xffff;"
        "channel_put(tx, ph);"
    ))


# -- packet primitives -----------------------------------------------------------------


def test_add_and_remove_tail():
    check(ppf(
        "packet_add_tail(ph, 8);"
        "packet_remove_tail(ph, 4);"
        "ph->type = packet_length(ph);"
        "channel_put(tx, ph);"
    ))


def test_extend_shorten_roundtrip():
    check(ppf(
        "packet_shorten(ph, 6);"
        "packet_extend(ph, 6);"
        "channel_put(tx, ph);"
    ))


def test_packet_copy_on_fast_path():
    # Both the copy and the original leave the box: the copy gets a
    # marked ethertype so the outputs differ deterministically.
    check(ppf(
        "ether_pkt *dup = packet_copy(ph);"
        "dup->type = 0xbeef;"
        "channel_put(tx, dup);"
        "channel_put(tx, ph);"
    ))


def test_packet_create_on_fast_path():
    check(ppf(
        "ether_pkt *fresh = packet_create(ether, 50);"
        "fresh->dst = ph->src;"
        "fresh->src = ph->dst;"
        "fresh->type = 0x0801;"
        "channel_put(tx, fresh);"
        "packet_drop(ph);"
    ))


def test_cross_module_channels():
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
module front {
  channel out;
  ppf rx_side(ether_pkt *ph) from rx {
    ph->type = ph->type ^ 1;
    channel_put(out, ph);
  }
}
module back {
  ppf tx_side(ether_pkt *ph) from front.out {
    ph->type = ph->type ^ 2;
    channel_put(tx, ph);
  }
}
"""
    )
    check(src)


def test_metadata_across_ppfs():
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
metadata { u32 mark; }
module m {
  channel mid;
  ppf first(ether_pkt *ph) from rx {
    ph->meta.mark = ph->type + 7;
    channel_put(mid, ph);
  }
  ppf second(ether_pkt *ph) from mid {
    ph->type = ph->meta.mark & 0xffff;
    channel_put(tx, ph);
  }
}
"""
    )
    check(src)


def test_demux_with_arithmetic_and_multiple_fields():
    src = """
protocol ether { dst : 48; src : 48; type : 16; demux { 14 }; }
protocol weird {
  a : 8;
  b : 8;
  rest : 16;
  demux { (a & 7) + (b >> 4) };
}
module m {
  ppf go(ether_pkt *ph) from rx {
    weird_pkt *wp = packet_decap(ph);
    u32 x = wp->a;
    inner_pkt_probe(wp, x);
    channel_put(tx, wp);
  }
}
""".replace("inner_pkt_probe(wp, x);", "wp->rest = (x * 3) & 0xffff;")
    frames = [
        TracePacket(build_ethernet(1, 2, 0x1234,
                                   bytes([a, b]) + bytes(40)), i % 3)
        for i, (a, b) in enumerate([(9, 0x20), (15, 0x40), (3, 0x10)])
    ]
    check(src, trace=Trace(frames * 10), packets=20)


def test_sub_byte_field_stores():
    check(
        ETHER_IPV4_PROTOCOLS
        + """
module m {
  ppf go(ether_pkt *ph) from rx {
    ipv4_pkt *iph = packet_decap(ph);
    iph->tos = (iph->tos + 1) & 0xff;
    iph->flags_frag = 0x4000;
    channel_put(tx, iph);
  }
}
"""
    )
