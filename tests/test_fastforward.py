"""The two-speed engine's contract, plus the DMA-bounds and
bench-merge bugfix regressions that ride in the same change.

The expensive evidence lives in one module-scoped mpls calibration
plan: building it *is* the cross-engine equivalence test (the resync
windows inside ``build_plan`` raise on any divergence between the
functional engine and a cycle-accurate replay of the same packets --
exact Tx payload multisets, exact ring deltas, exact poll-adjusted
scratch/dram counters), and the cheaper per-property tests interrogate
the finished plan instead of rebuilding it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.ixp import fastforward as ff
from repro.ixp.fastforward import FastForwardError
from repro.ixp.memory import MemorySystem
from repro.obs import diff as obs_diff
from repro.obs import metrics as obs_metrics
from repro.rts.system import run_on_simulator
from repro.sweep import CompileCache, build_jobs, merge_bench_json, run_sweep
from repro.sweep.orchestrator import WorkerConfig

PLAN_KEY = ("mpls", "SWC", 200, 5)


@pytest.fixture(scope="module")
def mpls_plan():
    """(CompileResult, Trace, FastForwardPlan) for mpls/SWC, built once
    cold (the build itself asserts functional/cycle-accurate agreement
    in the resync windows)."""
    result, trace, _hit = CompileCache().get_or_compile("mpls", "SWC",
                                                        200, 5)
    ff._PLAN_MEMO.clear()
    plan = ff.get_plan(result, trace, plan_key=PLAN_KEY)
    return result, trace, plan


# -- satellite regression: byte-granular DMA bounds ------------------------------


def test_read_bytes_out_of_range():
    """Out-of-range byte reads raise instead of silently truncating
    the returned slice (a short Tx payload is data corruption, not an
    error the caller can see)."""
    mem = MemorySystem()
    size = len(mem.stores["scratch"])
    assert mem.read_bytes("scratch", size - 4, 4) == b"\x00" * 4
    with pytest.raises(IndexError):
        mem.read_bytes("scratch", size - 3, 4)
    with pytest.raises(IndexError):
        mem.read_bytes("scratch", -1, 4)


def test_write_bytes_out_of_range():
    """Out-of-range byte writes raise instead of silently *growing*
    the bytearray backing store past the configured channel size."""
    mem = MemorySystem()
    size = len(mem.stores["sram"])
    mem.write_bytes("sram", size - 2, b"\xAA\xBB")
    assert len(mem.stores["sram"]) == size
    with pytest.raises(IndexError):
        mem.write_bytes("sram", size - 1, b"\xAA\xBB")
    with pytest.raises(IndexError):
        mem.write_bytes("sram", -1, b"\xAA")
    assert len(mem.stores["sram"]) == size, "store must not have grown"


# -- satellite regression: corrupt bench files are preserved, not eaten ----------


def test_bench_merge_corrupt_sidecar(tmp_path, capsys):
    """An unparsable BENCH file is moved to a ``.corrupt`` sidecar
    (bytes preserved for forensics), a warning names it on stderr, and
    the merge counts the event -- the fresh payload then starts a clean
    file rather than crashing or silently discarding the old bytes."""
    path = str(tmp_path / "BENCH_fig13.json")
    with open(path, "w") as fh:
        fh.write("{half a json docum")

    reg = obs_metrics.MetricsRegistry()
    with obs_metrics.scoped_registry(reg):
        merge_bench_json(path, "fig13", {"rates": {"SWC": [1.0]}})

    with open(path + ".corrupt") as fh:
        assert fh.read() == "{half a json docum"
    err = capsys.readouterr().err
    assert "unreadable" in err and path in err
    assert reg.counter("sweep.bench_merge", result="corrupt").value == 1
    with open(path) as fh:
        data = json.load(fh)
    assert data["kind"] == "bench"
    assert data["rates"] == {"SWC": [1.0]}


# -- the calibration plan ---------------------------------------------------------


def test_resync_windows_agree(mpls_plan):
    """Every resync window replayed both engines to quiescence and
    compared Tx payloads + counters exactly (a mismatch raises inside
    build_plan); here we pin the evidence that lands in the plan."""
    _, _, plan = mpls_plan
    assert len(plan.resync) == len(ff.RESYNC_OFFSETS)
    for window, offset in zip(plan.resync, ff.RESYNC_OFFSETS):
        assert window["offset"] == offset
        assert window["packets_out"] > 0
        assert window["sram_drift"] <= ff.RESYNC_COUNTER_TOL


def test_biased_anchor_is_cycle_identical(mpls_plan):
    """Anchors run with the bias-fused program must be *cycle*-identical
    to plain predecoded dispatch -- same rate, same adaptive stopping
    depth -- because superblock fusion across biased branches preserves
    the schedule, not just the semantics."""
    result, trace, plan = mpls_plan
    assert plan.fused is not None
    d_plain, d_fused = {}, {}
    r_plain = ff._anchor_rate(result, trace, 2, depths=d_plain)
    r_fused = ff._anchor_rate(result, trace, 2, depths=d_fused,
                              fused=plan.fused)
    assert r_plain == r_fused
    assert d_plain == d_fused


def test_rate_within_bound_of_converged_reference(mpls_plan):
    """An anchored cell must land within the documented bound of the
    cycle-accurate engine's own converged estimate (600+2500 packets).
    The full 18-cell table lives in benchmarks/bench_ffspeed.py; one
    cell here keeps the contract under plain pytest."""
    result, trace, plan = mpls_plan
    ref = run_on_simulator(result, trace, n_mes=1,
                           warmup_packets=ff.REF_WARMUP,
                           measure_packets=ff.REF_MEASURE,
                           max_cycles=ff.ANCHOR_MAX_CYCLES,
                           dispatch="fast").forwarding_gbps
    gbps, mode = plan.rate(1)
    assert mode == "anchored"
    err = 100.0 * abs(gbps - ref) / ref
    assert err <= ff.RATE_ERROR_BOUND_PCT, (
        "fast-forward off by %.2f%% at 1 ME" % err)


def test_saturated_cells_priced_at_channel_cap(mpls_plan):
    """mpls saturates its DRAM channel by 3 MEs: the model prices those
    cells at the channel cap without any cycle-accurate run, and the
    Amdahl curve through anchors 1-2 clears the cap by the margin."""
    _, _, plan = mpls_plan
    gbps, mode = plan.rate(3)
    assert mode == "saturated"
    assert gbps == plan.chcap_gbps
    assert plan.amdahl(3) >= ff.SATURATION_MARGIN * plan.chcap_gbps
    assert plan.bottleneck == "dram"


def test_plan_memo_and_describe_determinism(mpls_plan):
    """get_plan memoizes per plan_key, and two cold calibrations of the
    same program produce byte-identical describe() output."""
    result, trace, plan = mpls_plan
    assert ff.get_plan(result, trace, plan_key=PLAN_KEY) is plan
    fresh = ff.build_plan(result, trace)
    for n in range(1, 7):
        fresh.rate(n)
        plan.rate(n)
    assert json.dumps(fresh.describe(), sort_keys=True) == \
        json.dumps(plan.describe(), sort_keys=True)


def test_run_on_simulator_fastforward_route(mpls_plan):
    """dispatch="fastforward" routes through the plan: the RunResult
    carries the pricing evidence and no fake cycle-accurate fields."""
    result, trace, plan = mpls_plan
    run = run_on_simulator(result, trace, n_mes=4,
                           dispatch="fastforward", plan_key=PLAN_KEY)
    assert run.fastforward is not None
    assert run.fastforward["mode"] in ("anchored", "saturated")
    assert run.forwarding_gbps == plan.rate(4)[0]
    assert run.packets_measured == 0 and run.sim_cycles == 0.0


# -- refusals: no unlabeled time attribution --------------------------------------


def test_fastforward_refuses_time_attributing_observers(mpls_plan):
    result, trace, _ = mpls_plan
    for kwargs in ({"profiler": object()}, {"tracer": object()},
                   {"timeseries": object()}, {"trace_json": "/tmp/x.json"}):
        with pytest.raises(FastForwardError):
            ff.run_fastforward(result, trace, n_mes=1, **kwargs)


def test_worker_config_refuses_fastforward_profile():
    with pytest.raises(ValueError):
        WorkerConfig(engine="fastforward", profile=True)
    WorkerConfig(engine="fastforward", profile=False)  # fine


def test_sweep_cli_refuses_fastforward_profile():
    from repro.sweep.__main__ import main as sweep_main
    with pytest.raises(SystemExit) as exc:
        sweep_main(["--engine", "fastforward", "--profile",
                    "--apps", "mpls"])
    assert exc.value.code == 2


# -- the sweep integration: BENCH_ffspeed.json ------------------------------------


def _ff_sweep(out_dir, cache_dir):
    jobs = build_jobs(["mpls"], levels=["SWC"], me_counts=[1, 2, 3],
                      table1=False)
    cfg = WorkerConfig(cache_dir=cache_dir, engine="fastforward",
                       obs=False)
    sweep = run_sweep(jobs, n_procs=1, cache=CompileCache(cache_dir),
                      cfg=cfg)
    return sweep, sweep.write_bench_files(str(out_dir))


def test_sweep_ffspeed_byte_reproducible(tmp_path):
    """Two cold fast-forward sweeps write byte-identical
    BENCH_ffspeed.json (and nothing else -- the Tier-1 figure files
    stay cycle-accurate by construction), and the ffspeed diff gate
    reads the file and passes it clean against itself."""
    out1, out2 = tmp_path / "a", tmp_path / "b"
    out1.mkdir(), out2.mkdir()
    cache_dir = str(tmp_path / "cache")

    ff._PLAN_MEMO.clear()
    sweep1, paths1 = _ff_sweep(out1, cache_dir)
    ff._PLAN_MEMO.clear()
    sweep2, paths2 = _ff_sweep(out2, cache_dir)

    assert [os.path.basename(p) for p in paths1] == ["BENCH_ffspeed.json"]
    assert [os.path.basename(p) for p in paths2] == ["BENCH_ffspeed.json"]
    assert sorted(os.listdir(out1)) == ["BENCH_ffspeed.json",
                                        "BENCH_ffspeed.json.lock"]
    with open(paths1[0], "rb") as fh1, open(paths2[0], "rb") as fh2:
        assert fh1.read() == fh2.read()

    with open(paths1[0]) as fh:
        data = json.load(fh)
    assert data["kind"] == "bench_ffspeed"
    assert data["engine"] == "fastforward"
    cells = data["apps"]["mpls"]["levels"]["SWC"]["cells"]
    assert sorted(cells) == ["1", "2", "3"]
    for cell in cells.values():
        assert cell["gbps"] > 0
        assert cell["mode"] in ("anchored", "saturated")

    text, code = obs_diff.run_diff(paths1[0], paths2[0])
    assert code == 0 and "no regressions" in text


def test_diff_ffspeed_gates_regressions(tmp_path):
    """The bench_ffspeed gate trips on rate drops, accuracy drift past
    the file's own bound, and vanished cells -- and on nothing else."""
    old = {"kind": "bench_ffspeed", "error_bound_pct": 2.0,
           "apps": {"mpls": {"levels": {"SWC": {"cells": {
               "1": {"gbps": 0.52, "mode": "anchored"},
               "2": {"gbps": 0.80, "mode": "anchored"},
               "3": {"gbps": 0.83, "mode": "saturated"},
           }}}}}}
    new = json.loads(json.dumps(old))
    cells = new["apps"]["mpls"]["levels"]["SWC"]["cells"]
    cells["1"]["gbps"] = 0.40          # dropped >5%
    cells["2"]["err_pct"] = 2.5        # outside the documented bound
    del cells["3"]                     # vanished

    old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
    old_path.write_text(json.dumps(old))
    new_path.write_text(json.dumps(new))
    text, code = obs_diff.run_diff(str(old_path), str(new_path))
    assert code == obs_diff.EXIT_REGRESSION
    assert "rate dropped" in text
    assert "exceeds the documented bound" in text
    assert "vanished" in text

    text, code = obs_diff.run_diff(str(old_path), str(old_path))
    assert code == 0
