"""Observability layer (repro.obs) and the Rx/ring accounting fixes:
registry semantics, JSONL + report rendering, ring overflow/leak
accounting, Rx trace exhaustion, run/run_for semantics, and the
obs-on == obs-off bit-identical guarantee."""

import json

import pytest

from repro import obs
from repro.compiler import compile_baker
from repro.ixp.chip import IXP2400
from repro.ixp.rings import Ring
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.obs.metrics import NULL, MetricsRegistry, Series
from repro.obs.report import load_records, render
from repro.options import options_for
from repro.profiler.trace import Trace, TracePacket, ipv4_trace
from repro.rts.system import run_on_simulator

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


@pytest.fixture
def clean_obs():
    """Leave the process-global registry exactly as we found it."""
    reg = obs.get_registry()
    was_enabled = reg.enabled
    yield reg
    reg.enabled = was_enabled
    reg.clear()


# -- registry -------------------------------------------------------------------


def test_registry_metric_kinds():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    assert reg.counter("c").value == 5
    reg.gauge("g").set(2.5)
    assert reg.gauge("g").value == 2.5
    with reg.timer("t").time():
        pass
    t = reg.timer("t")
    assert t.count == 1 and t.total_s >= 0.0
    h = reg.histogram("h")
    for v in (1, 5, 3):
        h.observe(v)
    assert (h.count, h.min, h.max) == (3, 1, 5)
    assert h.mean == pytest.approx(3.0)
    s = reg.series("s")
    s.sample(0.0, 1)
    s.sample(10.0, 2)
    assert s.summary()["n"] == 2 and s.summary()["last"] == 2


def test_registry_labels_distinguish_and_scope():
    reg = MetricsRegistry()
    reg.counter("x", cause="a").inc()
    reg.counter("x", cause="b").inc(2)
    assert reg.counter("x", cause="a").value == 1
    assert reg.counter("x", cause="b").value == 2
    with reg.labels(app="l3switch"):
        reg.counter("y").inc()
        with reg.labels(level="SWC"):
            reg.counter("y").inc()
    names = {(m.name, tuple(sorted(m.labels.items()))) for m in reg.metrics()}
    assert ("y", (("app", "l3switch"),)) in names
    assert ("y", (("app", "l3switch"), ("level", "SWC"))) in names


def test_disabled_registry_hands_out_null():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("c")
    assert c is NULL
    c.inc()
    reg.gauge("g").set(1)
    with reg.timer("t").time():
        pass
    reg.histogram("h").observe(1)
    reg.series("s").sample(0, 1)
    assert list(reg.metrics()) == []


def test_series_memory_is_bounded():
    s = Series("s", {}, max_samples=64)
    for i in range(100_000):
        s.sample(float(i), i)
    assert len(s.samples) < 64
    # Thinned but still spanning the whole run.
    assert s.samples[-1][0] > 90_000


def test_jsonl_dump_and_report_render(tmp_path):
    reg = MetricsRegistry()
    with reg.labels(app="l3switch", level="SWC"):
        with reg.timer("compile.stage", stage="frontend").time():
            pass
        reg.gauge("compile.ir.instrs", stage="initial").set(120)
        reg.gauge("compile.ir.instrs", stage="scalar").set(90)
        reg.counter("opt.pac.wide_loads").inc(7)
        reg.gauge("sim.ring.capacity", ring="ring.rx").set(128)
        reg.gauge("sim.ring.drops", ring="ring.rx").set(3)
        reg.gauge("sim.me.utilization", me=0).set(0.5)
    path = reg.dump_jsonl(str(tmp_path / "m.jsonl"))
    recs = load_records(path)
    assert all(json.dumps(r) for r in recs)

    text = render(recs)
    assert "app=l3switch level=SWC" in text
    assert "frontend" in text  # stage timings
    assert "opt.pac.wide_loads" in text  # opt counters
    assert "ring.rx" in text  # ring stats
    assert "Microengines" in text  # per-ME utilization
    # IR delta column.
    assert "-30" in text
    # Label filter selects / rejects.
    assert "frontend" in render(recs, only={"app": "l3switch"})
    assert render(recs, only={"app": "nope"}) == "(no matching records)"


# -- ring accounting ------------------------------------------------------------


def test_ring_overflow_and_watermark_accounting():
    ring = Ring("r", capacity=2)
    assert ring.put(1) and ring.put(2)
    assert not ring.put(3)  # full: rejected and counted
    assert (ring.puts, ring.drops, ring.max_depth) == (2, 1, 2)
    assert ring.get() == 1
    assert ring.get() == 2
    assert ring.get() == 0  # empty: hardware returns 0
    assert (ring.gets, ring.empty_gets) == (2, 1)
    assert ring.max_depth == 2  # watermark survives draining


# -- Rx/Tx engines --------------------------------------------------------------


def _bare_chip(rx_capacity=4, pool=4):
    chip = IXP2400(n_programmable_mes=1)
    meta_free = chip.rings.create("ring.__meta_free", capacity=pool)
    buf_free = chip.rings.create("ring.__buf_free", capacity=pool)
    chip.rings.create("ring.rx", capacity=rx_capacity)
    chip.rings.create("ring.tx", capacity=rx_capacity)
    for i in range(pool):
        meta_free.put(64 + 32 * i)
        buf_free.put(2048 * (i + 1))
    return chip


def _trace(n, size=64):
    return Trace([TracePacket(bytes([i % 251] * size), i % 3)
                  for i in range(n)])


def test_rx_exhaustion_repeat_false():
    chip = _bare_chip(rx_capacity=8, pool=8)
    rx = RxEngine(chip, _trace(3), offered_gbps=1.0, repeat=False)
    delays = [rx.inject_next() for _ in range(5)]
    assert [d is None for d in delays] == [False, False, False, True, True]
    assert rx.sent == 3
    assert len(chip.rings["ring.rx"]) == 3


def test_rx_exhaustion_max_packets_caps_before_selection():
    chip = _bare_chip(rx_capacity=8, pool=8)
    rx = RxEngine(chip, _trace(3), offered_gbps=1.0, repeat=True,
                  max_packets=5)
    while rx.inject_next() is not None:
        pass
    assert rx.sent == 5  # wraps the 3-packet trace, stops at the budget

    # max_packets tighter than the trace, repeat off: budget wins.
    chip = _bare_chip(rx_capacity=8, pool=8)
    rx = RxEngine(chip, _trace(3), offered_gbps=1.0, repeat=False,
                  max_packets=2)
    while rx.inject_next() is not None:
        pass
    assert rx.sent == 2


def test_rx_empty_trace():
    chip = _bare_chip()
    rx = RxEngine(chip, Trace([]), offered_gbps=1.0)
    assert rx.inject_next() is None
    assert rx.sent == 0 and rx.dropped == 0


def test_rx_drop_causes_counted_separately():
    chip = _bare_chip(rx_capacity=2, pool=8)
    rx = RxEngine(chip, _trace(2), offered_gbps=1.0, repeat=True)
    free0 = (len(chip.rings["ring.__meta_free"]),
             len(chip.rings["ring.__buf_free"]))
    for _ in range(2):
        rx.inject_next()
    assert rx.dropped == 0
    # rx ring now full -> ring_full drop, free handles recycled.
    rx.inject_next()
    assert (rx.dropped_freelist, rx.dropped_ring_full) == (0, 1)
    assert (len(chip.rings["ring.__meta_free"]),
            len(chip.rings["ring.__buf_free"])) == (free0[0] - 2, free0[1] - 2)

    # Drain the free lists -> freelist_empty drop (rx ring still full).
    while chip.rings["ring.__meta_free"].get():
        pass
    rx.inject_next()
    assert (rx.dropped_freelist, rx.dropped_ring_full) == (1, 1)
    assert rx.dropped == 2
    assert rx.leaked_meta == 0 and rx.leaked_buffers == 0


def test_rx_recycle_leak_is_detected():
    """Regression: a failed put back onto a free ring must be counted,
    not silently discarded (the pre-fix code ignored put()'s return)."""
    chip = _bare_chip(rx_capacity=0, pool=4)  # every packet drops
    rx = RxEngine(chip, _trace(1), offered_gbps=1.0)
    # Sabotage the meta free ring so the recycle put is rejected.
    chip.rings["ring.__meta_free"].capacity = 0
    rx.inject_next()
    assert rx.dropped_ring_full == 1
    assert rx.leaked_meta == 1
    assert rx.leaked_buffers == 0  # buffer recycle still fit


def test_tx_recycle_leak_is_detected():
    chip = _bare_chip(rx_capacity=4, pool=2)
    meta = 64
    buf = 2048
    chip.memory.write_words("sram", meta, [buf, 0, 8, 0])
    chip.memory.write_bytes("dram", buf, bytes(range(8)))
    chip.rings["ring.tx"].put(meta)
    # Free rings are already full (nothing was popped), so both recycle
    # puts are rejected -> counted as leaks.
    tx = TxEngine(chip)
    tx.poll(0.0)
    assert tx.packets_out() == 1
    assert tx.records[0].payload == bytes(range(8))
    assert (tx.leaked_buffers, tx.leaked_meta) == (1, 1)


# -- chip.run semantics ---------------------------------------------------------


def test_run_is_absolute_and_run_for_is_relative():
    chip = IXP2400(n_programmable_mes=1)
    ticks = []

    def tick():
        ticks.append(chip.now)
        return chip.now + 100.0

    chip.schedule(0.0, tick)
    chip.run(1000.0)
    assert chip.now == 1000.0
    n1 = len(ticks)
    # Absolute deadline already reached: a second run(1000) is a no-op.
    chip.run(1000.0)
    assert chip.now == 1000.0 and len(ticks) == n1
    # Relative budget advances past it.
    chip.run_for(500.0)
    assert chip.now == 1500.0
    assert len(ticks) == n1 + 5


# -- end-to-end smoke -----------------------------------------------------------


def _mini_result():
    from tests.samples import MINI_FORWARDER

    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("O1"), trace)
    return result, trace


def test_obs_enabled_run_is_bit_identical(clean_obs, tmp_path):
    """Attaching the sampler + recording metrics must not perturb the
    simulation: every measured number matches the obs-off run exactly."""
    reg = clean_obs
    reg.enabled = False
    result, trace = _mini_result()
    kwargs = dict(n_mes=2, warmup_packets=30, measure_packets=90)

    off = run_on_simulator(result, trace, **kwargs)

    obs.enable()
    path = str(tmp_path / "metrics.jsonl")
    on = run_on_simulator(result, trace, metrics_jsonl=path, **kwargs)

    assert on.forwarding_gbps == off.forwarding_gbps
    assert on.packets_measured == off.packets_measured
    assert on.packets_out == off.packets_out
    assert on.rx_offered == off.rx_offered
    assert on.rx_dropped == off.rx_dropped
    assert on.sim_cycles == off.sim_cycles
    assert on.me_utilization == off.me_utilization
    assert on.access_profile.row() == off.access_profile.row()
    assert on.rx_dropped_freelist + on.rx_dropped_ring_full == on.rx_dropped

    # The JSONL landed and the report renders the headline sections.
    text = render(load_records(path))
    assert "ring.rx" in text
    assert "Microengines" in text
    assert "Rx/Tx:" in text


def test_timeseries_attached_run_is_bit_identical():
    """Attaching a TimeseriesCollector (the streaming window hook) must
    not perturb the simulation in any observable way: the zero-impact
    proof for the serve/observability stack."""
    from repro.obs.timeseries import TimeseriesCollector

    result, trace = _mini_result()
    kwargs = dict(n_mes=2, warmup_packets=30, measure_packets=90)

    off = run_on_simulator(result, trace, **kwargs)
    collector = TimeseriesCollector(window_cycles=5_000.0)
    on = run_on_simulator(result, trace, timeseries=collector, **kwargs)

    assert on.forwarding_gbps == off.forwarding_gbps
    assert on.packets_measured == off.packets_measured
    assert on.packets_out == off.packets_out
    assert on.rx_offered == off.rx_offered
    assert on.rx_dropped == off.rx_dropped
    assert on.sim_cycles == off.sim_cycles
    assert on.me_utilization == off.me_utilization
    assert on.access_profile.row() == off.access_profile.row()
    assert on.me_executed_instrs == off.me_executed_instrs
    assert on.me_times == off.me_times
    assert on.tx_signature() == off.tx_signature()

    # ... and the collector actually observed the run.
    assert collector.windows
    assert collector.finished_at == on.sim_cycles
    total_tx = sum(w["counters"].get("tx.packets", 0)
                   for w in collector.windows)
    assert total_tx == on.packets_out


def test_report_main_exits_nonzero_on_bad_input(tmp_path, capsys):
    from repro.obs.report import main as report_main

    assert report_main([str(tmp_path / "missing.jsonl")]) == 1
    assert "error:" in capsys.readouterr().err

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert report_main([str(empty)]) == 1
    assert "error:" in capsys.readouterr().err

    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json\n")
    assert report_main([str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_report_unknown_stages_keep_first_seen_order():
    """Stages outside the known pipeline order render after it, in the
    order they first appear in the records -- never alphabetized into
    the middle of the pipeline."""
    recs = [{"type": "timer", "name": "compile.stage",
             "labels": {"stage": stage}, "count": 1, "total_s": 0.001}
            for stage in ("zeta_pass", "alpha_pass", "frontend", "codegen")]
    text = render(recs)
    order = [text.index(s) for s in
             ("frontend", "codegen", "zeta_pass", "alpha_pass")]
    assert order == sorted(order)


def test_compile_telemetry_recorded(clean_obs):
    reg = clean_obs
    obs.enable()
    reg.clear()
    result, _ = _mini_result()
    assert result.images  # compiled fine with obs on
    recs = reg.records()
    stages = {(r.get("labels") or {}).get("stage")
              for r in recs if r["name"] == "compile.stage"}
    assert {"frontend", "lower", "profile", "scalar", "aggregate",
            "verify", "codegen"} <= stages
    ir_instrs = [r for r in recs if r["name"] == "compile.ir.instrs"]
    assert ir_instrs, "IR size gauges missing"
    assert any(r["name"] == "opt.scalar.fn_runs" and r["value"] > 0
               for r in recs)


# -- hot-path attribution and per-pass counters -----------------------------------


def test_profile_hot_lines_attribution():
    """attribute_lines=True charges interpreted instructions to Baker
    source lines; off by default it records nothing (and either way the
    rest of the profile is identical)."""
    from repro.baker import parse_and_check
    from repro.baker.lowering import lower_program
    from repro.profiler.interpreter import run_reference
    from tests.samples import MINI_FORWARDER

    trace = ipv4_trace(40, [0xC0A80101], MACS, seed=3)
    mod_off = lower_program(parse_and_check(MINI_FORWARDER, "mini.bk"))
    off = run_reference(mod_off, trace)
    assert off.profile.hot_lines() == []

    mod_on = lower_program(parse_and_check(MINI_FORWARDER, "mini.bk"))
    on = run_reference(mod_on, trace, attribute_lines=True)
    hot = on.profile.hot_lines(5)
    assert hot, "no lines attributed"
    for src, count in hot:
        fname, _, line = src.rpartition(":")
        assert fname == "mini.bk" and int(line) >= 1 and count > 0
    counts = [c for _, c in hot]
    assert counts == sorted(counts, reverse=True)
    # Attribution observes; it does not perturb the reference run.
    assert on.tx_signature() == off.tx_signature()
    assert on.profile.ppf_instrs == off.profile.ppf_instrs


def test_opt_scalar_changed_counters(clean_obs):
    """Each -O1 scalar pass that changes a function bumps its own
    opt.scalar.changed{passname=...} counter."""
    reg = clean_obs
    obs.enable()
    reg.clear()
    _mini_result()
    changed = {(r["labels"] or {}).get("passname"): r["value"]
               for r in reg.records() if r["name"] == "opt.scalar.changed"}
    assert changed, "no scalar pass reported a change"
    known = {"simplify_cfg", "constprop", "copyprop", "cse", "dce"}
    assert set(changed) <= known
    assert all(v > 0 for v in changed.values())
    # Fresh lowered IR always leaves dead-code/copy cleanup to do.
    assert "dce" in changed or "copyprop" in changed


def test_scalar_fixpoint_exhaustion_is_reported(clean_obs, monkeypatch):
    """A starved fixpoint budget is surfaced via counter + ledger
    warning instead of failing silently."""
    from repro.baker import parse_and_check
    from repro.baker.lowering import lower_program
    from repro.obs import ledger as obs_ledger
    from repro.opt import pipeline
    from tests.samples import MINI_FORWARDER

    reg = clean_obs
    obs.enable()
    reg.clear()
    led = obs_ledger.get_ledger()
    was_enabled, saved = led.enabled, led.decisions
    led.enabled, led.decisions = True, []
    try:
        monkeypatch.setattr(pipeline, "_MAX_ITER", 1)
        mod = lower_program(parse_and_check(MINI_FORWARDER, "mini.bk"))
        for fn in mod.functions.values():
            pipeline.scalar_optimize_function(fn)
        exhausted = [r for r in reg.records()
                     if r["name"] == "opt.scalar.fixpoint_exhausted"]
        assert exhausted and exhausted[0]["value"] > 0
        warnings = [d for d in led.decisions
                    if d.pass_name == "scalar"
                    and d.verdict == "fixpoint_exhausted"]
        assert warnings
        assert warnings[0].evidence["max_iter"] == 1
        assert "still changing" in warnings[0].reason
    finally:
        led.enabled, led.decisions = was_enabled, saved


# -- compile-diff code-size gate lattice edges -----------------------------------


def _size_diff(old_sizes, new_sizes):
    from repro.obs.diff import diff_compile

    def rep(sizes):
        return {"kind": "compile_report", "level": "SWC",
                "decision_counts": {},
                "images": {name: {"code_size": s}
                           for name, s in sizes.items()}}

    return diff_compile(rep(old_sizes), rep(new_sizes), tolerance=0.05,
                        gate=True)


def test_diff_gates_image_appearing_and_vanishing():
    # An image present on only one side is a layout change the gate
    # must flag in *both* directions, not skip as "nothing to compare".
    _lines, regressions = _size_diff({}, {"agg": 500})
    assert any("newly appears" in r for r in regressions)

    _lines, regressions = _size_diff({"agg": 500}, {})
    assert any("vanished" in r for r in regressions)


def test_diff_gates_zero_baseline_both_directions():
    # Growth from a zero baseline has no meaningful ratio; it must be
    # gated outright -- and so must an image collapsing to zero.
    _lines, regressions = _size_diff({"agg": 0}, {"agg": 700})
    assert any("zero baseline" in r for r in regressions)

    _lines, regressions = _size_diff({"agg": 700}, {"agg": 0})
    assert any("fell to zero" in r for r in regressions)


def test_diff_code_size_tolerance_still_applies():
    # The new lattice edges must not break the ordinary ratio gate.
    _lines, regressions = _size_diff({"agg": 1000}, {"agg": 1040})
    assert not regressions  # +4% is inside the 5% tolerance

    _lines, regressions = _size_diff({"agg": 1000}, {"agg": 1100})
    assert any("grew" in r for r in regressions)
