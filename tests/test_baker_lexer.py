"""Unit tests for the Baker lexer."""

import pytest

from repro.baker.errors import LexError
from repro.baker.lexer import tokenize
from repro.baker.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)]


def test_empty_input_yields_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokenKind.EOF


def test_identifiers_and_keywords():
    toks = tokenize("protocol foo ppf bar_baz _x")
    assert [t.kind for t in toks[:-1]] == [
        TokenKind.KW_PROTOCOL,
        TokenKind.IDENT,
        TokenKind.KW_PPF,
        TokenKind.IDENT,
        TokenKind.IDENT,
    ]
    assert toks[1].text == "foo"
    assert toks[3].text == "bar_baz"


def test_decimal_literal():
    tok = tokenize("12345")[0]
    assert tok.kind is TokenKind.INT
    assert tok.value == 12345


def test_hex_literal():
    tok = tokenize("0xDEADbeef")[0]
    assert tok.value == 0xDEADBEEF


def test_binary_literal():
    tok = tokenize("0b1010")[0]
    assert tok.value == 10


def test_octal_literal():
    tok = tokenize("0777")[0]
    assert tok.value == 0o777


def test_zero_literal():
    tok = tokenize("0")[0]
    assert tok.value == 0


def test_underscore_separator_in_literal():
    tok = tokenize("1_000_000")[0]
    assert tok.value == 1000000


def test_invalid_suffix_rejected():
    with pytest.raises(LexError):
        tokenize("123abc")


def test_line_comment_skipped():
    toks = tokenize("a // comment here\nb")
    assert [t.text for t in toks[:-1]] == ["a", "b"]


def test_block_comment_skipped():
    toks = tokenize("a /* multi\nline */ b")
    assert [t.text for t in toks[:-1]] == ["a", "b"]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_multichar_operators_greedy():
    assert kinds("<<= >>= << >> <= >= == != && || ->")[:-1] == [
        TokenKind.SHL_ASSIGN,
        TokenKind.SHR_ASSIGN,
        TokenKind.SHL,
        TokenKind.SHR,
        TokenKind.LE,
        TokenKind.GE,
        TokenKind.EQ,
        TokenKind.NE,
        TokenKind.ANDAND,
        TokenKind.OROR,
        TokenKind.ARROW,
    ]


def test_arrow_vs_minus():
    assert kinds("a->b - c")[:-1] == [
        TokenKind.IDENT,
        TokenKind.ARROW,
        TokenKind.IDENT,
        TokenKind.MINUS,
        TokenKind.IDENT,
    ]


def test_increment_and_compound_assign():
    assert kinds("i++ x += 1")[:-1] == [
        TokenKind.IDENT,
        TokenKind.PLUSPLUS,
        TokenKind.IDENT,
        TokenKind.PLUS_ASSIGN,
        TokenKind.INT,
    ]


def test_string_literal():
    tok = tokenize('"hello\\nworld"')[0]
    assert tok.kind is TokenKind.STRING
    assert tok.value == "hello\nworld"


def test_unterminated_string():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_char_literal():
    tok = tokenize("'A'")[0]
    assert tok.kind is TokenKind.CHAR
    assert tok.value == 65


def test_char_escape():
    tok = tokenize("'\\n'")[0]
    assert tok.value == 10


def test_unexpected_character():
    with pytest.raises(LexError) as exc:
        tokenize("a $ b")
    assert "unexpected character" in str(exc.value)


def test_locations_track_lines():
    toks = tokenize("a\n  b\n    c")
    assert toks[0].loc.line == 1 and toks[0].loc.column == 1
    assert toks[1].loc.line == 2 and toks[1].loc.column == 3
    assert toks[2].loc.line == 3 and toks[2].loc.column == 5


def test_all_single_char_operators():
    text = "( ) { } [ ] ; , : ? . = + - * / % & | ^ ~ ! < >"
    toks = tokenize(text)
    assert toks[-1].kind is TokenKind.EOF
    assert len(toks) == len(text.split()) + 1
