"""Tests for the IXP2400 simulator and the runtime system.

The headline test is the end-to-end differential oracle: at every
cumulative optimization level, the payload multiset transmitted by the
simulated chip must equal the functional interpreter's reference output.
"""

import pytest

from repro.cg import abi, isa
from repro.cg.assemble import MEImage
from repro.compiler import compile_baker
from repro.ixp.cam import CAM
from repro.ixp.chip import IXP2400
from repro.ixp.counters import AccessProfile, Counters
from repro.ixp.memory import DRAM, ME_HZ, MemoryChannel, MemorySystem
from repro.ixp.microengine import Microengine, SimError
from repro.ixp.rings import Ring
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.options import LEVEL_ORDER, options_for
from repro.profiler.trace import ipv4_trace
from repro.rts.loader import load_system
from repro.rts.system import run_on_simulator, verify_against_reference
from tests.samples import MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def trace40(**kw):
    kw.setdefault("arp_fraction", 0.1)
    kw.setdefault("seed", 7)
    return ipv4_trace(40, [0xC0A80101, 0xC0A80202], MACS, **kw)


# -- memory model -----------------------------------------------------------------


def test_channel_occupancy_serializes():
    ch = MemoryChannel("dram", DRAM)
    t1 = ch.request(0.0, 2)
    t2 = ch.request(0.0, 2)
    occupancy = DRAM.occupancy(2)
    assert t1 == pytest.approx(occupancy + DRAM.latency)
    assert t2 == pytest.approx(2 * occupancy + DRAM.latency)


def test_channel_idle_gap():
    ch = MemoryChannel("dram", DRAM)
    ch.request(0.0, 2)
    later = ch.request(10_000.0, 2)
    assert later == pytest.approx(10_000 + DRAM.occupancy(2) + DRAM.latency)


def test_figure6_budget_calibration():
    """The paper's stated budgets: 2 DRAM / 8 SRAM / 64 Scratch accesses
    per 64 B packet must sustain >= 2.5 Gbps (4.88 Mpps)."""
    from repro.ixp.memory import SCRATCH, SRAM

    pps = 2.5e9 / (64 * 8)
    assert 2 * DRAM.occupancy(2) * pps <= ME_HZ
    assert 8 * SRAM.occupancy(1) * pps <= ME_HZ
    assert 64 * SCRATCH.occupancy(1) * pps <= ME_HZ
    # ...but one more DRAM access per packet breaks the budget.
    assert 3 * DRAM.occupancy(2) * pps > ME_HZ


def test_memory_words_roundtrip():
    mem = MemorySystem()
    mem.write_words("sram", 64, [0x11223344, 0xAABBCCDD])
    assert mem.read_words("sram", 64, 2) == [0x11223344, 0xAABBCCDD]
    assert mem.read_bytes("sram", 64, 3) == b"\x11\x22\x33"


def test_memory_byte_masked_write():
    mem = MemorySystem()
    mem.write_words("dram", 2048, [0xFFFFFFFF, 0xFFFFFFFF])
    # Write only bytes 1,2 of word 0 and byte 0 of word 1 (bit k = byte k).
    mask = (1 << 1) | (1 << 2) | (1 << 4)
    mem.write_words("dram", 2048, [0x00000000, 0x00000000], byte_mask=mask)
    assert mem.read_words("dram", 2048, 2) == [0xFF0000FF, 0x00FFFFFF]


def test_memory_bounds_checked():
    mem = MemorySystem()
    with pytest.raises(IndexError):
        mem.read_words("scratch", 10**9, 1)


def test_counters_delta():
    c = Counters()
    c.record("dram", "pkt", 2)
    before = c.snapshot()
    c.record("dram", "pkt", 2)
    c.record("sram", "app", 1)
    delta = Counters.delta(c.snapshot(), before)
    assert delta["accesses"][("dram", "pkt")] == 1
    assert delta["accesses"][("sram", "app")] == 1


def test_access_profile_rows():
    c = Counters()
    for _ in range(10):
        c.record("dram", "pkt", 2)
        c.record("sram", "app", 1)
    profile = AccessProfile.from_counters(
        Counters.delta(c.snapshot(), {"accesses": Counters().accesses,
                                      "words": Counters().words}),
        packets=10,
    )
    assert profile.pkt_dram == 1.0
    assert profile.app_sram == 1.0
    assert profile.total == 2.0


# -- rings / CAM --------------------------------------------------------------------


def test_ring_fifo_and_empty():
    r = Ring("r", capacity=2)
    assert r.get() == 0
    assert r.put(5) and r.put(6)
    assert not r.put(7)  # full
    assert r.drops == 1
    assert r.get() == 5 and r.get() == 6


def test_cam_hit_miss_lru():
    cam = CAM()
    assert cam.lookup(42) & 1 == 0  # miss
    victim = cam.lookup(42) >> 1
    cam.write(victim, 42)
    r = cam.lookup(42)
    assert r & 1 == 1 and (r >> 1) == victim
    # Fill all 16 entries; entry for 42 was most recently used.
    for i in range(16):
        miss = cam.lookup(1000 + i)
        cam.write(miss >> 1, 1000 + i)
    assert cam.lookup(42) & 1 == 0  # evicted eventually


def test_cam_clear():
    cam = CAM()
    cam.write(0, 7)
    cam.clear()
    assert cam.lookup(7) & 1 == 0


# -- microengine on a hand-built image ------------------------------------------------


def _mini_image(insns, entry_label="main"):
    image = MEImage(name="test")
    image.insns = insns
    image.label_index = {entry_label: 0}
    image.entry = 0
    for idx, insn in enumerate(insns):
        if isinstance(insn, (isa.Br, isa.Bal)) and insn.resolved is None:
            insn.resolved = image.label_index.get(insn.target, 0)
    return image


def test_me_executes_alu_and_halts():
    a0, a1, b0 = isa.PReg("a", 0), isa.PReg("a", 1), isa.PReg("b", 0)
    insns = [
        isa.Immed(a0, 20),
        isa.Immed(b0, 22),
        isa.Alu("add", a1, a0, b0),
        isa.Halt(),
    ]
    chip = IXP2400()
    me = Microengine(0, _mini_image(insns), chip, n_threads=1)
    me.run_slice(10_000)
    assert me.threads[0].a[1] == 42
    assert me.threads[0].halted


def test_me_memory_roundtrip_blocks_thread():
    a0, a1 = isa.PReg("a", 0), isa.PReg("a", 1)
    insns = [
        isa.Immed(a0, 0xBEEF),
        isa.Mem("sram", "write", [a0], isa.Imm(256), isa.Imm(0), 1),
        isa.Mem("sram", "read", [a1], isa.Imm(256), isa.Imm(0), 1),
        isa.Halt(),
    ]
    chip = IXP2400()
    me = Microengine(0, _mini_image(insns), chip, n_threads=1)
    while not me.threads[0].halted:
        nxt = me.run_slice(1000)
        if nxt is None:
            break
        me.time = max(me.time, nxt)
    assert me.threads[0].a[1] == 0xBEEF
    assert chip.memory.counters.accesses[("sram", "app")] == 2


def test_me_threads_interleave_on_memory():
    # Two threads each do a memory op; the second runs while the first waits.
    a0 = isa.PReg("a", 0)
    insns = [
        isa.Mem("sram", "read", [a0], isa.Imm(0), isa.Imm(0), 1),
        isa.Halt(),
    ]
    chip = IXP2400()
    me = Microengine(0, _mini_image(insns), chip, n_threads=2)
    while any(not t.halted for t in me.threads):
        nxt = me.run_slice(10_000)
        if nxt is None:
            break
        me.time = max(me.time, nxt)
    assert all(t.halted for t in me.threads)


def test_me_rejects_virtual_register():
    v = isa.VReg()
    insns = [isa.Immed(v, 1), isa.Halt()]
    chip = IXP2400()
    me = Microengine(0, _mini_image(insns), chip, n_threads=1)
    with pytest.raises((SimError, AttributeError)):
        me.run_slice(100)


def test_branch_conditions():
    a0, a1 = isa.PReg("a", 0), isa.PReg("a", 1)
    insns = [
        isa.Immed(a0, 5),
        isa.Cmp(a0, isa.Imm(9)),
        isa.Br("lt_u", "yes"),
        isa.Immed(a1, 0),
        isa.Halt(),
        isa.Immed(a1, 1),  # label 'yes'
        isa.Halt(),
    ]
    image = _mini_image(insns)
    image.label_index["yes"] = 5
    insns[2].resolved = 5
    chip = IXP2400()
    me = Microengine(0, image, chip, n_threads=1)
    me.run_slice(1000)
    assert me.threads[0].a[1] == 1


def test_signed_branch():
    a0, a1 = isa.PReg("a", 0), isa.PReg("a", 1)
    insns = [
        isa.Immed(a0, 0xFFFFFFFF),  # -1 signed
        isa.Cmp(a0, isa.Imm(0)),
        isa.Br("lt_s", "neg"),
        isa.Immed(a1, 0),
        isa.Halt(),
        isa.Immed(a1, 1),
        isa.Halt(),
    ]
    image = _mini_image(insns)
    image.label_index["neg"] = 5
    insns[2].resolved = 5
    chip = IXP2400()
    me = Microengine(0, image, chip, n_threads=1)
    me.run_slice(1000)
    assert me.threads[0].a[1] == 1


# -- system end-to-end ------------------------------------------------------------------


@pytest.mark.parametrize("level", LEVEL_ORDER)
def test_simulator_matches_reference(level):
    trace = trace40()
    result = compile_baker(MINI_FORWARDER, options_for(level), trace)
    assert verify_against_reference(result, trace, packets=40), level


def test_simulator_multi_me_matches_reference():
    trace = trace40(seed=11)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    assert verify_against_reference(result, trace, packets=60, n_mes=4)


def test_forwarding_rate_improves_with_optimization():
    trace = trace40(arp_fraction=0.02)
    base = compile_baker(MINI_FORWARDER, options_for("BASE"), trace)
    best = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    r_base = run_on_simulator(base, trace, n_mes=6, warmup_packets=50,
                              measure_packets=150)
    r_best = run_on_simulator(best, trace, n_mes=6, warmup_packets=50,
                              measure_packets=150)
    assert r_best.forwarding_gbps > 2 * r_base.forwarding_gbps


def test_memory_accesses_drop_with_optimization():
    trace = trace40(arp_fraction=0.02)
    base = compile_baker(MINI_FORWARDER, options_for("BASE"), trace)
    best = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    r_base = run_on_simulator(base, trace, n_mes=2, warmup_packets=50,
                              measure_packets=150)
    r_best = run_on_simulator(best, trace, n_mes=2, warmup_packets=50,
                              measure_packets=150)
    assert r_best.access_profile.total < r_base.access_profile.total / 2
    assert r_best.access_profile.pkt_dram <= 3.0


def test_rate_scales_with_mes_when_optimized():
    trace = trace40(arp_fraction=0.02)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    r1 = run_on_simulator(result, trace, n_mes=1, warmup_packets=50,
                          measure_packets=150)
    r4 = run_on_simulator(result, trace, n_mes=4, warmup_packets=50,
                          measure_packets=150)
    assert r4.forwarding_gbps > 1.4 * r1.forwarding_gbps


def test_offered_load_cap():
    trace = trace40(arp_fraction=0.0)
    result = compile_baker(PASSTHROUGH.replace("fwd", "f"), options_for("SWC"),
                           trace)
    r = run_on_simulator(result, trace, n_mes=6, offered_gbps=1.0,
                         warmup_packets=50, measure_packets=150)
    assert r.forwarding_gbps <= 1.05  # cannot beat the offered load


def test_loader_places_symbols():
    trace = trace40()
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    chip = IXP2400(n_programmable_mes=2)
    layout = load_system(result, chip, n_mes=2)
    assert "mac_addrs" in chip.symbols
    assert chip.symbols["mac_addrs"] >= 64
    assert chip.rings.get("ring.rx") is not None
    assert chip.rings.get("ring.tx") is not None
    assert len(chip.rings["ring.__buf_free"]) > 0
    # Initial values visible in simulated SRAM:
    addr = chip.symbols["mac_addrs"]
    assert chip.memory.read_bytes("sram", addr, 8) == (0x0A0000000001).to_bytes(8, "big")


def test_loader_rejects_too_many_stages():
    from repro.rts.loader import LoaderError

    trace = trace40()
    from repro.cg.codesize import estimate_closure
    from tests.ir_helpers import lower as lower_ir

    mod = lower_ir(MINI_FORWARDER)
    limit = int(
        max(estimate_closure(mod, [fn.name], options_for("BASE"))
            for fn in mod.ppfs()) * 1.2
    )
    result = compile_baker(MINI_FORWARDER,
                           options_for("BASE", me_code_store=limit), trace)
    assert len(result.plan.me_aggregates) >= 2
    chip = IXP2400(n_programmable_mes=1)
    with pytest.raises(LoaderError):
        load_system(result, chip, n_mes=1)


def test_xscale_services_control_packets():
    # ARP packets (cold path) go through the XScale-mapped handler and
    # update the shared counter in simulated memory.
    trace = ipv4_trace(60, [0xC0A80101], MACS, arp_fraction=0.04, seed=13)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    xscale_ppfs = [p for a in result.plan.xscale_aggregates for p in a.ppfs]
    assert "l3_switch.arp_handler" in xscale_ppfs
    chip = IXP2400(n_programmable_mes=2)
    load_system(result, chip, n_mes=2)
    rx = RxEngine(chip, trace, offered_gbps=1.0, max_packets=60, repeat=False)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)
    chip.run(4_000_000)
    assert chip.xscale.serviced > 0
    arp_calls = chip.xscale.profile.ppf_invocations["l3_switch.arp_handler"]
    assert arp_calls > 0
    counter = chip.memory.read_words("sram", chip.symbols["arp_seen"], 1)[0]
    assert counter == arp_calls
