"""Helpers for building IR in tests and compiling samples to IR."""

from repro.baker import parse_and_check
from repro.baker import types as T
from repro.baker.lowering import lower_program
from repro.ir import instructions as I
from repro.ir.module import IRFunction
from repro.ir.values import Const


def lower(src: str):
    """Parse, check and lower Baker source to an IRModule."""
    return lower_program(parse_and_check(src))


def build_diamond():
    """entry -> (left|right) -> join, returning (fn, blocks dict)."""
    fn = IRFunction("diamond", "func", T.U32)
    cond = fn.new_temp(T.BOOL, "c")
    fn.params.append(cond)
    entry = fn.new_block("entry")
    left = fn.new_block("left")
    right = fn.new_block("right")
    join = fn.new_block("join")
    result = fn.new_temp(T.U32, "r")
    entry.terminate(I.Branch(cond, left, right))
    left.append(I.Assign(result, Const(1)))
    left.terminate(I.Jump(join))
    right.append(I.Assign(result, Const(2)))
    right.terminate(I.Jump(join))
    join.terminate(I.Ret(result))
    return fn, {"entry": entry, "left": left, "right": right, "join": join}


def build_loop():
    """entry -> head -> (body -> head | exit)."""
    fn = IRFunction("loop", "func", T.U32)
    n = fn.new_temp(T.U32, "n")
    fn.params.append(n)
    entry = fn.new_block("entry")
    head = fn.new_block("head")
    body = fn.new_block("body")
    exit_bb = fn.new_block("exit")
    i = fn.new_temp(T.U32, "i")
    cond = fn.new_temp(T.BOOL)
    entry.append(I.Assign(i, Const(0)))
    entry.terminate(I.Jump(head))
    head.append(I.Cmp("lt_u", cond, i, n))
    head.terminate(I.Branch(cond, body, exit_bb))
    body.append(I.BinOp("add", i, i, Const(1)))
    body.terminate(I.Jump(head))
    exit_bb.terminate(I.Ret(i))
    return fn, {"entry": entry, "head": head, "body": body, "exit": exit_bb}
