"""Fast-path dispatch equivalence and the event-loop fixes that rode
along with it.

Covers:

* legacy-vs-predecoded bit-identical equivalence on all three example
  apps (Tx signatures, cycle counts, per-ME executed_instrs/times,
  forwarding rate, access profile);
* ``IXP2400.run`` advancing ``now`` to the granted deadline when it
  exits early (repeated ``run_for`` drain loops must not re-grant the
  same window);
* the sampler catching up past *every* elapsed sample mark after a
  sparse event period;
* ``run_slice`` raising ``SimError`` (with thread states) instead of
  busy-spinning when no thread is ready and the next wake is not in the
  future;
* the error path leaving ``time``/``executed_instrs``/``pc`` exactly as
  they were before the failing instruction, in both dispatch cores.
"""

from __future__ import annotations

import math

import pytest

from repro.apps import get_app
from repro.cg import isa
from repro.cg.assemble import MEImage
from repro.compiler import compile_baker
from repro.ixp.chip import IXP2400
from repro.ixp.microengine import Microengine, SimError
from repro.options import options_for
from repro.rts.system import run_on_simulator

APPS = ("l3switch", "firewall", "mpls")
MODES = ("legacy", "fast")


def _mini_image(insns):
    image = MEImage(name="test")
    image.insns = insns
    image.label_index = {"main": 0}
    image.entry = 0
    return image


# -- equivalence ---------------------------------------------------------------------


_compiled = {}


def _compile(app_name):
    if app_name not in _compiled:
        app = get_app(app_name)
        trace = app.make_trace(200, seed=5)
        _compiled[app_name] = (
            compile_baker(app.source, options_for("SWC"), trace), trace)
    return _compiled[app_name]


def _signature(run):
    return (run.tx_signature(), run.sim_cycles,
            tuple(run.me_executed_instrs), tuple(run.me_times),
            tuple(run.me_idle_times),
            run.forwarding_gbps, run.me_utilization,
            run.rx_dropped_freelist, run.rx_dropped_ring_full,
            run.access_profile.row())


@pytest.mark.parametrize("app_name", APPS)
def test_fast_dispatch_bit_identical(app_name):
    result, trace = _compile(app_name)
    runs = {
        mode: run_on_simulator(result, trace, n_mes=4, warmup_packets=50,
                               measure_packets=200, dispatch=mode)
        for mode in MODES
    }
    assert runs["fast"].tx_signature(), "run forwarded no packets"
    # idle_time feeds the stall profiler's exact idle residual, so the
    # two cores must agree on it to the bit, not just on busy time.
    assert runs["legacy"].me_idle_times == runs["fast"].me_idle_times
    assert _signature(runs["legacy"]) == _signature(runs["fast"])


def test_predecode_plan_reused_across_chips():
    # The decode plans capture no chip-owned objects, so a second run
    # (new chip, same symbol placement) must reuse the program instead
    # of rebuilding it.
    result, trace = _compile("l3switch")
    for _ in range(2):
        run_on_simulator(result, trace, n_mes=2, warmup_packets=10,
                         measure_packets=30, dispatch="fast")
    for image in result.images.values():
        assert len(image._decode_plans) == 1


def test_predecode_revalidates_rebound_symbol_same_chip():
    # The per-chip identity fast path must revalidate symbol bindings:
    # a symbol rebound on the *same* chip object between runs used to be
    # served the stale program decoded against the old value.
    reg = isa.PReg("a", 0)
    image = _mini_image([isa.LoadSym(reg, isa.SymRef("g")), isa.Halt()])
    chip = IXP2400()
    chip.symbols["g"] = 100
    me1 = Microengine(0, image, chip, n_threads=1, dispatch="fast")
    me1.run_slice(100)
    assert me1.threads[0].get(reg) == 100

    chip.symbols["g"] = 2000
    me2 = Microengine(0, image, chip, n_threads=1, dispatch="fast")
    me2.run_slice(100)
    assert me2.threads[0].get(reg) == 2000


def test_predecode_revalidates_late_bound_symbol():
    # A symbol that was *missing* at decode time (recorded miss) and is
    # bound later on the same chip must trigger a re-decode, not reuse
    # of the punted plan.
    reg = isa.PReg("a", 0)
    image = _mini_image([isa.LoadSym(reg, isa.SymRef("g")), isa.Halt()])
    chip = IXP2400()
    prog1 = image.predecoded(chip)
    chip.symbols["g"] = 4242
    prog2 = image.predecoded(chip)
    assert prog2 is not prog1
    me = Microengine(0, image, chip, n_threads=1, dispatch="fast")
    me.run_slice(100)
    assert me.threads[0].get(reg) == 4242


def test_fast_dispatch_rejects_virtual_register():
    # Punted instructions defer to the legacy handlers lazily: the error
    # surfaces at execution, exactly like the legacy path.
    insns = [isa.Immed(isa.VReg(), 1), isa.Halt()]
    me = Microengine(0, _mini_image(insns), IXP2400(), n_threads=1,
                     dispatch="fast")
    with pytest.raises((SimError, AttributeError)):
        me.run_slice(100)


# -- IXP2400.run deadline accounting -------------------------------------------------


def test_run_advances_now_to_deadline_with_future_event():
    chip = IXP2400()
    fired = []
    chip.schedule(1000.0, lambda: fired.append(chip.now) and None)
    chip.run(400.0)
    assert chip.now == 400.0 and not fired
    # The window was granted: a second drain must not re-grant it.
    chip.run_for(400.0)
    assert chip.now == 800.0 and not fired
    chip.run_for(400.0)
    assert chip.now == 1200.0 and fired == [1000.0]


def test_run_advances_now_when_heap_drains():
    chip = IXP2400()
    chip.run(250.0)
    assert chip.now == 250.0
    chip.run_for(250.0)
    assert chip.now == 500.0


# -- sampler catch-up ----------------------------------------------------------------


class _GridSampler:
    def __init__(self, interval):
        self.interval = interval
        self.next_t = interval
        self.samples = []

    def sample(self, t):
        self.samples.append(t)
        self.next_t += self.interval


def test_sampler_catches_up_past_all_elapsed_marks():
    chip = IXP2400()
    chip.sampler = _GridSampler(100.0)
    # One lonely event far in the future: every grid mark in between
    # must still be sampled when it finally dispatches.
    chip.schedule(1000.0, lambda: None)
    chip.run(2000.0)
    assert chip.sampler.samples == [100.0 * i for i in range(1, 11)]


# -- stuck-scheduler detection -------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
def test_run_slice_raises_instead_of_spinning(mode):
    me = Microengine(0, _mini_image([isa.Halt()]), IXP2400(), n_threads=2,
                     dispatch=mode)
    for t in me.threads:
        t.wake = math.nan  # never ready, never "in the future"
    with pytest.raises(SimError, match="scheduler stuck") as err:
        me.run_slice(400.0)
    # The message carries every thread's state for debugging.
    assert "t0 pc=" in str(err.value) and "t1 pc=" in str(err.value)


# -- error-path counter integrity ----------------------------------------------------


def _run_until_error(mode):
    a0, a1 = isa.PReg("a", 0), isa.PReg("a", 1)
    insns = [
        isa.Immed(a0, 0xFFFF),         # 1-word immed, way past LM_WORDS
        isa.LmRead(a1, a0, 0),         # dynamic out-of-range index
        isa.Halt(),
    ]
    me = Microengine(0, _mini_image(insns), IXP2400(), n_threads=1,
                     dispatch=mode)
    with pytest.raises(SimError, match="Local Memory index"):
        me.run_slice(10_000.0)
    return me


@pytest.mark.parametrize("mode", MODES)
def test_error_path_preserves_counters(mode):
    me = _run_until_error(mode)
    t = me.threads[0]
    # Only the Immed was dispatched: its cycle is charged, the failing
    # LmRead's is not, and pc still points at the failing instruction.
    assert me.time == 1.0
    assert me.executed_instrs == 1
    assert t.pc == 1
    assert not t.halted


def test_error_path_identical_across_modes():
    legacy, fast = _run_until_error("legacy"), _run_until_error("fast")
    assert (legacy.time, legacy.executed_instrs, legacy.threads[0].pc) == \
           (fast.time, fast.executed_instrs, fast.threads[0].pc)
