"""Tests for scalar optimizations: constprop, copyprop, CSE, DCE, inline.

Every transformation test also checks semantic preservation by running
the functional interpreter before and after optimization (differential
testing against the compiler's own oracle).
"""

import pytest

from repro.ir import instructions as I
from repro.ir.verifier import verify_module
from repro.opt import constprop, copyprop, cse, dce, inline
from repro.opt.pipeline import run_scalar_pipeline, scalar_optimize_function
from repro.options import LEVEL_ORDER, OPT_LEVELS, options_for
from repro.profiler.interpreter import Interpreter, run_reference
from repro.profiler.trace import ipv4_trace
from tests.ir_helpers import lower
from tests.samples import MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def instrs_of(mod, name):
    return list(mod.functions[name].all_instrs())


def count_ops(mod, name, cls):
    return sum(1 for i in instrs_of(mod, name) if isinstance(i, cls))


# -- constant folding / propagation ----------------------------------------------


def test_constprop_folds_arithmetic():
    mod = lower("u32 f() { u32 a = 3; u32 b = a * 4 + 2; return b; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    instrs = list(fn.all_instrs())
    assert len(instrs) == 1
    assert isinstance(instrs[0], I.Ret)
    assert instrs[0].value.value == 14


def test_constprop_preserves_division_by_zero():
    mod = lower("u32 f() { u32 z = 0; return 4 / z; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    assert count_ops(mod, "f", I.BinOp) == 1  # the div survives


def test_constant_branch_folded():
    mod = lower("u32 f() { if (1 < 2) { return 7; } return 9; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    assert len(fn.blocks) == 1
    assert fn.entry.terminator.value.value == 7


def test_algebraic_identities():
    mod = lower("u32 f(u32 x) { return (x + 0) * 1 | 0; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    assert count_ops(mod, "f", I.BinOp) == 0


def test_mul_by_zero():
    mod = lower("u32 f(u32 x) { return x * 0 + 5; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    assert list(fn.all_instrs())[-1].value.value == 5


# -- copy propagation ----------------------------------------------------------------


def test_copyprop_chain_collapses():
    mod = lower("u32 f(u32 x) { u32 a = x; u32 b = a; u32 c = b; return c + 1; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    instrs = list(fn.all_instrs())
    assert len(instrs) == 2  # add + ret
    assert instrs[0].a is fn.params[0]


def test_copyprop_respects_redefinition():
    src = "u32 f(u32 x) { u32 a = x; u32 b = a; a = 99; return b; }" + PASSTHROUGH
    mod = lower(src)
    interp = Interpreter(mod)
    assert interp.call("f", [5]) == 5
    scalar_optimize_function(mod.functions["f"])
    interp2 = Interpreter(mod)
    assert interp2.call("f", [5]) == 5


# -- CSE -----------------------------------------------------------------------------


def test_cse_merges_duplicate_loads():
    src = "u32 tbl[8]; u32 f(u32 i) { return tbl[i] + tbl[i]; }" + PASSTHROUGH
    mod = lower(src)
    assert count_ops(mod, "f", I.LoadG) == 2
    scalar_optimize_function(mod.functions["f"])
    assert count_ops(mod, "f", I.LoadG) == 1


def test_cse_respects_intervening_store():
    src = (
        "u32 tbl[8]; u32 f(u32 i) { u32 a = tbl[i]; tbl[i] = a + 1; u32 b = tbl[i]; return b; }"
        + PASSTHROUGH
    )
    mod = lower(src)
    scalar_optimize_function(mod.functions["f"])
    assert count_ops(mod, "f", I.LoadG) == 2


def test_cse_respects_call_barrier():
    src = (
        "u32 g = 1; void bump() { g = g + 1; } "
        "u32 f() { u32 a = g; bump(); u32 b = g; return a + b; }" + PASSTHROUGH
    )
    mod = lower(src)
    # Disable inlining so the call barrier is exercised.
    for _ in range(3):
        cse.run(mod.functions["f"])
        dce.run(mod.functions["f"])
    assert count_ops(mod, "f", I.LoadG) == 2
    interp = Interpreter(mod)
    assert interp.call("f", []) == 3


def test_cse_commutative_canonicalization():
    src = "u32 f(u32 a, u32 b) { return (a + b) ^ (b + a); }" + PASSTHROUGH
    mod = lower(src)
    scalar_optimize_function(mod.functions["f"])
    # a+b and b+a value-number identically, so xor folds to x^x... which
    # is not folded further (no x^x rule), but only ONE add remains.
    assert count_ops(mod, "f", I.BinOp) <= 2


def test_cse_packet_loads_merge():
    src = PASSTHROUGH.replace(
        "channel_put(tx, ph);",
        "u32 a = ph->type; u32 b = ph->type; ph->meta.rx_port = a + b; channel_put(tx, ph);",
    )
    mod = lower(src)
    fn = mod.functions["fwd.go"]
    assert count_ops(mod, "fwd.go", I.PktLoadField) == 2
    scalar_optimize_function(fn)
    assert count_ops(mod, "fwd.go", I.PktLoadField) == 1


def test_cse_packet_loads_blocked_by_store():
    src = PASSTHROUGH.replace(
        "channel_put(tx, ph);",
        "u32 a = ph->type; ph->type = 5; u32 b = ph->type; "
        "ph->meta.rx_port = a + b; channel_put(tx, ph);",
    )
    mod = lower(src)
    scalar_optimize_function(mod.functions["fwd.go"])
    assert count_ops(mod, "fwd.go", I.PktLoadField) == 2


# -- DCE ---------------------------------------------------------------------------


def test_dce_removes_dead_arithmetic():
    mod = lower("u32 f(u32 x) { u32 dead = x * 17; return x; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    assert count_ops(mod, "f", I.BinOp) == 0


def test_dce_keeps_stores():
    mod = lower("u32 g = 0; void f(u32 x) { g = x; }" + PASSTHROUGH)
    fn = mod.functions["f"]
    scalar_optimize_function(fn)
    assert count_ops(mod, "f", I.StoreG) == 1


def test_dce_removes_unused_load():
    mod = lower("u32 g = 0; void f() { u32 a = g; }" + PASSTHROUGH)
    scalar_optimize_function(mod.functions["f"])
    assert count_ops(mod, "f", I.LoadG) == 0


# -- inlining ----------------------------------------------------------------------


def test_inline_simple_call():
    src = "u32 add1(u32 x) { return x + 1; } u32 f(u32 y) { return add1(y) * 2; }" + PASSTHROUGH
    mod = lower(src)
    inline.run(mod)
    assert count_ops(mod, "f", I.Call) == 0
    scalar_optimize_function(mod.functions["f"])
    interp = Interpreter(mod)
    assert interp.call("f", [20]) == 42


def test_inline_nested_calls():
    src = (
        "u32 a(u32 x) { return x + 1; } u32 b(u32 x) { return a(x) + 2; } "
        "u32 f(u32 x) { return b(x) + 4; }" + PASSTHROUGH
    )
    mod = lower(src)
    inline.run(mod)
    assert count_ops(mod, "f", I.Call) == 0
    interp = Interpreter(mod)
    assert interp.call("f", [0]) == 7


def test_inline_with_control_flow():
    src = (
        "u32 m(u32 a, u32 b) { if (a < b) { return b; } return a; } "
        "u32 f(u32 x) { return m(x, 10) + m(x, 3); }" + PASSTHROUGH
    )
    mod = lower(src)
    inline.run(mod)
    verify_module(mod)
    interp = Interpreter(mod)
    assert interp.call("f", [7]) == 17


def test_inline_void_function():
    src = "u32 g = 0; void bump() { g = g + 1; } u32 f() { bump(); bump(); return g; }" + PASSTHROUGH
    mod = lower(src)
    inline.run(mod)
    assert count_ops(mod, "f", I.Call) == 0
    interp = Interpreter(mod)
    assert interp.call("f", []) == 2


def test_inline_local_arrays_renamed():
    src = (
        "u32 sum3(u32 x) { u32 t[3]; t[0] = x; t[1] = x + 1; t[2] = x + 2; "
        "return t[0] + t[1] + t[2]; } "
        "u32 f(u32 x) { return sum3(x) + sum3(x + 10); }" + PASSTHROUGH
    )
    mod = lower(src)
    inline.run(mod)
    verify_module(mod)
    fn = mod.functions["f"]
    assert len(fn.local_arrays) == 2
    interp = Interpreter(mod)
    assert interp.call("f", [1]) == (1 + 2 + 3) + (11 + 12 + 13)


def test_inline_into_ppf():
    mod = lower(MINI_FORWARDER)
    inline.run(mod)
    assert count_ops(mod, "l3_switch.l3_fwdr", I.Call) == 0
    verify_module(mod)


# -- whole-pipeline differential tests ---------------------------------------------


@pytest.mark.parametrize("level", LEVEL_ORDER[:3])  # BASE, O1, O2
def test_scalar_levels_preserve_semantics(level):
    trace = ipv4_trace(30, [0xC0A80101, 0xC0A80202], MACS, arp_fraction=0.2, seed=4)
    ref_mod = lower(MINI_FORWARDER)
    ref = run_reference(ref_mod, trace)

    opt_mod = lower(MINI_FORWARDER)
    run_scalar_pipeline(opt_mod, OPT_LEVELS[level])
    verify_module(opt_mod)
    got = run_reference(opt_mod, trace)

    assert got.tx_signature() == ref.tx_signature()
    assert got.profile.packets_dropped == ref.profile.packets_dropped


def test_o1_reduces_instruction_count():
    trace = ipv4_trace(30, [0xC0A80101], MACS, seed=5)
    base_mod = lower(MINI_FORWARDER)
    base = run_reference(base_mod, trace)

    o1_mod = lower(MINI_FORWARDER)
    run_scalar_pipeline(o1_mod, OPT_LEVELS["O1"])
    o1 = run_reference(o1_mod, trace)

    base_cost = base.profile.ppf_instrs["l3_switch.l2_clsfr"]
    o1_cost = o1.profile.ppf_instrs["l3_switch.l2_clsfr"]
    assert o1_cost < base_cost


def test_options_levels_cumulative():
    assert not OPT_LEVELS["BASE"].scalar
    assert OPT_LEVELS["O1"].scalar and not OPT_LEVELS["O1"].inline
    assert OPT_LEVELS["PAC"].pac and OPT_LEVELS["PAC"].inline
    assert OPT_LEVELS["SWC"].swc and OPT_LEVELS["SWC"].phr
    assert options_for("pac").pac
    assert options_for("PAC", num_mes=3).num_mes == 3
