"""Coverage for the human-facing tooling: IR printer, LIR/assembly
printer, code-size estimation sanity, and option plumbing."""

import pytest

from repro.baker import types as T
from repro.cg import abi, isa
from repro.cg.asmprint import format_function as format_lir, format_insn
from repro.cg.codesize import estimate_closure, estimate_function
from repro.compiler import compile_baker
from repro.ir import instructions as I
from repro.ir.module import IRFunction
from repro.ir.printer import format_function, format_instr, format_module
from repro.ir.values import Const, Temp
from repro.options import LEVEL_ORDER, options_for
from repro.profiler.trace import ipv4_trace
from tests.ir_helpers import lower
from tests.samples import MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def test_ir_printer_covers_every_instruction():
    t = [Temp(i, T.U32) for i in range(6)]
    ph = Temp(9, T.PacketType("ether"))
    samples = [
        I.Assign(t[0], Const(1)),
        I.BinOp("add", t[0], t[1], Const(2)),
        I.Cmp("lt_u", t[0], t[1], t[2]),
        I.Call(t[0], "f", [t[1]]),
        I.Ret(t[0]),
        I.LoadG(t[0], "g", Const(0), 4),
        I.LoadGWords([t[0], t[1]], "g", Const(0), 2),
        I.StoreG("g", Const(4), t[0], 4),
        I.LoadL(t[0], "arr", Const(0), 4),
        I.StoreL("arr", Const(0), t[0], 4),
        I.PktLoadField(t[0], ph, "ether", "type", 96, 16),
        I.PktStoreField(ph, "ether", "type", 96, 16, t[0]),
        I.PktLoadWords([t[0], t[1]], ph, 0, 2),
        I.PktStoreWords(ph, 0, 1, [t[0]], [0b1111]),
        I.MetaLoad(t[0], ph, "rx_port", 3),
        I.MetaStore(ph, "rx_port", 3, t[0]),
        I.PktEncap(t[0], ph, "ether", 14),
        I.PktDecap(t[0], ph, "ether", "ipv4", 14),
        I.PktCopy(t[0], ph),
        I.PktDrop(ph),
        I.PktCreate(t[0], "ether", 14, Const(50)),
        I.PktLength(t[0], ph),
        I.PktAdjust("add_tail", ph, Const(4)),
        I.PktSyncHead(ph, 14),
        I.ChanPut("tx", ph),
        I.LockAcquire("l"),
        I.LockRelease("l"),
        I.CamLookup(t[0], t[1]),
        I.CamWrite(t[0], t[1]),
        I.CamClear(),
        I.LmLoad(t[0], Const(1)),
        I.LmStore(Const(1), t[0]),
    ]
    for instr in samples:
        text = format_instr(instr)
        assert text and "<" not in text[:1], (type(instr).__name__, text)


def test_ir_printer_annotations():
    ph = Temp(0, T.PacketType("ether"))
    load = I.PktLoadField(Temp(1, T.U16), ph, "ether", "type", 96, 16)
    load.c_offset_bits = 112
    load.c_alignment = 2
    assert "off=112" in format_instr(load)
    assert "align=2" in format_instr(load)


def test_format_module_runs():
    mod = lower(MINI_FORWARDER)
    text = format_module(mod)
    assert "l3_switch.l2_clsfr" in text
    assert "pkt_load" in text


def test_lir_printer_covers_core_insns():
    v = isa.VReg("x")
    samples = [
        isa.Alu("add", v, v, isa.Imm(1)),
        isa.Immed(v, 0x1234),
        isa.LoadSym(v, isa.SymRef("g", 4)),
        isa.Mov(v, isa.Imm(0)),
        isa.Cmp(v, isa.Imm(0)),
        isa.Br("eq", "label"),
        isa.Bal("f", abi.LINK),
        isa.Rtn(abi.LINK),
        isa.Mem("sram", "read", [v], v, isa.Imm(0), 1),
        isa.RingGet(v, isa.SymRef("ring.rx")),
        isa.RingPut(isa.SymRef("ring.tx"), v),
        isa.TestAndSet(v, v),
        isa.AtomicRelease(v),
        isa.LmRead(v, None, 3),
        isa.LmWrite(None, 3, v),
        isa.CamLookup(v, v),
        isa.CamWrite(v, v),
        isa.CamClear(),
        isa.CtxArb(),
        isa.Halt(),
        isa.StackRead(v, 2),
        isa.StackWrite(2, v),
        isa.ThreadStackAddr(v),
    ]
    for insn in samples:
        assert format_insn(insn)


def test_lir_format_function():
    fn = isa.LIRFunction("demo")
    bb = fn.new_block(fn.entry_label)
    bb.emit(isa.Rtn(abi.LINK))
    text = format_lir(fn)
    assert "demo" in text and "rtn" in text


# -- code-size estimation sanity -----------------------------------------------------


@pytest.mark.parametrize("level", ["BASE", "SWC"])
def test_codesize_estimate_within_factor_of_actual(level):
    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=5)
    result = compile_baker(MINI_FORWARDER, options_for(level), trace)
    mod = result.mod
    for agg in result.plan.me_aggregates:
        image = result.images[agg.name]
        estimate = estimate_closure(mod, agg.ppfs, result.opts)
        # The pre-codegen estimate must be the right order of magnitude
        # (it gates merges against the 4096-word store).
        assert estimate / 4 <= image.code_size <= estimate * 4, (
            level, estimate, image.code_size)


def test_estimate_function_counts_packet_ops():
    mod = lower(PASSTHROUGH)
    fn = mod.functions["fwd.go"]
    base = estimate_function(fn, options_for("BASE"))
    opt = estimate_function(fn, options_for("SWC"))
    assert base > 0 and opt > 0


# -- options ---------------------------------------------------------------------------


def test_levels_are_cumulative_flags():
    seen = set()
    for name in LEVEL_ORDER:
        opts = options_for(name)
        flags = {f for f in ("scalar", "inline", "pac", "soar", "phr", "swc")
                 if getattr(opts, f)}
        assert seen <= flags, name  # each level keeps its predecessors' flags
        seen = flags


def test_unknown_level_raises():
    with pytest.raises(KeyError):
        options_for("TURBO")
