"""Tests for the code generator: lowering, register allocation, stack
layout, assembly."""

import pytest

from repro.cg import abi, isa
from repro.cg.assemble import build_image
from repro.cg.lower import CodegenError, LowerContext, lower_function
from repro.cg.melayout import CODE_STORE_WORDS, STACK_WORDS_PER_THREAD
from repro.cg.regalloc import allocate_function, normalize
from repro.cg.stack import layout_frames, resolve_stack_accesses
from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.trace import ipv4_trace
from tests.ir_helpers import lower
from tests.samples import MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def compile_full(level="SWC", src=MINI_FORWARDER, **kw):
    trace = ipv4_trace(30, [0xC0A80101], MACS, arp_fraction=0.1, seed=3)
    return compile_baker(src, options_for(level, **kw), trace)


def lower_one(src, name, level="O2"):
    mod = lower(src)
    ctx = LowerContext(mod, options_for(level))
    return ctx, lower_function(ctx, mod.functions[name])


# -- lowering ---------------------------------------------------------------------


def test_lowering_produces_entry_label():
    _, fn = lower_one("u32 f(u32 a) { return a + 1; }" + PASSTHROUGH, "f")
    assert fn.blocks[0].label == fn.entry_label
    assert any(isinstance(i, isa.Rtn) for i in fn.all_insns())


def test_lowering_u64_pairs():
    _, fn = lower_one("u64 f(u64 a, u64 b) { return a ^ b; }" + PASSTHROUGH, "f")
    xors = [i for i in fn.all_insns() if isinstance(i, isa.Alu) and i.op == "xor"]
    assert len(xors) == 2  # hi and lo halves


def test_lowering_u64_add_emits_carry():
    _, fn = lower_one("u64 f(u64 a, u64 b) { return a + b; }" + PASSTHROUGH, "f")
    adds = [i for i in fn.all_insns() if isinstance(i, isa.Alu) and i.op == "add"]
    assert len(adds) >= 3  # lo, hi, carry


def test_division_rejected_by_codegen():
    with pytest.raises(CodegenError) as exc:
        lower_one("u32 f(u32 a, u32 b) { return a / b; }" + PASSTHROUGH, "f")
    assert "divide" in str(exc.value)


def test_cmp_branch_fusion():
    src = "u32 f(u32 a) { if (a < 10) { return 1; } return 2; }" + PASSTHROUGH
    mod = lower(src)
    from repro.opt.pipeline import scalar_optimize_function

    scalar_optimize_function(mod.functions["f"])
    ctx = LowerContext(mod, options_for("O2"))
    fn = lower_function(ctx, mod.functions["f"])
    # Fused compare+branch: a Cmp followed by a conditional Br, and no
    # 0/1 materialization of the condition.
    insns = list(fn.all_insns())
    cmps = [i for i, x in enumerate(insns) if isinstance(x, isa.Cmp)]
    assert cmps
    assert isinstance(insns[cmps[0] + 1], isa.Br)
    assert insns[cmps[0] + 1].cond == "lt_u"


def test_immed_sizes():
    assert isa.Immed(isa.VReg(), 0x12).size == 1
    assert isa.Immed(isa.VReg(), 0x12345).size == 2


# -- register allocation -----------------------------------------------------------


def _alloc(src, name, level="O2"):
    ctx, fn = lower_one(src, name, level)
    allocate_function(fn)
    return fn


def test_regalloc_no_virtual_registers_left():
    fn = _alloc("u32 f(u32 a, u32 b) { return (a + b) * (a ^ b); }" + PASSTHROUGH, "f")
    for insn in fn.all_insns():
        for r in list(insn.reads()) + list(insn.writes()):
            assert not isinstance(r, isa.VReg), insn


def test_regalloc_bank_constraint_satisfied():
    src = (
        "u32 f(u32 a, u32 b, u32 c) { return (a + b) ^ (b + c) ^ (a + c); }"
        + PASSTHROUGH
    )
    fn = _alloc(src, "f")
    for insn in fn.all_insns():
        if isinstance(insn, (isa.Alu, isa.Cmp)):
            a, b = insn.a, insn.b
            if isinstance(a, isa.PReg) and isinstance(b, isa.PReg) and a != b:
                assert a.bank != b.bank, insn


def test_regalloc_reserved_not_allocated():
    src = "u32 f(u32 a) { return a * 3 + 7; }" + PASSTHROUGH
    fn = _alloc(src, "f")
    for insn in fn.all_insns():
        for r in insn.writes():
            if isinstance(r, isa.PReg) and not isinstance(insn, isa.Mov):
                # fixup/link registers only appear via explicit conventions
                pass  # the set below is the real assertion
    used = {
        r for insn in fn.all_insns() for r in insn.writes() if isinstance(r, isa.PReg)
    }
    assert abi.LINK not in used or any(isinstance(i, isa.Bal) for i in fn.all_insns())


def test_regalloc_spills_under_pressure():
    # 40 simultaneously-live values cannot fit 29 usable registers.
    decls = "".join("u32 v%d = x + %d; " % (i, i) for i in range(40))
    total = " + ".join("v%d" % i for i in range(40))
    src = "u32 f(u32 x) { %s return %s; }" % (decls, total) + PASSTHROUGH
    ctx, fn = lower_one(src, "f", "BASE")
    allocate_function(fn)
    assert fn.frame_slots > 0
    spills = [i for i in fn.all_insns() if isinstance(i, (isa.StackRead, isa.StackWrite))]
    assert spills


def test_normalize_splits_midblock_branches():
    ctx, fn = lower_one(
        "u32 f(u32 a, u32 b) { return a < b ? a : b; }" + PASSTHROUGH, "f"
    )
    normalize(fn)
    for bb in fn.blocks:
        for insn in bb.insns[:-1]:
            assert not isinstance(insn, (isa.Br, isa.Rtn))


def test_call_live_values_homed():
    src = (
        "u32 g(u32 x) { return x + 1; } "
        "u32 f(u32 a, u32 b) { u32 s = a * 3; u32 t = g(b); return s + t; }"
        + PASSTHROUGH
    )
    ctx, fn = lower_one(src, "f", "BASE")  # BASE: no inlining, real call
    allocate_function(fn)
    # 's' lives across the call: it must be written to and read from the frame.
    assert any(isinstance(i, isa.StackWrite) for i in fn.all_insns())
    assert any(isinstance(i, isa.StackRead) for i in fn.all_insns())


# -- stack layout --------------------------------------------------------------------


def _linear_fns(sizes):
    """Chain f0 -> f1 -> ... with given frame sizes."""
    fns = {}
    prev_entry = None
    for i, size in enumerate(reversed(sizes)):
        fn = isa.LIRFunction("f%d" % (len(sizes) - 1 - i))
        bb = fn.new_block(fn.entry_label)
        if prev_entry is not None:
            bb.emit(isa.Bal(prev_entry, abi.LINK))
        bb.emit(isa.Rtn(abi.LINK))
        fn.frame_slots = size
        fns[fn.name] = fn
        prev_entry = fn.entry_label
    return dict(sorted(fns.items()))


def test_stack_frames_stack_up_in_lm():
    fns = _linear_fns([8, 8, 8])
    layout = layout_frames(fns, roots=["f0"], stack_opt=True)
    assert layout.placements["f0"].base_word == 0
    assert layout.placements["f1"].base_word == 8
    assert layout.placements["f2"].base_word == 16
    assert not layout.any_sram_frames


def test_stack_overflow_goes_to_sram():
    fns = _linear_fns([40, 40])
    layout = layout_frames(fns, roots=["f0"], stack_opt=True)
    assert layout.placements["f0"].region == "lm"
    assert layout.placements["f1"].region == "sram"


def test_stack_unoptimized_rounds_to_16():
    fns = _linear_fns([3, 3, 3])
    layout = layout_frames(fns, roots=["f0"], stack_opt=False)
    assert layout.placements["f1"].base_word == 16
    assert layout.placements["f2"].base_word == 32
    # 3 frames x 16 words exactly fills the 48-word thread budget.
    assert not layout.any_sram_frames
    fns4 = _linear_fns([3, 3, 3, 3])
    layout4 = layout_frames(fns4, roots=["f0"], stack_opt=False)
    assert layout4.any_sram_frames  # the 4th frame no longer fits


def test_stack_max_over_callers():
    # h called from both f (frame 4) and g (frame 20): h's base must
    # clear the larger caller.
    f = isa.LIRFunction("f")
    g = isa.LIRFunction("g")
    h = isa.LIRFunction("h")
    for fn, size, callee in ((f, 4, h), (g, 20, h), (h, 4, None)):
        bb = fn.new_block(fn.entry_label)
        if callee is not None:
            bb.emit(isa.Bal(callee.entry_label, abi.LINK))
        bb.emit(isa.Rtn(abi.LINK))
        fn.frame_slots = size
    fns = {"f": f, "g": g, "h": h}
    layout = layout_frames(fns, roots=["f", "g"], stack_opt=True)
    assert layout.placements["h"].base_word == 20


def test_resolve_stack_to_lm_offset_addressing():
    fn = isa.LIRFunction("f")
    bb = fn.new_block(fn.entry_label)
    r = isa.PReg("a", 1)
    bb.emit(isa.StackWrite(2, r))
    bb.emit(isa.StackRead(r, 2))
    bb.emit(isa.Rtn(abi.LINK))
    fn.frame_slots = 4
    layout = layout_frames({"f": fn}, roots=["f"])
    resolve_stack_accesses({"f": fn}, layout)
    kinds = [type(i) for i in fn.all_insns()]
    assert isa.LmWrite in kinds and isa.LmRead in kinds
    lm = [i for i in fn.all_insns() if isinstance(i, (isa.LmRead, isa.LmWrite))]
    assert all(i.thread_rel for i in lm)


# -- assembly -------------------------------------------------------------------------


def test_image_within_code_store():
    result = compile_full("SWC")
    for image in result.images.values():
        assert image.code_size <= CODE_STORE_WORDS
        assert image.insns


def test_image_branches_resolved():
    result = compile_full("SWC")
    for image in result.images.values():
        for insn in image.insns:
            if isinstance(insn, (isa.Br, isa.Bal)):
                assert insn.resolved is not None
                assert 0 <= insn.resolved < len(image.insns)


def test_image_dispatch_first():
    result = compile_full("SWC")
    for image in result.images.values():
        assert image.functions[0] == "__dispatch"
        assert image.entry == image.label_index["__dispatch__entry"]


def test_base_images_contain_helpers():
    result = compile_full("BASE")
    image = next(iter(result.images.values()))
    assert any(name.startswith("__pkt_") for name in image.functions)


def test_o2_images_have_no_helpers():
    result = compile_full("O2")
    image = next(iter(result.images.values()))
    assert not any(name.startswith("__pkt_") for name in image.functions)


def test_code_size_decreases_with_soar():
    pac = compile_full("PAC")
    soar = compile_full("SOAR")
    pac_size = sum(i.code_size for i in pac.images.values())
    soar_size = sum(i.code_size for i in soar.images.values())
    assert soar_size < pac_size
