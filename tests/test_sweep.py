"""The sweep orchestrator's core guarantees.

The headline property is determinism across process counts: a sweep at
``--jobs 1`` must produce bit-identical BENCH_*.json files (rates *and*
Table 1 access counts) to the same sweep at ``--jobs N``. The rest pins
down the on-disk compile cache (miss-then-hit, corruption tolerance),
the bench-file merge fixes (stale ``kind``/``figure`` shadowing,
concurrent writers), metric-record merging, and multi-run metrics
files.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs import diff as obs_diff
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.sweep import (CompileCache, SweepJob, build_jobs, cache_key,
                         merge_bench_json, run_sweep)

APP = "l3switch"
LEVELS = ["BASE", "SWC"]
ME_COUNTS = [1, 2]

# Small steady-state windows keep the grid fast; determinism does not
# depend on window size (the simulator is cycle-deterministic).
WINDOWS = dict(rate_warmup=30, rate_measure=60,
               table1_warmup=30, table1_measure=60)


def _small_jobs():
    return build_jobs([APP], levels=LEVELS, me_counts=ME_COUNTS,
                      table1=True, **WINDOWS)


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()


# -- determinism across process counts (the tentpole guarantee) ------------------


def test_jobs1_vs_jobs2_bit_identical(tmp_path):
    """One process and two processes -- each on a cold cache -- must
    produce byte-identical BENCH output, and the perf-diff gate must
    see zero regression at tolerance 0."""
    out1, out2 = tmp_path / "j1", tmp_path / "j2"
    out1.mkdir(), out2.mkdir()

    sweep1 = run_sweep(_small_jobs(), n_procs=1,
                       cache=CompileCache(str(tmp_path / "cache1")))
    paths1 = sweep1.write_bench_files(str(out1))

    sweep2 = run_sweep(_small_jobs(), n_procs=2,
                       cache=CompileCache(str(tmp_path / "cache2")))
    paths2 = sweep2.write_bench_files(str(out2))

    assert [os.path.basename(p) for p in paths1] == ["BENCH_fig13.json"]
    assert _read(paths1[0]) == _read(paths2[0])

    # Structured views agree too, not just the serialized files.
    assert sweep1.series(APP) == sweep2.series(APP)
    assert sweep1.bench_payloads() == sweep2.bench_payloads()

    # And the CI regression gate sees nothing even at zero tolerance.
    text, code = obs_diff.run_diff(paths1[0], paths2[0], tolerance=0.0)
    assert code == 0, text


def test_sweep_results_ordered_by_job_key(tmp_path):
    """Results come back in sort-key order regardless of submission
    order, which is what makes the merge deterministic."""
    jobs = list(reversed(_small_jobs()))
    sweep = run_sweep(jobs, n_procs=1,
                      cache=CompileCache(str(tmp_path / "cache")))
    keys = [jr.job.sort_key() for jr in sweep.jobs]
    assert keys == sorted(keys)


def test_sweep_merges_worker_metrics(tmp_path):
    """A parallel sweep folds worker metric records into the parent
    registry: compile-cache counters recorded in worker processes must
    be visible here after the sweep."""
    reg = obs_metrics.MetricsRegistry(enabled=True)
    with obs_metrics.scoped_registry(reg):
        run_sweep(_small_jobs(), n_procs=2,
                  cache=CompileCache(str(tmp_path / "cache")))
    recs = [r for r in reg.records() if r["name"] == "sweep.compile_cache"]
    assert recs, "worker cache counters were not merged back"
    by_result = {}
    for r in recs:
        by_result.setdefault(r["labels"]["result"], 0)
        by_result[r["labels"]["result"]] += r["value"]
    # Cold cache: one miss per (app, level) from the warm phase, then
    # every job hits.
    assert by_result.get("miss", 0) == len(LEVELS)
    assert by_result.get("hit", 0) == len(_small_jobs())


# -- the on-disk compile cache ---------------------------------------------------


def test_cache_miss_then_hit_skips_recompilation(tmp_path):
    cache = CompileCache(str(tmp_path / "cache"))
    result1, trace1, hit1 = cache.get_or_compile(APP, "BASE", 50, 5)
    assert hit1 is False and cache.misses == 1

    # A *fresh* cache object (new process, new session) must hit disk.
    cache2 = CompileCache(str(tmp_path / "cache"))
    result2, trace2, hit2 = cache2.get_or_compile(APP, "BASE", 50, 5)
    assert hit2 is True and cache2.hits == 1 and cache2.misses == 0

    # The artifact round-trips: same image count, same packet trace.
    assert len(result2.images) == len(result1.images)
    assert len(trace2.packets) == len(trace1.packets)


def test_cache_key_sensitivity(tmp_path):
    from repro.apps import get_app
    from repro.options import options_for

    app = get_app(APP)
    base = cache_key(app.source, options_for("BASE"), 50, 5)
    assert cache_key(app.source, options_for("BASE"), 50, 5) == base
    assert cache_key(app.source, options_for("SWC"), 50, 5) != base
    assert cache_key(app.source, options_for("BASE"), 51, 5) != base
    assert cache_key(app.source, options_for("BASE"), 50, 6) != base
    assert cache_key(app.source + "\n", options_for("BASE"), 50, 5) != base


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = CompileCache(str(tmp_path / "cache"))
    _res, _trace, hit = cache.get_or_compile(APP, "BASE", 50, 5)
    assert hit is False

    # Truncate every stored artifact, then look up with a fresh cache.
    n_files = 0
    for base, _dirs, files in os.walk(str(tmp_path / "cache")):
        for name in files:
            if name.endswith(".pkl"):
                with open(os.path.join(base, name), "wb") as fh:
                    fh.write(b"not a pickle")
                n_files += 1
    assert n_files == 1

    cache2 = CompileCache(str(tmp_path / "cache"))
    _res, _trace, hit2 = cache2.get_or_compile(APP, "BASE", 50, 5)
    assert hit2 is False, "corrupt artifact must be treated as a miss"

    # ... and the recompile overwrote it, so a third lookup hits.
    cache3 = CompileCache(str(tmp_path / "cache"))
    _res, _trace, hit3 = cache3.get_or_compile(APP, "BASE", 50, 5)
    assert hit3 is True


def test_cache_corrupt_entry_deleted_and_counted(tmp_path):
    """An undecodable artifact is unlinked on first detection and
    counted under the distinct ``result="corrupt"`` label -- not left
    on disk to be re-read and re-discarded by every later run."""
    from repro.apps import get_app
    from repro.options import options_for

    cache = CompileCache(str(tmp_path / "cache"))
    cache.get_or_compile(APP, "BASE", 50, 5)
    key = cache_key(get_app(APP).source, options_for("BASE"), 50, 5)
    path = cache._path(key)
    assert os.path.exists(path)
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")

    # load() alone must delete the dead bytes (get_or_compile would
    # immediately overwrite them with a fresh artifact).
    cache2 = CompileCache(str(tmp_path / "cache"))
    assert cache2.load(key) is None
    assert cache2.last_load_corrupt is True
    assert cache2.corrupt_entries == 1
    assert not os.path.exists(path)

    # Through get_or_compile the lookup is counted as "corrupt", not
    # "miss", and the recompile stores a good artifact again.
    with open(path, "wb") as fh:
        fh.write(b"also not a pickle")
    cache3 = CompileCache(str(tmp_path / "cache"))
    reg = obs_metrics.MetricsRegistry(enabled=True)
    with obs_metrics.scoped_registry(reg):
        _res, _trace, hit = cache3.get_or_compile(APP, "BASE", 50, 5)
    assert hit is False
    assert cache3.corrupt_entries == 1
    assert reg.counter("sweep.compile_cache", app=APP, level="BASE",
                       result="corrupt").value == 1
    assert reg.counter("sweep.compile_cache", app=APP, level="BASE",
                       result="miss").value == 0

    cache4 = CompileCache(str(tmp_path / "cache"))
    _res, _trace, hit4 = cache4.get_or_compile(APP, "BASE", 50, 5)
    assert hit4 is True


def test_cache_disabled_never_touches_disk(tmp_path):
    cache = CompileCache(str(tmp_path / "cache"), enabled=False)
    _res, _trace, hit = cache.get_or_compile(APP, "BASE", 50, 5)
    assert hit is False
    assert not os.path.exists(str(tmp_path / "cache"))
    # The in-process memo still works.
    _res, _trace, hit2 = cache.get_or_compile(APP, "BASE", 50, 5)
    assert hit2 is True


# -- bench-file merge fixes ------------------------------------------------------


def test_merge_bench_json_forces_kind_and_figure(tmp_path):
    path = str(tmp_path / "BENCH_fig13.json")
    # An existing file with stale kind/figure (the historical bug let
    # these shadow the fresh values) plus a key the new payload extends.
    with open(path, "w") as fh:
        json.dump({"kind": "stale", "figure": "wrong",
                   "rates": {"BASE": [0.1]}, "note": "old"}, fh)

    merge_bench_json(path, "fig13", {"app": APP,
                                     "rates": {"SWC": [1.0]}})
    with open(path) as fh:
        data = json.load(fh)
    assert data["kind"] == "bench"
    assert data["figure"] == "fig13"
    # Dict values merge key-wise; untouched keys survive.
    assert data["rates"] == {"BASE": [0.1], "SWC": [1.0]}
    assert data["note"] == "old"
    assert data["app"] == APP


def test_merge_bench_json_rewrites_corrupt_file(tmp_path):
    path = str(tmp_path / "BENCH_fig13.json")
    with open(path, "w") as fh:
        fh.write("{half a json docum")
    merge_bench_json(path, "fig13", {"rates": {"SWC": [1.0]}})
    with open(path) as fh:
        data = json.load(fh)
    assert data == {"kind": "bench", "figure": "fig13",
                    "rates": {"SWC": [1.0]}}


def test_merge_bench_json_concurrent_writers(tmp_path):
    """Concurrent merges must not lose keys (the old read-merge-write
    raced: both read, both write, one side's keys vanish)."""
    path = str(tmp_path / "BENCH_fig13.json")
    n = 16
    errors = []

    def writer(i):
        try:
            merge_bench_json(path, "fig13",
                             {"rates": {"L%02d" % i: [float(i)]}})
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    with open(path) as fh:
        data = json.load(fh)
    assert sorted(data["rates"]) == ["L%02d" % i for i in range(n)]
    assert data["kind"] == "bench" and data["figure"] == "fig13"


# -- metric/ledger record merging ------------------------------------------------


def test_metrics_merge_records_accumulates():
    src = obs_metrics.MetricsRegistry(enabled=True)
    src.counter("c", app=APP).inc(3)
    src.gauge("g").set(7.5)
    t = src.timer("t")
    t.count, t.total_s = 2, 0.5
    src.histogram("h").observe(1.0)
    src.histogram("h").observe(3.0)

    dst = obs_metrics.MetricsRegistry(enabled=True)
    dst.counter("c", app=APP).inc(1)
    dst.merge_records(src.records())
    dst.merge_records(src.records())  # merging twice accumulates

    assert dst.counter("c", app=APP).value == 1 + 3 + 3
    assert dst.gauge("g").value == 7.5
    assert dst.timer("t").count == 4
    assert dst.timer("t").total_s == pytest.approx(1.0)
    assert dst.histogram("h").count == 4

    # extra_labels keep merged scopes disjoint from local ones.
    dst.merge_records(src.records(), run="w1")
    assert dst.counter("c", app=APP, run="w1").value == 3


def test_metrics_merge_records_disabled_is_noop():
    src = obs_metrics.MetricsRegistry(enabled=True)
    src.counter("c").inc()
    dst = obs_metrics.MetricsRegistry(enabled=False)
    dst.merge_records(src.records())
    assert list(dst.metrics()) == []


def test_ledger_merge_records_rebases_seq():
    led = obs_ledger.DecisionLedger(enabled=True)
    led.record("pac", "s0", "accepted", reason="local")
    worker = obs_ledger.DecisionLedger(enabled=True)
    worker.record("sweep.cache", "l3switch/BASE", "miss", key="abc")
    worker.record("sweep.cache", "l3switch/SWC", "hit")

    led.merge_records(worker.records())
    assert [d.seq for d in led.decisions] == [0, 1, 2]
    assert led.decisions[1].subject == "l3switch/BASE"
    assert led.decisions[1].evidence == {"key": "abc"}
    assert led.decisions[2].verdict == "hit"


# -- multi-run metrics files -----------------------------------------------------


def test_dump_jsonl_append_and_split_runs(tmp_path):
    path = str(tmp_path / "metrics.jsonl")
    reg1 = obs_metrics.MetricsRegistry(enabled=True)
    reg1.counter("c").inc()
    reg1.dump_jsonl(path, append=True, header={"run": "first"})
    reg2 = obs_metrics.MetricsRegistry(enabled=True)
    reg2.counter("c").inc(2)
    reg2.dump_jsonl(path, append=True, header={"run": "second"})

    with open(path) as fh:
        records = [json.loads(line) for line in fh]
    assert [r["type"] for r in records] == [
        "run_header", "counter", "run_header", "counter"]

    resolved = obs_report.split_runs(records)
    assert len(resolved) == 2
    assert resolved[0]["labels"]["run"] == "first"
    assert resolved[1]["labels"]["run"] == "second"

    # A single-run file renders exactly as before: no run label.
    single = obs_report.split_runs(records[:2])
    assert single[0].get("labels", {}).get("run") is None

    # Legacy headerless files: records before the first header belong
    # to an implicit "run0".
    legacy = obs_report.split_runs([records[1], records[2], records[3]])
    assert legacy[0]["labels"]["run"] == "run0"
    assert legacy[1]["labels"]["run"] == "second"


def test_build_jobs_shape():
    jobs = _small_jobs()
    rate = [j for j in jobs if j.kind == "rate"]
    table1 = [j for j in jobs if j.kind == "table1"]
    assert len(rate) == len(LEVELS) * len(ME_COUNTS)
    assert len(table1) == len(LEVELS)  # BASE and SWC are Table 1 rows
    assert all(j.n_mes == 2 for j in table1)
    assert isinstance(jobs[0], SweepJob)
