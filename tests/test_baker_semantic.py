"""Unit tests for Baker semantic analysis."""

import pytest

from repro.baker import parse_and_check
from repro.baker import types as T
from repro.baker.errors import SemanticError
from repro.baker.packetmodel import META_USER_BASE
from tests.samples import ETHER_IPV4_PROTOCOLS, MINI_FORWARDER, PASSTHROUGH


def check(src):
    return parse_and_check(src)


def expect_error(src, fragment):
    with pytest.raises(SemanticError) as exc:
        check(src)
    assert fragment in str(exc.value), str(exc.value)


PKT = (
    ETHER_IPV4_PROTOCOLS
    + "module m { ppf p(ether_pkt *ph) from rx { %s channel_put(tx, ph); } }"
)


def ppf_body(body_src):
    return PKT % body_src


# -- protocols ---------------------------------------------------------------


def test_protocol_offsets_assigned():
    cp = check(PASSTHROUGH)
    ether = cp.protocols["ether"]
    assert [f.offset_bits for f in ether.fields] == [0, 48, 96]
    assert ether.min_header_bits == 112


def test_constant_demux_folded():
    cp = check(PASSTHROUGH)
    assert cp.protocols["ether"].demux_const_bytes == 14
    assert cp.protocols["ipv4"].demux_const_bytes is None


def test_missing_demux_rejected():
    expect_error("protocol p { a : 8; }", "demux")


def test_demux_may_only_use_own_fields():
    expect_error(
        "const u32 K = 4; protocol p { a : 8; demux { K }; }",
        "own fields",
    )


def test_field_width_bounds():
    expect_error("protocol p { a : 65; demux { 9 }; }", "1..64")
    expect_error("protocol p { a : 0; demux { 1 }; }", "1..64")


def test_duplicate_protocol_field():
    expect_error("protocol p { a : 8; a : 8; demux { 2 }; }", "duplicate field")


# -- structs / metadata -----------------------------------------------------------


def test_struct_layout_word_granular():
    cp = check("struct s { u8 a; u16 b; u32 c; u64 d; }" + PASSTHROUGH)
    s = cp.structs["s"]
    assert [f.offset_bytes for f in s.fields] == [0, 4, 8, 12]
    assert s.size_bytes() == 20


def test_struct_containing_array():
    cp = check("struct s { u32 vals[4]; u32 tag; }" + PASSTHROUGH)
    s = cp.structs["s"]
    assert s.fields[1].offset_bytes == 16
    assert s.size_bytes() == 20


def test_struct_self_containment_rejected():
    expect_error("struct s { struct s inner; }" + PASSTHROUGH, "contains itself")


def test_metadata_fields_offset_after_builtins():
    cp = check(MINI_FORWARDER)
    assert cp.meta_fields["nexthop_id"].word_offset == META_USER_BASE
    assert cp.meta_fields["rx_port"].builtin is True


def test_metadata_must_be_scalar():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "metadata { u32 a[4]; } module m { ppf p(ether_pkt *ph) from rx { channel_put(tx, ph); } }",
        "scalar",
    )


# -- constants / globals ---------------------------------------------------------


def test_const_evaluated():
    cp = check("const u32 A = 4; const u32 B = A * 2 + 1;" + PASSTHROUGH)
    assert cp.consts["B"].value == 9


def test_global_initializers_folded():
    cp = check("const u32 K = 3; u32 t[4] = { K, K + 1, 2, 0xff };" + PASSTHROUGH)
    assert cp.globals["t"].init_values == [3, 4, 2, 255]


def test_too_many_initializers():
    expect_error("u32 t[2] = { 1, 2, 3 };" + PASSTHROUGH, "too many")


def test_shared_flag_recorded():
    cp = check(MINI_FORWARDER)
    assert cp.globals["arp_seen"].shared is True
    assert cp.globals["mac_addrs"].shared is False


def test_global_type_u64_array():
    cp = check(MINI_FORWARDER)
    g = cp.globals["mac_addrs"]
    assert isinstance(g.type, T.ArrayType)
    assert g.type.element.bits == 64


# -- expression typing ------------------------------------------------------------


def test_packet_field_value_types():
    cp = check(ppf_body("u64 d = ph->dst; u16 t = ph->type;"))
    assert cp is not None


def test_unknown_protocol_field():
    expect_error(ppf_body("u32 x = ph->nope;"), "no field")


def test_meta_access_and_store():
    check(
        ETHER_IPV4_PROTOCOLS
        + "metadata { u32 hop; } module m { ppf p(ether_pkt *ph) from rx "
        "{ ph->meta.hop = 3; u32 v = ph->meta.hop; channel_put(tx, ph); } }"
    )


def test_unknown_meta_field():
    expect_error(ppf_body("u32 x = ph->meta.zzz;"), "metadata field")


def test_raw_handle_field_access_rejected():
    expect_error(
        ppf_body("ipv4_pkt *q = packet_decap(ph); u32 v = packet_length(q); "),
        "no field",
    ) if False else None
    # decap to a typed handle is fine; through raw it is not:
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { ppf p(ether_pkt *ph) from rx { "
        "u32 x = packet_decap(ph)->src; channel_put(tx, ph); } }",
        "raw packet handle",
    )


def test_cond_must_be_scalar():
    expect_error(ppf_body("if (ph) { }"), "scalar")


def test_arith_type_promotion():
    # u64 op u32 -> u64; comparing to u64 literal works.
    check(ppf_body("u64 a = ph->dst; u64 b = a + 1; bool c = b == 0x0a0000000001;"))


def test_assign_type_mismatch():
    expect_error(ppf_body("u32 x = ph;"), "cannot initialize")


def test_array_indexing():
    check("u32 tbl[8];" + ppf_body("u32 v = tbl[ph->type & 7]; tbl[0] = v + 1;"))


def test_index_non_array():
    expect_error(ppf_body("u32 v = ph->type[0];"), "array")


def test_struct_member_access():
    check(
        "struct entry { u32 ip; u32 port; } struct entry table[4];"
        + ppf_body("u32 v = table[1].ip; table[2].port = 9;")
    )


def test_undeclared_identifier():
    expect_error(ppf_body("u32 v = nothere;"), "undeclared")


def test_duplicate_local():
    expect_error(ppf_body("u32 v = 1; u32 v = 2;"), "duplicate local")


def test_block_scoping_allows_shadowing():
    check(ppf_body("u32 v = 1; if (v) { u32 w = v + 1; } u32 w = 2;"))


def test_cast_to_scalar_only():
    check(ppf_body("u64 a = ph->dst; u32 b = (u32) a;"))


def test_sizeof_protocol_and_struct():
    cp = check("struct s { u32 a; u32 b; }" + ppf_body("u32 x = sizeof(ether) + sizeof(s);"))
    assert cp is not None


def test_sizeof_dynamic_protocol_rejected():
    expect_error(ppf_body("u32 x = sizeof(ipv4);"), "packet-dependent")


# -- calls, builtins, channels -----------------------------------------------------


def test_user_function_call_checked():
    check("u32 f(u32 a) { return a + 1; }" + ppf_body("u32 v = f(ph->type);"))


def test_wrong_arity():
    expect_error("u32 f(u32 a) { return a; }" + ppf_body("u32 v = f(1, 2);"), "expects 1")


def test_ppf_direct_call_rejected():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { ppf a(ether_pkt *ph) from rx { b(ph); } "
        "ppf b(ether_pkt *ph) { channel_put(tx, ph); } }",
        "cannot be called directly",
    )


def test_channel_put_outside_ppf_rejected():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { channel c; void f() { } "
        "ppf p(ether_pkt *ph) from rx { channel_put(tx, ph); } "
        "ppf q(ether_pkt *ph) from c { channel_put(tx, ph); } }"
        ,
        "",
    ) if False else None
    src = (
        ETHER_IPV4_PROTOCOLS
        + "module m { void f(ether_pkt *ph) { channel_put(tx, ph); } "
        "ppf p(ether_pkt *ph) from rx { f(ph); channel_put(tx, ph); } }"
    )
    expect_error(src, "inside a PPF")


def test_encap_requires_const_demux():
    expect_error(ppf_body("ipv4_pkt *q = packet_encap(ph, ipv4);"), "constant header size")


def test_encap_unknown_protocol():
    expect_error(ppf_body("ether_pkt *q = packet_encap(ph, nosuch);"), "unknown protocol")


def test_decap_raw_rejected():
    expect_error(
        ppf_body("ipv4_pkt *a = packet_decap(ph); ipv4_pkt *b = packet_decap(a); "
                 "u32 v = b->ttl; "),
        "",
    ) if False else None
    src = ppf_body(
        "ipv4_pkt *a = packet_decap(ph); "
    )
    check(src)  # typed decap is fine


def test_recursion_rejected():
    expect_error(
        "u32 f(u32 x) { return g(x); } u32 g(u32 x) { return f(x); }" + PASSTHROUGH,
        "recursion",
    )


def test_self_recursion_rejected():
    expect_error("u32 f(u32 x) { return f(x); }" + PASSTHROUGH, "recursion")


# -- wiring ------------------------------------------------------------------------


def test_rx_must_have_consumer():
    expect_error(
        ETHER_IPV4_PROTOCOLS + "module m { }",
        "'rx'",
    )


def test_channel_single_consumer():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { channel c; "
        "ppf a(ether_pkt *ph) from rx { channel_put(c, ph); } "
        "ppf b(ether_pkt *ph) from c { channel_put(tx, ph); } "
        "ppf d(ether_pkt *ph) from c { channel_put(tx, ph); } }",
        "already consumed",
    )


def test_channel_without_consumer_rejected():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { channel c; ppf a(ether_pkt *ph) from rx { channel_put(c, ph); } }",
        "no consumer",
    )


def test_producers_recorded():
    cp = check(MINI_FORWARDER)
    chan = cp.channels["l3_switch.l3_forward_cc"]
    assert chan.producers == ["l3_switch.l2_clsfr"]
    assert chan.consumer == "l3_switch.l3_fwdr"


def test_channel_type_mismatch_rejected():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { channel c; "
        "ppf a(ether_pkt *ph) from rx { ipv4_pkt *q = packet_decap(ph); channel_put(c, q); } "
        "ppf b(ether_pkt *ph) from c { channel_put(tx, ph); } }",
        "expects",
    )


def test_consume_tx_rejected():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { ppf a(ether_pkt *ph) from rx, tx { channel_put(tx, ph); } }",
        "'tx'",
    )


def test_put_to_rx_rejected():
    expect_error(
        ETHER_IPV4_PROTOCOLS
        + "module m { ppf a(ether_pkt *ph) from rx { channel_put(rx, ph); } }",
        "'rx'",
    )


def test_cross_module_channel():
    src = (
        ETHER_IPV4_PROTOCOLS
        + "module a { channel out; ppf p(ether_pkt *ph) from rx { channel_put(out, ph); } } "
        + "module b { ppf q(ether_pkt *ph) from a.out { channel_put(tx, ph); } }"
    )
    cp = check(src)
    assert cp.channels["a.out"].consumer == "b.q"


def test_locks_collected():
    cp = check(MINI_FORWARDER)
    assert cp.locks == ["arp_lock"]


def test_nested_critical_rejected():
    expect_error(
        ppf_body("critical (a) { critical (b) { } }"),
        "may not nest",
    )


def test_break_outside_loop():
    expect_error(ppf_body("break;"), "outside a loop")


def test_module_qualified_global():
    src = (
        ETHER_IPV4_PROTOCOLS
        + "module a { u32 counter = 0; ppf p(ether_pkt *ph) from rx { channel_put(tx, ph); } } "
        + "module b { u32 f() { return a.counter; } }"
    )
    cp = check(src)
    assert "a.counter" in cp.globals
