"""Seeded-mutation suite: the translation validator must catch a
deliberately miscompiled image from each optimization family.

Each optimizer exposes a test-only ``_TEST_MUTATION`` hook that breaks
exactly one rewrite site:

* PAC ``extract_skew`` -- absorbed field extractions read 8 bits past
  their true offset within the combined wide load;
* PHR ``rebase_skew`` -- deferred-head re-basing shifts word accesses
  one word past the true pending delta;
* SWC ``wrong_slot`` -- the cache hit path reads one LM word past the
  slot the miss path filled.

For every mutant, ``repro.analyze``'s validate pass (reference
interpretation of the unoptimized IR vs. replay of the compiled image
on the simulator) must report error-severity divergences; with the
hook cleared, the same compile must validate clean. The mutated
(app, level) pairs are chosen so the broken site is actually exercised
by the app (asserted via each pass's own result counters).
"""

from __future__ import annotations

import pytest

import repro.opt.pac as pac
import repro.opt.phr as phr
import repro.opt.swc as swc
from repro.analyze import run_analysis
from repro.apps import get_app
from repro.compiler import compile_baker
from repro.options import options_for

PACKETS, SEED, ROOTS = (120, 5, 16)

# (module, mutation, app, level, "did the pass fire" check)
MUTANTS = [
    (pac, "extract_skew", "l3switch", "PAC",
     lambda r: r.pac_result.combined_loads > 0),
    (phr, "rebase_skew", "mpls", "PHR",
     lambda r: r.phr_result.elided_encaps > 0),
    (swc, "wrong_slot", "l3switch", "SWC",
     lambda r: r.swc_result.rewritten_loads > 0),
]

IDS = ["pac-extract_skew", "phr-rebase_skew", "swc-wrong_slot"]


def _analyze(app_name, level):
    app = get_app(app_name)
    trace = app.make_trace(PACKETS, seed=SEED)
    result = compile_baker(app.source, options_for(level), trace)
    report = run_analysis(app_name, level, passes=["validate"],
                          packets=PACKETS, seed=SEED,
                          validate_packets=ROOTS,
                          result=result, trace=trace)
    return result, report


@pytest.mark.parametrize("module,mutation,app_name,level,fired", MUTANTS,
                         ids=IDS)
def test_mutant_is_caught(module, mutation, app_name, level, fired):
    assert module._TEST_MUTATION is None, "hook leaked from another test"
    module._TEST_MUTATION = mutation
    try:
        result, report = _analyze(app_name, level)
    finally:
        module._TEST_MUTATION = None
    assert fired(result), (
        "%s mutant never exercised on %s/%s -- the detection claim "
        "would be vacuous" % (mutation, app_name, level))
    assert report["ok"] is False, (
        "validator missed the %s miscompile" % mutation)
    assert report["errors_total"] > 0
    details = [f for payload in report["passes"].values()
               for f in payload["findings"] if f["severity"] == "error"]
    assert any("diverge" in f["detail"] for f in details)


@pytest.mark.parametrize("module,mutation,app_name,level,fired", MUTANTS,
                         ids=IDS)
def test_unmutated_compile_validates_clean(module, mutation, app_name,
                                           level, fired):
    # Same app, same level, hook cleared: zero findings. (The full
    # app x level matrix is covered by tests/test_analyze.py; this
    # pins the exact configurations the mutants run under.)
    assert module._TEST_MUTATION is None
    result, report = _analyze(app_name, level)
    assert fired(result)
    assert report["ok"] is True
    assert report["errors_total"] == 0
