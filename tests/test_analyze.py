"""The ME-image analyzer (repro.analyze): pass framework semantics,
report byte-determinism, and clean translation validation of every
app at every optimization level.

The validator's sensitivity (it must *fail* on miscompiles) is proven
separately by tests/test_analyze_mutations.py; this file proves the
other direction -- no false positives on correct compiles -- plus the
framework plumbing the passes hang off.
"""

from __future__ import annotations

import json

import pytest

from repro.analyze import (
    AnalysisError,
    registered_passes,
    resolve_passes,
    run_analysis,
)
from repro.analyze.core import report_text
from repro.apps import get_app
from repro.compiler import compile_baker
from repro.options import LEVEL_ORDER, options_for

APPS = ("l3switch", "firewall", "mpls")

# Small but representative windows: the full app x level matrix runs in
# seconds, and every divergence class the mutation suite plants is
# already visible within the first handful of trace roots.
PACKETS, SEED, ROOTS = (120, 5, 12)

_compiled = {}


def _compile(app_name, level):
    key = (app_name, level)
    if key not in _compiled:
        app = get_app(app_name)
        trace = app.make_trace(PACKETS, seed=SEED)
        _compiled[key] = (
            compile_baker(app.source, options_for(level), trace), trace)
    return _compiled[key]


def _analyze(app_name, level, passes=None):
    result, trace = _compile(app_name, level)
    return run_analysis(app_name, level, passes=passes, packets=PACKETS,
                        seed=SEED, validate_packets=ROOTS,
                        result=result, trace=trace)


# -- pass framework -------------------------------------------------------------


def test_stock_passes_registered():
    names = [p.name for p in registered_passes()]
    assert names == ["images", "layout", "bounds", "budget", "validate"]


def test_resolve_passes_pulls_dependencies():
    # Asking only for a downstream pass schedules its requirements
    # first, in registration order.
    names = [p.name for p in resolve_passes(["validate"])]
    assert names == ["images", "validate"]
    names = [p.name for p in resolve_passes(["budget", "layout"])]
    assert names.index("images") < names.index("budget")
    assert names.index("images") < names.index("layout")


def test_resolve_passes_rejects_unknown():
    with pytest.raises(AnalysisError):
        resolve_passes(["no_such_pass"])


def test_resolve_defaults_to_all_passes():
    assert [p.name for p in resolve_passes()] == \
        [p.name for p in registered_passes()]


# -- report determinism ---------------------------------------------------------


def test_report_byte_deterministic_same_artifact():
    a = _analyze("mpls", "SWC")
    b = _analyze("mpls", "SWC")
    assert report_text(a) == report_text(b)


def test_report_byte_deterministic_fresh_compile():
    # Two independent compiles of the same source at the same level
    # must analyze to the same bytes (the compiler itself is
    # deterministic, and the analyzer adds no timestamps or ids).
    baseline = report_text(_analyze("firewall", "SWC"))
    app = get_app("firewall")
    trace = app.make_trace(PACKETS, seed=SEED)
    result = compile_baker(app.source, options_for("SWC"), trace)
    again = run_analysis("firewall", "SWC", packets=PACKETS, seed=SEED,
                         validate_packets=ROOTS, result=result, trace=trace)
    assert report_text(again) == baseline


def test_report_is_valid_sorted_json():
    text = report_text(_analyze("mpls", "BASE"))
    assert text.endswith("\n")
    report = json.loads(text)
    assert report["kind"] == "analyze_report"
    assert text == json.dumps(report, indent=2, sort_keys=True) + "\n"


# -- the full matrix validates clean --------------------------------------------


@pytest.mark.parametrize("app_name", APPS)
@pytest.mark.parametrize("level", LEVEL_ORDER)
def test_matrix_validates_clean(app_name, level):
    """Every app at every O-level: all five passes, zero error
    findings. This is the no-false-positives half of the translation
    validator's contract."""
    report = _analyze(app_name, level)
    errors = [f for payload in report["passes"].values()
              for f in payload["findings"] if f["severity"] == "error"]
    assert errors == [], "unexpected error findings: %r" % errors[:3]
    assert report["ok"] is True
    assert report["errors_total"] == 0


# -- individual pass structure --------------------------------------------------


def test_images_pass_inventories_every_aggregate():
    report = _analyze("l3switch", "SWC", passes=["images"])
    payload = report["passes"]["images"]
    result, _trace = _compile("l3switch", "SWC")
    assert sorted(result.images) == sorted(payload["images"])
    for row in payload["images"].values():
        assert row["n_insns"] > 0
        assert row["code_size"] > 0
        assert row["inputs"], "an ME image with no input rings is dead"


def test_bounds_pass_reports_paths():
    report = _analyze("mpls", "SWC", passes=["bounds"])
    payload = report["passes"]["bounds"]
    for name, row in payload["images"].items():
        assert row["paths"], "no entry paths bounded for %s" % name
        for path in row["paths"]:
            assert path["cycles_bound"] > 0


def test_budget_pass_rederives_code_size():
    report = _analyze("firewall", "SWC", passes=["budget"])
    payload = report["passes"]["budget"]
    result, _trace = _compile("firewall", "SWC")
    for name, row in payload["images"].items():
        assert row["derived_code_size"] == result.images[name].code_size


def test_validate_pass_replays_roots():
    report = _analyze("mpls", "SWC", passes=["validate"])
    payload = report["passes"]["validate"]
    for row in payload["images"].values():
        assert row["roots_checked"] > 0
        assert row["effects_checked"] > 0
        assert row["divergent_roots"] == 0
        assert row["replay_timeouts"] == 0


# -- CLI ------------------------------------------------------------------------


def test_cli_list_and_report(tmp_path, capsys):
    from repro.analyze.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "validate" in out and "bounds" in out

    out_path = tmp_path / "report.json"
    code = main(["mpls", "-O", "BASE", "--packets", "60",
                 "--validate-packets", "6", "-o", str(out_path)])
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["ok"] is True
    capsys.readouterr()


def test_cli_level_aliases(capsys):
    from repro.analyze.__main__ import main

    code = main(["firewall", "-O3", "--pass", "images",
                 "--packets", "40"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["level"] == "SWC"
    with pytest.raises(SystemExit):
        main(["firewall", "-O", "nonsense"])
    capsys.readouterr()
