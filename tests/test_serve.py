"""Live-churn service harness (repro.serve): churn spec parsing,
deterministic streaming traffic, byte-reproducible runs, SWC
delayed-coherency visibility, the bench_churn diff gate, and the CLI."""

import json

import pytest

from repro.obs.diff import EXIT_REGRESSION, run_diff
from repro.obs.timeseries import load_timeseries
from repro.serve import (
    ChurnSpec,
    ServeConfig,
    TrafficModel,
    TrafficSpec,
    build_app,
    build_mutations,
    parse_churn_spec,
    run_service,
)
from repro.serve.traffic import IMIX_SIZES

# -- churn specs -----------------------------------------------------------------


def test_parse_churn_spec_full_and_defaults():
    s = parse_churn_spec("route-flap:n=6,start=8,every=3")
    assert (s.kind, s.count, s.start, s.every) == ("route-flap", 6, 8, 3)
    assert s.to_string() == "route-flap:n=6,start=8,every=3"
    d = parse_churn_spec("fw-toggle")
    assert (d.kind, d.count, d.start, d.every) == ("fw-toggle", 4, 4, 4)


def test_parse_churn_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_churn_spec("bgp-flap:n=1")
    with pytest.raises(ValueError):
        parse_churn_spec("route-flap:bogus=1")
    with pytest.raises(ValueError):
        parse_churn_spec("route-flap:n=0")


def test_build_mutations_checks_app_kind():
    app = build_app("l3switch")
    with pytest.raises(ValueError):
        build_mutations("l3switch", app, ChurnSpec("fw-toggle"), seed=0)


def test_mutation_helpers_are_deterministic_and_sound():
    from repro.apps.tables import (
        firewall_rule_mutations,
        mpls_label_mutations,
        route_flap_mutations,
    )

    l3 = build_app("l3switch")
    a = route_flap_mutations(build_app("l3switch").routes, 3, seed=5)
    b = route_flap_mutations(build_app("l3switch").routes, 3, seed=5)
    assert [m.describe() for m in a] == [m.describe() for m in b]
    for m in a:
        # New MACs come from the reserved 0x0D... probe range so the
        # retired MAC can never reappear legitimately.
        assert m.new_value >> 40 == 0x0D
        assert m.probe["stale_dst_mac"] != m.new_value
    assert l3.routes.nexthops  # untouched instance

    fw = build_app("firewall")
    muts = firewall_rule_mutations(fw.config, 2, seed=1)
    assert all(m.target == "fw_rules" for m in muts)
    assert all(m.old_value != m.new_value for m in muts)

    mp = build_app("mpls")
    muts = mpls_label_mutations(mp.config, 2, seed=1)
    assert muts, "16-label config must expose relabel candidates"
    for m in muts:
        assert m.target == "ilm"
        assert m.probe["stale_mpls_label"] != m.probe["new_mpls_label"]


# -- streaming traffic -----------------------------------------------------------


def test_traffic_model_is_deterministic_and_imix_sized():
    app = build_app("l3switch")
    m1 = TrafficModel(app, TrafficSpec(seed=9))
    m2 = TrafficModel(app, TrafficSpec(seed=9))
    stream1 = [m1.next_packet() for _ in range(2000)]
    stream2 = [m2.next_packet() for _ in range(2000)]
    assert [(p.data, pace) for p, pace in stream1] == \
        [(p.data, pace) for p, pace in stream2]
    sizes = {len(p.data) for p, _ in stream1}
    # Padded frames hit the IMIX grid; sub-64 app frames are padded up.
    assert sizes <= set(IMIX_SIZES) | {s for s in sizes if s < max(IMIX_SIZES)}
    assert max(sizes) == 1500  # the 1500 B class shows up in 2000 draws
    paces = {pace for _, pace in stream1}
    assert 1.0 in paces and 0.25 in paces  # bursts triggered


def test_traffic_model_zipf_head_dominates():
    app = build_app("l3switch")
    m = TrafficModel(app, TrafficSpec(seed=9, imix=False, burst_gap=0))
    counts = {}
    for _ in range(2000):
        p, _ = m.next_packet()
        counts[p.data] = counts.get(p.data, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    # Top decile of flows carries well over half the traffic.
    assert sum(ranked[: max(1, len(ranked) // 10)]) > 0.4 * 2000


# -- service runs ----------------------------------------------------------------


SMOKE = dict(windows=12, window_cycles=20_000.0)


@pytest.fixture(scope="module")
def flap_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    cfg = ServeConfig(app="l3switch",
                      churn=[parse_churn_spec("route-flap:n=2,start=3,every=3")],
                      **SMOKE)
    bench = str(tmp / "BENCH_churn.json")
    timeline = str(tmp / "timeline.jsonl")
    res = run_service(cfg, timeline_path=timeline, bench_path=bench)
    return cfg, res, bench, timeline


def test_serve_applies_churn_and_annotates_windows(flap_run):
    cfg, res, _, _ = flap_run
    assert len(res.applied) == 2
    for t_apply, mut in res.applied:
        idx = res.collector.window_index(t_apply)
        w = res.collector.windows[idx]
        assert any(e["kind"] == "update" and e["t"] == round(t_apply, 3)
                   for e in w["events"]), \
            "update at t=%g missing from window %d" % (t_apply, idx)
        assert w["counters"].get("updates{kind=route-flap}", 0) >= 1
    # Updates land mid-window at the scheduled boundaries.
    assert res.applied[0][0] == 3.5 * cfg.window_cycles
    assert res.applied[1][0] == 6.5 * cfg.window_cycles


def test_serve_swc_delayed_coherency_is_visible(flap_run):
    """The SWC §5.2 effect: nh_mac is ME-cached under delayed-update
    coherency, so frames carrying the *retired* next-hop MAC keep
    transmitting after the control-plane store until the MEs' periodic
    flag check flushes their CAM."""
    _, res, _, _ = flap_run
    assert all(mut.target == "nh_mac" for _, mut in res.applied)
    assert sum(res.stale_tx) > 0
    assert res.bench["summary"]["stale_tx_total"] == sum(res.stale_tx)
    per_update = {u["t"]: u["stale_tx"] for u in res.bench["updates"]}
    assert len(per_update) == 2
    assert sum(per_update.values()) == sum(res.stale_tx)


def test_serve_bench_schema_and_timeline(flap_run):
    cfg, res, bench_path, timeline_path = flap_run
    with open(bench_path) as fh:
        bench = json.load(fh)
    assert bench["kind"] == "bench_churn"
    assert bench["figure"] == "churn"
    assert bench["app"] == "l3switch"
    assert len(bench["timeline"]["rate_gbps"]) == cfg.windows
    assert len(bench["timeline"]["p99"]) == cfg.windows
    assert bench["summary"]["updates_applied"] == 2
    assert bench["summary"]["mean_rate_gbps"] > 0

    header, windows = load_timeseries(timeline_path)
    assert header["app"] == "l3switch"
    assert len(windows) == cfg.windows
    assert windows[-1].get("partial") is None  # ended on a boundary


def test_serve_is_byte_reproducible(flap_run, tmp_path):
    """Acceptance: the same configuration reproduces BENCH_churn.json
    AND the rendered timeline report byte for byte."""
    from repro.obs.report import render_timeline

    cfg, _, bench_path, timeline_path = flap_run
    cfg2 = ServeConfig(app=cfg.app, churn=list(cfg.churn),
                       windows=cfg.windows, window_cycles=cfg.window_cycles)
    bench2 = str(tmp_path / "BENCH_churn.json")
    timeline2 = str(tmp_path / "timeline.jsonl")
    run_service(cfg2, timeline_path=timeline2, bench_path=bench2)

    assert open(bench_path, "rb").read() == open(bench2, "rb").read()
    assert open(timeline_path, "rb").read() == open(timeline2, "rb").read()
    assert render_timeline(*load_timeseries(timeline_path)) == \
        render_timeline(*load_timeseries(timeline2))


def test_churn_diff_self_gates_clean_and_catches_regressions(flap_run,
                                                             tmp_path):
    _, _, bench_path, _ = flap_run
    text, code = run_diff(bench_path, bench_path)
    assert code == 0
    assert "no regressions" in text

    with open(bench_path) as fh:
        worse = json.load(fh)
    worse["summary"]["mean_rate_gbps"] *= 0.5
    worse["summary"]["latency"] = dict(worse["summary"]["latency"])
    worse["summary"]["latency"]["p99"] *= 2
    worse["summary"]["updates_applied"] += 1
    bad = str(tmp_path / "worse.json")
    with open(bad, "w") as fh:
        json.dump(worse, fh)
    text, code = run_diff(bench_path, bad)
    assert code == EXIT_REGRESSION
    assert "mean rate dropped" in text
    assert "p99 latency grew" in text
    assert "updates applied changed" in text


def test_serve_rejects_churn_past_horizon():
    cfg = ServeConfig(app="l3switch",
                      churn=[parse_churn_spec("route-flap:n=9,start=3,every=3")],
                      **SMOKE)
    with pytest.raises(ValueError, match="past the run"):
        run_service(cfg)


def test_serve_cli_smoke(tmp_path, capsys):
    from repro.serve.__main__ import main

    bench = str(tmp_path / "b.json")
    timeline = str(tmp_path / "t.jsonl")
    rc = main(["--app", "l3switch", "--windows", "8",
               "--window-cycles", "20000",
               "--churn", "route-flap:n=1,start=3",
               "--out", bench, "--timeline", timeline, "--report"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "served l3switch/SWC" in out
    assert "updates applied=1" in out
    assert "Update impact" in out
    assert json.load(open(bench))["kind"] == "bench_churn"


def test_serve_cli_rejects_bad_spec(capsys):
    from repro.serve.__main__ import main

    with pytest.raises(SystemExit):
        main(["--app", "l3switch", "--churn", "nope:n=1"])
