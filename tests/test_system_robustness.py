"""System-level robustness and edge-case tests: overload behavior,
delayed-update staleness on the real simulator, degenerate inputs,
failure injection."""

import pytest

from repro.apps import get_app
from repro.compiler import compile_baker
from repro.ixp.chip import IXP2400
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.options import options_for
from repro.profiler.trace import Trace, TracePacket, build_ethernet, ipv4_trace
from repro.rts.loader import load_system
from repro.rts.system import run_on_simulator
from tests.samples import ETHER_IPV4_PROTOCOLS, MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def test_overload_drops_at_rx_not_deadlock():
    """A slow (BASE) build under full offered load sheds packets at the
    rx ring and keeps forwarding at its own rate."""
    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("BASE"), trace)
    run = run_on_simulator(result, trace, n_mes=1, offered_gbps=3.0,
                           warmup_packets=40, measure_packets=150)
    assert run.rx_dropped > 0
    assert 0 < run.forwarding_gbps < 1.5
    assert run.packets_measured > 0


def test_underload_forwards_everything():
    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    run = run_on_simulator(result, trace, n_mes=4, offered_gbps=0.5,
                           warmup_packets=40, measure_packets=150)
    assert run.rx_dropped == 0
    assert run.forwarding_gbps == pytest.approx(0.5, rel=0.1)


def test_swc_staleness_on_simulator():
    """Control-plane table update becomes visible on the data path only
    after the periodic coherency check -- on the simulated chip, with
    real CAM/Local Memory and multiple threads."""
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
u32 tbl[4] = { 7, 7, 7, 7 };
module m {
  ppf p(ether_pkt *ph) from rx {
    // Stamp the cached value into the frame so Tx can observe it.
    ph->type = tbl[0] & 0xffff;
    channel_put(tx, ph);
  }
}
"""
    )
    trace = ipv4_trace(40, [1], MACS)
    result = compile_baker(src, options_for("SWC", swc_check_period=8), trace)
    assert "tbl" in result.swc_result.cached_names()

    chip = IXP2400(n_programmable_mes=1)
    load_system(result, chip, n_mes=1)
    rx = RxEngine(chip, trace, offered_gbps=1.0)
    tx = TxEngine(chip)
    outs = tx.records  # ethertype field of each transmitted frame
    chip.attach_traffic(rx, tx)
    # Warm the cache, then update the table + raise the flag "from the
    # control plane".
    chip.run(60_000, stop=lambda: tx.packets_out() >= 6)
    chip.memory.write_words("sram", chip.symbols["tbl"], [99])
    chip.memory.write_words("scratch", chip.symbols["tbl.__swc_flag"], [1])
    chip.run(2_000_000, stop=lambda: tx.packets_out() >= 40)
    values = [int.from_bytes(r.payload[12:14], "big") for r in outs]
    assert 7 in values, "expected some pre-update values"
    assert values[-1] == 99, "cache must eventually pick up the update"
    assert values == sorted(values, key=lambda v: v == 99), "7s then 99s"


def test_compile_with_empty_trace_degrades_gracefully():
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), Trace([]))
    # No profile data: nothing cached, but the build still succeeds and
    # produces loadable images.
    assert result.images
    assert result.swc_result.cached_names() == []


def test_non_ip_unknown_frames_hit_error_path():
    app = get_app("l3switch")
    # Frames to an unknown station MAC: bridge misses -> err path (XScale).
    frames = [TracePacket(build_ethernet(0x0BADBEEF0000 + i, 0x02, 0x9999, b""), i % 3)
              for i in range(30)]
    trace = Trace(frames)
    result = compile_baker(app.source, options_for("SWC"),
                           app.make_trace(100, seed=5))
    chip = IXP2400(n_programmable_mes=2)
    load_system(result, chip, n_mes=2)
    rx = RxEngine(chip, trace, offered_gbps=1.0, max_packets=30, repeat=False)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)
    chip.run(6_000_000)
    errs = chip.memory.read_words("sram", chip.symbols["err_drops"], 1)[0]
    assert errs == 30
    assert tx.packets_out() == 0


def test_locks_serialize_cross_me_counter():
    """The shared counter behind a critical section must not lose updates
    even with 2 MEs x 8 threads hammering it."""
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
shared u32 counter = 0;
module m {
  ppf p(ether_pkt *ph) from rx {
    critical (c) {
      counter = counter + 1;
    }
    channel_put(tx, ph);
  }
}
"""
    )
    trace = ipv4_trace(80, [1], MACS)
    result = compile_baker(src, options_for("O2"), trace)
    chip = IXP2400(n_programmable_mes=2)
    load_system(result, chip, n_mes=2)
    rx = RxEngine(chip, trace, offered_gbps=3.0, max_packets=80, repeat=False)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)
    chip.run(8_000_000, stop=lambda: tx.packets_out() >= 80)
    assert tx.packets_out() == 80
    counter = chip.memory.read_words("sram", chip.symbols["counter"], 1)[0]
    assert counter == 80


def test_me_utilization_reported():
    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    run = run_on_simulator(result, trace, n_mes=2, warmup_packets=40,
                           measure_packets=120)
    assert 0.0 < run.me_utilization <= 1.0


def test_packet_create_and_drop_recycle_pool():
    """ARP replies allocate packets on the XScale; buffers must recycle
    (pool does not leak over time)."""
    app = get_app("l3switch")
    trace = app.make_trace(200, seed=13, arp_fraction=0.3)
    result = compile_baker(app.source, options_for("SWC"),
                           app.make_trace(100, seed=5))
    chip = IXP2400(n_programmable_mes=2)
    load_system(result, chip, n_mes=2)
    free0 = len(chip.rings["ring.__buf_free"])
    rx = RxEngine(chip, trace, offered_gbps=1.0, max_packets=200, repeat=False)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)
    chip.run(30_000_000, stop=lambda: rx.sent >= 200)
    chip.run_for(1_000_000)  # drain
    free1 = len(chip.rings["ring.__buf_free"])
    # Everything in flight has drained; the pool is back to (near) full.
    assert free1 >= free0 - 4
