"""Property-based and randomized tests over core invariants.

Covers: the shared arithmetic semantics, PAC's bit-exact extraction on
random protocol layouts, the ME-simulated 64-bit expansion, the trie
against the LPM oracle on random tables, the CAM against a model, and
the greedy ME assignment against brute force.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.throughput import assign_mes, stage_throughput
from repro.ir.eval import EvalError, eval_binop, eval_cmp, to_signed
from repro.ixp.cam import CAM
from repro.ixp.rings import Ring


# -- shared arithmetic semantics ---------------------------------------------------


BINOPS_TOTAL = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]


@settings(max_examples=150)
@given(
    op=st.sampled_from(BINOPS_TOTAL),
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    b=st.integers(min_value=0, max_value=(1 << 64) - 1),
    bits=st.sampled_from([32, 64]),
)
def test_eval_binop_reference(op, a, b, bits):
    mask = (1 << bits) - 1
    a &= mask
    b &= mask
    got = eval_binop(op, a, b, bits)
    sh = b & (bits - 1)
    expected = {
        "add": (a + b) & mask,
        "sub": (a - b) & mask,
        "mul": (a * b) & mask,
        "and": a & b,
        "or": a | b,
        "xor": a ^ b,
        "shl": (a << sh) & mask,
        "lshr": a >> sh,
        "ashr": (to_signed(a, bits) >> sh) & mask,
    }[op]
    assert got == expected
    assert 0 <= got <= mask


@settings(max_examples=100)
@given(
    a=st.integers(min_value=0, max_value=(1 << 32) - 1),
    b=st.integers(min_value=1, max_value=(1 << 32) - 1),
)
def test_eval_div_matches_c_semantics(a, b):
    # Unsigned: floor division. Signed: truncation toward zero.
    assert eval_binop("div_u", a, b, 32) == a // b
    assert eval_binop("rem_u", a, b, 32) == a % b
    sa, sb = to_signed(a, 32), to_signed(b, 32)
    q = eval_binop("div_s", a, b, 32)
    r = eval_binop("rem_s", a, b, 32)
    expect_q = abs(sa) // abs(sb) * (1 if (sa < 0) == (sb < 0) else -1)
    expect_r = abs(sa) % abs(sb) * (1 if sa >= 0 else -1)
    assert to_signed(q, 32) == expect_q
    assert to_signed(r, 32) == expect_r
    # C identity: a == q*b + r (mod 2^32).
    assert (eval_binop("mul", q, b, 32) + r) & 0xFFFFFFFF == a


def test_eval_division_by_zero_raises():
    for op in ("div_u", "rem_u", "div_s", "rem_s"):
        with pytest.raises(EvalError):
            eval_binop(op, 1, 0, 32)


@settings(max_examples=100)
@given(
    a=st.integers(min_value=0, max_value=(1 << 32) - 1),
    b=st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_eval_cmp_total_order(a, b):
    assert eval_cmp("eq", a, b, 32) == int(a == b)
    assert eval_cmp("lt_u", a, b, 32) + eval_cmp("ge_u", a, b, 32) == 1
    assert eval_cmp("lt_s", a, b, 32) == int(to_signed(a, 32) < to_signed(b, 32))


# -- PAC: bit-exact extraction on random protocol layouts ----------------------------


def _random_protocol_source(rng):
    """A protocol with random field widths summing to <= 36 bytes, plus a
    PPF that reads every field (xor-folded into metadata) and rewrites
    the byte-aligned ones."""
    widths = []
    total = 0
    while total < 200 and len(widths) < 9:
        w = rng.choice([4, 8, 12, 16, 24, 32, 48, 64])
        if total + w > 280:
            break
        widths.append(w)
        total += w
    if total % 8:
        widths.append(8 - (total % 8))
    fields = "\n".join("  f%d : %d;" % (i, w) for i, w in enumerate(widths))
    reads = []
    for i, w in enumerate(widths):
        if w > 32:
            reads.append("acc = acc ^ (u32) ph->f%d;" % i)
            reads.append("acc = acc ^ (u32) (ph->f%d >> 32);" % i)
        else:
            reads.append("acc = acc ^ ph->f%d;" % i)
    stores = []
    bit = 0
    for i, w in enumerate(widths):
        if bit % 8 == 0 and w % 8 == 0 and w <= 32:
            stores.append("ph->f%d = acc + %d;" % (i, i))
        bit += w
    src = """
protocol p {
%s
  demux { %d };
}
metadata { u32 acc; }
module m {
  ppf go(p_pkt *ph) from rx {
    u32 acc = 0;
    %s
    %s
    ph->meta.acc = acc;
    channel_put(tx, ph);
  }
}
""" % (fields, sum(widths) // 8, "\n    ".join(reads), "\n    ".join(stores))
    return src


@pytest.mark.parametrize("seed", range(8))
def test_pac_random_layout_bit_exact(seed):
    from repro.baker import parse_and_check
    from repro.baker.lowering import lower_program
    from repro.opt import pac, soar
    from repro.opt.pipeline import scalar_optimize_function
    from repro.profiler.interpreter import run_reference
    from repro.profiler.trace import Trace, TracePacket

    rng = random.Random(seed + 100)
    src = _random_protocol_source(rng)
    data = bytes(rng.randrange(256) for _ in range(64))
    trace = Trace([TracePacket(data, 0)])

    ref = run_reference(lower_program(parse_and_check(src)), trace)

    mod = lower_program(parse_and_check(src))
    for fn in mod.functions.values():
        scalar_optimize_function(fn)
    pac.run(mod)
    soar.run(mod)
    got = run_reference(mod, trace)
    assert got.tx_payloads() == ref.tx_payloads(), src
    assert [p.meta.get(4) for p in got.tx] == [p.meta.get(4) for p in ref.tx]


# -- 64-bit operations through the full code generator -------------------------------


U64_OP_SOURCES = {
    "add": "u64 r = a + b;",
    "xor": "u64 r = a ^ b;",
    "and": "u64 r = a & b;",
    "or": "u64 r = a | b;",
    "shl": "u64 r = a << 24;",
    "lshr": "u64 r = a >> 24;",
    "sub": "u64 r = a - b;",
}


@pytest.mark.parametrize("op", sorted(U64_OP_SOURCES))
def test_u64_ops_on_simulator(op):
    """Embed two u64 operands in packet fields, compute on the simulated
    ME (register-pair expansion), and read the result from metadata."""
    from repro.compiler import compile_baker
    from repro.options import options_for
    from repro.profiler.trace import Trace, TracePacket
    from repro.rts.system import verify_against_reference

    src = """
protocol p { a : 64; b : 64; demux { 16 }; }
metadata { u32 lo; u32 hi; }
module m {
  ppf go(p_pkt *ph) from rx {
    u64 a = ph->a;
    u64 b = ph->b;
    %s
    ph->meta.lo = (u32) r;
    ph->meta.hi = (u32) (r >> 32);
    channel_put(tx, ph);
  }
}
""" % U64_OP_SOURCES[op]
    rng = random.Random(hash(op) & 0xFFFF)
    packets = []
    for _ in range(4):
        a = rng.getrandbits(64)
        b = rng.getrandbits(64)
        packets.append(TracePacket(a.to_bytes(8, "big") + b.to_bytes(8, "big")
                                   + bytes(48), 0))
    trace = Trace(packets)
    result = compile_baker(src, options_for("O2"), trace)
    assert verify_against_reference(result, trace, packets=4), op


# -- trie vs LPM oracle on random tables ----------------------------------------------


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_trie_random_tables_match_oracle(seed):
    from repro.apps.l3switch import L3SwitchApp
    from repro.baker import parse_and_check
    from repro.baker.lowering import lower_program
    from repro.profiler.interpreter import Interpreter

    app = L3SwitchApp(n_routes=48, seed=seed)
    mod = lower_program(parse_and_check(app.source))
    interp = Interpreter(mod)
    interp.run_inits()

    def trie_lookup(addr):
        e = interp.globals.load("trie16", (addr >> 16) * 4, 4)
        if e & 0x40000000:
            e = interp.globals.load(
                "trie8", (((e & 0xFFFF) << 8) + ((addr >> 8) & 0xFF)) * 4, 4)
        return e & 0xFFFF if e & 0x80000000 else 0

    rng = random.Random(seed)
    addrs = app.routes.addresses_in(120, seed=seed + 1)
    addrs += [rng.getrandbits(32) for _ in range(60)]  # random misses too
    for addr in addrs:
        assert trie_lookup(addr) == app.routes.lookup(addr), hex(addr)


# -- CAM against a model ---------------------------------------------------------------


@settings(max_examples=60)
@given(keys=st.lists(st.integers(min_value=0, max_value=23), min_size=1,
                     max_size=120))
def test_cam_against_lru_model(keys):
    cam = CAM()
    model = {}  # key -> True (present), with LRU order list
    order = []
    for key in keys:
        r = cam.lookup(key)
        hit = r & 1
        entry = r >> 1
        assert hit == int(key in model)
        if hit:
            assert model[key] == entry
            order.remove(key)
            order.append(key)
        else:
            cam.write(entry, key)
            # The victim entry loses whatever key it held.
            for k, e in list(model.items()):
                if e == entry:
                    del model[k]
                    order.remove(k)
            model[key] = entry
            order.append(key)
        assert len(model) <= 16


def test_ring_fifo_property():
    rng = random.Random(7)
    ring = Ring("r", capacity=16)
    model = []
    for _ in range(500):
        if rng.random() < 0.5:
            v = rng.randrange(1, 1 << 32)
            ok = ring.put(v)
            if len(model) < 16:
                assert ok
                model.append(v)
            else:
                assert not ok
        else:
            got = ring.get()
            expect = model.pop(0) if model else 0
            assert got == expect


# -- greedy ME assignment is max-min optimal -------------------------------------------


@settings(max_examples=60)
@given(
    costs=st.lists(st.integers(min_value=50, max_value=900), min_size=1,
                   max_size=3),
    n_mes=st.integers(min_value=1, max_value=6),
)
def test_assign_mes_optimal_for_small_cases(costs, n_mes):
    costs = [float(c) for c in costs]
    if n_mes < len(costs):
        assert assign_mes(costs, n_mes) == [0] * len(costs)
        return
    greedy = assign_mes(costs, n_mes)
    assert sum(greedy) == n_mes and all(m >= 1 for m in greedy)
    greedy_value = min(stage_throughput(c, m) for c, m in zip(costs, greedy))

    best = 0.0
    for combo in itertools.product(range(1, n_mes + 1), repeat=len(costs)):
        if sum(combo) != n_mes:
            continue
        value = min(stage_throughput(c, m) for c, m in zip(costs, combo))
        best = max(best, value)
    assert greedy_value == pytest.approx(best)


# -- CAM MRU-on-miss gives distinct victims to concurrent missing threads --------------


def test_cam_concurrent_miss_victims_distinct():
    cam = CAM()
    victims = [cam.lookup(1000 + i) >> 1 for i in range(8)]
    assert len(set(victims)) == 8
