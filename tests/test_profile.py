"""Stall-cycle attribution profiler (repro.obs.profile).

The two load-bearing guarantees:

* **zero impact** -- a profiled run is bit-identical to an unprofiled
  one (Tx bytes, rates, cycle counts, per-ME accounting), in both
  dispatch cores;
* **sums to total** -- every thread's attribution (exec + waits + idle)
  recovers that ME's total simulated cycles exactly under the payload's
  3-decimal rounding.

Plus: legacy and fast dispatch produce *identical* profiler snapshots,
the sweep's BENCH_occupancy.json is byte-reproducible and diffable, the
obs.diff unknown-kind / occupancy gates fire, the bottleneck report
renders, timeline windows carry occ.* deltas, and the Perfetto export
grows profile counter tracks.
"""

from __future__ import annotations

import json

import pytest

from repro.compiler import compile_baker
from repro.obs import diff as obs_diff
from repro.obs.profile import (
    CATEGORIES,
    WAIT_CATEGORIES,
    StallProfiler,
    aggregate_attribution,
    attribution_shares,
    bottleneck_verdict,
    channel_utilization,
    occupancy_cell,
)
from repro.options import options_for
from repro.profiler.trace import ipv4_trace
from repro.rts.system import run_on_simulator

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]
MODES = ("legacy", "fast")


def _mini_result():
    from tests.samples import MINI_FORWARDER

    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("O1"), trace)
    return result, trace


_RUN = dict(n_mes=2, warmup_packets=30, measure_packets=90)


def _run_signature(run):
    return (run.tx_signature(), run.sim_cycles, run.forwarding_gbps,
            run.packets_measured, run.rx_offered, run.rx_dropped,
            run.me_utilization, tuple(run.me_executed_instrs),
            tuple(run.me_times), tuple(run.me_idle_times),
            run.access_profile.row())


# -- zero impact ----------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
def test_profiled_run_is_bit_identical(mode):
    result, trace = _mini_result()
    off = run_on_simulator(result, trace, dispatch=mode, **_RUN)
    on = run_on_simulator(result, trace, dispatch=mode,
                          profiler=StallProfiler(), **_RUN)
    assert on.occupancy is not None and off.occupancy is None
    assert _run_signature(on) == _run_signature(off)


def test_profiler_snapshot_identical_across_dispatch_modes():
    """Both dispatch cores drive the same hooks at the same simulated
    times: the whole snapshot (attribution, channel queueing, ring
    stats) must match to the bit, not just the measured run."""
    result, trace = _mini_result()
    snaps = {}
    for mode in MODES:
        run = run_on_simulator(result, trace, dispatch=mode,
                               profiler=StallProfiler(), **_RUN)
        snaps[mode] = run.occupancy
    assert snaps["legacy"] == snaps["fast"]


# -- the sums-to-total invariant ------------------------------------------------


def _profiled_run():
    result, trace = _mini_result()
    return run_on_simulator(result, trace, profiler=StallProfiler(), **_RUN)


def test_attribution_sums_to_total_cycles():
    snap = _profiled_run().occupancy
    assert snap["mes"], "no MEs profiled"
    for me in snap["mes"]:
        assert me["threads"], "ME %d has no thread records" % me["me"]
        for rec in me["threads"]:
            spent = rec["exec"] + sum(rec[c] for c in WAIT_CATEGORIES)
            assert round(spent + rec["idle"], 3) == rec["total"], rec
            # idle is a residual but must never mask over-attribution.
            assert rec["idle"] >= -0.001, rec
            assert rec["total"] == me["time"]
    agg = aggregate_attribution(snap)
    assert agg["total"] == round(
        sum(r["total"] for me in snap["mes"] for r in me["threads"]), 3)
    assert round(sum(agg[c] for c in CATEGORIES), 2) == round(
        agg["total"], 2)
    shares = attribution_shares(agg)
    assert round(sum(shares.values()), 3) == pytest.approx(1.0, abs=0.002)


def test_snapshot_channels_and_rings_populated():
    snap = _profiled_run().occupancy
    assert set(snap["channels"]) == {"scratch", "sram0", "sram1", "dram"}
    total_requests = sum(ch["requests"] for ch in snap["channels"].values())
    assert total_requests > 0
    for ch in snap["channels"].values():
        assert ch["queue_wait_cycles"] >= 0.0
        assert ch["max_queue_wait"] >= ch["mean_queue_wait"] >= 0.0
    assert any(r["gets"] > 0 for r in snap["rings"].values())
    util = channel_utilization(snap)
    assert set(util) == {"scratch", "sram", "dram"}
    assert all(u >= 0.0 for u in util.values())


def test_verdict_and_cell_shape():
    run = _profiled_run()
    snap = run.occupancy
    verdict = bottleneck_verdict(snap)
    assert verdict["kind"] in ("memory-bound", "input-starved",
                               "compute-bound", "latency-bound")
    assert verdict["dominant_wait"] in WAIT_CATEGORIES
    assert verdict["text"]
    cell = occupancy_cell("mini", "O1", 2, run.forwarding_gbps, snap)
    assert cell["verdict"]["text"].startswith("mini @2ME: ")
    assert set(cell["shares"]) == set(CATEGORIES)
    assert len(cell["threads"]) == sum(len(m["threads"])
                                       for m in snap["mes"])
    # JSON round-trips losslessly (the BENCH payload contract).
    assert json.loads(json.dumps(cell)) == cell


# -- optional time sampling -----------------------------------------------------


def test_time_samples_on_grid_and_zero_impact():
    result, trace = _mini_result()
    off = run_on_simulator(result, trace, **_RUN)
    prof = StallProfiler(sample_cycles=5_000.0)
    on = run_on_simulator(result, trace, profiler=prof, **_RUN)
    assert _run_signature(on) == _run_signature(off)
    assert prof.samples, "no time samples recorded"
    marks = [s["t"] for s in prof.samples]
    assert marks == [5_000.0 * (i + 1) for i in range(len(marks))]
    assert on.occupancy["samples"] == prof.samples
    for s in prof.samples:
        assert len(s["me_busy"]) == _RUN["n_mes"]
        assert set(s["queue"]) == {"scratch", "sram0", "sram1", "dram"}


def test_export_profile_counter_tracks():
    from repro.obs.export import PROFILE_PID, chrome_trace_from_events

    result, trace = _mini_result()
    prof = StallProfiler(sample_cycles=5_000.0)
    run_on_simulator(result, trace, profiler=prof, **_RUN)
    doc = chrome_trace_from_events([], profile=prof.samples)
    counters = [e for e in doc["traceEvents"]
                if e.get("ph") == "C" and e["pid"] == PROFILE_PID]
    names = {e["name"] for e in counters}
    assert names == {"me_occupancy", "mem_queue_backlog"}
    occ = [e for e in counters if e["name"] == "me_occupancy"]
    assert occ and all(set(e["args"]) == {"me0", "me1"} for e in occ)
    # Busy fractions over an interval are physical: within [0, 1].
    for e in occ:
        for v in e["args"].values():
            assert -1e-9 <= v <= 1.0 + 1e-9


# -- timeseries integration -----------------------------------------------------


def test_timeline_windows_carry_occupancy_deltas():
    from repro.obs.timeseries import TimeseriesCollector

    result, trace = _mini_result()
    off = run_on_simulator(result, trace,
                           timeseries=TimeseriesCollector(5_000.0), **_RUN)
    collector = TimeseriesCollector(5_000.0)
    prof = StallProfiler()
    on = run_on_simulator(result, trace, timeseries=collector,
                          profiler=prof, **_RUN)
    assert _run_signature(on) == _run_signature(off)
    names = {name for w in collector.windows
             for name in (w.get("counters") or {})}
    assert any(n.startswith("occ.exec") for n in names), names
    assert any(n.startswith("occ.mem_busy") for n in names), names
    # Window deltas of exec cycles reconcile with the final attribution
    # (both are rounded per window, so compare loosely).
    total_exec = sum(v for w in collector.windows
                     for n, v in (w.get("counters") or {}).items()
                     if n.startswith("occ.exec"))
    agg = aggregate_attribution(on.occupancy)
    assert total_exec == pytest.approx(agg["exec"], rel=0.05)


# -- sweep + diff + report surfacing --------------------------------------------


def _occupancy_sweep(tmp_path, tag):
    from repro.sweep import CompileCache, build_jobs, run_sweep
    from repro.sweep.orchestrator import WorkerConfig

    out = tmp_path / tag
    out.mkdir()
    jobs = build_jobs(["l3switch"], levels=["SWC"], me_counts=[2],
                      table1=False, rate_warmup=30, rate_measure=60)
    cache = CompileCache(str(tmp_path / ("cache_" + tag)))
    cfg = WorkerConfig(cache_dir=cache.cache_dir, use_cache=True,
                       profile=True)
    sweep = run_sweep(jobs, n_procs=1, cache=cache, cfg=cfg)
    paths = sweep.write_bench_files(str(out))
    return sweep, paths


def test_sweep_profile_emits_reproducible_occupancy_bench(tmp_path):
    sweep1, paths1 = _occupancy_sweep(tmp_path, "a")
    sweep2, paths2 = _occupancy_sweep(tmp_path, "b")
    occ1 = [p for p in paths1 if p.endswith("BENCH_occupancy.json")]
    occ2 = [p for p in paths2 if p.endswith("BENCH_occupancy.json")]
    assert occ1 and occ2
    with open(occ1[0], "rb") as fh:
        blob1 = fh.read()
    with open(occ2[0], "rb") as fh:
        blob2 = fh.read()
    assert blob1 == blob2

    data = json.loads(blob1)
    assert data["kind"] == "bench_occupancy"
    assert set(data["cells"]) == {"l3switch/SWC@2"}
    cell = data["cells"]["l3switch/SWC@2"]
    assert cell["rate_gbps"] == round(
        sweep1.series("l3switch")["SWC"][0], 3)

    # Self-diff gates clean at zero tolerance...
    text, code = obs_diff.run_diff(occ1[0], occ2[0], tolerance=0.0)
    assert code == 0, text

    # ...the bottleneck report renders the cell...
    from repro.obs.report import bottleneck_main, render_bottleneck

    rendered = render_bottleneck(data)
    assert "l3switch / SWC" in rendered
    assert cell["verdict"]["kind"] in rendered
    assert bottleneck_main([occ1[0]]) == 0

    # ...and a mutated verdict is a regression (exit 2).
    mutated = dict(data)
    mutated["cells"] = {k: dict(v) for k, v in data["cells"].items()}
    mcell = mutated["cells"]["l3switch/SWC@2"]
    mcell["verdict"] = dict(mcell["verdict"], kind="compute-bound",
                            channel=None)
    mut_path = tmp_path / "mutated.json"
    mut_path.write_text(json.dumps(mutated))
    text, code = obs_diff.run_diff(occ1[0], str(mut_path), tolerance=0.0)
    assert code == obs_diff.EXIT_REGRESSION
    assert "verdict changed" in text


def test_diff_occupancy_gates_vanished_cell_and_share_shift(tmp_path):
    base = {"kind": "bench_occupancy", "figure": "occupancy", "cells": {
        "app/SWC@2": {"rate_gbps": 1.0, "shares": {"exec": 0.5},
                      "verdict": {"kind": "compute-bound",
                                  "channel": None}},
        "app/SWC@4": {"rate_gbps": 2.0, "shares": {"exec": 0.5},
                      "verdict": {"kind": "compute-bound",
                                  "channel": None}},
    }}
    shifted = {"kind": "bench_occupancy", "figure": "occupancy", "cells": {
        "app/SWC@2": {"rate_gbps": 1.0, "shares": {"exec": 0.3},
                      "verdict": {"kind": "compute-bound",
                                  "channel": None}},
    }}
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(base))
    new.write_text(json.dumps(shifted))
    text, code = obs_diff.run_diff(str(old), str(new), tolerance=0.05)
    assert code == obs_diff.EXIT_REGRESSION
    assert "vanished" in text and "share shifted" in text


def test_diff_rejects_unknown_kind(tmp_path, capsys):
    good = tmp_path / "good.json"
    bad = tmp_path / "bad.json"
    good.write_text(json.dumps({"kind": "bench_occupancy", "cells": {}}))
    bad.write_text(json.dumps({"kind": "bench_v2_totally_real"}))
    # Unknown kind is a failed gate (exit 2), never a clean empty diff.
    assert obs_diff.main([str(good), str(bad)]) == obs_diff.EXIT_REGRESSION
    assert obs_diff.main([str(bad), str(good)]) == obs_diff.EXIT_REGRESSION
    err = capsys.readouterr().err
    assert "unknown kind" in err and "bench_v2_totally_real" in err
    # Missing kind stays a plain usage error (exit 1).
    nokind = tmp_path / "nokind.json"
    nokind.write_text(json.dumps({"cells": {}}))
    assert obs_diff.main([str(nokind), str(good)]) == 1


def test_bottleneck_report_rejects_wrong_kind(tmp_path, capsys):
    from repro.obs.report import bottleneck_main

    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"kind": "bench", "figure": "fig13"}))
    assert bottleneck_main([str(wrong)]) == 1
    assert "bench_occupancy" in capsys.readouterr().err
    assert bottleneck_main([str(tmp_path / "absent.json")]) == 1


# -- serve integration ----------------------------------------------------------


def test_serve_profile_is_pure_observation():
    from repro.serve.harness import ServeConfig, run_service

    base = dict(app="l3switch", level="O1", n_mes=2, windows=6,
                window_cycles=20_000.0, offered_gbps=2.0)
    off = run_service(ServeConfig(**base))
    on = run_service(ServeConfig(profile=True, **base))
    assert off.occupancy is None
    assert on.occupancy is not None
    # The churn bench payload -- the committed artifact -- is identical.
    assert on.bench == off.bench
    assert on.occupancy["verdict"]["text"].startswith("l3switch @2ME: ")
    names = {name for w in on.collector.windows
             for name in (w.get("counters") or {})}
    assert any(n.startswith("occ.") for n in names), names
