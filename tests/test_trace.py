"""Per-packet lifecycle tracing (repro.obs.trace) and the Chrome
trace-event exporter (repro.obs.export): tracer semantics, the
tracing-off == tracing-on bit-identical guarantee, exporter output
validity (JSON, monotonic timestamps, balanced begin/end), the CLI
round-trip, compile-stage span capture, and the report's latency /
hot-line sections."""

import json
from collections import Counter

import pytest

from repro import obs
from repro.compiler import compile_baker
from repro.obs.export import chrome_trace_from_events, write_chrome_trace
from repro.obs.report import load_records, render
from repro.obs.trace import (
    PacketTracer,
    _percentile,
    capture_compile_spans,
    compile_stage,
    drain_compile_spans,
    main as trace_main,
    record_trace_summary,
)
from repro.options import options_for
from repro.profiler.trace import ipv4_trace
from repro.rts.system import run_on_simulator

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


@pytest.fixture
def clean_obs():
    """Leave the process-global registry exactly as we found it."""
    reg = obs.get_registry()
    was_enabled = reg.enabled
    yield reg
    reg.enabled = was_enabled
    reg.clear()


@pytest.fixture
def no_compile_spans():
    """Leave compile-span capture disarmed afterwards."""
    yield
    capture_compile_spans(False)


def _mini_result():
    from tests.samples import MINI_FORWARDER

    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("O1"), trace)
    return result, trace


RUN_KW = dict(n_mes=2, warmup_packets=30, measure_packets=90)


# -- tracer unit semantics ------------------------------------------------------


def test_tracer_forward_path_and_latency():
    tr = PacketTracer()
    tr.rx_packet(64, 100.0, port=0, length=64)
    tr.me_ring_get(0, 0, "ring.rx", 64, 150.0)
    tr.me_ring_put(0, 0, "ring.chan", 64, 180.0)
    tr.tx_packet(64, 400.0, port=1, length=64)
    tr.finish(500.0)
    assert tr.latencies == [300.0]
    kinds = [e.kind for e in tr.events]
    assert kinds == ["pkt_begin", "ring_enq", "ring_deq", "span_begin",
                     "span_end", "ring_enq", "ring_deq", "pkt_end"]
    assert not tr.active and not tr._me_cur


def test_tracer_app_drop_and_recycled_handle():
    tr = PacketTracer()
    tr.rx_packet(64, 0.0, port=0, length=64)
    tr.me_ring_get(0, 0, "ring.rx", 64, 10.0)
    # The PPF drops: metadata handle goes back on the free list.
    tr.me_ring_put(0, 0, "ring.__meta_free", 64, 20.0)
    assert tr.drops == Counter({"app_drop": 1})
    # The same handle comes around again as a brand new packet.
    tr.rx_packet(64, 30.0, port=1, length=64)
    assert tr.active[64] == 2  # fresh per-lifetime id
    tr.tx_packet(64, 90.0, port=1, length=64)
    tr.finish(100.0)
    assert tr.latencies == [60.0]
    # Free-list traffic is never a packet event.
    assert all((e.data or {}).get("ring") != "ring.__meta_free"
               for e in tr.events)


def test_tracer_free_list_gets_and_failed_cc_put():
    tr = PacketTracer()
    # Buffer free-list activity is invisible.
    tr.me_ring_get(0, 0, "ring.__buf_free", 2048, 0.0)
    tr.me_ring_put(0, 0, "ring.__buf_free", 2048, 1.0)
    assert tr.events == []
    # Allocation from the metadata free list starts a lifetime.
    tr.me_ring_get(0, 0, "ring.__meta_free", 96, 2.0)
    assert tr.active[96] == 1
    # A rejected channel put loses the handle: drop with cause.
    tr.me_ring_put(0, 1, "ring.chan", 96, 5.0, ok=False)
    assert tr.drops == Counter({"cc_ring_full": 1})
    assert not tr.active


def test_tracer_max_packets_truncates_but_stays_balanced():
    tr = PacketTracer(max_packets=2)
    for i, h in enumerate((64, 96, 128)):
        tr.rx_packet(h, float(i), port=0, length=64)
    assert len(tr.born) == 2 and tr.truncated == 1
    tr.tx_packet(64, 10.0, port=0, length=64)
    tr.tx_packet(128, 11.0, port=0, length=64)  # untraced: ignored
    tr.finish(20.0)
    begins = sum(e.kind == "pkt_begin" for e in tr.events)
    ends = sum(e.kind == "pkt_end" for e in tr.events)
    assert begins == ends == 2


def test_tracer_finish_closes_open_lifecycles():
    tr = PacketTracer()
    tr.rx_packet(64, 0.0, port=0, length=64)
    tr.me_ring_get(0, 3, "ring.rx", 64, 5.0)
    tr.finish(50.0)
    ends = [e for e in tr.events if e.kind == "pkt_end"]
    spans = [e for e in tr.events if e.kind == "span_end"]
    assert len(ends) == 1 and ends[0].data["outcome"] == "inflight"
    assert len(spans) == 1 and spans[0].data["disposition"] == "unfinished"


def test_percentiles_nearest_rank():
    vals = [float(v) for v in range(1, 101)]
    assert _percentile(vals, 0.50) == 50.0
    assert _percentile(vals, 0.95) == 95.0
    assert _percentile(vals, 0.99) == 99.0
    assert _percentile([7.0], 0.99) == 7.0
    tr = PacketTracer()
    assert tr.latency_summary()["count"] == 0
    tr.latencies = [10.0, 20.0, 30.0, 40.0]
    s = tr.latency_summary()
    assert (s["count"], s["min"], s["max"]) == (4, 10.0, 40.0)
    assert s["p50"] == 20.0 and s["mean"] == 25.0


# -- zero-impact invariance -----------------------------------------------------


def test_tracing_on_run_is_bit_identical(clean_obs, tmp_path):
    """A traced run must match the untraced run exactly: same Tx
    signature, cycle counts, rates, and (tracing-independent) metrics."""
    reg = clean_obs
    reg.enabled = False
    result, trace = _mini_result()

    off = run_on_simulator(result, trace, **RUN_KW)

    obs.enable()
    off_metrics = str(tmp_path / "off.jsonl")
    off2 = run_on_simulator(result, trace, metrics_jsonl=off_metrics,
                            **RUN_KW)
    reg.clear()
    on_metrics = str(tmp_path / "on.jsonl")
    on = run_on_simulator(result, trace,
                          trace_json=str(tmp_path / "run.trace.json"),
                          trace_events_jsonl=str(tmp_path / "run.events.jsonl"),
                          metrics_jsonl=on_metrics, **RUN_KW)

    for res in (off2, on):
        assert res.forwarding_gbps == off.forwarding_gbps
        assert res.packets_measured == off.packets_measured
        assert res.packets_out == off.packets_out
        assert res.rx_offered == off.rx_offered
        assert res.rx_dropped == off.rx_dropped
        assert res.sim_cycles == off.sim_cycles
        assert res.me_utilization == off.me_utilization
        assert res.access_profile.row() == off.access_profile.row()
        assert res.tx_signature() == off.tx_signature()

    # Metrics: identical except the tracer's own sim.pkt.* summary and
    # the wall-clock timer.
    def stable(path):
        return [r for r in load_records(path)
                if not r["name"].startswith("sim.pkt.")
                and r["name"] != "sim.wall"]

    assert stable(on_metrics) == stable(off_metrics)
    # ...and the traced run did record the latency summary.
    assert any(r["name"] == "sim.pkt.latency_cycles"
               for r in load_records(on_metrics))


# -- exporter -------------------------------------------------------------------


def _traced_run(tmp_path, clean_obs):
    clean_obs.enabled = False
    result, trace = _mini_result()
    tr = PacketTracer()
    json_path = str(tmp_path / "run.trace.json")
    events_path = str(tmp_path / "run.events.jsonl")
    run_on_simulator(result, trace, tracer=tr, trace_json=json_path,
                     trace_events_jsonl=events_path, **RUN_KW)
    return tr, json_path, events_path


def _check_chrome_trace(doc):
    evs = doc["traceEvents"]
    assert evs, "empty trace"
    ts = [e["ts"] for e in evs]
    assert all(a <= b for a, b in zip(ts, ts[1:])), "non-monotonic ts"
    # Balanced sync B/E per (pid, tid) and async b/e per id.
    sync = Counter()
    for e in evs:
        if e["ph"] == "B":
            sync[(e["pid"], e["tid"])] += 1
        elif e["ph"] == "E":
            sync[(e["pid"], e["tid"])] -= 1
            assert sync[(e["pid"], e["tid"])] >= 0, "E before B"
    assert not [k for k, v in sync.items() if v], "unbalanced B/E"
    async_ = Counter()
    for e in evs:
        if e["ph"] == "b":
            async_[(e["cat"], e["id"])] += 1
        elif e["ph"] == "e":
            async_[(e["cat"], e["id"])] -= 1
    assert not [k for k, v in async_.items() if v], "unbalanced b/e"
    return evs


def _track_names(evs):
    return {e["args"]["name"] for e in evs
            if e["ph"] == "M" and e["name"] == "process_name"}


def test_exporter_valid_monotonic_balanced(clean_obs, tmp_path):
    tr, json_path, events_path = _traced_run(tmp_path, clean_obs)
    assert tr.latencies, "no packets forwarded?"
    with open(json_path) as fh:
        doc = json.load(fh)  # json.tool-level validity
    evs = _check_chrome_trace(doc)
    # Every traced packet shows up as one async lifecycle pair.
    pkt_pairs = sum(e["ph"] == "b" and e["cat"] == "pkt" for e in evs)
    assert pkt_pairs == len(tr.born)
    # One named track per ME plus the ring/packet processes.
    names = _track_names(evs)
    assert "packets" in names and "rings" in names
    assert any(n.startswith("ME") for n in names)

    # The raw events JSONL leads with a meta line and parses line-wise.
    with open(events_path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    assert lines[0]["kind"] == "trace_meta"
    assert lines[0]["packets"] == len(tr.born)
    assert len(lines) == 1 + len(tr.events)


def test_exporter_cli_round_trip(clean_obs, tmp_path, capsys):
    _, _, events_path = _traced_run(tmp_path, clean_obs)
    assert trace_main(["export", events_path]) == 0
    out_path = events_path[: -len(".events.jsonl")] + ".trace.json"
    assert capsys.readouterr().out.strip() == out_path
    with open(out_path) as fh:
        _check_chrome_trace(json.load(fh))


def test_exporter_cli_missing_and_empty_input(tmp_path, capsys):
    assert trace_main(["export", str(tmp_path / "nope.jsonl")]) == 1
    assert "no events file" in capsys.readouterr().err
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert trace_main(["export", str(empty)]) == 1
    assert "empty" in capsys.readouterr().err


def test_exporter_closes_unbalanced_input():
    # A begin with no end (e.g. a truncated events file) must still
    # produce balanced output.
    events = [
        {"kind": "pkt_begin", "t": 0.0, "pkt": 1, "origin": "rx",
         "handle": 64},
        {"kind": "span_begin", "t": 5.0, "pkt": 1, "me": 0, "thread": 2,
         "ring": "ring.rx"},
        {"kind": "ring_enq", "t": 6.0, "pkt": 1, "ring": "ring.chan"},
    ]
    _check_chrome_trace(chrome_trace_from_events(events))


def test_exporter_writes_compile_spans(tmp_path):
    spans = [("frontend", {"app": "x"}, 10.0, 10.5),
             ("codegen", {}, 10.5, 11.0)]
    path = str(tmp_path / "c.trace.json")
    write_chrome_trace(path, [], compile_spans=spans)
    with open(path) as fh:
        doc = json.load(fh)
    evs = _check_chrome_trace(doc)
    names = [e["name"] for e in evs if e["ph"] == "B"]
    assert names == ["frontend", "codegen"]
    # Wall-clock spans are rebased to start at 0.
    assert min(e["ts"] for e in evs if e["ph"] == "B") == 0


# -- compile-stage span capture -------------------------------------------------


def test_compile_span_capture(clean_obs, no_compile_spans):
    reg = clean_obs
    obs.enable()
    drain_compile_spans()
    capture_compile_spans()
    with compile_stage(reg, "frontend"):
        pass
    with reg.labels(app="l3switch"):
        with compile_stage(reg, "lower"):
            pass
    spans = drain_compile_spans()
    assert [(s[0], s[1]) for s in spans] == [
        ("frontend", {}), ("lower", {"app": "l3switch"})]
    assert all(t1 >= t0 for _, _, t0, t1 in spans)
    assert drain_compile_spans() == []  # drained
    # Disarmed: compile_stage still times, but records no spans.
    capture_compile_spans(False)
    with compile_stage(reg, "pac"):
        pass
    assert drain_compile_spans() == []
    timers = {(r.get("labels") or {}).get("stage")
              for r in reg.records() if r["name"] == "compile.stage"}
    assert {"frontend", "lower", "pac"} <= timers


# -- report sections ------------------------------------------------------------


def test_report_renders_latency_and_hot_lines(clean_obs):
    reg = clean_obs
    obs.enable()
    reg.clear()
    tr = PacketTracer()
    tr.latencies = [100.0, 200.0, 300.0, 400.0]
    tr.born = {1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0}
    tr.drops["app_drop"] = 2
    record_trace_summary(reg, tr)
    reg.counter("profile.line_instrs", src="<baker>:45").inc(300)
    reg.counter("profile.line_instrs", src="<baker>:35").inc(180)
    text = render(reg.records())
    assert "Packet latency" in text
    assert "p50" in text and "p95" in text and "p99" in text
    assert "app_drop" in text
    assert "Hot Baker source lines" in text
    # Hottest line first.
    assert text.index("<baker>:45") < text.index("<baker>:35")
