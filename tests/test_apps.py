"""Tests for the three benchmark applications (L3-Switch, Firewall, MPLS).

Correctness is checked three ways: against Python-side oracles (route
table LPM, rule classification), against protocol invariants (valid IPv4
checksums on emitted packets, TTL decrement, label rewriting), and
differentially simulator-vs-interpreter at key optimization levels.
"""

import pytest

from repro.apps import all_apps, get_app
from repro.apps.l3switch import L3SwitchApp
from repro.apps.firewall import FirewallApp
from repro.apps.mpls import MplsApp
from repro.apps.tables import (
    MPLS_OP_POP,
    make_firewall_rules,
    make_mpls_config,
    make_route_table,
)
from repro.baker import parse_and_check
from repro.baker.lowering import lower_program
from repro.compiler import compile_baker
from repro.options import options_for
from repro.profiler.interpreter import run_reference
from repro.profiler.trace import Trace, ipv4_checksum
from repro.rts.system import verify_against_reference


@pytest.fixture(scope="module")
def l3():
    return get_app("l3switch")


@pytest.fixture(scope="module")
def fw():
    return get_app("firewall")


@pytest.fixture(scope="module")
def mpls_app():
    return get_app("mpls")


def reference_run(app, n=120, seed=9):
    mod = lower_program(parse_and_check(app.source, app.name))
    trace = app.make_trace(n, seed=seed)
    return trace, run_reference(mod, trace)


# -- table generators ---------------------------------------------------------------


def test_route_table_lpm_oracle():
    table = make_route_table(n_routes=32, seed=1)
    for addr in table.addresses_in(50, seed=2):
        nh = table.lookup(addr)
        assert 0 <= nh < len(table.nexthops)
        # The matched route really covers the address.
        matches = [
            r for r in table.routes
            if (addr & ((0xFFFFFFFF << (32 - r.length)) & 0xFFFFFFFF)) == r.prefix
        ]
        assert matches
        assert nh == max(matches, key=lambda r: r.length).nexthop


def test_route_table_sorted_for_trie_builder():
    table = make_route_table(seed=3)
    lengths = [r.length for r in table.routes]
    assert lengths == sorted(lengths)
    assert all(r.length <= 24 for r in table.routes)


def test_firewall_first_match_semantics():
    config = make_firewall_rules(n_rules=16, seed=7)
    action, flow = config.classify(0, 0, 1, 1, 6)
    assert action in (0, 1)
    # The catch-all rule guarantees classification always succeeds.
    assert config.rules[-1].matches(123, 456, 7, 8, 17)


def test_mpls_config_ops_cover_all_kinds():
    config = make_mpls_config(n_labels=9, seed=4)
    ops = {op for op, _, _ in config.ilm.values()}
    assert ops == {1, 2, 3}  # swap, pop, push


# -- L3-Switch ----------------------------------------------------------------------


def test_l3switch_routes_with_valid_checksums(l3):
    trace, res = reference_run(l3)
    routed = [p for p in res.tx if p.payload()[12:14] == b"\x08\x00"
              and p.payload()[22] == 63]
    assert routed, "no routed packets observed"
    for pkt in routed:
        header = pkt.payload()[14:34]
        assert ipv4_checksum(header) == 0, "routed packet has a bad checksum"


def test_l3switch_nexthop_macs_match_oracle(l3):
    trace, res = reference_run(l3)
    for pkt in res.tx:
        frame = pkt.payload()
        if frame[12:14] != b"\x08\x00" or frame[22] != 63:
            continue
        dst_ip = int.from_bytes(frame[30:34], "big")
        nh = l3.expected_nexthop(dst_ip)
        expected_mac = l3.routes.nexthops[nh][0]
        assert frame[0:6] == expected_mac.to_bytes(6, "big")


def test_l3switch_bridges_known_stations(l3):
    trace, res = reference_run(l3, n=200, seed=11)
    bridged = [
        p for p in res.tx
        if int.from_bytes(p.payload()[0:6], "big") in l3.bridge.entries
    ]
    assert bridged  # some packets took the L2 path unchanged
    for pkt in bridged:
        assert pkt.payload()[22] == 64  # TTL untouched on the bridge path


def test_l3switch_arp_replies_generated(l3):
    trace, res = reference_run(l3, n=300, seed=13)
    replies = [p for p in res.tx if p.payload()[12:14] == b"\x08\x06"
               and p.payload()[20:22] == b"\x00\x02"]
    assert replies, "no ARP replies emitted"
    for rep in replies:
        # Reply claims one of the router's port MACs as sender.
        sha = int.from_bytes(rep.payload()[22:28], "big")
        assert sha in [m for m in __import__("repro.apps.tables", fromlist=["ROUTER_MACS"]).ROUTER_MACS]


def test_l3switch_error_path_counts_bad_ttl(l3):
    mod = lower_program(parse_and_check(l3.source, "l3"))
    trace = l3.make_trace(300, seed=17, bad_fraction=0.05)
    from repro.profiler.interpreter import Interpreter

    interp = Interpreter(mod)
    interp.run_inits()
    interp.run_trace(trace)
    assert interp.globals.load("err_drops", 0, 4) > 0


def test_l3switch_trie_matches_python_lpm(l3):
    """The Baker-built trie must agree with the Python LPM oracle for
    every address the trace generator can produce."""
    mod = lower_program(parse_and_check(l3.source, "l3"))
    from repro.profiler.interpreter import Interpreter

    interp = Interpreter(mod)
    interp.run_inits()

    def trie_lookup(addr: int) -> int:
        e = interp.globals.load("trie16", (addr >> 16) * 4, 4)
        if e & 0x40000000:
            block = e & 0xFFFF
            e = interp.globals.load(
                "trie8", ((block << 8) + ((addr >> 8) & 0xFF)) * 4, 4
            )
        return e & 0xFFFF if e & 0x80000000 else 0

    for addr in l3.routes.addresses_in(200, seed=23):
        assert trie_lookup(addr) == l3.routes.lookup(addr), hex(addr)


# -- Firewall ----------------------------------------------------------------------------


def test_firewall_actions_match_oracle(fw):
    trace, res = reference_run(fw, n=200, seed=19)
    # Every input packet classified pass by the oracle must appear in tx;
    # every dropped one must not.
    passed = 0
    dropped = 0
    tx_sigs = {bytes(p.payload()) for p in res.tx}
    for tp in trace:
        frame = tp.data
        src = int.from_bytes(frame[26:30], "big")
        dst = int.from_bytes(frame[30:34], "big")
        sport = int.from_bytes(frame[34:36], "big")
        dport = int.from_bytes(frame[36:38], "big")
        proto = frame[23]
        action, flow = fw.expected_action(src, dst, sport, dport, proto)
        if action == 0:
            assert frame in tx_sigs, "pass packet missing from tx"
            passed += 1
        else:
            dropped += 1
    assert passed and dropped
    assert res.profile.packets_out == passed
    assert res.profile.packets_dropped == dropped


def test_firewall_payload_untouched(fw):
    trace, res = reference_run(fw, n=80, seed=21)
    inputs = {bytes(tp.data) for tp in trace}
    for pkt in res.tx:
        assert bytes(pkt.payload()) in inputs  # transparent device


def test_firewall_drop_counters(fw):
    mod = lower_program(parse_and_check(fw.source, "fw"))
    trace = fw.make_trace(150, seed=25)
    from repro.profiler.interpreter import Interpreter

    interp = Interpreter(mod)
    interp.run_inits()
    res = interp.run_trace(trace)
    total = sum(
        interp.globals.load("fw_drop_count", i * 4, 4) for i in range(64)
    )
    assert total == res.profile.packets_dropped


# -- MPLS ---------------------------------------------------------------------------------


def _label_entry(frame: bytes, off: int = 14) -> int:
    return int.from_bytes(frame[off : off + 4], "big")


def test_mpls_swap_rewrites_label(mpls_app):
    trace, res = reference_run(mpls_app, n=150, seed=27)
    swaps = {
        label: out
        for label, (op, out, _) in mpls_app.config.ilm.items()
        if op == 1
    }
    seen = 0
    out_labels = set()
    for pkt in res.tx:
        frame = pkt.payload()
        if frame[12:14] != b"\x88\x47":
            continue
        out_labels.add(_label_entry(frame) >> 12)
    assert out_labels & set(swaps.values()), "no swapped labels observed"


def test_mpls_ttl_decremented(mpls_app):
    trace, res = reference_run(mpls_app, n=100, seed=29)
    for pkt in res.tx:
        frame = pkt.payload()
        if frame[12:14] == b"\x88\x47":
            entry = _label_entry(frame)
            assert entry & 0xFF <= 63 or (entry >> 12) in [
                l for l, (op, _, _) in mpls_app.config.ilm.items()
            ]


def test_mpls_final_pop_emits_ip(mpls_app):
    trace, res = reference_run(mpls_app, n=200, seed=31)
    ip_out = [p for p in res.tx if p.payload()[12:14] == b"\x08\x00"]
    assert ip_out, "no final-pop/egress IP packets"
    for pkt in ip_out:
        assert pkt.payload()[14] >> 4 == 4  # IPv4 version nibble visible


def test_mpls_deep_stacks_forwarded(mpls_app):
    trace, res = reference_run(mpls_app, n=200, seed=33)
    assert res.profile.packets_out == res.profile.packets_in - res.profile.packets_dropped


# -- whole-pipeline (compile + simulate) ----------------------------------------------------


@pytest.mark.parametrize("app_name", ["l3switch", "firewall", "mpls"])
@pytest.mark.parametrize("level", ["BASE", "PAC", "SWC"])
def test_apps_simulator_matches_reference(app_name, level):
    app = get_app(app_name)
    trace = app.make_trace(120, seed=35)
    result = compile_baker(app.source, options_for(level), trace)
    assert verify_against_reference(result, trace, packets=50), (app_name, level)


def test_swc_candidates_match_paper():
    """Paper section 6.2: SWC caches two small structures in L3-Switch
    and MPLS, and nothing in Firewall."""
    expectations = {"l3switch": 2, "firewall": 0, "mpls": 2}
    for name, count in expectations.items():
        app = get_app(name)
        trace = app.make_trace(150, seed=5)
        result = compile_baker(app.source, options_for("SWC"), trace)
        assert len(result.swc_result.cached) == count, (
            name, result.swc_result.cached_names())


def test_apps_fit_code_store_when_optimized():
    for app in all_apps():
        trace = app.make_trace(100, seed=37)
        result = compile_baker(app.source, options_for("SWC"), trace)
        assert len(result.plan.me_aggregates) == 1, app.name
        image = next(iter(result.images.values()))
        assert image.code_size <= 4096
