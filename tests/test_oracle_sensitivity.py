"""Meta-tests of the differential oracle: it must actually catch wrong
code, and the XScale execution paths must carry their weight."""

import pytest

from repro.cg import isa
from repro.compiler import compile_baker
from repro.ixp.chip import IXP2400
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.options import options_for
from repro.profiler.trace import ipv4_trace
from repro.rts.loader import load_system
from repro.rts.system import verify_against_reference
from tests.samples import ETHER_IPV4_PROTOCOLS, MINI_FORWARDER

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def test_oracle_detects_corrupted_code():
    """Flip one ALU immediate in the generated image: the differential
    check must fail (if it passed, the oracle would be vacuous)."""
    trace = ipv4_trace(40, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    image = next(iter(result.images.values()))
    victim = next(
        i for i in image.insns
        if isinstance(i, isa.Alu) and isinstance(i.b, isa.Imm) and i.op == "sub"
        and i.b.value == 1
    )
    victim.b = isa.Imm(2)  # TTL now decremented by 2
    assert not verify_against_reference(result, trace, packets=30)
    victim.b = isa.Imm(1)
    assert verify_against_reference(result, trace, packets=30)


def test_oracle_detects_wrong_route():
    """Corrupt a next-hop MAC in simulated SRAM after load: outputs must
    diverge from the reference."""
    from repro.baker.lowering import lower_program
    from repro.profiler.interpreter import run_reference

    app_src = MINI_FORWARDER
    trace = ipv4_trace(30, [0xC0A80101], MACS, seed=3)
    result = compile_baker(app_src, options_for("PHR"), trace)
    ref = run_reference(lower_program(result.checked), trace.repeated(30))

    chip = IXP2400(n_programmable_mes=2)
    load_system(result, chip, n_mes=2)
    # Corrupt mac_addrs[0] (used as the rewritten source MAC).
    chip.memory.write_words("sram", chip.symbols["mac_addrs"], [0xDEAD, 0xBEEF])
    rx = RxEngine(chip, trace.repeated(30), offered_gbps=1.0, max_packets=30,
                  repeat=False)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)
    chip.run(20_000_000, stop=lambda: tx.packets_out() >= ref.profile.packets_out)
    chip.run_for(300_000)
    assert sorted(r.payload for r in tx.records) != ref.tx_signature()


def test_xscale_packet_copy_path():
    """A cold PPF that copies packets (mapped to the XScale) must produce
    byte-identical results to the reference -- exercising SimPacket.copy
    against simulated memory."""
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
module m {
  channel mirror_cc;
  ppf fast(ether_pkt *ph) from rx {
    if (ph->type == 0x0999) {
      channel_put(mirror_cc, ph);
    } else {
      channel_put(tx, ph);
    }
  }
  // Cold path: duplicate the frame (mirror port) and send both out.
  ppf mirror(ether_pkt *ph) from mirror_cc {
    ether_pkt *dup = packet_copy(ph);
    dup->src = 0x0a0000009999;
    channel_put(tx, dup);
    channel_put(tx, ph);
  }
}
"""
    )
    from repro.profiler.trace import Trace, TracePacket, build_ethernet

    packets = []
    for i in range(40):
        ethertype = 0x0999 if i % 40 == 7 else 0x0800
        packets.append(TracePacket(
            build_ethernet(0x0C0000000001, 0x020000000000 | i, ethertype,
                           bytes([i & 0xFF] * 30)), i % 3))
    trace = Trace(packets)
    result = compile_baker(src, options_for("SWC"), trace)
    xscale_ppfs = [p for a in result.plan.xscale_aggregates for p in a.ppfs]
    assert "m.mirror" in xscale_ppfs
    assert verify_against_reference(result, trace, packets=40)
