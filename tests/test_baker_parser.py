"""Unit tests for the Baker parser."""

import pytest

from repro.baker import ast
from repro.baker.errors import ParseError
from repro.baker.parser import parse
from tests.samples import MINI_FORWARDER, PASSTHROUGH


def test_parse_passthrough_program():
    prog = parse(PASSTHROUGH)
    assert len(prog.protocols) == 2
    assert len(prog.modules) == 1
    mod = prog.modules[0]
    assert mod.name == "fwd"
    assert len(mod.ppfs) == 1
    assert mod.ppfs[0].from_channels == ["rx"]


def test_parse_protocol_fields_and_demux():
    prog = parse(PASSTHROUGH)
    ether = prog.protocols[0]
    assert ether.name == "ether"
    assert [(f.name, f.width_bits) for f in ether.fields] == [
        ("dst", 48),
        ("src", 48),
        ("type", 16),
    ]
    assert isinstance(ether.demux, ast.IntLit)
    ipv4 = prog.protocols[1]
    assert isinstance(ipv4.demux, ast.Binary)
    assert ipv4.demux.op == "<<"


def test_protocol_missing_demux_parses():
    # demux absence is a *semantic* error; the parser accepts it.
    prog = parse("protocol p { a : 8; }")
    assert prog.protocols[0].demux is None


def test_duplicate_demux_rejected():
    with pytest.raises(ParseError):
        parse("protocol p { a : 8; demux { 1 }; demux { 2 }; }")


def test_parse_full_forwarder():
    prog = parse(MINI_FORWARDER)
    mod = prog.modules[0]
    assert [p.name for p in mod.ppfs] == ["l2_clsfr", "l3_fwdr", "l2_bridge", "arp_handler"]
    names = [n for decl in mod.channels for n in decl.names]
    assert names == ["l3_forward_cc", "l2_bridge_cc", "arp_cc"]
    assert len(mod.inits) == 1
    assert prog.metadata is not None
    assert prog.metadata.fields[0].name == "nexthop_id"


def test_parse_global_array_with_init():
    prog = parse("u32 tbl[4] = { 1, 2, 3, 4 };")
    g = prog.globals[0]
    assert g.array_len == 4
    assert len(g.init) == 4


def test_parse_shared_global():
    prog = parse("shared u32 counter = 0;")
    assert prog.globals[0].shared is True


def test_parse_function_with_params():
    prog = parse("u32 f(u32 a, u32 b) { return a + b; }")
    f = prog.funcs[0]
    assert f.name == "f"
    assert [p.name for p in f.params] == ["a", "b"]
    assert isinstance(f.body.stmts[0], ast.Return)


def test_precedence_mul_over_add():
    prog = parse("u32 f() { return 1 + 2 * 3; }")
    expr = prog.funcs[0].body.stmts[0].value
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_precedence_shift_vs_compare():
    prog = parse("u32 f(u32 x) { return x << 2 > 8; }")
    expr = prog.funcs[0].body.stmts[0].value
    assert expr.op == ">"
    assert expr.left.op == "<<"


def test_precedence_bitand_below_equality():
    # C-style: == binds tighter than &
    prog = parse("u32 f(u32 x) { return x & 3 == 3; }")
    expr = prog.funcs[0].body.stmts[0].value
    assert expr.op == "&"
    assert expr.right.op == "=="


def test_ternary_parses_right_associative():
    prog = parse("u32 f(u32 x) { return x ? 1 : x ? 2 : 3; }")
    expr = prog.funcs[0].body.stmts[0].value
    assert isinstance(expr, ast.Ternary)
    assert isinstance(expr.otherwise, ast.Ternary)


def test_unary_operators():
    prog = parse("u32 f(u32 x) { return -x + ~x + !x; }")
    assert prog.funcs[0] is not None


def test_cast_expression():
    prog = parse("u32 f(u64 x) { return (u32) x; }")
    expr = prog.funcs[0].body.stmts[0].value
    assert isinstance(expr, ast.Cast)
    assert expr.target.name == "u32"


def test_parenthesized_not_cast():
    prog = parse("u32 f(u32 x) { return (x) + 1; }")
    expr = prog.funcs[0].body.stmts[0].value
    assert expr.op == "+"


def test_sizeof():
    prog = parse("u32 f() { return sizeof(ether); }")
    expr = prog.funcs[0].body.stmts[0].value
    assert isinstance(expr, ast.SizeofExpr)
    assert expr.name == "ether"


def test_member_and_index_chain():
    prog = parse("u32 f() { return tbl[2].field; }")
    expr = prog.funcs[0].body.stmts[0].value
    assert isinstance(expr, ast.Member)
    assert isinstance(expr.base, ast.Index)


def test_arrow_member():
    prog = parse(PASSTHROUGH)
    # find a '->' use inside the ppf by reparsing a fragment
    frag = parse(
        "protocol e { a : 8; demux { 1 }; } module m { ppf p(e_pkt *ph) from rx "
        "{ u32 x = ph->a; channel_put(tx, ph); } }"
    )
    decl = frag.modules[0].ppfs[0].body.stmts[0]
    assert isinstance(decl.init, ast.Member)
    assert decl.init.arrow is True


def test_compound_assignment():
    prog = parse("u32 f(u32 x) { x += 2; x <<= 1; return x; }")
    stmts = prog.funcs[0].body.stmts
    assert isinstance(stmts[0], ast.Assign) and stmts[0].op == "+"
    assert isinstance(stmts[1], ast.Assign) and stmts[1].op == "<<"


def test_increment_statement():
    prog = parse("u32 f(u32 x) { x++; x--; return x; }")
    stmts = prog.funcs[0].body.stmts
    assert stmts[0].op == "+" and stmts[0].value.value == 1
    assert stmts[1].op == "-"


def test_for_loop():
    prog = parse("u32 f() { u32 s = 0; for (u32 i = 0; i < 8; i++) { s += i; } return s; }")
    loop = prog.funcs[0].body.stmts[1]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.LocalDecl)
    assert loop.cond.op == "<"


def test_while_and_do_while():
    prog = parse("u32 f(u32 x) { while (x > 0) { x -= 1; } do { x += 1; } while (x < 4); return x; }")
    assert isinstance(prog.funcs[0].body.stmts[0], ast.While)
    assert isinstance(prog.funcs[0].body.stmts[1], ast.DoWhile)


def test_if_else_chain():
    prog = parse("u32 f(u32 x) { if (x == 1) return 1; else if (x == 2) return 2; else return 3; }")
    node = prog.funcs[0].body.stmts[0]
    assert isinstance(node, ast.If)
    assert isinstance(node.otherwise, ast.If)


def test_critical_section():
    prog = parse(MINI_FORWARDER)
    arp = prog.modules[0].ppfs[3]
    assert isinstance(arp.body.stmts[0], ast.Critical)
    assert arp.body.stmts[0].lock_name == "arp_lock"


def test_break_continue():
    prog = parse("void f() { while (true) { if (false) break; continue; } }")
    assert prog.funcs[0] is not None


def test_qualified_call():
    prog = parse("module a { u32 g() { return 1; } } module b { u32 h() { return a.g(); } }")
    call = prog.modules[1].funcs[0].body.stmts[0].value
    assert isinstance(call, ast.Call)
    assert call.qualifier == "a"
    assert call.callee == "g"


def test_ppf_param_must_be_packet():
    with pytest.raises(ParseError):
        parse("module m { ppf p(u32 x) from rx { } }")


def test_pointer_only_for_packets():
    with pytest.raises(ParseError):
        parse("module m { void f(foo * x) { } }")


def test_error_reports_location():
    with pytest.raises(ParseError) as exc:
        parse("module m {\n  ppf p(\n}")
    assert exc.value.loc is not None
    assert exc.value.loc.line >= 2


def test_missing_semicolon():
    with pytest.raises(ParseError):
        parse("u32 f() { return 1 }")


def test_trailing_comma_in_initializer():
    prog = parse("u32 t[2] = { 1, 2, };")
    assert len(prog.globals[0].init) == 2


def test_empty_module():
    prog = parse("module empty { }")
    assert prog.modules[0].name == "empty"
