"""Tests for the packet-specialized optimizations: SOAR, PAC, PHR, SWC.

Transformation tests assert the expected IR shape; every scenario also
differentially checks semantics against the unoptimized reference
interpretation.
"""

import pytest

from repro.ir import instructions as I
from repro.ir.verifier import verify_module
from repro.opt import pac, phr, soar, swc
from repro.opt.pipeline import scalar_optimize_function
from repro.profiler.interpreter import Interpreter, run_reference
from repro.profiler.trace import Trace, TracePacket, ipv4_trace, mpls_trace
from tests.ir_helpers import lower
from tests.samples import ETHER_IPV4_PROTOCOLS, MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


def count_ops(fn, cls):
    return sum(1 for i in fn.all_instrs() if isinstance(i, cls))


def reference_and_optimized(src, trace, optimize):
    """Run reference semantics and the optimized module on one trace."""
    ref = run_reference(lower(src), trace)
    mod = lower(src)
    optimize(mod)
    verify_module(mod)
    got = run_reference(mod, trace)
    assert got.tx_signature() == ref.tx_signature()
    return ref, got, mod


# -- SOAR ------------------------------------------------------------------------


def test_soar_rx_packets_fully_resolved():
    mod = lower(PASSTHROUGH)
    result = soar.run(mod)
    assert result.channel_values["rx"] == (0, 8)
    assert result.resolution_rate == 1.0


def test_soar_decap_offsets():
    mod = lower(MINI_FORWARDER)
    result = soar.run(mod)
    # l3_forward_cc carries packets decapped past the 14 B Ethernet header.
    off, align = result.channel_values["l3_switch.l3_forward_cc"]
    assert off == 14
    assert align == 2  # 14 mod 8 -> halfword alignment
    fwdr = mod.functions["l3_switch.l3_fwdr"]
    loads = [i for i in fwdr.all_instrs() if isinstance(i, I.PktLoadField)]
    assert loads and all(l.c_offset_bits == 14 * 8 for l in loads)


def test_soar_encap_restores_offset():
    mod = lower(MINI_FORWARDER)
    soar.run(mod)
    fwdr = mod.functions["l3_switch.l3_fwdr"]
    stores = [i for i in fwdr.all_instrs()
              if isinstance(i, I.PktStoreField) and i.proto == "ether"]
    assert stores and all(s.c_offset_bits == 0 for s in stores)
    assert all(s.c_alignment == 8 for s in stores)


def test_soar_mpls_loop_unresolved():
    src = r"""
protocol ether { dst : 48; src : 48; type : 16; demux { 14 }; }
protocol mpls { label : 20; tc : 3; bos : 1; ttl : 8; demux { 4 }; }
module m {
  ppf p(ether_pkt *ph) from rx {
    mpls_pkt *mph = packet_decap(ph);
    u32 guard = 8;
    while (mph->bos == 0 && guard > 0) {
      mpls_pkt *inner = packet_decap(mph);
      mph = inner;
      guard -= 1;
    }
    u32 l = mph->label;
    channel_put(tx, mph);
  }
}
"""
    mod = lower(src)
    result = soar.run(mod)
    fn = mod.functions["m.p"]
    label_loads = [i for i in fn.all_instrs()
                   if isinstance(i, I.PktLoadField) and i.field == "label"]
    # The load after the loop join cannot have a static offset...
    post_loop = [l for l in label_loads if l.c_offset_bits is None]
    assert post_loop
    # ...but its alignment is still word-resolved (every MPLS pop is 4 B).
    assert all(l.c_alignment == 2 for l in post_loop)
    assert result.resolution_rate < 1.0


def test_soar_dynamic_demux_is_bottom():
    # Decapping ipv4 (demux = ihl << 2) cannot be resolved statically.
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
protocol udp { sport : 16; dport : 16; len : 16; csum : 16; demux { 8 }; }
module m {
  ppf p(ether_pkt *ph) from rx {
    ipv4_pkt *iph = packet_decap(ph);
    udp_pkt *uph = packet_decap(iph);
    u32 d = uph->dport;
    channel_put(tx, uph);
  }
}
"""
    )
    mod = lower(src)
    soar.run(mod)
    fn = mod.functions["m.p"]
    dport_load = next(i for i in fn.all_instrs()
                      if isinstance(i, I.PktLoadField) and i.field == "dport")
    assert dport_load.c_offset_bits is None


def test_soar_packet_create_seeded():
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
module m {
  ppf p(ether_pkt *ph) from rx {
    ether_pkt *fresh = packet_create(ether, 50);
    fresh->type = 0x0800;
    packet_drop(ph);
    channel_put(tx, fresh);
  }
}
"""
    )
    mod = lower(src)
    soar.run(mod)
    fn = mod.functions["m.p"]
    store = next(i for i in fn.all_instrs() if isinstance(i, I.PktStoreField))
    assert store.c_offset_bits == 0
    assert store.c_alignment == 8


# -- PAC -----------------------------------------------------------------------------


def _pac_src(body):
    return (
        ETHER_IPV4_PROTOCOLS
        + "metadata { u32 acc; } module m { ppf p(ether_pkt *ph) from rx { %s } }" % body
    )


def test_pac_combines_adjacent_loads():
    src = _pac_src(
        "u64 d = ph->dst; u32 t = ph->type; "
        "ph->meta.acc = (u32) d + t; channel_put(tx, ph);"
    )
    trace = ipv4_trace(8, [0xC0A80101], MACS)

    def optimize(mod):
        result = pac.run(mod)
        assert result.wide_loads == 1
        assert result.combined_loads == 2

    _, got, mod = reference_and_optimized(src, trace, optimize)
    fn = mod.functions["m.p"]
    assert count_ops(fn, I.PktLoadField) == 0
    wide = next(i for i in fn.all_instrs() if isinstance(i, I.PktLoadWords))
    assert wide.byte_off == 0 and wide.nwords == 4  # bytes 0..13 -> 4 words


def test_pac_respects_overlapping_store():
    src = _pac_src(
        "u32 a = ph->type; ph->type = 7; u32 b = ph->type; "
        "ph->meta.acc = a + b; channel_put(tx, ph);"
    )
    mod = lower(src)
    result = pac.run(mod)
    fn = mod.functions["m.p"]
    # The two type loads must not merge across the store.
    assert all(
        not isinstance(i, I.PktLoadWords) or i.nwords == 1
        for i in fn.all_instrs()
    )
    run_reference(mod, ipv4_trace(4, [1], MACS))  # still executes correctly


def test_pac_does_not_combine_across_decap():
    src = _pac_src(
        "u32 t = ph->type; ipv4_pkt *iph = packet_decap(ph); "
        "u32 v = iph->ttl; iph->meta.acc = t + v; channel_put(tx, iph);"
    )
    mod = lower(src)
    result = pac.run(mod)
    assert result.wide_loads == 0


def test_pac_combines_stores():
    src = _pac_src(
        "ph->dst = 0x0a0000000099; ph->src = 0x0a0000000042; ph->type = 0x0800; "
        "channel_put(tx, ph);"
    )
    trace = ipv4_trace(6, [0xC0A80101], MACS)

    def optimize(mod):
        result = pac.run(mod)
        assert result.wide_stores == 1
        assert result.combined_stores == 3

    _, got, mod = reference_and_optimized(src, trace, optimize)
    fn = mod.functions["m.p"]
    assert count_ops(fn, I.PktStoreField) == 0
    wide = next(i for i in fn.all_instrs() if isinstance(i, I.PktStoreWords))
    assert wide.nwords == 4
    assert wide.byte_masks == [0b1111, 0b1111, 0b1111, 0b1100]


def test_pac_store_combine_blocked_by_load():
    src = _pac_src(
        "ph->dst = 0x0a0000000099; u64 d = ph->dst; ph->src = d; "
        "channel_put(tx, ph);"
    )
    trace = ipv4_trace(4, [0xC0A80101], MACS)

    def optimize(mod):
        result = pac.run(mod)
        assert result.wide_stores == 0

    reference_and_optimized(src, trace, optimize)


def test_pac_cross_block_load_combining():
    src = _pac_src(
        "u64 d = ph->dst; "
        "if (d == 0x0a0000000001) { u32 t = ph->type; ph->meta.acc = t; } "
        "channel_put(tx, ph);"
    )
    trace = ipv4_trace(8, [0xC0A80101], MACS)

    def optimize(mod):
        result = pac.run(mod)
        assert result.wide_loads == 1  # type load absorbed into dst load

    reference_and_optimized(src, trace, optimize)


def test_pac_sub_byte_store_not_combined():
    # tos (bits 8..16 of ipv4) plus ver nibble: ver alone covers half a
    # byte, so a group containing only ver+tos leaves byte 0 partial.
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
module m {
  ppf p(ipv4_pkt *ph) from rx {
    ph->ver = 4;
    ph->tos = 7;
    channel_put(tx, ph);
  }
}
"""
    )
    mod = lower(src)
    result = pac.run(mod)
    assert result.wide_stores == 0


def test_pac_64bit_field_extraction_correct():
    # dst (48 bits spanning words 0-1) must extract exactly.
    src = _pac_src(
        "u64 d = ph->dst; u64 s = ph->src; "
        "ph->meta.acc = (u32)(d ^ s); channel_put(tx, ph);"
    )
    trace = ipv4_trace(10, [0xC0A80101], MACS, seed=11)

    def optimize(mod):
        result = pac.run(mod)
        assert result.wide_loads == 1

    ref, got, _ = reference_and_optimized(src, trace, optimize)
    # Signatures already compared; also verify metadata word carried over.
    ref_meta = sorted(p.meta.get(4, 0) for p in ref.tx)
    got_meta = sorted(p.meta.get(4, 0) for p in got.tx)
    assert ref_meta == got_meta


# -- PHR -----------------------------------------------------------------------------


def test_phr_metadata_localization():
    src = _pac_src(
        "ph->meta.acc = ph->type; u32 v = ph->meta.acc; "
        "ph->dst = v; channel_put(tx, ph);"
    )
    trace = ipv4_trace(6, [0xC0A80101], MACS)

    def optimize(mod):
        soar.run(mod)
        result = phr.run(mod)
        assert "acc" in result.localized_meta_fields

    _, _, mod = reference_and_optimized(src, trace, optimize)
    fn = mod.functions["m.p"]
    assert count_ops(fn, I.MetaLoad) == 0
    assert count_ops(fn, I.MetaStore) == 0


def test_phr_meta_not_localized_across_functions():
    mod = lower(MINI_FORWARDER)
    soar.run(mod)
    result = phr.run(mod)
    # nexthop_id is written in l3_fwdr only (single function) -> localized.
    assert "nexthop_id" in result.localized_meta_fields


def test_phr_elides_paired_encap_decap():
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
module m {
  ppf p(ether_pkt *ph) from rx {
    ipv4_pkt *iph = packet_decap(ph);
    u32 t = iph->ttl;
    iph->ttl = t - 1;
    ether_pkt *eph = packet_encap(iph, ether);
    channel_put(tx, eph);
  }
}
"""
    )
    trace = ipv4_trace(6, [0xC0A80101], MACS)

    def optimize(mod):
        soar.run(mod)
        result = phr.run(mod)
        assert result.elided_encaps == 2
        # Net head movement is zero: no sync needed at the put.
        assert result.syncs_inserted == 0

    _, _, mod = reference_and_optimized(src, trace, optimize)
    fn = mod.functions["m.p"]
    assert count_ops(fn, I.PktDecap) == 0
    assert count_ops(fn, I.PktEncap) == 0
    assert count_ops(fn, I.PktSyncHead) == 0
    # The field accesses were rebased onto the stale (outer) head.
    ttl_load = next(i for i in fn.all_instrs()
                    if isinstance(i, I.PktLoadField) and i.field == "ttl")
    assert ttl_load.bit_off == (14 + 8) * 8


def test_phr_syncs_before_put_with_net_movement():
    mod = lower(MINI_FORWARDER)
    soar.run(mod)
    result = phr.run(mod)
    verify_module(mod)
    clsfr = mod.functions["l3_switch.l2_clsfr"]
    # The decap is elided and a +14 sync precedes the channel_put.
    assert count_ops(clsfr, I.PktDecap) == 0
    syncs = [i for i in clsfr.all_instrs() if isinstance(i, I.PktSyncHead)]
    assert len(syncs) == 1 and syncs[0].delta_bytes == 14
    trace = ipv4_trace(10, [0xC0A80101], MACS, arp_fraction=0.2, seed=3)
    ref = run_reference(lower(MINI_FORWARDER), trace)
    got = run_reference(mod, trace)
    assert got.tx_signature() == ref.tx_signature()


def test_phr_keeps_dynamic_decap():
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
protocol udp { sport : 16; dport : 16; len : 16; csum : 16; demux { 8 }; }
metadata { u32 d; }
module m {
  ppf p(ether_pkt *ph) from rx {
    ipv4_pkt *iph = packet_decap(ph);
    udp_pkt *uph = packet_decap(iph);
    uph->meta.d = uph->dport;
    channel_put(tx, uph);
  }
}
"""
    )
    mod = lower(src)
    soar.run(mod)
    result = phr.run(mod)
    fn = mod.functions["m.p"]
    # The ether decap elides; the dynamic ipv4 decap stays, preceded by a sync.
    assert count_ops(fn, I.PktDecap) == 1
    assert result.elided_encaps == 1
    assert result.syncs_inserted == 1
    from repro.profiler.trace import build_ethernet, build_ipv4, build_udp

    frame = build_ethernet(MACS[0], 5, 0x0800, build_ipv4(1, 2, payload=build_udp(7, 9)))
    ref = run_reference(lower(src), Trace([TracePacket(frame, 0)]))
    got = run_reference(mod, Trace([TracePacket(frame, 0)]))
    assert got.tx_payloads() == ref.tx_payloads()


# -- SWC -----------------------------------------------------------------------------

HOT_TABLE_SRC = (
    ETHER_IPV4_PROTOCOLS
    + """
metadata { u32 out; }
u64 macs[4] = { 0x0a0000000001, 0x0a0000000002, 0x0a0000000003, 0x0a0000000004 };
u32 big[4096];
shared u32 counter = 0;

module m {
  ppf p(ether_pkt *ph) from rx {
    u32 port = ph->meta.rx_port;
    u64 mac = macs[port & 3];
    ipv4_pkt *iph = packet_decap(ph);
    u32 noise = big[iph->dst & 4095];
    critical (c) { counter = counter + 1; }
    iph->meta.out = (u32) mac + noise;
    channel_put(tx, iph);
  }
  init { macs[0] = 0x0a0000000001; }
}
"""
)


def _profiled(src, trace):
    mod = lower(src)
    profile = run_reference(mod, trace).profile
    return mod, profile


def test_swc_selects_hot_small_table():
    trace = ipv4_trace(64, list(range(100)), MACS, seed=6)
    mod, profile = _profiled(HOT_TABLE_SRC, trace)
    result = swc.select_candidates(mod, profile, {"m.p"})
    assert "macs" in result.cached_names()


def test_swc_rejects_low_hit_rate():
    trace = ipv4_trace(64, list(range(4000)), MACS, seed=6)
    mod, profile = _profiled(HOT_TABLE_SRC, trace)
    result = swc.select_candidates(mod, profile, {"m.p"})
    assert "big" not in result.cached_names()
    assert "hit rate" in result.rejected["big"]


def test_swc_rejects_critical_section_global():
    trace = ipv4_trace(32, list(range(16)), MACS)
    mod, profile = _profiled(HOT_TABLE_SRC, trace)
    result = swc.select_candidates(mod, profile, {"m.p"})
    assert "counter" not in result.cached_names()
    assert "critical" in result.rejected["counter"]


def test_swc_rejects_fast_path_writes():
    src = HOT_TABLE_SRC.replace(
        "iph->meta.out = (u32) mac + noise;",
        "iph->meta.out = (u32) mac + noise; big[0] = noise;",
    )
    trace = ipv4_trace(32, list(range(16)), MACS)
    mod, profile = _profiled(src, trace)
    result = swc.select_candidates(mod, profile, {"m.p"})
    assert "big" not in result.cached_names()


def test_swc_equation2():
    assert swc.min_check_rate(r_error=0.01, r_store=0.001, r_load=2.0) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        swc.min_check_rate(0, 1, 1)


def test_swc_transform_preserves_output_and_cuts_sram_loads():
    trace = ipv4_trace(80, list(range(8)), MACS, seed=8)
    ref = run_reference(lower(HOT_TABLE_SRC), trace)

    mod = lower(HOT_TABLE_SRC)
    profile = run_reference(lower(HOT_TABLE_SRC), trace).profile
    result = swc.select_candidates(mod, profile, {"m.p"})
    assert "macs" in result.cached_names()
    swc.apply(mod, result, {"m.p"}, check_period=16)
    verify_module(mod)

    got = run_reference(mod, trace)
    assert got.tx_signature() == ref.tx_signature()
    # SRAM loads of the cached table collapse to misses + periodic checks.
    assert got.profile.global_stats["macs"].loads < ref.profile.global_stats["macs"].loads / 4


def test_swc_delayed_update_staleness_and_recovery():
    """A control-plane store becomes visible only after the periodic
    check fires -- the delayed-update semantics of section 5.2."""
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
metadata { u32 out; }
u32 tbl[4] = { 7, 7, 7, 7 };
module m {
  ppf p(ether_pkt *ph) from rx {
    ph->meta.out = tbl[0];
    channel_put(tx, ph);
  }
}
"""
    )
    trace = ipv4_trace(40, [1], MACS)
    mod = lower(src)
    profile = run_reference(lower(src), trace).profile
    result = swc.select_candidates(mod, profile, {"m.p"})
    assert "tbl" in result.cached_names()
    swc.apply(mod, result, {"m.p"}, check_period=8)

    interp = Interpreter(mod)
    interp.run_inits()
    # Warm the cache with a few packets.
    interp.run_trace(ipv4_trace(4, [1], MACS))
    # Control plane updates the table (flag raised by instrumentation).
    store_fn = [f for f in mod.functions.values()]  # direct memory poke + flag
    interp.globals.store("tbl", 0, 99, 4)
    interp.globals.store("tbl.__swc_flag", 0, 1, 4)
    res = interp.run_trace(ipv4_trace(20, [1], MACS))
    outs = [p.meta.get(4) for p in interp.tx]
    assert 7 in outs  # stale reads happened after the store
    assert outs[-1] == 99  # but the check eventually flushed the cache
    assert outs == sorted(outs, key=lambda v: v == 99)  # 7s then 99s
