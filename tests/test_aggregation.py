"""Tests for the throughput model and aggregate formation (Figure 7)."""

import pytest

from repro.aggregation import (
    CC_COST,
    assign_mes,
    form_aggregates,
    packets_per_second_for_gbps,
    stage_throughput,
    system_throughput,
)
from repro.aggregation.aggregate import aggregate_cost, external_channels
from repro.aggregation.formation import apply_plan
from repro.ir import instructions as I
from repro.ir.verifier import verify_module
from repro.opt import inline
from repro.opt.pipeline import scalar_optimize_function
from repro.options import options_for
from repro.profiler.interpreter import run_reference
from repro.profiler.trace import ipv4_trace
from tests.ir_helpers import lower
from tests.samples import ETHER_IPV4_PROTOCOLS, MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


# -- throughput model (Equation 1) -----------------------------------------------


def test_stage_throughput_scales_with_mes():
    assert stage_throughput(600, 2, me_ips=600e6) == pytest.approx(2e6)


def test_assign_mes_gives_bottleneck_more():
    # Stage costs 100 and 500: with 6 MEs the 500-cost stage deserves 5.
    assert assign_mes([100, 500], 6) == [1, 5]


def test_assign_mes_even_split():
    assert assign_mes([300, 300, 300], 6) == [2, 2, 2]


def test_assign_mes_insufficient():
    assert assign_mes([1, 2, 3], 2) == [0, 0, 0]


def test_system_throughput_monotone_in_mes():
    costs = [200.0, 350.0]
    rates = [system_throughput(costs, n) for n in range(2, 7)]
    assert all(b >= a for a, b in zip(rates, rates[1:]))


def test_system_throughput_single_stage_linear():
    t1 = system_throughput([700.0], 1)
    t6 = system_throughput([700.0], 6)
    assert t6 == pytest.approx(6 * t1)


def test_equation1_pipelining_vs_duplication():
    # A 600-cost task split into two 300-cost pipe stages on 6 MEs gives
    # the same model throughput as duplicating the whole task 6x --
    # but splitting unevenly (200/400) is strictly worse. The model
    # therefore biases against pipelining (paper section 5.1).
    duplicated = system_throughput([600.0], 6)
    pipelined_even = system_throughput([300.0, 300.0], 6)
    assert pipelined_even == pytest.approx(duplicated)
    # With 5 MEs the skewed split cannot balance: strictly worse.
    assert system_throughput([200.0, 400.0], 5) < system_throughput([600.0], 5)


def test_pps_for_line_rate():
    # 2.5 Gbps of 64 B packets ~ 4.88 Mpps (the paper's OC-48 budget).
    pps = packets_per_second_for_gbps(2.5)
    assert pps == pytest.approx(4.88e6, rel=0.01)


# -- aggregate cost & wiring helpers ------------------------------------------------


def _profiled(src, n=40, **kw):
    mod = lower(src)
    trace = ipv4_trace(n, [0xC0A80101, 0xC0A80202], MACS, **kw)
    profile = run_reference(mod, trace).profile
    return mod, profile


def test_external_channels_of_single_ppf():
    mod, _ = _profiled(MINI_FORWARDER)
    inputs, outputs = external_channels(mod, {"l3_switch.l2_clsfr"})
    assert inputs == ["rx"]
    assert set(outputs) == {
        "l3_switch.arp_cc",
        "l3_switch.l2_bridge_cc",
        "l3_switch.l3_forward_cc",
    }


def test_external_channels_of_merged_set():
    mod, _ = _profiled(MINI_FORWARDER)
    members = {"l3_switch.l2_clsfr", "l3_switch.l3_fwdr", "l3_switch.l2_bridge"}
    inputs, outputs = external_channels(mod, members)
    assert inputs == ["rx"]
    assert set(outputs) == {"l3_switch.arp_cc", "tx"}


def test_aggregate_cost_includes_cc_overhead():
    mod, profile = _profiled(MINI_FORWARDER)
    solo = aggregate_cost(mod, profile, {"l3_switch.l2_clsfr"}, CC_COST)
    assert solo > profile.ppf_weight("l3_switch.l2_clsfr")


def test_merging_reduces_total_cost():
    mod, profile = _profiled(MINI_FORWARDER)
    a = aggregate_cost(mod, profile, {"l3_switch.l2_clsfr"}, CC_COST)
    b = aggregate_cost(mod, profile, {"l3_switch.l3_fwdr"}, CC_COST)
    merged = aggregate_cost(
        mod, profile, {"l3_switch.l2_clsfr", "l3_switch.l3_fwdr"}, CC_COST
    )
    assert merged < a + b  # the connecting channel's put+get disappeared


# -- formation (Figure 7) ---------------------------------------------------------


def test_formation_merges_hot_path_single_aggregate():
    mod, profile = _profiled(MINI_FORWARDER, arp_fraction=0.1, seed=2)
    opts = options_for("SWC")
    plan = form_aggregates(mod, profile, opts)
    assert len(plan.me_aggregates) == 1
    hot = plan.me_aggregates[0]
    assert "l3_switch.l2_clsfr" in hot.ppfs
    assert "l3_switch.l3_fwdr" in hot.ppfs
    # The hot aggregate is replicated across all programmable MEs.
    assert hot.me_count == opts.num_mes


def test_formation_maps_cold_ppf_to_xscale():
    mod, profile = _profiled(MINI_FORWARDER, arp_fraction=0.04, seed=2)
    plan = form_aggregates(mod, profile, options_for("SWC"))
    xscale_ppfs = [p for agg in plan.xscale_aggregates for p in agg.ppfs]
    assert "l3_switch.arp_handler" in xscale_ppfs


def test_formation_respects_code_store_limit():
    mod, profile = _profiled(MINI_FORWARDER, arp_fraction=0.1)
    from repro.cg.codesize import estimate_closure

    opts0 = options_for("BASE")
    biggest = max(
        estimate_closure(mod, [fn.name], opts0) for fn in mod.ppfs()
    )
    # Each PPF fits alone, but no two can merge.
    opts = options_for("BASE", me_code_store=int(biggest * 1.2))
    plan = form_aggregates(mod, profile, opts)
    assert len(plan.me_aggregates) >= 2  # forced pipeline


def test_formation_pipeline_splits_when_merged_too_big():
    mod, profile = _profiled(MINI_FORWARDER, arp_fraction=0.1)
    from repro.cg.codesize import estimate_closure

    opts0 = options_for("BASE")
    # Choose a limit that fits each PPF alone but not two together.
    limit = int(
        max(estimate_closure(mod, [fn.name], opts0) for fn in mod.ppfs()) * 1.2
    )
    plan = form_aggregates(mod, profile, options_for("BASE", me_code_store=limit))
    assert all(a.code_size <= limit for a in plan.me_aggregates)
    assert len(plan.me_aggregates) >= 2


def test_internal_channels_identified():
    mod, profile = _profiled(MINI_FORWARDER, arp_fraction=0.1, seed=2)
    plan = form_aggregates(mod, profile, options_for("SWC"))
    assert "l3_switch.l3_forward_cc" in plan.internal_channels
    assert "rx" not in plan.internal_channels
    assert "l3_switch.arp_cc" not in plan.internal_channels  # crosses to XScale


def test_apply_plan_rewrites_puts_to_calls():
    mod, profile = _profiled(MINI_FORWARDER, arp_fraction=0.1, seed=2)
    plan = form_aggregates(mod, profile, options_for("SWC"))
    apply_plan(mod, plan)
    verify_module(mod)
    clsfr = mod.functions["l3_switch.l2_clsfr"]
    calls = [i for i in clsfr.all_instrs() if isinstance(i, I.Call)]
    assert any(c.func == "l3_switch.l3_fwdr" for c in calls)
    puts = [i for i in clsfr.all_instrs() if isinstance(i, I.ChanPut)]
    # The hot forwarding channel is gone; channels to cold (XScale) PPFs
    # remain rings.
    remaining = {p.channel for p in puts}
    assert "l3_switch.l3_forward_cc" not in remaining
    assert "l3_switch.arp_cc" in remaining


def test_apply_plan_preserves_semantics():
    trace = ipv4_trace(30, [0xC0A80101], MACS, arp_fraction=0.2, seed=5)
    ref = run_reference(lower(MINI_FORWARDER), trace)
    mod = lower(MINI_FORWARDER)
    profile = run_reference(lower(MINI_FORWARDER), trace).profile
    plan = form_aggregates(mod, profile, options_for("SWC"))
    apply_plan(mod, plan)
    inline.run(mod)
    for fn in mod.functions.values():
        scalar_optimize_function(fn)
    verify_module(mod)
    got = run_reference(mod, trace)
    assert got.tx_signature() == ref.tx_signature()


def test_fast_functions_cover_callees():
    mod, profile = _profiled(MINI_FORWARDER, arp_fraction=0.1, seed=2)
    plan = form_aggregates(mod, profile, options_for("SWC"))
    fast = plan.fast_functions(mod)
    assert "mix" in fast
    assert "l3_switch.l2_clsfr" in fast
    assert "l3_switch.arp_handler" not in fast


def test_compile_ir_end_to_end_mid_end():
    from repro.compiler import compile_baker

    trace = ipv4_trace(40, [0xC0A80101, 0xC0A80202], MACS, arp_fraction=0.1, seed=7)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace, codegen=False)
    assert result.plan.me_aggregates
    assert result.soar_result is not None
    assert result.phr_result is not None
    # Optimized module still produces the reference output.
    ref = run_reference(lower(MINI_FORWARDER), trace)
    got = run_reference(result.mod, trace)
    assert got.tx_signature() == ref.tx_signature()


def test_compile_ir_all_levels_semantics():
    from repro.compiler import compile_baker
    from repro.options import LEVEL_ORDER

    trace = ipv4_trace(25, [0xC0A80101], MACS, arp_fraction=0.15, seed=9)
    ref = run_reference(lower(MINI_FORWARDER), trace)
    for level in LEVEL_ORDER:
        result = compile_baker(MINI_FORWARDER, options_for(level), trace, codegen=False)
        got = run_reference(result.mod, trace)
        assert got.tx_signature() == ref.tx_signature(), level
