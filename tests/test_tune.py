"""The autotuner's contract, plus the SWC bugfix regressions that ride
in the same change.

Headline regression: Equation-2 enforcement. Before the fix, any
configured ``swc_check_period`` was compiled in verbatim -- a period
whose implied check rate (1/period) fell below a cached global's
``min_check_rate(0.01, stores/pkt, loads/pkt)`` silently violated the
paper's 1% tolerable-error bound. ``enforce_check_period`` now clamps
it and records the clamp as a ledger decision; these tests prove the
silent path is gone. The second bugfix: acceptance evidence records the
estimated hit rate at the CAM capacity a structure *actually* competes
for, not the stale full-CAM estimate.

Tuner properties: byte-identical output across ``--jobs`` counts,
pruner rules against synthetic evidence, fast-forward-explore vs
cycle-accurate-confirm agreement within the engine's published bound,
and fail-fast CLI validation for both ``repro.sweep`` and
``repro.tune``.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.baker import types as T
from repro.baker.symbols import GlobalSymbol, SymbolKind
from repro.ir import instructions as I
from repro.ir.module import IRFunction
from repro.ir.values import Const
from repro.obs import ledger as obs_ledger
from repro.opt import swc
from repro.profiler.stats import ProfileData
from repro.sweep import CompileCache
from repro.tune import pruner
from repro.tune.space import (
    SearchSpace,
    TrialConfig,
    base_trials,
    exclude_trials,
)

PACKETS = 1000


class FakeModule:
    """Just enough module surface for ``select_candidates``."""

    def __init__(self, globals_, functions):
        self.globals = globals_
        self.functions = functions


def _fast_fn(loaded_names):
    fn = IRFunction("fast", "func", T.U32)
    entry = fn.new_block("entry")
    tmp = None
    for name in loaded_names:
        tmp = fn.new_temp(T.U32)
        entry.append(I.LoadG(tmp, name, Const(0), 4))
    entry.terminate(I.Ret(tmp))
    return fn


def _global(name, n_elems=64):
    return GlobalSymbol(SymbolKind.GLOBAL, name,
                        type=T.ArrayType(T.U32, n_elems), qualified=name)


def _profile(**per_global):
    """ProfileData from {name: (loads_by_offset, stores)}."""
    profile = ProfileData(packets_in=PACKETS)
    for name, (offsets, stores) in per_global.items():
        gs = profile.gstat(name)
        gs.load_offsets = Counter(offsets)
        gs.loads = sum(offsets.values())
        gs.stores = stores
    return profile


def _select(profile, names, exclude=()):
    mod = FakeModule({n: _global(n) for n in names},
                     {"fast": _fast_fn(names)})
    return swc.select_candidates(mod, profile, {"fast"}, exclude=exclude)


# -- headline bugfix: Equation-2 enforcement -------------------------------------


def _storing_profile():
    """One hot candidate that *is* written: loads 5/pkt over one line,
    stores 1 per 1000 packets -> Equation 2 minimum check rate
    0.001 * 5 / 0.01 = 0.5, so no period above 2 satisfies the bound."""
    return _profile(hot=({0: 5 * PACKETS}, 1))


def test_eq2_violating_period_is_clamped_with_ledger_decision():
    result = _select(_storing_profile(), ["hot"])
    assert result.cached_names() == ["hot"]
    assert result.eq2_min_check_rate == pytest.approx(0.5)

    led = obs_ledger.DecisionLedger(enabled=True)
    old = obs_ledger._GLOBAL
    obs_ledger._GLOBAL = led
    try:
        effective = swc.enforce_check_period(result, 16)
    finally:
        obs_ledger._GLOBAL = old

    # The old behavior -- compile the requested 16 straight in -- is
    # gone: the period is clamped to floor(1/0.5) = 2.
    assert effective == 2
    assert result.requested_check_period == 16
    assert result.check_period == 2
    clamps = [d for d in led.decisions if d.subject == "check_period"]
    assert len(clamps) == 1 and clamps[0].verdict == "clamped"
    assert clamps[0].evidence["requested_period"] == 16
    assert clamps[0].evidence["effective_period"] == 2
    assert clamps[0].evidence["eq2_min_check_rate"] == pytest.approx(0.5)


def test_satisfiable_period_passes_through_unclamped():
    result = _select(_storing_profile(), ["hot"])
    assert swc.enforce_check_period(result, 2) == 2
    assert result.check_period == 2
    # Never-written candidates (eq2 == 0) never clamp any period.
    result2 = _select(_profile(hot=({0: 5 * PACKETS}, 0)), ["hot"])
    assert result2.eq2_min_check_rate == 0.0
    assert swc.enforce_check_period(result2, 10 ** 9) == 10 ** 9


def test_eq2_unsatisfiable_candidate_rejected_outright():
    """A candidate whose Equation-2 minimum exceeds one check per
    packet cannot be cached at any integer period."""
    # loads 20/pkt, stores 1/pkt-ish: rate = 0.02 * 20 / 0.01 = 40 > 1.
    # Keep the store/load ratio under the screening threshold (0.01).
    profile = _profile(hot=({0: 20 * PACKETS}, 20))
    result = _select(profile, ["hot"])
    assert result.cached == []
    assert "Equation 2 unsatisfiable" in result.rejected["hot"]


def test_compiled_app_records_enforced_period():
    """Through the full compiler, the enforced period lands on the
    SwcResult (mpls's accepted candidates are never stored during the
    profile, so the stock period is admissible unchanged -- the point
    is that it now flows through enforce_check_period, not around it)."""
    result, _trace, _hit = CompileCache().get_or_compile("mpls", "SWC",
                                                         200, 5)
    sr = result.swc_result
    assert sr is not None and sr.cached
    assert sr.requested_check_period == 16
    assert sr.check_period == 16
    assert sr.eq2_min_check_rate == 0.0
    # ... and the capacity-aware acceptance evidence is recorded.
    for name in sr.cached_names():
        assert set(sr.evidence[name]) >= {"loads_per_packet", "hit_rate",
                                          "cam_capacity",
                                          "eq2_min_check_rate"}


# -- bugfix: acceptance evidence at actual CAM capacity --------------------------


def test_hit_rate_recorded_at_remaining_capacity():
    """The second admitted structure competes for what the first left
    (16 - 4 = 12 lines), so its recorded hit rate must be the 12-line
    estimate, not the stale full-CAM one."""
    hot = {off * 4: 1250 for off in range(4)}  # 4 equal lines, ws=4
    # 1 dominant line + 13 cold ones: 14 distinct lines > 12 remaining.
    warm = {0: 860}
    warm.update({(1 + i) * 4: 10 for i in range(13)})
    profile = _profile(hot=(hot, 0), warm=(warm, 0))
    result = _select(profile, ["hot", "warm"])
    assert result.cached_names() == ["hot", "warm"]

    ev = result.evidence["warm"]
    assert ev["cam_capacity"] == 12.0
    stats = profile.global_stats["warm"]
    assert ev["hit_rate"] == pytest.approx(
        stats.estimated_hit_rate(12, 1))
    # The stale full-CAM estimate is strictly higher -- the old bug.
    assert stats.estimated_hit_rate(16, 1) > ev["hit_rate"]
    assert result.evidence["hot"]["cam_capacity"] == 16.0


def test_swc_exclude_rejects_before_selection():
    profile = _profile(hot=({0: 5 * PACKETS}, 0))
    result = _select(profile, ["hot"], exclude=("hot",))
    assert result.cached == []
    assert result.rejected["hot"] == "excluded by options (swc_exclude)"


def test_options_for_normalizes_exclude_order():
    from repro.options import options_for

    a = options_for("SWC", swc_exclude=["b", "a"])
    b = options_for("SWC", swc_exclude=("a", "b"))
    assert a.swc_exclude == ("a", "b")
    assert a == b


# -- pruner rules against synthetic evidence -------------------------------------


def _summary(cached=(), rejected=None, eq2=0.0):
    return {"cached": list(cached), "rejected": dict(rejected or {}),
            "evidence": {}, "eq2_min_check_rate": eq2,
            "requested_check_period": 16, "check_period": 16}


def test_pruner_noop_excludes():
    base = TrialConfig("SWC", (("swc_check_period", 16),))
    summary = _summary(cached=["ilm"], rejected={"ftn": "too cold"})
    variants = exclude_trials(base, summary)
    assert [v.override_dict()["swc_exclude"] for v in variants] == \
        [("ftn",), ("ilm",)]

    kept, pruned = pruner.prune_noop_excludes(variants, summary, 4)
    assert [t.override_dict()["swc_exclude"] for t in kept] == [("ilm",)]
    assert len(pruned) == 1
    rec = pruned[0].to_record()
    assert rec["rule"] == "noop-exclude"
    assert rec["trials_skipped"] == 4
    assert rec["provenance"]["decisions"] == {"ftn": "too cold"}


def test_pruner_clamped_periods():
    trials = [TrialConfig("SWC", (("swc_check_period", p),))
              for p in (4, 16, 64)]
    # eq2 0.1 -> max effective period 10: both 16 and 64 clamp to 10,
    # so one of them (the lowest) represents the region.
    kept, pruned = pruner.prune_clamped_periods(
        trials, _summary(cached=["x"], eq2=0.1), 3)
    periods = [t.override_dict()["swc_check_period"] for t in kept]
    assert periods == [4, 16]
    assert len(pruned) == 1
    assert pruned[0].rule == "period-beyond-clamp"
    assert pruned[0].provenance["max_effective_period"] == 10
    # No stores -> no bound -> nothing pruned.
    kept2, pruned2 = pruner.prune_clamped_periods(
        trials, _summary(cached=["x"], eq2=0.0), 3)
    assert len(kept2) == 3 and pruned2 == []


def _occ(kind, channel="dram", util=0.99):
    return {"verdict": {"kind": kind, "channel": channel,
                        "text": "%s on %s" % (kind, channel)},
            "channels": {channel: {"utilization": util}}}


def test_pruner_memory_bound_mes():
    cfg = TrialConfig("SWC", (("swc_check_period", 16),))
    # Saturated + no rate gain at 3 MEs -> 4 is pruned.
    kept, pruned = pruner.prune_memory_bound_mes(
        cfg, [1, 2, 3, 4], {1: 0.5, 2: 0.8, 3: 0.79},
        {1: _occ("latency-bound"), 2: _occ("memory-bound", util=0.97),
         3: _occ("memory-bound", util=0.99)})
    assert kept == [1, 2, 3]
    assert len(pruned) == 1 and pruned[0].rule == "memory-bound-mes"
    assert pruned[0].provenance["n_mes"] == 3

    # Still scaling at 2 MEs despite saturation: nothing pruned yet.
    kept2, pruned2 = pruner.prune_memory_bound_mes(
        cfg, [1, 2, 3], {1: 0.5, 2: 0.8},
        {1: _occ("latency-bound"), 2: _occ("memory-bound", util=0.99)})
    assert kept2 == [1, 2, 3] and pruned2 == []

    # Memory-bound but under the saturation threshold: not pruned.
    kept3, pruned3 = pruner.prune_memory_bound_mes(
        cfg, [1, 2, 3], {1: 0.5, 2: 0.49},
        {1: _occ("latency-bound"), 2: _occ("memory-bound", util=0.8)})
    assert kept3 == [1, 2, 3] and pruned3 == []


def test_base_trials_enumeration():
    space = SearchSpace(app="mpls", levels=("PHR", "SWC"),
                        check_periods=(4, 64), target_gbps=(2.5,))
    labels = [t.label() for t in base_trials(space)]
    assert labels == ["PHR", "SWC[swc_check_period=4]",
                      "SWC[swc_check_period=64]"]


# -- the tuner end to end --------------------------------------------------------

TINY = SearchSpace(app="mpls", levels=("SWC",), check_periods=(16,),
                   me_counts=(1, 2), confirm_top=1)


@pytest.fixture(scope="module")
def tiny_outcomes():
    """The tiny space tuned twice -- inline and with two workers --
    against the shared on-disk compile cache."""
    from repro.tune.driver import run_tune

    return (run_tune(TINY, n_jobs=1, cache=CompileCache()),
            run_tune(TINY, n_jobs=2, cache=CompileCache()))


def test_tune_jobs1_vs_jobs2_byte_identical(tiny_outcomes, tmp_path):
    from repro.tune.report import tune_payload, write_bench

    o1, o2 = tiny_outcomes
    blob1 = json.dumps(tune_payload([o1]), sort_keys=True)
    blob2 = json.dumps(tune_payload([o2]), sort_keys=True)
    assert blob1 == blob2

    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    p1 = write_bench([o1], str(tmp_path / "a"))
    p2 = write_bench([o2], str(tmp_path / "b"))
    with open(p1, "rb") as fh1, open(p2, "rb") as fh2:
        assert fh1.read() == fh2.read()


def test_tune_outcome_shape(tiny_outcomes):
    o1, _ = tiny_outcomes
    # Evidence pruning fired: every exclude variant of a rejected
    # global was killed before simulation, with provenance.
    noop = [p for p in o1.pruned if p.rule == "noop-exclude"]
    assert noop, "expected ledger-pruned regions on mpls"
    assert all(p.provenance["decisions"] for p in noop)
    # Real exclude variants of *cached* globals were explored.
    explored_excludes = {
        c.config.override_dict().get("swc_exclude")
        for c in o1.cells if "swc_exclude" in c.config.override_dict()}
    assert explored_excludes
    # A winner was confirmed cycle-accurately against the committed
    # baseline at the same ME count.
    assert o1.best is not None and o1.best.confirmed_gbps > 0
    assert o1.baseline is not None
    assert o1.baseline["n_mes"] == o1.best.n_mes
    assert o1.baseline["source"] == "BENCH_fig15.json"


def test_tune_diff_gate_flags_lost_pruning(tiny_outcomes, tmp_path):
    from repro.obs import diff as obs_diff
    from repro.tune.report import write_bench

    o1, _ = tiny_outcomes
    (tmp_path / "old").mkdir()
    p_old = write_bench([o1], str(tmp_path / "old"))
    with open(p_old) as fh:
        data = json.load(fh)
    data["apps"]["mpls"]["pruned_regions"] = []
    p_new = str(tmp_path / "BENCH_new.json")
    with open(p_new, "w") as fh:
        json.dump(data, fh)

    text, code = obs_diff.run_diff(p_old, p_old)
    assert code == 0, text
    text, code = obs_diff.run_diff(p_old, p_new)
    assert code == obs_diff.EXIT_REGRESSION
    assert "pruning vanished" in text


# -- explore/confirm agreement ---------------------------------------------------


def test_explore_confirm_agreement_on_tuned_config():
    """A tuned configuration's fast-forward rate must agree with the
    cycle-accurate engine's *converged* estimate within the engine's
    published bound (the confirm phase's shallow figure windows are a
    different, noisier estimator -- the bound is defined against the
    converged reference, as in tests/test_fastforward.py)."""
    from repro.ixp import fastforward as ff
    from repro.rts.system import run_on_simulator

    overrides = (("swc_check_period", 64),)
    result, trace, _hit = CompileCache().get_or_compile(
        "mpls", "SWC", 200, 5, overrides=overrides)
    plan = ff.get_plan(result, trace,
                       plan_key=("mpls", "SWC", 200, 5, overrides, 2.5))
    gbps, mode = plan.rate(1)
    assert mode == "anchored"
    ref = run_on_simulator(result, trace, n_mes=1,
                           warmup_packets=ff.REF_WARMUP,
                           measure_packets=ff.REF_MEASURE,
                           max_cycles=ff.ANCHOR_MAX_CYCLES,
                           dispatch="fast").forwarding_gbps
    err = 100.0 * abs(gbps - ref) / ref
    assert err <= ff.RATE_ERROR_BOUND_PCT, (
        "tuned-config fast-forward off by %.2f%%" % err)


# -- CLI fail-fast validation ----------------------------------------------------


def _expect_cli_error(main, argv, token, capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(argv)
    assert exc_info.value.code == 2
    err = capsys.readouterr().err
    assert token in err, err


def test_sweep_cli_fails_fast(capsys):
    from repro.sweep.__main__ import main

    _expect_cli_error(main, ["--apps", "mpls,nosuchapp"], "nosuchapp",
                      capsys)
    _expect_cli_error(main, ["--levels", "SWC,TURBO"], "TURBO", capsys)
    _expect_cli_error(main, ["--me-counts", "1,0"], "0", capsys)
    _expect_cli_error(main, ["--me-counts", "1,two"], "two", capsys)
    _expect_cli_error(main, ["--jobs", "0"], "--jobs", capsys)


def test_tune_cli_fails_fast(capsys):
    from repro.tune.__main__ import main

    _expect_cli_error(main, ["--app", "nosuchapp"], "nosuchapp", capsys)
    _expect_cli_error(main, ["--apps", "mpls,bogus"], "bogus", capsys)
    _expect_cli_error(main, ["--levels", "SWC,TURBO"], "TURBO", capsys)
    _expect_cli_error(main, ["--me-counts", "-1"], "-1", capsys)
    _expect_cli_error(main, ["--check-periods", "0"], "0", capsys)
    _expect_cli_error(main, ["--jobs", "0"], "--jobs", capsys)
    _expect_cli_error(main, ["--confirm-top", "0"], "--confirm-top",
                      capsys)
