"""Decision ledger (repro.obs.ledger), compile reports, the explain
view, and repro.obs.diff: recording semantics, the pure-observation
guarantee (ledger-on == ledger-off, bit for bit), report determinism,
and diff/gate exit codes."""

import json

import pytest

from repro.apps import get_app
from repro.compiler import compile_baker
from repro.obs import ledger as obs_ledger
from repro.obs.diff import EXIT_REGRESSION
from repro.obs.diff import main as diff_main
from repro.obs.ledger import (
    DecisionLedger,
    compile_report,
    decision_counts,
    write_compile_report,
)
from repro.obs.report import main as report_main
from repro.options import options_for
from repro.profiler.trace import ipv4_trace
from repro.rts.system import run_on_simulator

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


@pytest.fixture
def clean_ledger():
    """Leave the process-global ledger exactly as we found it."""
    led = obs_ledger.get_ledger()
    was_enabled = led.enabled
    saved = led.decisions
    led.decisions = []
    yield led
    led.enabled = was_enabled
    led.decisions = saved


def _mini_result():
    from tests.samples import MINI_FORWARDER

    trace = ipv4_trace(60, [0xC0A80101], MACS, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("SWC"), trace)
    return result, trace


def _l3switch_result(level):
    app = get_app("l3switch")
    trace = app.make_trace(150, seed=5)
    return compile_baker(app.source, options_for(level), trace), trace


# -- ledger semantics -----------------------------------------------------------------


def test_disabled_ledger_records_nothing():
    led = DecisionLedger(enabled=False)
    led.record("pac", "f", "combined_loads", members=3)
    assert led.decisions == []


def test_record_normalizes_and_orders_evidence():
    led = DecisionLedger(enabled=True)
    led.record("swc", "tbl", "accepted", reason="hot",
               z_rate=0.123456789, flag=True, skipped=None, n=4)
    (d,) = led.decisions
    assert d.seq == 0 and d.pass_name == "swc" and d.verdict == "accepted"
    # None dropped, bool -> int, float rounded, keys sorted.
    assert list(d.evidence) == ["flag", "n", "z_rate"]
    assert d.evidence == {"flag": 1, "n": 4, "z_rate": 0.123457}
    rec = d.to_record()
    assert rec["pass"] == "swc" and rec["reason"] == "hot"


def test_mark_since_and_counts():
    led = DecisionLedger(enabled=True)
    led.record("a", "x", "v1")
    mark = led.mark()
    led.record("b", "y", "v2")
    led.record("b", "z", "v2")
    sl = led.since(mark)
    assert [d.pass_name for d in sl] == ["b", "b"]
    assert decision_counts(sl) == {"b": {"v2": 2}}


# -- pure observation: ledger on/off is bit-identical ---------------------------------


def _signature(result):
    """Everything compilation produced, minus the decisions themselves."""
    report = compile_report(result)
    del report["decisions"]
    del report["decision_counts"]
    return json.dumps(report, sort_keys=True)


def test_ledger_on_off_compile_and_sim_bit_identical(clean_ledger):
    led = clean_ledger
    led.enabled = False
    off_result, trace = _mini_result()
    off_run = run_on_simulator(off_result, trace, n_mes=2,
                               warmup_packets=30, measure_packets=90)

    led.enabled = True
    on_result, trace_on = _mini_result()
    on_run = run_on_simulator(on_result, trace_on, n_mes=2,
                              warmup_packets=30, measure_packets=90)

    assert led.decisions, "enabled ledger recorded nothing"
    assert not off_result.decisions
    assert on_result.decisions
    # Compilation output identical: images, plan, opt results, IR size.
    assert _signature(on_result) == _signature(off_result)
    assert on_result.fast_functions == off_result.fast_functions
    # Simulation identical down to the bytes on the wire.
    assert on_run.tx_signature() == off_run.tx_signature()
    assert on_run.forwarding_gbps == off_run.forwarding_gbps
    assert on_run.sim_cycles == off_run.sim_cycles


# -- decision content ------------------------------------------------------------------


def test_l3switch_swc_report_contents(clean_ledger):
    led = clean_ledger
    led.enabled = True
    result, _ = _l3switch_result("SWC")
    report = compile_report(result, app="l3switch")

    assert report["kind"] == "compile_report" and report["app"] == "l3switch"
    counts = report["decision_counts"]
    # Every instrumented layer shows up for the fully optimized compile.
    assert counts["aggregation"]["merged"] >= 1
    assert counts["inline"]["inlined"] >= 1
    assert counts["pac"]["combined_loads"] >= 1
    assert counts["soar"]["resolved"] >= 1
    assert counts["swc"]["accepted"] >= 1
    assert counts["swc"]["rejected"] >= 1
    assert counts["codesize"]["fits"] >= 1
    assert counts["melayout"]["lm_only"] + counts["melayout"].get(
        "sram_overflow", 0) >= 1

    for rec in report["decisions"]:
        assert set(rec) >= {"seq", "pass", "subject", "verdict"}
    # seq is re-based to the compile's own slice.
    assert report["decisions"][0]["seq"] == 0

    # SWC records carry the Equation 2 evidence.
    accepted = [d for d in report["decisions"]
                if d["pass"] == "swc" and d["verdict"] == "accepted"]
    assert accepted
    ev = accepted[0]["evidence"]
    assert {"loads_per_packet", "stores_per_packet", "hit_rate",
            "eq2_min_check_rate", "working_set_lines"} <= set(ev)
    # The rejected dict in the opt section matches the rejected decisions.
    rejected = {d["subject"] for d in report["decisions"]
                if d["pass"] == "swc" and d["verdict"] == "rejected"}
    assert rejected == set(report["opt"]["swc"]["rejected"])


def test_report_is_deterministic(clean_ledger, tmp_path):
    led = clean_ledger
    led.enabled = True
    r1, _ = _mini_result()
    p1 = write_compile_report(r1, str(tmp_path / "a.json"))
    r2, _ = _mini_result()
    p2 = write_compile_report(r2, str(tmp_path / "b.json"))
    with open(p1) as fa, open(p2) as fb:
        assert fa.read() == fb.read()


# -- explain ---------------------------------------------------------------------------


def test_explain_renders_decisions(clean_ledger, tmp_path, capsys):
    led = clean_ledger
    led.enabled = True
    result, _ = _mini_result()
    path = write_compile_report(result, str(tmp_path / "r.json"), app="mini")
    assert report_main(["explain", path]) == 0
    out = capsys.readouterr().out
    assert "compile report" in out and "app=mini" in out
    assert "[aggregation]" in out
    assert "decisions:" in out


def test_explain_errors_exit_nonzero(tmp_path, capsys):
    assert report_main(["explain", str(tmp_path / "missing.json")]) == 1
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{nope")
    assert report_main(["explain", str(corrupt)]) == 1
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"kind": "bench"}))
    assert report_main(["explain", str(wrong)]) == 1
    capsys.readouterr()


# -- report --json ---------------------------------------------------------------------


def test_report_json_flag(tmp_path, capsys):
    jsonl = tmp_path / "m.jsonl"
    jsonl.write_text(
        json.dumps({"type": "counter", "name": "opt.scalar.fn_runs",
                    "value": 3, "labels": {"app": "x"}}) + "\n"
        + json.dumps({"type": "gauge", "name": "compile.ir.instrs",
                      "value": 100, "labels": {"app": "x",
                                               "stage": "initial"}}) + "\n")
    assert report_main([str(jsonl), "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["kind"] == "metrics_report"
    (scope,) = data["scopes"]
    assert scope["labels"] == {"app": "x"}
    assert scope["sections"]["opt"] == {"opt.scalar.fn_runs": 3}
    assert scope["sections"]["ir"]["initial"]["instrs"] == 100


def test_report_json_flag_keeps_error_exits(tmp_path, capsys):
    assert report_main([str(tmp_path / "missing.jsonl"), "--json"]) == 1
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert report_main([str(empty), "--json"]) == 1
    capsys.readouterr()


# -- diff ------------------------------------------------------------------------------


def test_diff_identical_reports_exit_zero(clean_ledger, tmp_path, capsys):
    led = clean_ledger
    led.enabled = True
    result, _ = _mini_result()
    path = write_compile_report(result, str(tmp_path / "r.json"))
    assert diff_main([path, path]) == 0
    out = capsys.readouterr().out
    assert "identical" in out and "no regressions" in out


def test_diff_base_vs_swc_shows_expected_deltas(clean_ledger, tmp_path,
                                                capsys):
    led = clean_ledger
    led.enabled = True
    base, _ = _l3switch_result("BASE")
    p_base = write_compile_report(base, str(tmp_path / "base.json"))
    led.decisions = []
    swc, _ = _l3switch_result("SWC")
    p_swc = write_compile_report(swc, str(tmp_path / "swc.json"))

    assert diff_main([p_base, p_swc]) == 0
    out = capsys.readouterr().out
    # The acceptance-criteria deltas: nonzero PAC combines + SWC accepts.
    assert "pac" in out and "combined_loads" in out
    assert "swc" in out and "accepted" in out
    assert "decision deltas:" in out


def test_diff_bench_gates_rate_regressions(tmp_path, capsys):
    old = {"kind": "bench", "figure": "fig13", "app": "l3switch",
           "me_counts": [1, 2], "rates": {"SWC": [1.0, 2.0]}}
    good = dict(old, rates={"SWC": [1.0, 1.95]})   # -2.5%: within tolerance
    bad = dict(old, rates={"SWC": [1.0, 1.5]})     # -25%: regression
    po, pg, pb = (tmp_path / n for n in ("o.json", "g.json", "b.json"))
    po.write_text(json.dumps(old))
    pg.write_text(json.dumps(good))
    pb.write_text(json.dumps(bad))

    assert diff_main([str(po), str(po)]) == 0
    assert diff_main([str(po), str(pg)]) == 0
    assert diff_main([str(po), str(pb)]) == EXIT_REGRESSION
    out = capsys.readouterr().out
    assert "REGRESSIONS:" in out
    # A looser tolerance lets the same pair pass.
    assert diff_main([str(po), str(pb), "--tolerance", "0.5"]) == 0
    capsys.readouterr()


def test_diff_errors_exit_one(tmp_path, capsys):
    missing = str(tmp_path / "missing.json")
    assert diff_main([missing, missing]) == 1
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"kind": "bench", "rates": {}}))
    compile_p = tmp_path / "compile.json"
    compile_p.write_text(json.dumps({"kind": "compile_report"}))
    assert diff_main([str(bench), str(compile_p)]) == 1
    capsys.readouterr()


def test_diff_compile_gate_flags_code_size_growth(tmp_path, capsys):
    old = {"kind": "compile_report", "level": "SWC",
           "images": {"agg": {"code_size": 1000}}, "decision_counts": {}}
    new = {"kind": "compile_report", "level": "SWC",
           "images": {"agg": {"code_size": 1200}}, "decision_counts": {}}
    po, pn = tmp_path / "o.json", tmp_path / "n.json"
    po.write_text(json.dumps(old))
    pn.write_text(json.dumps(new))
    # Without --gate: reported but exit 0.
    assert diff_main([str(po), str(pn)]) == 0
    # With --gate: 20% growth beyond the 5% tolerance fails.
    assert diff_main([str(po), str(pn), "--gate"]) == EXIT_REGRESSION
    capsys.readouterr()
