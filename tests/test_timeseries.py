"""Streaming time-series observability (repro.obs.timeseries): sketch
accuracy against exact percentiles, window/boundary semantics, counter
snapshot-and-reset, update-impact analysis, the timeline report, and
the streaming PacketTracer's bounded-memory mode."""

import bisect
import json
import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    QuantileSketch,
    StreamingQuantile,
    TimeseriesCollector,
    _nearest_rank,
    load_timeseries,
    update_impact,
    window_drops,
)

# -- quantile sketch ------------------------------------------------------------

#: Documented accuracy bound (DESIGN.md section 11): above the exact
#: prefix, the P^2 estimate stays within this *rank* distance of the
#: true quantile -- est lies between exact(q - DELTA) and
#: exact(q + DELTA). Observed rank error on these inputs is under
#: 0.01; the bound leaves headroom.
RANK_DELTA = 0.02
RANK_DELTA_HEAVY = 0.03  # heavy-tailed inputs (zipf/pareto)

QUANTILES = (0.5, 0.95, 0.99)


def _assert_rank_bound(vals, q, est, delta):
    srt = sorted(vals)
    lo = _nearest_rank(srt, max(0.001, q - delta))
    hi = _nearest_rank(srt, min(0.999, q + delta))
    assert lo <= est <= hi, (
        "q=%g estimate %g outside rank bound [%g, %g] (delta=%g)"
        % (q, est, lo, hi, delta))


def _sketch_all(vals):
    ests = {}
    for q in QUANTILES:
        sq = StreamingQuantile(q)
        for v in vals:
            sq.add(v)
        ests[q] = sq.value()
    return ests


def test_sketch_exact_below_limit():
    rng = random.Random(11)
    vals = [rng.random() * 100 for _ in range(200)]  # < exact_limit=256
    for q in QUANTILES:
        sq = StreamingQuantile(q)
        for v in vals:
            sq.add(v)
        assert sq.value() == _nearest_rank(sorted(vals), q)


def test_sketch_uniform_within_rank_bound():
    rng = random.Random(1)
    vals = [rng.random() * 1000 for _ in range(20_000)]
    for q, est in _sketch_all(vals).items():
        _assert_rank_bound(vals, q, est, RANK_DELTA)
        # Uniform is also tight in value terms.
        exact = _nearest_rank(sorted(vals), q)
        assert est == pytest.approx(exact, rel=0.02)


def test_sketch_zipf_within_rank_bound():
    """Heavy-tailed input (the latency shape a zipf flow mix produces):
    value error at p99 can be several percent, but the *rank* of the
    estimate stays within the documented bound."""
    rng = random.Random(2)
    vals = [rng.paretovariate(1.3) for _ in range(20_000)]
    for q, est in _sketch_all(vals).items():
        _assert_rank_bound(vals, q, est, RANK_DELTA_HEAVY)


def test_sketch_adversarial_monotone_inputs():
    """Sorted input is the classic P^2 stress case: every observation
    lands past the last marker (ascending) or before the first
    (descending)."""
    asc = [float(i) for i in range(20_000)]
    for q, est in _sketch_all(asc).items():
        _assert_rank_bound(asc, q, est, RANK_DELTA)
    desc = list(reversed(asc))
    for q, est in _sketch_all(desc).items():
        _assert_rank_bound(desc, q, est, RANK_DELTA)


def test_sketch_rank_error_is_small_in_practice():
    """A bimodal mixed workload (the hardest realistic shape: a quantile
    marker can sit in the gap between modes) still honors the heavy-tail
    rank bound."""
    rng = random.Random(3)
    vals = [rng.gauss(2000, 300) for _ in range(10_000)]
    vals += [rng.paretovariate(1.5) * 100 for _ in range(10_000)]
    srt = sorted(vals)
    for q, est in _sketch_all(vals).items():
        rank = bisect.bisect_left(srt, est) / len(srt)
        assert abs(rank - q) < RANK_DELTA_HEAVY


def test_quantile_sketch_summary_keys_and_stats():
    s = QuantileSketch()
    assert s.summary() == {"count": 0, "min": 0.0, "p50": 0.0, "p95": 0.0,
                           "p99": 0.0, "mean": 0.0, "max": 0.0}
    for v in (5.0, 1.0, 3.0):
        s.add(v)
    out = s.summary()
    assert out["count"] == 3 and out["min"] == 1.0 and out["max"] == 5.0
    assert out["mean"] == pytest.approx(3.0)
    assert out["p50"] == 3.0  # exact below the limit


def test_streaming_quantile_rejects_bad_q():
    with pytest.raises(ValueError):
        StreamingQuantile(0.0)
    with pytest.raises(ValueError):
        StreamingQuantile(1.0)


# -- registry snapshot_and_reset ------------------------------------------------


def test_snapshot_and_reset_drains_counters_only():
    reg = MetricsRegistry(enabled=True)
    reg.counter("a").inc(3)
    reg.counter("b", cause="x").inc()
    reg.counter("zero")  # never incremented -> not snapshotted
    reg.gauge("g").set(7)

    recs = reg.snapshot_and_reset()
    assert [(r["name"], r["value"]) for r in recs] == [("a", 3), ("b", 1)]
    # Counters were zeroed, the gauge untouched.
    assert reg.counter("a").value == 0
    assert reg.gauge("g").value == 7
    assert reg.snapshot_and_reset() == []
    # The same counter object keeps accumulating after a reset.
    reg.counter("a").inc(2)
    assert [(r["name"], r["value"])
            for r in reg.snapshot_and_reset()] == [("a", 2)]


# -- window semantics -----------------------------------------------------------


def test_window_alignment_and_boundary_event():
    """An event at exactly boundary k*W belongs to window k (the chip
    ticks elapsed boundaries before running an event's action)."""
    c = TimeseriesCollector(window_cycles=100.0)
    assert c.window_index(99.999) == 0
    assert c.window_index(100.0) == 1

    c.annotate(50.0, "update", churn="a")     # window 0
    c.annotate(100.0, "update", churn="b")    # exactly on boundary -> 1
    c.annotate(150.0, "update", churn="c")    # window 1
    # The chip's contract: tick(100) runs BEFORE the t=100 action, so
    # window 0 closes without the boundary event...
    c.tick(100.0)
    assert [e["churn"] for e in c.windows[0]["events"]] == ["a"]
    c.tick(200.0)
    # ...and window 1 carries both the boundary event and the interior.
    assert [e["churn"] for e in c.windows[1]["events"]] == ["b", "c"]
    assert c.windows[0]["t_start"] == 0.0
    assert c.windows[0]["t_end"] == 100.0
    assert c.windows[1]["window"] == 1


def test_counter_sources_deltas_land_per_window():
    class FakeRx:
        sent = 0
        dropped_freelist = 0
        dropped_ring_full = 0

    rx = FakeRx()
    c = TimeseriesCollector(window_cycles=100.0)
    c.attach(rx=rx)
    rx.sent = 10
    c.tick(100.0)
    rx.sent = 25
    rx.dropped_ring_full = 2
    c.tick(200.0)
    w0, w1 = c.windows
    assert w0["counters"]["rx.offered"] == 10
    assert w1["counters"]["rx.offered"] == 15  # delta, not cumulative
    assert w1["counters"]["rx.dropped{cause=ring_full}"] == 2
    assert window_drops(w1) == 2


def test_registry_events_land_in_their_window():
    c = TimeseriesCollector(window_cycles=100.0)
    c.registry.counter("updates", kind="route-flap").inc()
    c.tick(100.0)
    c.tick(200.0)
    assert c.windows[0]["counters"]["updates{kind=route-flap}"] == 1
    assert "updates{kind=route-flap}" not in c.windows[1]["counters"]


def test_finish_partial_window_and_stranded_annotations():
    c = TimeseriesCollector(window_cycles=100.0)
    c.tick(100.0)
    c.annotate(130.0, "update", churn="late")
    c.annotate(990.0, "update", churn="never")  # window 9 never closes
    c.finish(150.0)
    assert len(c.windows) == 2
    assert c.windows[1]["partial"] is True
    assert c.windows[1]["t_end"] == 150.0
    churns = [e["churn"] for e in c.windows[1]["events"]]
    assert churns == ["late", "never"]  # stranded events flushed, not lost
    assert c.finished_at == 150.0


def test_finish_on_exact_boundary_is_not_partial():
    c = TimeseriesCollector(window_cycles=100.0)
    c.tick(100.0)
    c.finish(200.0)  # run ended exactly on the next boundary
    assert len(c.windows) == 2
    assert "partial" not in c.windows[1]


def test_latency_sketch_resets_per_window_cumulative_does_not():
    c = TimeseriesCollector(window_cycles=100.0)
    for v in (10.0, 20.0):
        c.observe_latency(v)
    c.tick(100.0)
    for v in (30.0, 40.0):
        c.observe_latency(v)
    c.tick(200.0)
    assert c.windows[0]["latency"]["count"] == 2
    assert c.windows[1]["latency"]["count"] == 2
    assert c.windows[1]["latency"]["min"] == 30.0
    assert c.cumulative.summary()["count"] == 4


def test_jsonl_roundtrip_is_deterministic(tmp_path):
    def build():
        c = TimeseriesCollector(window_cycles=100.0)
        c.observe_latency(12.5)
        c.annotate(40.0, "update", churn="route-flap")
        c.registry.counter("updates", kind="route-flap").inc()
        c.tick(100.0)
        c.finish(150.0)
        return c

    p1, p2 = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    build().dump_jsonl(p1, header={"app": "l3switch"})
    build().dump_jsonl(p2, header={"app": "l3switch"})
    assert open(p1, "rb").read() == open(p2, "rb").read()

    header, windows = load_timeseries(p1)
    assert header["app"] == "l3switch"
    assert header["windows"] == 2
    assert windows[0]["events"][0]["churn"] == "route-flap"
    # Every line is valid standalone JSON with sorted keys.
    for line in open(p1):
        rec = json.loads(line)
        assert list(rec) == sorted(rec)


# -- update impact ---------------------------------------------------------------


def _mk_window(idx, rate, p99, drops=0, events=()):
    return {
        "window": idx, "t_start": idx * 100.0, "t_end": (idx + 1) * 100.0,
        "rate_gbps": rate, "latency": {"count": 10, "p50": p99 / 2,
                                       "p95": p99 * 0.9, "p99": p99},
        "counters": {"drop{cause=x}": drops},
        "events": list(events),
    }


def test_update_impact_phases_and_deltas():
    wins = [_mk_window(i, 2.5, 1000.0) for i in range(8)]
    wins[4] = _mk_window(4, 2.0, 1500.0, drops=3,
                         events=[{"t": 450.0, "kind": "update",
                                  "churn": "route-flap"}])
    rows = update_impact(wins, k=2)
    assert len(rows) == 1
    r = rows[0]
    assert r["window"] == 4 and r["churn"] == "route-flap"
    assert r["before"]["windows"] == 2 and r["after"]["windows"] == 2
    assert r["before"]["p99"] == 1000.0
    assert r["during"]["p99"] == 1500.0
    assert r["delta_p99"] == 500.0
    assert r["delta_rate_gbps"] == pytest.approx(-0.5)
    assert r["delta_drops"] == 3


def test_update_impact_clips_at_run_edges():
    wins = [_mk_window(i, 2.5, 1000.0) for i in range(3)]
    wins[0]["events"] = [{"t": 10.0, "kind": "update"}]
    r = update_impact(wins, k=2)[0]
    assert r["before"]["windows"] == 0  # nothing before window 0
    assert r["after"]["windows"] == 2


# -- timeline report -------------------------------------------------------------


def test_timeline_report_renders(tmp_path):
    from repro.obs.report import main as report_main, render_timeline

    c = TimeseriesCollector(window_cycles=100.0)
    c.observe_latency(500.0)
    c.annotate(150.0, "update", churn="route-flap", target="nh_mac[3]")
    c.registry.counter("updates", kind="route-flap").inc()
    c.tick(100.0)
    c.observe_latency(800.0)
    c.tick(200.0)
    path = str(tmp_path / "t.jsonl")
    c.dump_jsonl(path, header={"app": "l3switch", "level": "SWC"})

    header, windows = load_timeseries(path)
    text = render_timeline(header, windows)
    assert "route-flap" in text
    assert "Update impact" in text
    assert "p99" in text
    # Deterministic rendering.
    assert text == render_timeline(*load_timeseries(path))

    assert report_main(["timeline", path]) == 0
    assert report_main(["timeline", str(tmp_path / "missing.jsonl")]) == 1


# -- streaming PacketTracer ------------------------------------------------------


def _run_traced(streaming, **kw):
    from repro.compiler import compile_baker
    from repro.obs.trace import PacketTracer
    from repro.options import options_for
    from repro.profiler.trace import ipv4_trace
    from repro.rts.system import run_on_simulator
    from tests.samples import MINI_FORWARDER

    macs = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]
    trace = ipv4_trace(40, [0xC0A80101], macs, seed=3)
    result = compile_baker(MINI_FORWARDER, options_for("O1"), trace)
    tracer = PacketTracer(streaming=streaming, **kw)
    run = run_on_simulator(result, trace, n_mes=2, warmup_packets=20,
                           measure_packets=60, tracer=tracer)
    return run, tracer


def test_streaming_tracer_bounds_memory_and_counts_truncation():
    run, tracer = _run_traced(True, max_latencies=8, max_events=16)
    assert len(tracer.latencies) <= 8
    assert len(tracer.events) <= 16
    assert tracer.latencies_truncated > 0
    assert tracer.events_truncated > 0
    summary = tracer.latency_summary()
    # The sketch saw every latency even though the ring kept only 8.
    assert summary["count"] == tracer.latencies_truncated + len(
        tracer.latencies)
    assert summary["truncated"] == tracer.latencies_truncated
    assert summary["p99"] >= summary["p50"] >= summary["min"] > 0
    assert tracer.born_total > 0
    assert run.packets_out > 0


def test_streaming_tracer_matches_exact_run():
    """Streaming and exact tracers observe the same simulation; the
    streaming percentiles stay within the sketch's rank bound of the
    exact ones (here both are exact: n < exact_limit)."""
    run_a, exact = _run_traced(False)
    run_b, stream = _run_traced(True)
    assert run_a.tx_signature() == run_b.tx_signature()
    a, b = exact.latency_summary(), stream.latency_summary()
    assert a["count"] == b["count"]
    for key in ("p50", "p95", "p99"):
        assert a[key] == pytest.approx(b[key], rel=1e-9)
    assert a["truncated"] == 0 and b["truncated"] == 0


def test_nonstreaming_summary_unchanged_shape():
    _, tracer = _run_traced(False)
    s = tracer.latency_summary()
    for key in ("count", "min", "p50", "p95", "p99", "mean", "max",
                "truncated"):
        assert key in s
    assert s["truncated"] == 0
