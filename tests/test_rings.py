"""Edge behavior of the scratch-ring model (repro.ixp.rings.Ring).

These pin down the hardware conventions the runtime depends on: a put
into a full ring is *rejected* (counted, ring untouched), a get from an
empty ring returns 0 (which is why packet handles never live at address
0), occupancy is tracked as a high watermark, and stored words are
masked to 32 bits.
"""

from __future__ import annotations

from repro.ixp.rings import Ring, RingSet


def test_put_at_capacity_counts_drop_without_mutating_ring():
    ring = Ring("cc", capacity=2)
    assert ring.put(1) and ring.put(2)
    snapshot = list(ring.items)

    assert ring.put(3) is False
    assert ring.drops == 1
    # The rejected put must not disturb the ring in any observable way.
    assert list(ring.items) == snapshot
    assert len(ring) == 2
    assert ring.puts == 2
    assert ring.max_depth == 2

    # Repeated rejections keep counting but still leave the ring alone.
    assert ring.put(4) is False
    assert ring.drops == 2
    assert list(ring.items) == snapshot


def test_get_on_empty_returns_zero_and_counts():
    ring = Ring("free", capacity=4)
    assert ring.get() == 0
    assert ring.empty_gets == 1
    assert ring.gets == 0  # empty gets are not successful gets

    # After draining, the same convention applies again.
    ring.put(7)
    assert ring.get() == 7
    assert ring.get() == 0
    assert ring.empty_gets == 2
    assert ring.gets == 1


def test_empty_get_is_indistinguishable_from_a_stored_zero():
    # The hardware returns 0 for "empty", so a stored 0 is ambiguous --
    # the runtime convention is that valid handles are never 0.
    ring = Ring("amb", capacity=4)
    ring.put(0)
    assert ring.get() == 0
    assert ring.empty_gets == 0  # this one was a real (stored) zero
    assert ring.get() == 0
    assert ring.empty_gets == 1


def test_max_depth_is_a_high_watermark():
    ring = Ring("hw", capacity=8)
    for v in (1, 2, 3):
        ring.put(v)
    assert ring.max_depth == 3
    ring.get()
    ring.get()
    assert ring.max_depth == 3  # does not fall when the ring drains
    ring.put(4)
    assert ring.max_depth == 3  # occupancy 2 < watermark 3
    for v in (5, 6, 7):
        ring.put(v)
    assert ring.max_depth == 5


def test_values_masked_to_32_bits():
    ring = Ring("mask", capacity=4)
    ring.put(0x1_0000_0005)
    ring.put(-1)
    assert ring.get() == 5
    assert ring.get() == 0xFFFFFFFF
    # FIFO order is preserved through the mask.
    ring.put(0xDEADBEEF)
    ring.put(0x2_DEAD_BEEF)
    assert ring.get() == 0xDEADBEEF
    assert ring.get() == 0xDEADBEEF


def test_ringset_lookup():
    rs = RingSet()
    ring = rs.create("cc0", capacity=16)
    assert rs["cc0"] is ring
    assert rs.get("cc0") is ring
    assert rs.get("missing") is None
