"""Shared Baker source samples used across the test suite."""

ETHER_IPV4_PROTOCOLS = r"""
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
}

protocol ipv4 {
  ver : 4;
  ihl : 4;
  tos : 8;
  length : 16;
  ident : 16;
  flags_frag : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  src : 32;
  dst : 32;
  demux { ihl << 2 };
}
"""

MINI_FORWARDER = (
    ETHER_IPV4_PROTOCOLS
    + r"""
metadata {
  u32 nexthop_id;
}

const u32 ETH_TYPE_IP = 0x0800;
const u32 ETH_TYPE_ARP = 0x0806;

u64 mac_addrs[4] = { 0x0a0000000001, 0x0a0000000002, 0x0a0000000003, 0x0a0000000004 };
shared u32 arp_seen = 0;

u32 mix(u32 x) {
  return (x ^ (x >> 16)) * 0x45d9f3b;
}

module l3_switch {
  channel l3_forward_cc;
  channel l2_bridge_cc;
  channel arp_cc;

  ppf l2_clsfr(ether_pkt *ph) from rx {
    bool is_arp = ph->type == ETH_TYPE_ARP;
    bool forward = ph->dst == mac_addrs[ph->meta.rx_port];
    if (is_arp) {
      channel_put(arp_cc, packet_copy(ph));
    }
    if (forward) {
      ipv4_pkt *iph = packet_decap(ph);
      channel_put(l3_forward_cc, iph);
    } else {
      channel_put(l2_bridge_cc, ph);
    }
  }

  ppf l3_fwdr(ipv4_pkt *iph) from l3_forward_cc {
    u32 h = mix(iph->dst);
    iph->meta.nexthop_id = h & 0xff;
    iph->ttl = iph->ttl - 1;
    ether_pkt *eph = packet_encap(iph, ether);
    eph->src = mac_addrs[0];
    eph->dst = mac_addrs[1];
    eph->type = ETH_TYPE_IP;
    channel_put(tx, eph);
  }

  ppf l2_bridge(ether_pkt *ph) from l2_bridge_cc {
    channel_put(tx, ph);
  }

  ppf arp_handler(ether_pkt *ph) from arp_cc {
    critical (arp_lock) {
      arp_seen = arp_seen + 1;
    }
    packet_drop(ph);
  }

  init {
    arp_seen = 0;
  }
}
"""
)

# The smallest legal program: one PPF that forwards everything.
PASSTHROUGH = (
    ETHER_IPV4_PROTOCOLS
    + r"""
module fwd {
  ppf go(ether_pkt *ph) from rx {
    channel_put(tx, ph);
  }
}
"""
)
