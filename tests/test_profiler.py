"""Tests for the functional profiler: packet model, traces, interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baker.packetmodel import HEADROOM_BYTES, META_RX_PORT
from repro.profiler.hostpackets import HostPacket, get_bits, set_bits
from repro.profiler.interpreter import InterpError, Interpreter, run_reference
from repro.profiler.trace import (
    Trace,
    TracePacket,
    build_ethernet,
    build_ipv4,
    build_mpls_stack,
    build_udp,
    ipv4_checksum,
    ipv4_trace,
    mpls_trace,
    udp_flow_trace,
)
from tests.ir_helpers import lower
from tests.samples import ETHER_IPV4_PROTOCOLS, MINI_FORWARDER, PASSTHROUGH

MACS = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]


# -- bit access primitives ------------------------------------------------------


def test_get_set_bits_roundtrip_simple():
    buf = bytearray(8)
    set_bits(buf, 4, 12, 0xABC)
    assert get_bits(buf, 4, 12) == 0xABC


@settings(max_examples=60)
@given(
    off=st.integers(min_value=0, max_value=40),
    width=st.integers(min_value=1, max_value=48),
    data=st.data(),
)
def test_get_set_bits_roundtrip_property(off, width, data):
    value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    buf = bytearray(16)
    set_bits(buf, off, width, value)
    assert get_bits(buf, off, width) == value


def test_set_bits_leaves_neighbors():
    buf = bytearray(b"\xff" * 4)
    set_bits(buf, 8, 8, 0)
    assert buf == bytearray(b"\xff\x00\xff\xff")


# -- HostPacket --------------------------------------------------------------------


def test_packet_field_access_big_endian():
    pkt = HostPacket(b"\x12\x34\x56\x78")
    assert pkt.load_bits(0, 16) == 0x1234
    pkt.store_bits(16, 16, 0xABCD)
    assert pkt.payload() == b"\x12\x34\xab\xcd"


def test_packet_encap_decap():
    pkt = HostPacket(b"payload!")
    pkt.encap(14)
    assert pkt.length == 22
    assert pkt.head == HEADROOM_BYTES - 14
    pkt.decap(14)
    assert pkt.payload() == b"payload!"


def test_packet_decap_too_far():
    pkt = HostPacket(b"abc")
    with pytest.raises(ValueError):
        pkt.decap(4)


def test_packet_encap_exhausts_headroom():
    pkt = HostPacket(b"x")
    with pytest.raises(ValueError):
        pkt.encap(HEADROOM_BYTES + 1)


def test_packet_tail_ops():
    pkt = HostPacket(b"abcd")
    pkt.add_tail(4)
    assert pkt.length == 8
    pkt.remove_tail(6)
    assert pkt.payload() == b"ab"


def test_packet_copy_independent():
    pkt = HostPacket(b"\x00" * 4, rx_port=2)
    dup = pkt.copy()
    dup.store_bits(0, 8, 0xFF)
    dup.meta[META_RX_PORT] = 1
    assert pkt.load_bits(0, 8) == 0
    assert pkt.meta[META_RX_PORT] == 2
    assert dup.uid != pkt.uid


# -- trace builders -----------------------------------------------------------------


def test_ipv4_checksum_verifies():
    hdr = build_ipv4(0x0A000001, 0xC0A80101)[:20]
    assert ipv4_checksum(hdr) == 0


def test_build_ethernet_pads_to_64():
    frame = build_ethernet(1, 2, 0x0800, b"")
    assert len(frame) == 64


def test_build_mpls_stack_bottom_bit():
    stack = build_mpls_stack([100, 200])
    first = int.from_bytes(stack[0:4], "big")
    second = int.from_bytes(stack[4:8], "big")
    assert (first >> 12) == 100 and not (first >> 8) & 1
    assert (second >> 12) == 200 and (second >> 8) & 1


def test_ipv4_trace_deterministic():
    a = ipv4_trace(20, [1, 2, 3], MACS, seed=7)
    b = ipv4_trace(20, [1, 2, 3], MACS, seed=7)
    assert [p.data for p in a] == [p.data for p in b]


def test_trace_repeated():
    t = ipv4_trace(3, [1], MACS).repeated(10)
    assert len(t) == 10
    assert t.packets[3].data == t.packets[0].data


def test_udp_flow_trace_shape():
    flows = [(0x0A000001, 0xC0A80101, 1000, 80, 6)]
    t = udp_flow_trace(5, MACS, flows)
    frame = t.packets[0].data
    assert len(frame) == 64
    assert frame[23] == 6  # protocol byte


def test_mpls_trace_stack_depth():
    t = mpls_trace(4, MACS, [64, 65], stack_depth=2)
    frame = t.packets[0].data
    assert frame[12:14] == b"\x88\x47"
    first_entry = int.from_bytes(frame[14:18], "big")
    assert not (first_entry >> 8) & 1  # not bottom-of-stack


# -- interpreter --------------------------------------------------------------------


def test_passthrough_forwards_everything():
    mod = lower(PASSTHROUGH)
    trace = ipv4_trace(10, [0xC0A80101], MACS)
    res = run_reference(mod, trace)
    assert res.profile.packets_in == 10
    assert res.profile.packets_out == 10
    assert res.tx_payloads()[0] == trace.packets[0].data


def test_forwarder_routes_and_rewrites():
    mod = lower(MINI_FORWARDER)
    trace = ipv4_trace(20, [0xC0A80101], MACS, arp_fraction=0.0)
    res = run_reference(mod, trace)
    assert res.profile.packets_out == 20
    out = res.tx[0].payload()
    # New source MAC installed from mac_addrs[0]:
    assert out[6:12] == (0x0A0000000001).to_bytes(6, "big")
    # TTL decremented from 64 to 63 (IPv4 TTL at byte 14+8):
    assert out[22] == 63


def test_arp_packets_copied_and_dropped():
    mod = lower(MINI_FORWARDER)
    trace = ipv4_trace(40, [0xC0A80101], MACS, arp_fraction=0.3, seed=9)
    res = run_reference(mod, trace)
    p = res.profile
    arps = p.ppf_invocations["l3_switch.arp_handler"]
    assert arps > 0
    assert p.packets_dropped == arps
    # ARP frames bridge out (copy went to the handler), so out == in.
    assert p.packets_out == p.packets_in
    # Shared counter updated through the critical section:
    interp_val = res.profile.global_stats["arp_seen"].stores
    assert interp_val == arps  # one store per handler call (init excluded)


def test_init_blocks_run():
    mod = lower(MINI_FORWARDER)
    interp = Interpreter(mod)
    interp.run_inits()
    assert interp.globals.load("arp_seen", 0, 4) == 0


def test_global_init_values_installed():
    mod = lower(MINI_FORWARDER)
    interp = Interpreter(mod)
    assert interp.globals.load("mac_addrs", 0, 8) == 0x0A0000000001
    assert interp.globals.load("mac_addrs", 8, 8) == 0x0A0000000002


def test_profile_costs_positive():
    mod = lower(MINI_FORWARDER)
    res = run_reference(mod, ipv4_trace(10, [1], MACS))
    p = res.profile
    assert p.ppf_cost_per_packet("l3_switch.l2_clsfr") > 5
    assert p.channel_utilization("tx") == 1.0


def test_interpreter_fuel_guard():
    src = (
        ETHER_IPV4_PROTOCOLS
        + "module m { ppf p(ether_pkt *ph) from rx { while (true) { } channel_put(tx, ph); } }"
    )
    mod = lower(src)
    interp = Interpreter(mod, fuel=10_000)
    with pytest.raises(InterpError):
        interp.run_trace(ipv4_trace(1, [1], MACS))


def test_call_function_directly():
    mod = lower(MINI_FORWARDER)
    interp = Interpreter(mod)
    assert interp.call("mix", [0]) == 0
    assert interp.call("mix", [1]) == ((1 ^ 0) * 0x45D9F3B) & 0xFFFFFFFF


def test_div_by_zero_raises():
    mod = lower("u32 f(u32 a) { return 10 / a; }" + PASSTHROUGH)
    interp = Interpreter(mod)
    with pytest.raises(InterpError):
        interp.call("f", [0])


def test_signed_arithmetic():
    mod = lower("int f(int a, int b) { return a / b; }" + PASSTHROUGH)
    interp = Interpreter(mod)
    assert interp.call("f", [7 & 0xFFFFFFFF, (-2) & 0xFFFFFFFF]) == (-3) & 0xFFFFFFFF


def test_signed_compare():
    mod = lower("bool f(int a, int b) { return a < b; }" + PASSTHROUGH)
    interp = Interpreter(mod)
    assert interp.call("f", [(-1) & 0xFFFFFFFF, 1]) == 1


def test_unsigned_compare():
    mod = lower("bool f(u32 a, u32 b) { return a < b; }" + PASSTHROUGH)
    interp = Interpreter(mod)
    assert interp.call("f", [0xFFFFFFFF, 1]) == 0


def test_local_array_roundtrip():
    mod = lower(
        "u32 f(u32 x) { u32 buf[4]; buf[1] = x; buf[2] = buf[1] + 1; return buf[2]; }"
        + PASSTHROUGH
    )
    interp = Interpreter(mod)
    assert interp.call("f", [41]) == 42


def test_local_array_bounds_checked():
    mod = lower("u32 f(u32 i) { u32 buf[2]; return buf[i]; }" + PASSTHROUGH)
    interp = Interpreter(mod)
    with pytest.raises(InterpError):
        interp.call("f", [5])


def test_u64_arithmetic_wraps():
    mod = lower("u64 f(u64 a) { return a + 1; }" + PASSTHROUGH)
    interp = Interpreter(mod)
    assert interp.call("f", [0xFFFFFFFFFFFFFFFF]) == 0


def test_dynamic_demux_decap():
    # ipv4 demux is ihl << 2, exercised by decapping ether then ipv4.
    src = (
        ETHER_IPV4_PROTOCOLS
        + """
protocol udp {
  sport : 16;
  dport : 16;
  len : 16;
  csum : 16;
  demux { 8 };
}
metadata { u32 dport; }
module m {
  ppf p(ether_pkt *ph) from rx {
    ipv4_pkt *iph = packet_decap(ph);
    udp_pkt *uph = packet_decap(iph);
    uph->meta.dport = uph->dport;
    channel_put(tx, uph);
  }
}
"""
    )
    mod = lower(src)
    udp = build_udp(1111, 2222)
    ip = build_ipv4(1, 2, payload=udp)
    frame = build_ethernet(MACS[0], 5, 0x0800, ip)
    res = run_reference(mod, Trace([TracePacket(frame, 0)]))
    out = res.tx[0]
    assert out.meta[4] == 2222  # first user metadata word
    assert out.payload()[:2] == (1111).to_bytes(2, "big")


def test_mpls_loop_decap():
    # Pop MPLS labels in a loop until bottom-of-stack (dynamic control flow).
    src = r"""
protocol ether { dst : 48; src : 48; type : 16; demux { 14 }; }
protocol mpls { label : 20; tc : 3; bos : 1; ttl : 8; demux { 4 }; }
module m {
  ppf p(ether_pkt *ph) from rx {
    mpls_pkt *mph = packet_decap(ph);
    u32 guard = 8;
    while (mph->bos == 0 && guard > 0) {
      mpls_pkt *inner = packet_decap(mph);
      mph = inner;
      guard -= 1;
    }
    channel_put(tx, mph);
  }
}
"""
    mod = lower(src)
    trace = mpls_trace(6, MACS, [100, 200, 300], stack_depth=3)
    res = run_reference(mod, trace)
    assert res.profile.packets_out == 6
    # Output payload starts at the bottom-of-stack label.
    out = res.tx[0].payload()
    entry = int.from_bytes(out[0:4], "big")
    assert (entry >> 8) & 1 == 1
