"""Unit tests for IR containers, CFG utilities, dominators, liveness."""

import pytest

from repro.baker import types as T
from repro.ir import instructions as I
from repro.ir.cfg import (
    compute_cfg,
    remove_unreachable,
    reverse_postorder,
    simplify_cfg,
    split_critical_edges,
)
from repro.ir.callgraph import CallGraph
from repro.ir.dominators import dominator_tree, postdominator_tree
from repro.ir.liveness import liveness
from repro.ir.module import IRFunction
from repro.ir.values import Const, Temp
from repro.ir.verifier import IRVerifyError, verify_function, verify_module
from tests.ir_helpers import build_diamond, build_loop, lower
from tests.samples import MINI_FORWARDER


# -- instruction protocol -------------------------------------------------------


def test_uses_and_defs():
    t0 = Temp(0, T.U32)
    t1 = Temp(1, T.U32)
    t2 = Temp(2, T.U32)
    instr = I.BinOp("add", t2, t0, t1)
    assert instr.defs() == [t2]
    assert instr.uses() == [t0, t1]


def test_replace_uses_scalar_and_list():
    t0, t1, t2 = Temp(0, T.U32), Temp(1, T.U32), Temp(2, T.U32)
    call = I.Call(t2, "f", [t0, t1, Const(3)])
    call.replace_uses({t0: Const(7)})
    assert call.args[0] == Const(7)
    assert call.args[1] is t1


def test_const_equality_and_hash():
    assert Const(1) == Const(1)
    assert Const(1) != Const(2)
    assert len({Const(1), Const(1), Const(2)}) == 2


def test_wide_load_defs_are_lists():
    t0, t1 = Temp(0, T.U32), Temp(1, T.U32)
    ph = Temp(2, T.RAW_PACKET)
    wide = I.PktLoadWords([t0, t1], ph, 0, 2)
    assert wide.defs() == [t0, t1]
    assert wide.uses() == [ph]


# -- CFG --------------------------------------------------------------------------


def test_compute_cfg_diamond():
    fn, bbs = build_diamond()
    compute_cfg(fn)
    assert set(bbs["entry"].succs) == {bbs["left"], bbs["right"]}
    assert set(bbs["join"].preds) == {bbs["left"], bbs["right"]}


def test_reverse_postorder_starts_at_entry():
    fn, bbs = build_loop()
    compute_cfg(fn)
    order = reverse_postorder(fn)
    assert order[0] is bbs["entry"]
    assert set(order) == set(fn.blocks)


def test_remove_unreachable():
    fn, bbs = build_diamond()
    orphan = fn.new_block("orphan")
    orphan.terminate(I.Ret(None))
    assert remove_unreachable(fn) == 1
    assert orphan not in fn.blocks


def test_simplify_constant_branch():
    fn = IRFunction("f", "func", T.U32)
    entry = fn.new_block("entry")
    a = fn.new_block("a")
    b = fn.new_block("b")
    entry.terminate(I.Branch(Const(1), a, b))
    a.terminate(I.Ret(Const(1)))
    b.terminate(I.Ret(Const(2)))
    simplify_cfg(fn)
    assert b not in fn.blocks
    # entry merged with a
    assert isinstance(fn.entry.terminator, I.Ret)


def test_simplify_merges_straightline():
    fn = IRFunction("f", "func", T.U32)
    entry = fn.new_block("entry")
    mid = fn.new_block("mid")
    t = fn.new_temp(T.U32)
    entry.terminate(I.Jump(mid))
    mid.append(I.Assign(t, Const(4)))
    mid.terminate(I.Ret(t))
    simplify_cfg(fn)
    assert len(fn.blocks) == 1
    assert len(fn.entry.instrs) == 1


def test_split_critical_edges():
    fn, bbs = build_diamond()
    # Make the edge entry->join critical by branching directly to join.
    bbs["entry"].terminator = I.Branch(fn.params[0], bbs["left"], bbs["join"])
    remove_unreachable(fn)
    split_critical_edges(fn)
    compute_cfg(fn)
    # No edge from a multi-succ block to a multi-pred block remains.
    for bb in fn.blocks:
        if len(bb.succs) > 1:
            for succ in bb.succs:
                assert len(succ.preds) == 1


# -- dominators ----------------------------------------------------------------------


def test_dominators_diamond():
    fn, bbs = build_diamond()
    dom = dominator_tree(fn)
    assert dom.idom[bbs["left"]] is bbs["entry"]
    assert dom.idom[bbs["right"]] is bbs["entry"]
    assert dom.idom[bbs["join"]] is bbs["entry"]
    assert dom.dominates(bbs["entry"], bbs["join"])
    assert not dom.dominates(bbs["left"], bbs["join"])


def test_dominators_loop():
    fn, bbs = build_loop()
    dom = dominator_tree(fn)
    assert dom.idom[bbs["body"]] is bbs["head"]
    assert dom.idom[bbs["exit"]] is bbs["head"]
    assert dom.dominates(bbs["head"], bbs["body"])


def test_dominates_is_reflexive():
    fn, bbs = build_diamond()
    dom = dominator_tree(fn)
    for bb in fn.blocks:
        assert dom.dominates(bb, bb)
        assert not dom.strictly_dominates(bb, bb)


def test_postdominators_diamond():
    fn, bbs = build_diamond()
    pdom = postdominator_tree(fn)
    assert pdom.dominates(bbs["join"], bbs["entry"])
    assert pdom.dominates(bbs["join"], bbs["left"])
    assert not pdom.dominates(bbs["left"], bbs["entry"])


def test_postdominators_multiple_exits():
    fn = IRFunction("f", "func", T.U32)
    c = fn.new_temp(T.BOOL)
    fn.params.append(c)
    entry = fn.new_block("entry")
    a = fn.new_block("a")
    b = fn.new_block("b")
    entry.terminate(I.Branch(c, a, b))
    a.terminate(I.Ret(Const(1)))
    b.terminate(I.Ret(Const(2)))
    pdom = postdominator_tree(fn)
    # Neither exit postdominates the entry.
    assert not pdom.dominates(a, entry)
    assert not pdom.dominates(b, entry)


# -- liveness ----------------------------------------------------------------------


def test_liveness_param_live_into_loop():
    fn, bbs = build_loop()
    info = liveness(fn)
    n = fn.params[0]
    assert n in info.live_in[bbs["head"]]
    assert n not in info.live_out[bbs["exit"]]


def test_liveness_per_instr():
    fn, bbs = build_diamond()
    info = liveness(fn)
    rows = info.instr_live_out(bbs["left"])
    (instr, live_after) = rows[0]
    assert isinstance(instr, I.Assign)
    assert instr.dst in live_after


def test_dead_def_not_live():
    fn = IRFunction("f", "func", T.U32)
    entry = fn.new_block("entry")
    t = fn.new_temp(T.U32)
    entry.append(I.Assign(t, Const(1)))
    entry.terminate(I.Ret(Const(0)))
    info = liveness(fn)
    assert t not in info.live_in[entry]


# -- verifier / callgraph ------------------------------------------------------------


def test_verifier_accepts_lowered_module():
    mod = lower(MINI_FORWARDER)
    verify_module(mod)


def test_verifier_rejects_unterminated():
    fn = IRFunction("f", "func")
    fn.new_block("entry")
    with pytest.raises(IRVerifyError):
        verify_function(fn)


def test_verifier_rejects_undefined_temp():
    fn = IRFunction("f", "func", T.U32)
    entry = fn.new_block("entry")
    ghost = Temp(99, T.U32)
    entry.terminate(I.Ret(ghost))
    with pytest.raises(IRVerifyError):
        verify_function(fn)


def test_verifier_rejects_dangling_block():
    fn = IRFunction("f", "func")
    entry = fn.new_block("entry")
    other = IRFunction("g", "func").new_block("foreign")
    other.terminate(I.Ret(None))
    entry.terminate(I.Jump(other))
    with pytest.raises(IRVerifyError):
        verify_function(fn)


def test_callgraph_topological_order():
    mod = lower(MINI_FORWARDER)
    cg = CallGraph(mod)
    order = cg.topological()
    assert order.index("mix") < order.index("l3_switch.l3_fwdr")


def test_callgraph_callers():
    mod = lower(MINI_FORWARDER)
    cg = CallGraph(mod)
    assert "l3_switch.l3_fwdr" in cg.callers["mix"]
    assert cg.max_call_depth("l3_switch.l3_fwdr") == 2
    assert cg.max_call_depth("mix") == 1
