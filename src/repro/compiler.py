"""The Shangri-La compiler driver (paper Figure 5).

Pipeline::

    Baker source
      -> parse + semantic check                 (front-end)
      -> lower to IR                            (WHIRL analogue)
      -> functional profiler over a trace       (exec/access statistics)
      -> scalar opts + inlining                 (-O1 / -O2)
      -> aggregation (merge/duplicate, CC->call, map to MEs/XScale)
      -> PAC -> SOAR -> PHR -> SWC              (packet optimizations)
      -> code generation per aggregate          (CGIR, regalloc, stack)

Each stage is skippable via :class:`~repro.options.CompilerOptions`,
reproducing the paper's cumulative BASE..+SWC levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.aggregation.aggregate import AggregationPlan
from repro.aggregation.formation import apply_plan, form_aggregates
from repro.baker import parse_and_check
from repro.baker.lowering import lower_program
from repro.baker.semantic import CheckedProgram
from repro.ir.module import IRModule
from repro.ir.verifier import verify_module
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs.telemetry import record_ir_stage, record_opt_results
from repro.obs.trace import compile_stage
from repro.opt import inline, pac, phr, soar, swc
from repro.opt.pipeline import run_scalar_pipeline, scalar_optimize_function
from repro.options import CompilerOptions, options_for
from repro.profiler.interpreter import run_reference
from repro.profiler.stats import ProfileData
from repro.profiler.trace import Trace


@dataclass
class CompileResult:
    """Everything produced by a compilation, through code generation."""

    checked: CheckedProgram
    mod: IRModule
    profile: ProfileData
    plan: AggregationPlan
    opts: CompilerOptions
    soar_result: Optional[soar.SoarResult] = None
    pac_result: Optional[pac.PacResult] = None
    phr_result: Optional[phr.PhrResult] = None
    swc_result: Optional[swc.SwcResult] = None
    # Filled by the code generator (repro.cg.assemble):
    images: Dict[str, object] = field(default_factory=dict)  # aggregate -> MEImage
    fast_functions: Set[str] = field(default_factory=set)
    # Decision-ledger slice for this compilation (empty unless the
    # ledger is enabled; see repro.obs.ledger).
    decisions: List[object] = field(default_factory=list)


def compile_ir(
    mod: IRModule,
    checked: CheckedProgram,
    opts: CompilerOptions,
    trace: Trace,
    target_gbps: float = 2.5,
) -> CompileResult:
    """Run the mid-end (profile, optimize, aggregate, packet opts) over an
    already-lowered module."""
    reg = obs_metrics.get_registry()
    led = obs_ledger.get_ledger()
    led_mark = led.mark()
    record_ir_stage(reg, "initial", mod)

    with compile_stage(reg, "profile"):
        # Line attribution only when someone will read it (the obs
        # report's hot-path table); it never alters other profile data.
        profile = run_reference(mod, trace,
                                attribute_lines=reg.enabled).profile
    if reg.enabled:
        for src, count in profile.hot_lines(32):
            reg.counter("profile.line_instrs", src=src).inc(count)

    with compile_stage(reg, "scalar"):
        run_scalar_pipeline(mod, opts)
    record_ir_stage(reg, "scalar", mod)

    with compile_stage(reg, "aggregate"):
        plan = form_aggregates(mod, profile, opts, target_gbps=target_gbps)
        apply_plan(mod, plan)
        if opts.inline:
            # Complete the merges: internally-called PPFs inline away.
            inline.run(mod)
        _prune_dead_functions(mod, plan)
        if opts.scalar:
            for fn in mod.functions.values():
                scalar_optimize_function(fn)
    record_ir_stage(reg, "aggregate", mod)

    result = CompileResult(checked=checked, mod=mod, profile=profile,
                           plan=plan, opts=opts)

    if opts.pac:
        with compile_stage(reg, "pac"):
            result.pac_result = pac.run(mod)
        record_ir_stage(reg, "pac", mod)
    if opts.soar or opts.phr:
        with compile_stage(reg, "soar"):
            result.soar_result = soar.run(mod)
        record_ir_stage(reg, "soar", mod)
    if opts.phr:
        with compile_stage(reg, "phr"):
            result.phr_result = phr.run(mod)
            if opts.scalar:
                for fn in mod.functions.values():
                    scalar_optimize_function(fn)
            if opts.pac:
                # PHR re-bases accesses of elided encap/decap pairs onto one
                # common head, so a second combining pass can merge accesses
                # across former protocol boundaries (the paper's dependence
                # analysis reaches the same result in one pass); SOAR then
                # re-annotates the new wide accesses.
                second = pac.run(mod)
                result.pac_result.combined_loads += second.combined_loads
                result.pac_result.combined_stores += second.combined_stores
                result.pac_result.wide_loads += second.wide_loads
                result.pac_result.wide_stores += second.wide_stores
                result.soar_result = soar.run(mod)
                if opts.scalar:
                    for fn in mod.functions.values():
                        scalar_optimize_function(fn)
        record_ir_stage(reg, "phr", mod)

    result.fast_functions = plan.fast_functions(mod)
    if opts.swc:
        with compile_stage(reg, "swc"):
            swc_result = swc.select_candidates(mod, profile,
                                               result.fast_functions,
                                               exclude=opts.swc_exclude)
            period = swc.enforce_check_period(swc_result,
                                              opts.swc_check_period)
            swc.apply(mod, swc_result, result.fast_functions,
                      check_period=period)
            result.swc_result = swc_result
        record_ir_stage(reg, "swc", mod)

    with compile_stage(reg, "verify"):
        verify_module(mod)
    record_opt_results(reg, result)
    result.decisions = led.since(led_mark)
    return result


def _prune_dead_functions(mod: IRModule, plan: AggregationPlan) -> None:
    """Drop functions made unreachable by aggregation + inlining: a PPF
    whose every input channel became a direct call (and was then inlined
    everywhere) no longer exists as code, and keeping its body around
    would confuse whole-program analyses (e.g. PHR's metadata
    localization counts access sites per function)."""
    from repro.ir.callgraph import CallGraph

    changed = True
    while changed:
        changed = False
        cg = CallGraph(mod)
        for name, fn in list(mod.functions.items()):
            if fn.kind == "init":
                continue
            if fn.kind == "ppf":
                external = [c for c in fn.input_channels
                            if c not in plan.internal_channels]
                if external:
                    continue  # still dispatched from a ring
            if cg.callers.get(name):
                continue
            del mod.functions[name]
            changed = True
    live = set(mod.functions)
    for agg in plan.me_aggregates + plan.xscale_aggregates:
        agg.ppfs = [p for p in agg.ppfs if p in live]


def compile_baker(
    source: str,
    opts: Optional[CompilerOptions] = None,
    trace: Optional[Trace] = None,
    filename: str = "<baker>",
    target_gbps: float = 2.5,
    codegen: bool = True,
) -> CompileResult:
    """Compile Baker source through the full Shangri-La pipeline.

    ``trace`` drives the functional profiler (required for meaningful
    aggregation and SWC decisions; an empty trace degrades gracefully).
    Set ``codegen=False`` to stop after the mid-end (IR level).
    """
    if opts is None:
        opts = options_for("SWC")
    if trace is None:
        trace = Trace([])
    reg = obs_metrics.get_registry()
    led = obs_ledger.get_ledger()
    led_mark = led.mark()
    with compile_stage(reg, "frontend"):
        checked = parse_and_check(source, filename)
    with compile_stage(reg, "lower"):
        mod = lower_program(checked)
    result = compile_ir(mod, checked, opts, trace, target_gbps)
    if codegen:
        from repro.cg.assemble import generate_images

        with compile_stage(reg, "codegen"):
            generate_images(result)
    # Re-slice from the outer mark: codegen decisions (spills, budget
    # fits) land after compile_ir captured its slice.
    result.decisions = led.since(led_mark)
    return result
