"""Compiler option sets.

The paper evaluates cumulative optimization levels (section 6.2):

====== ==========================================================
BASE   all optimizations disabled
+O1    typical scalar optimizations
+O2    inlining of base packet handling routines (and user helpers)
+PAC   packet access combining
+SOAR  static offset and alignment resolution
+PHR   removal of unnecessary packet handling support code
+SWC   software-controlled caching
====== ==========================================================

Stack layout optimization (section 5.4) is always on in the paper's
reported numbers; we keep it on by default and expose it for the
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CompilerOptions:
    name: str = "SWC"
    scalar: bool = True  # -O1: constprop/copyprop/CSE/DCE/CFG simplify
    inline: bool = True  # -O2: inlining (user helpers + packet routines)
    pac: bool = True  # packet access combining
    soar: bool = True  # static offset and alignment resolution
    phr: bool = True  # packet handling removal
    swc: bool = True  # delayed-update software-controlled caching
    stack_opt: bool = True  # compact pSP/vSP stack layout
    # SWC tuning: delayed-update coherency check period (packets). A
    # configured period is *requested*, not final: the compiler clamps
    # it so the implied check rate (1/period) never falls below the
    # Equation-2 minimum of any accepted candidate (repro.opt.swc
    # enforce_check_period) -- the paper's 1% tolerable-error bound is
    # a compiler invariant, not a user promise.
    swc_check_period: int = 16
    # SWC candidate-set tuning: globals never considered for caching
    # (sorted tuple of qualified names). The autotuner searches over
    # candidate sets with this knob.
    swc_exclude: Tuple[str, ...] = ()
    # Aggregation inputs:
    num_mes: int = 6  # programmable MEs (2 of 8 reserved for Rx/Tx)
    me_code_store: int = 4096  # instructions per ME


def _lvl(name: str, **flags) -> CompilerOptions:
    base = dict(scalar=False, inline=False, pac=False, soar=False,
                phr=False, swc=False)
    base.update(flags)
    return CompilerOptions(name=name, **base)


#: Cumulative levels exactly as Table 1 / Figures 13-15 enable them.
OPT_LEVELS: Dict[str, CompilerOptions] = {
    "BASE": _lvl("BASE"),
    "O1": _lvl("O1", scalar=True),
    "O2": _lvl("O2", scalar=True, inline=True),
    "PAC": _lvl("PAC", scalar=True, inline=True, pac=True),
    "SOAR": _lvl("SOAR", scalar=True, inline=True, pac=True, soar=True),
    "PHR": _lvl("PHR", scalar=True, inline=True, pac=True, soar=True, phr=True),
    "SWC": _lvl("SWC", scalar=True, inline=True, pac=True, soar=True, phr=True, swc=True),
}

LEVEL_ORDER: List[str] = list(OPT_LEVELS)


def options_for(level: str, **overrides) -> CompilerOptions:
    """Options for a named cumulative level, with keyword overrides."""
    opts = OPT_LEVELS[level.upper().lstrip("+-")]
    if overrides:
        if "swc_exclude" in overrides:
            # Normalize to a sorted tuple: the option participates in
            # cache keys and job sort keys, so two spellings of the
            # same set must compare (and hash) equal.
            overrides["swc_exclude"] = tuple(
                sorted(overrides["swc_exclude"]))
        opts = replace(opts, **overrides)
    return opts
