"""On-disk compile-artifact cache for the evaluation sweep.

The paper's evaluation grid (apps x optimization levels x ME counts)
re-simulates every cell but only needs ``apps x levels`` *compiles*.
This cache makes each (app, level) compile **once ever**, not once per
session: a pickled ``(CompileResult, Trace)`` pair lands on disk under
a content fingerprint, and every later session -- or sweep worker
process -- loads it back instead of recompiling.

The fingerprint covers everything that can change compiler output:

* the Baker source text of the application,
* the full :class:`~repro.options.CompilerOptions` field set,
* the profiling-trace parameters (packet count, seed),
* the compile-time ``target_gbps`` aggregation input,
* the compiler version -- a digest over every ``repro`` source file,
  so *any* change to the compiler (or simulator) invalidates the whole
  cache rather than serving artifacts from an older code base,
* the Python major.minor version (pickles are not guaranteed portable
  across interpreter versions).

Hits and misses are observable: the ``sweep.compile_cache`` counter
(labels ``app``/``level``/``result``) and, when the decision ledger is
enabled, one ``sweep.cache`` decision per lookup.

Cache files are written atomically (tempfile + ``os.replace``), so
concurrent workers racing on a cold key at worst compile twice and
both write identical-content artifacts. An unreadable file is a plain
miss; a file that *reads* but does not *decode* (truncated pickle,
stale class layout) is deleted on first detection -- and counted under
the distinct ``result="corrupt"`` label -- so later runs do not keep
re-reading and re-discarding the same dead bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
from dataclasses import asdict
from typing import Dict, Optional, Tuple

import repro
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics

#: Bump to invalidate every existing cache entry on format changes.
CACHE_FORMAT = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_COMPILE_CACHE"

_PKG_DIR = os.path.dirname(os.path.abspath(repro.__file__))

_compiler_fp: Optional[str] = None


def repo_root() -> str:
    """The checkout root (``src/repro`` -> two levels up)."""
    return os.path.dirname(os.path.dirname(_PKG_DIR))


def default_cache_dir() -> str:
    return os.environ.get(_ENV_DIR) or os.path.join(
        repo_root(), ".repro_cache", "compile")


def compiler_fingerprint() -> str:
    """Digest of every ``repro`` source file (path + content), computed
    once per process. Editing any compiler/simulator source yields a
    new fingerprint, so stale artifacts can never be served."""
    global _compiler_fp
    if _compiler_fp is None:
        h = hashlib.sha256()
        paths = []
        for base, _dirs, files in os.walk(_PKG_DIR):
            for name in files:
                if name.endswith(".py"):
                    paths.append(os.path.join(base, name))
        for path in sorted(os.path.relpath(p, _PKG_DIR) for p in paths):
            h.update(path.encode())
            h.update(b"\0")
            with open(os.path.join(_PKG_DIR, path), "rb") as fh:
                h.update(fh.read())
            h.update(b"\0")
        _compiler_fp = h.hexdigest()
    return _compiler_fp


def cache_key(source: str, opts, trace_packets: int, trace_seed: int,
              target_gbps: float = 2.5) -> str:
    """Content fingerprint for one (source, options, trace) compile."""
    ident = {
        "format": CACHE_FORMAT,
        "source": source,
        "options": asdict(opts),
        "trace": {"packets": trace_packets, "seed": trace_seed},
        "target_gbps": target_gbps,
        "compiler": compiler_fingerprint(),
        "python": "%d.%d" % sys.version_info[:2],
    }
    blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CompileCache:
    """Disk-backed (plus in-process memo) store of compiled artifacts.

    ``enabled=False`` (or ``REPRO_COMPILE_CACHE=0`` in the
    environment) keeps the in-process memo but never touches disk.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 enabled: Optional[bool] = None):
        self.cache_dir = cache_dir or default_cache_dir()
        if enabled is None:
            enabled = os.environ.get(_ENV_DISABLE, "1") not in ("0", "")
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.corrupt_entries = 0
        self.last_load_corrupt = False
        self._memo: Dict[str, Tuple[object, object]] = {}

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], key + ".pkl")

    def load(self, key: str):
        """The cached value, or None. A corrupt (undecodable) entry is
        deleted on first detection -- leaving it on disk would make
        every later run re-read and re-discard the same bytes -- and
        counted in :attr:`corrupt_entries`; :attr:`last_load_corrupt`
        lets the caller distinguish it from a plain miss."""
        self.last_load_corrupt = False
        if key in self._memo:
            return self._memo[key]
        if not self.enabled:
            return None
        try:
            with open(self._path(key), "rb") as fh:
                value = pickle.load(fh)
        except OSError:
            return None  # absent/unreadable: a plain miss
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Truncated write, stale class layout, wrong protocol...
            # The bytes will never decode; stop serving them.
            self.corrupt_entries += 1
            self.last_load_corrupt = True
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
            return None
        self._memo[key] = value
        return value

    def store(self, key: str, value) -> None:
        self._memo[key] = value
        if not self.enabled:
            return
        path = self._path(key)
        d = os.path.dirname(path)
        os.makedirs(d, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=4)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- the sweep's compile entry point -----------------------------------------

    def get_or_compile(self, app_name: str, level: str,
                       trace_packets: int = 200, trace_seed: int = 5,
                       overrides=None, target_gbps: float = 2.5):
        """``(CompileResult, Trace, hit)`` for one app at one level.

        On a miss the app is compiled through the full pipeline and the
        artifact stored; on a hit compilation is skipped entirely (the
        ``sweep.compile_cache`` metric and the ledger record which).

        ``overrides`` (a mapping or tuple of (field, value) pairs) is
        applied to the level's :class:`CompilerOptions` -- the tuner's
        parameterized trials ride through here. Both it and
        ``target_gbps`` participate in the cache fingerprint via the
        options asdict / the explicit key field.
        """
        from repro.apps import get_app
        from repro.compiler import compile_baker
        from repro.options import options_for

        app = get_app(app_name)
        opts = options_for(level, **dict(overrides or ()))
        key = cache_key(app.source, opts, trace_packets, trace_seed,
                        target_gbps=target_gbps)
        reg = obs_metrics.get_registry()
        led = obs_ledger.get_ledger()
        cached = self.load(key)
        if cached is not None:
            self.hits += 1
            reg.counter("sweep.compile_cache", app=app_name, level=level,
                        result="hit").inc()
            led.record("sweep.cache", "%s/%s" % (app_name, level), "hit",
                       reason="artifact served from disk cache",
                       key=key[:16])
            result, trace = cached
            return result, trace, True
        self.misses += 1
        if self.last_load_corrupt:
            reg.counter("sweep.compile_cache", app=app_name, level=level,
                        result="corrupt").inc()
            led.record("sweep.cache", "%s/%s" % (app_name, level), "corrupt",
                       reason="undecodable artifact deleted; recompiling",
                       key=key[:16])
        else:
            reg.counter("sweep.compile_cache", app=app_name, level=level,
                        result="miss").inc()
            led.record("sweep.cache", "%s/%s" % (app_name, level), "miss",
                       reason="no artifact for fingerprint; compiling",
                       key=key[:16])
        trace = app.make_trace(trace_packets, seed=trace_seed)
        result = compile_baker(app.source, opts, trace,
                               target_gbps=target_gbps)
        self.store(key, (result, trace))
        return result, trace, False
