"""CLI: regenerate the paper's evaluation grid in one command.

Usage::

    python -m repro.sweep --apps l3switch,firewall,mpls --jobs 4

writes ``BENCH_fig13.json`` / ``BENCH_fig14.json`` / ``BENCH_fig15.json``
(rate curves + Table 1 access counts) at the repo root, appends the
sweep's metrics to ``benchmarks/results/metrics.jsonl`` under a run
header, and prints a per-figure summary. ``--jobs 1`` and ``--jobs N``
output is bit-identical; compare two runs with
``python -m repro.obs.diff`` (exit 2 on regression).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.obs import ledger as obs_ledger
from repro.options import LEVEL_ORDER
from repro.sweep.cache import CompileCache, repo_root
from repro.sweep.orchestrator import (
    ME_COUNTS,
    RATE_MEASURE,
    RATE_WARMUP,
    TABLE1_MEASURE,
    TRACE_PACKETS,
    TRACE_SEED,
    build_jobs,
    run_sweep,
)

DEFAULT_APPS = "l3switch,firewall,mpls"


def _csv(value: str):
    return [item.strip() for item in value.split(",") if item.strip()]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Regenerate the Figures 13-15 / Table 1 evaluation "
                    "sweep, process-parallel and compile-cached.")
    ap.add_argument("--apps", default=DEFAULT_APPS,
                    help="comma-separated apps (default: %(default)s)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes; 1 runs inline and is "
                         "bit-identical to N>1 (default: %(default)s)")
    ap.add_argument("--levels", default=",".join(LEVEL_ORDER),
                    help="comma-separated optimization levels "
                         "(default: %(default)s)")
    ap.add_argument("--me-counts", default=",".join(map(str, ME_COUNTS)),
                    help="comma-separated ME counts for the rate curves "
                         "(default: %(default)s)")
    ap.add_argument("--no-table1", action="store_true",
                    help="skip the Table 1 access-count runs")
    ap.add_argument("--warmup", type=int, default=RATE_WARMUP,
                    help="warm-up packets per rate run (default: "
                         "%(default)s)")
    ap.add_argument("--measure", type=int, default=RATE_MEASURE,
                    help="measured packets per rate run (default: "
                         "%(default)s)")
    ap.add_argument("--table1-measure", type=int, default=TABLE1_MEASURE,
                    help="measured packets per Table 1 run (default: "
                         "%(default)s)")
    ap.add_argument("--trace-packets", type=int, default=TRACE_PACKETS,
                    help="profiling-trace packets per compile (default: "
                         "%(default)s)")
    ap.add_argument("--trace-seed", type=int, default=TRACE_SEED,
                    help="profiling-trace seed (default: %(default)s)")
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="directory for BENCH_*.json (default: repo root)")
    ap.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="compile-artifact cache directory (default: "
                         "$REPRO_CACHE_DIR or <repo>/.repro_cache/compile)")
    ap.add_argument("--no-cache", action="store_true",
                    help="bypass the on-disk compile cache")
    ap.add_argument("--metrics-jsonl", default=None, metavar="PATH",
                    help="metrics output (appended under a run header; "
                         "default: benchmarks/results/metrics.jsonl)")
    ap.add_argument("--ledger", action="store_true",
                    help="record compile decisions (repro.obs.ledger) "
                         "during any cache-miss compiles")
    ap.add_argument("--analyze", action="store_true",
                    help="run the repro.analyze budget + translation-"
                         "validation passes on every distinct (app, "
                         "level) compile; exit 2 if any report has "
                         "error findings")
    ap.add_argument("--analyze-packets", type=int, default=24,
                    metavar="N",
                    help="trace roots replayed per image during "
                         "--analyze validation (default: %(default)s)")
    ap.add_argument("--profile", action="store_true",
                    help="attach the stall-cycle attribution profiler "
                         "(repro.obs.profile) to every rate run and "
                         "write BENCH_occupancy.json; measured rates "
                         "are bit-identical either way")
    ap.add_argument("--engine", default=None,
                    choices=["fast", "legacy", "fastforward"],
                    help="simulation engine for rate cells: fast "
                         "(predecoded cycle-accurate, the default), "
                         "legacy (reference interpreter), or "
                         "fastforward (batched functional execution "
                         "with a calibrated cost model; writes "
                         "BENCH_ffspeed.json instead of the Tier-1 "
                         "figure files)")
    args = ap.parse_args(argv)

    if args.engine == "fastforward" and args.profile:
        ap.error("--engine fastforward cannot honor --profile: the "
                 "stall profiler attributes simulated time, which the "
                 "functional engine does not model; drop one of the "
                 "two flags (Tier-1 figures always run cycle-accurate)")

    # Fail fast on a bad grid, naming the offending token -- not a
    # KeyError (or a hang) deep inside a spawned worker.
    from repro.apps import APP_CLASSES

    apps = _csv(args.apps)
    levels = _csv(args.levels)
    bad = [a for a in apps if a not in APP_CLASSES]
    if bad:
        ap.error("unknown apps: %s (choose from %s)"
                 % (",".join(bad), ",".join(sorted(APP_CLASSES))))
    bad = [lv for lv in levels if lv not in LEVEL_ORDER]
    if bad:
        ap.error("unknown levels: %s (choose from %s)"
                 % (",".join(bad), ",".join(LEVEL_ORDER)))
    try:
        me_counts = [int(n) for n in _csv(args.me_counts)]
    except ValueError:
        ap.error("--me-counts must be comma-separated integers, got %r"
                 % args.me_counts)
    bad = [n for n in me_counts if n < 1]
    if bad:
        ap.error("--me-counts values must be >= 1, got %s"
                 % ",".join(map(str, bad)))
    if args.jobs < 1:
        ap.error("--jobs must be >= 1, got %d" % args.jobs)

    reg = obs.enable()
    if args.ledger:
        obs_ledger.enable()
    cache = CompileCache(args.cache_dir, enabled=not args.no_cache)
    # A fast-forward sweep is a rate-model exploration: Table 1 rows
    # (access counts) have no fast-forward pricing, so they are dropped
    # rather than silently run cycle-accurate at shallow windows.
    table1 = not args.no_table1 and args.engine != "fastforward"
    jobs = build_jobs(apps, levels=levels, me_counts=me_counts,
                      table1=table1,
                      rate_warmup=args.warmup, rate_measure=args.measure,
                      table1_measure=args.table1_measure)
    print("sweep: %d jobs (%s x %s x MEs %s%s), engine %s, "
          "%d process%s, cache %s"
          % (len(jobs), ",".join(apps), ",".join(levels),
             ",".join(map(str, me_counts)),
             " + table1" if table1 else "",
             args.engine or "fast",
             args.jobs, "" if args.jobs == 1 else "es",
             cache.cache_dir if cache.enabled else "OFF"))

    from repro.sweep.orchestrator import WorkerConfig

    cfg = WorkerConfig(cache_dir=cache.cache_dir, use_cache=cache.enabled,
                       trace_packets=args.trace_packets,
                       trace_seed=args.trace_seed, obs=True,
                       ledger=args.ledger, analyze=args.analyze,
                       analyze_packets=args.analyze_packets,
                       profile=args.profile, engine=args.engine)
    sweep = run_sweep(jobs, n_procs=args.jobs, cache=cache, cfg=cfg,
                      merge_into=reg)

    out_dir = args.out_dir or repo_root()
    os.makedirs(out_dir, exist_ok=True)
    paths = sweep.write_bench_files(out_dir)

    for app in apps:
        series = sweep.series(app)
        if not series:
            continue
        print("\n%s: forwarding rate (Gbps) vs MEs %s"
              % (app, ",".join(map(str, me_counts))))
        for level in [lv for lv in LEVEL_ORDER if lv in series]:
            print("  %-5s %s" % (level,
                                 "  ".join("%6.2f" % r
                                           for r in series[level])))

    if args.profile:
        verdicts = [jr.occupancy["verdict"]["text"] for jr in sweep.jobs
                    if jr.occupancy is not None]
        if verdicts:
            print("\nbottleneck verdicts (full table: "
                  "python -m repro.obs.report bottleneck)")
            for text in verdicts:
                print("  %s" % text)

    metrics_path = args.metrics_jsonl or os.path.join(
        repo_root(), "benchmarks", "results", "metrics.jsonl")
    run_id = "sweep-%s-p%d" % (
        time.strftime("%Y%m%dT%H%M%S", time.gmtime()), os.getpid())
    reg.dump_jsonl(metrics_path, append=True,
                   header={"run": run_id,
                           "source": "repro.sweep",
                           "jobs": args.jobs,
                           "apps": apps, "levels": levels})

    print("\n%d jobs in %.1fs wall (%d process%s); compile cache: "
          "%d hit%s, %d compile%s"
          % (len(sweep.jobs), sweep.wall_s, sweep.n_procs,
             "" if sweep.n_procs == 1 else "es",
             cache.hits, "" if cache.hits == 1 else "s",
             cache.misses, "" if cache.misses == 1 else "s"))
    for path in paths:
        print("wrote %s" % path)
    print("metrics: %s (run %s; render: python -m repro.obs.report %s)"
          % (metrics_path, run_id, metrics_path))
    if args.analyze:
        failures = sweep.analysis_failures()
        analyzed = {(jr.job.app, jr.job.level) for jr in sweep.jobs
                    if jr.analysis is not None}
        if failures:
            print("analyze: %d of %d compiles FAILED validation:"
                  % (len(failures), len(analyzed)))
            for app, level, n_errors in failures:
                print("  %s/%s: %d error finding%s"
                      % (app, level, n_errors,
                         "" if n_errors == 1 else "s"))
            return 2
        print("analyze: all %d compiles validated clean" % len(analyzed))
    return 0


if __name__ == "__main__":
    sys.exit(main())
