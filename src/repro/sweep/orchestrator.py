"""Process-parallel orchestrator for the paper's evaluation sweep.

The evaluation grid (Figures 13-15 + Table 1) is ``apps x optimization
levels x ME counts`` -- embarrassingly parallel once each (app, level)
compile is cached. This module fans the grid's compile+simulate jobs
across a ``multiprocessing`` spawn pool and merges the results
deterministically:

* Every job runs under its **own metrics registry**
  (:func:`repro.obs.metrics.scoped_registry`), whether it runs inline
  (``--jobs 1``) or in a worker process, and ships its records (plus
  any captured compile-stage spans) back as plain dicts.
* Results are ordered by the **job key**, never by completion order,
  so ``--jobs 1`` and ``--jobs N`` produce bit-identical
  ``BENCH_*.json`` output (asserted in ``tests/test_sweep.py`` and
  CI's ``sweep-smoke`` diff gate). The simulator itself is
  deterministic across processes and hash seeds, which the same test
  proves end to end.
* Compiles go through the on-disk artifact cache
  (:mod:`repro.sweep.cache`); a parallel run warms the distinct
  (app, level) artifacts first so no two workers duplicate a compile
  that the grid needs many times.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.options import LEVEL_ORDER
from repro.sweep.benchio import merge_bench_json
from repro.sweep.cache import CompileCache, repo_root

#: ME counts of the Figure 13-15 rate curves.
ME_COUNTS = [1, 2, 3, 4, 5, 6]

#: The paper's Table 1 rows (-O2 and SOAR do not change access counts).
TABLE1_LEVELS = ["BASE", "O1", "PAC", "PHR", "SWC"]

#: Which BENCH file each app's results land in.
FIG_BY_APP = {"l3switch": "fig13", "firewall": "fig14", "mpls": "fig15"}

#: Steady-state measurement windows (packets) used by the benchmarks.
RATE_WARMUP, RATE_MEASURE = 60, 220
TABLE1_WARMUP, TABLE1_MEASURE = 60, 250
TABLE1_N_MES = 2

#: Profiling-trace parameters shared by every compile in the sweep.
TRACE_PACKETS, TRACE_SEED = 200, 5

_PROFILE_FIELDS = ("pkt_scratch", "pkt_sram", "pkt_dram",
                   "app_scratch", "app_sram", "total")


@dataclass(frozen=True)
class SweepJob:
    """One compile+simulate cell of the evaluation grid."""

    app: str
    level: str
    kind: str  # "rate" (figure curves) or "table1" (access counts)
    n_mes: int
    warmup_packets: int
    measure_packets: int
    #: Optional packet-trace output path (not part of the job identity;
    #: tracing is pure observation).
    trace_json: Optional[str] = None
    #: CompilerOptions overrides applied on top of the level, as a
    #: sorted tuple of (field, value) pairs (hashable: jobs are frozen
    #: and the compile identity must cover the overrides). None means
    #: the level's stock options -- the paper's figures.
    overrides: Optional[Tuple[Tuple[str, object], ...]] = None
    #: Compile-time aggregation input (paper section 5.1); part of the
    #: compile identity, searched over by the tuner.
    target_gbps: float = 2.5

    def sort_key(self) -> Tuple:
        level_rank = (LEVEL_ORDER.index(self.level)
                      if self.level in LEVEL_ORDER else len(LEVEL_ORDER))
        # repr() gives overrides (a heterogeneous optional tuple) a
        # total order without TypeError between None and tuples.
        return (self.app, self.kind, level_rank, self.level,
                repr(self.overrides), self.target_gbps, self.n_mes)

    def compile_identity(self) -> Tuple:
        """What distinguishes this job's compiled artifact: jobs that
        share it share one compile-cache entry."""
        return (self.app, self.level, self.overrides, self.target_gbps)

    def describe(self) -> str:
        extra = ""
        if self.overrides:
            extra = " %s" % dict(self.overrides)
        if self.target_gbps != 2.5:
            extra += " @%.2gGbps" % self.target_gbps
        return "%s/%s %s @%d MEs%s" % (self.app, self.level, self.kind,
                                       self.n_mes, extra)


@dataclass
class JobResult:
    """One job's measured outputs plus its observability payload."""

    job: SweepJob
    rate_gbps: float
    profile: Dict[str, float]
    cache_hit: bool
    wall_s: float
    metrics: List[dict] = field(default_factory=list)
    compile_spans: List[tuple] = field(default_factory=list)
    decisions: List[dict] = field(default_factory=list)
    #: ``repro.analyze`` report for this job's (app, level) compile, when
    #: the sweep runs with ``analyze=True`` (None otherwise).
    analysis: Optional[dict] = None
    #: Stall-cycle attribution cell (repro.obs.profile) for rate jobs
    #: run with ``profile=True`` (None otherwise).
    occupancy: Optional[dict] = None
    #: Fast-forward pricing evidence (plan summary + this cell's mode)
    #: for rate jobs run with ``engine="fastforward"`` (None otherwise).
    fastforward: Optional[dict] = None
    #: SWC selection evidence from the job's compile (None when the
    #: level has SWC off). Unlike ledger decisions, this is extracted
    #: from the cached CompileResult itself, so it is present on cache
    #: hits too -- the tuner's pruner depends on that.
    swc: Optional[dict] = None


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a (possibly spawned) worker needs to run jobs."""

    cache_dir: Optional[str] = None
    use_cache: bool = True
    trace_packets: int = TRACE_PACKETS
    trace_seed: int = TRACE_SEED
    obs: bool = True
    capture_spans: bool = False
    ledger: bool = False
    #: Opt-in per-job correctness check: run the ``repro.analyze``
    #: budget + translation-validation passes over each distinct
    #: (app, level) compile and attach the report to the job results.
    analyze: bool = False
    #: Trace roots replayed per image by the validation pass.
    analyze_packets: int = 24
    #: Attach a stall-cycle attribution profiler to every rate job and
    #: emit BENCH_occupancy.json (pure observation; measured rates are
    #: bit-identical either way).
    profile: bool = False
    #: Simulation engine for rate jobs: None/"fast"/"legacy" run the
    #: cycle-accurate simulator with that dispatch core; "fastforward"
    #: routes rate jobs through the calibrated functional engine
    #: (:mod:`repro.ixp.fastforward`) and the sweep emits
    #: BENCH_ffspeed.json instead of the Tier-1 figure files.
    engine: Optional[str] = None

    def __post_init__(self):
        if self.engine == "fastforward" and self.profile:
            raise ValueError(
                "--profile attributes stall cycles over simulated time, "
                "which the fast-forward engine does not model; run "
                "--profile with the cycle-accurate engine")


def build_jobs(apps: Sequence[str],
               levels: Optional[Sequence[str]] = None,
               me_counts: Optional[Sequence[int]] = None,
               table1: bool = True,
               rate_warmup: int = RATE_WARMUP,
               rate_measure: int = RATE_MEASURE,
               table1_warmup: int = TABLE1_WARMUP,
               table1_measure: int = TABLE1_MEASURE,
               trace_sink: Optional[Callable[[str], Optional[str]]] = None,
               ) -> List[SweepJob]:
    """The job list for one sweep: rate curves for every requested
    (app, level, n_mes), plus Table 1 access-count runs at the paper's
    fixed 2-ME configuration for the levels Table 1 reports.

    ``trace_sink(app)`` names a packet-trace output file; the
    fully-optimized run at the highest ME count is the one traced
    (matching the benchmarks' ``--packet-trace`` behavior).
    """
    levels = list(levels) if levels is not None else list(LEVEL_ORDER)
    me_counts = list(me_counts) if me_counts is not None else list(ME_COUNTS)
    jobs: List[SweepJob] = []
    for app in apps:
        for level in levels:
            for n in me_counts:
                trace_json = None
                if (trace_sink is not None and level == levels[-1]
                        and n == max(me_counts)):
                    trace_json = trace_sink(app)
                jobs.append(SweepJob(app, level, "rate", n,
                                     rate_warmup, rate_measure,
                                     trace_json=trace_json))
        if table1:
            for level in [lv for lv in TABLE1_LEVELS if lv in levels]:
                jobs.append(SweepJob(app, level, "table1", TABLE1_N_MES,
                                     table1_warmup, table1_measure))
    return jobs


# -- job execution (shared by the inline path and pool workers) ------------------


def swc_summary(result) -> Optional[dict]:
    """Plain-data view of a compile's SWC selection evidence, or None
    when the level has SWC off. Extracted from the CompileResult (not
    the ledger stream), so it is available on cache hits too."""
    sr = getattr(result, "swc_result", None)
    if sr is None:
        return None
    return {
        "cached": sr.cached_names(),
        "rejected": dict(sorted(sr.rejected.items())),
        "evidence": {k: dict(v) for k, v in sorted(sr.evidence.items())},
        "requested_check_period": sr.requested_check_period,
        "check_period": sr.check_period,
        "eq2_min_check_rate": sr.eq2_min_check_rate,
    }


def execute_job(job: SweepJob, cfg: WorkerConfig,
                cache: Optional[CompileCache] = None,
                detached: bool = False) -> JobResult:
    """Run one job under a private metrics registry and return its
    outputs as picklable plain data.

    ``detached`` marks execution in a worker process: compile-stage
    spans and ledger decisions are drained/sliced and shipped back in
    the result (inline execution leaves them in this process's globals,
    where they already are visible).
    """
    from repro.rts.system import run_on_simulator

    if cache is None:
        cache = _process_cache(cfg)
    reg = obs_metrics.MetricsRegistry(enabled=cfg.obs)
    led = obs_ledger.get_ledger()
    led_mark = led.mark()
    t0 = time.perf_counter()
    with obs_metrics.scoped_registry(reg):
        with reg.labels(app=job.app, level=job.level, job=job.kind,
                        n_mes=job.n_mes):
            result, trace, hit = cache.get_or_compile(
                job.app, job.level, cfg.trace_packets, cfg.trace_seed,
                overrides=job.overrides, target_gbps=job.target_gbps)
            profiler = None
            if cfg.profile and job.kind == "rate":
                from repro.obs.profile import StallProfiler

                profiler = StallProfiler()
            # Engine choice applies to rate cells only: table1 rows
            # measure access counts, which the functional engine's cost
            # model does not replace, so they stay cycle-accurate.
            dispatch = cfg.engine if job.kind == "rate" else None
            run = run_on_simulator(result, trace, n_mes=job.n_mes,
                                   warmup_packets=job.warmup_packets,
                                   measure_packets=job.measure_packets,
                                   trace_json=job.trace_json,
                                   profiler=profiler,
                                   dispatch=dispatch,
                                   plan_key=(job.app, job.level,
                                             cfg.trace_packets,
                                             cfg.trace_seed,
                                             job.overrides,
                                             job.target_gbps))
    analysis = (_analyze_compile(job, cfg, result, trace)
                if cfg.analyze else None)
    occupancy = None
    if profiler is not None:
        from repro.obs.profile import occupancy_cell

        occupancy = occupancy_cell(job.app, job.level, job.n_mes,
                                   run.forwarding_gbps, run.occupancy)
    profile = {f: getattr(run.access_profile, f) for f in _PROFILE_FIELDS}
    spans = obs_trace.drain_compile_spans() if detached else []
    decisions = ([d.to_record() for d in led.since(led_mark)]
                 if detached and led.enabled else [])
    return JobResult(job=job,
                     rate_gbps=round(run.forwarding_gbps, 3),
                     profile=profile,
                     cache_hit=hit,
                     wall_s=time.perf_counter() - t0,
                     metrics=reg.records() if cfg.obs else [],
                     compile_spans=spans,
                     decisions=decisions,
                     analysis=analysis,
                     occupancy=occupancy,
                     fastforward=run.fastforward,
                     swc=swc_summary(result))


#: Per-process memo: the analysis of one (app, level) compile does not
#: depend on the ME count, so the many grid cells sharing a compile
#: share one report.
_ANALYSIS_MEMO: Dict[Tuple, dict] = {}


def _analyze_compile(job: SweepJob, cfg: WorkerConfig,
                     result, trace) -> dict:
    """The ``repro.analyze`` budget + validation report for this job's
    compiled artifact (memoized per process per (app, level))."""
    from repro.analyze import run_analysis

    key = (job.app, job.level, cfg.trace_packets, cfg.trace_seed,
           cfg.analyze_packets)
    if key not in _ANALYSIS_MEMO:
        _ANALYSIS_MEMO[key] = run_analysis(
            job.app, job.level, passes=("budget", "validate"),
            packets=cfg.trace_packets, seed=cfg.trace_seed,
            validate_packets=cfg.analyze_packets,
            result=result, trace=trace)
    return _ANALYSIS_MEMO[key]


# -- pool worker plumbing --------------------------------------------------------

_WORKER_CFG: Optional[WorkerConfig] = None
_WORKER_CACHE: Optional[CompileCache] = None


def _process_cache(cfg: WorkerConfig) -> CompileCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache(cfg.cache_dir, enabled=cfg.use_cache)
    return _WORKER_CACHE


def _worker_init(cfg: WorkerConfig) -> None:
    global _WORKER_CFG, _WORKER_CACHE
    _WORKER_CFG = cfg
    _WORKER_CACHE = CompileCache(cfg.cache_dir, enabled=cfg.use_cache)
    if cfg.capture_spans:
        obs_trace.capture_compile_spans()
    if cfg.ledger:
        obs_ledger.enable()


def _worker_run(job: SweepJob) -> JobResult:
    return execute_job(job, _WORKER_CFG, _WORKER_CACHE, detached=True)


def _worker_precompile(pair: Tuple):
    """Warm the disk cache for one compile identity
    (app, level, overrides, target_gbps); returns the compile's
    metric/ledger records so the parent's merged output still carries
    compile timings and decisions on a cold cache."""
    app, level, overrides, target_gbps = pair
    cfg = _WORKER_CFG
    reg = obs_metrics.MetricsRegistry(enabled=cfg.obs)
    led = obs_ledger.get_ledger()
    led_mark = led.mark()
    with obs_metrics.scoped_registry(reg):
        with reg.labels(app=app, level=level, job="compile"):
            _res, _trace, hit = _WORKER_CACHE.get_or_compile(
                app, level, cfg.trace_packets, cfg.trace_seed,
                overrides=overrides, target_gbps=target_gbps)
    spans = obs_trace.drain_compile_spans() if cfg.capture_spans else []
    decisions = ([d.to_record() for d in led.since(led_mark)]
                 if led.enabled else [])
    return (pair, hit, reg.records() if cfg.obs else [], spans, decisions)


# -- the sweep -------------------------------------------------------------------


@dataclass
class SweepResult:
    """Deterministically ordered results of one sweep."""

    jobs: List[JobResult]
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    n_procs: int = 1

    # -- views -------------------------------------------------------------------

    def series(self, app: str) -> Dict[str, List[float]]:
        """level -> [rate at each ME count], the Figure 13-15 shape."""
        rows: Dict[str, Dict[int, float]] = {}
        for jr in self.jobs:
            if jr.job.kind == "rate" and jr.job.app == app:
                rows.setdefault(jr.job.level, {})[jr.job.n_mes] = jr.rate_gbps
        return {level: [by_me[n] for n in sorted(by_me)]
                for level, by_me in rows.items()}

    def profiles(self, app: str) -> Dict[str, Dict[str, float]]:
        """level -> Table 1 access-count row (unrounded)."""
        return {jr.job.level: dict(jr.profile) for jr in self.jobs
                if jr.job.kind == "table1" and jr.job.app == app}

    def analysis_failures(self) -> List[Tuple[str, str, int]]:
        """(app, level, error_findings) for every analyzed compile whose
        ``repro.analyze`` report is not clean. Empty when analysis was
        off or everything validated."""
        seen = set()
        failures: List[Tuple[str, str, int]] = []
        for jr in self.jobs:
            if jr.analysis is None:
                continue
            key = (jr.job.app, jr.job.level)
            if key in seen:
                continue
            seen.add(key)
            if not jr.analysis.get("ok", True):
                failures.append((jr.job.app, jr.job.level,
                                 int(jr.analysis.get("errors_total", 0))))
        return failures

    def bench_payloads(self) -> Dict[str, Dict]:
        """figure -> BENCH_*.json payload, matching the benchmarks'
        layout (rates rounded to 3 during measurement, access counts
        rounded to 3 here)."""
        payloads: Dict[str, Dict] = {}
        apps = sorted({jr.job.app for jr in self.jobs})
        for app in apps:
            figure = FIG_BY_APP.get(app, app)
            payload: Dict = {"app": app}
            rate_jobs = [jr.job for jr in self.jobs
                         if jr.job.kind == "rate" and jr.job.app == app]
            if rate_jobs:
                payload["me_counts"] = sorted({j.n_mes for j in rate_jobs})
                payload["rates"] = self.series(app)
            profiles = self.profiles(app)
            if profiles:
                payload["mem_accesses"] = {
                    level: {f: round(row[f], 3) for f in _PROFILE_FIELDS}
                    for level, row in profiles.items()
                }
            payloads[figure] = payload
        return payloads

    def ffspeed_payload(self) -> Optional[Dict]:
        """BENCH_ffspeed.json payload for a fast-forward sweep: per
        (app, level), the calibration plan evidence plus every rate
        cell's modeled rate and pricing mode. Strictly deterministic --
        rates, anchors and resync evidence are simulation outputs, and
        no wall-clock field is ever included -- so repeated sweeps are
        byte-identical. None when no job ran fast-forward."""
        apps: Dict[str, Dict] = {}
        for jr in self.jobs:
            if jr.fastforward is None:
                continue
            info = dict(jr.fastforward)
            n = info.pop("n_mes", jr.job.n_mes)
            mode = info.pop("mode", "anchored")
            gbps = info.pop("gbps", jr.rate_gbps)
            level = apps.setdefault(jr.job.app, {"levels": {}})
            entry = level["levels"].setdefault(jr.job.level,
                                               {"plan": {}, "cells": {}})
            # Later cells carry the most complete plan (on-demand
            # anchors accumulate), and jobs are in sort-key order.
            entry["plan"] = info
            entry["cells"][str(n)] = {"gbps": round(gbps, 4),
                                      "mode": mode}
        if not apps:
            return None
        from repro.ixp.fastforward import RATE_ERROR_BOUND_PCT

        return {"engine": "fastforward",
                "error_bound_pct": RATE_ERROR_BOUND_PCT,
                "apps": apps}

    def occupancy_payload(self) -> Optional[Dict]:
        """BENCH_occupancy.json payload: one stall-attribution cell per
        profiled rate job, keyed ``app/LEVEL@n_mes`` so repeated sweeps
        merge instead of clobbering. None when no job was profiled."""
        cells = {"%s/%s@%d" % (jr.job.app, jr.job.level, jr.job.n_mes):
                 jr.occupancy
                 for jr in self.jobs if jr.occupancy is not None}
        if not cells:
            return None
        return {"cells": cells}

    def write_bench_files(self, out_dir: Optional[str] = None) -> List[str]:
        """Single-writer merge of every payload into
        ``<out_dir>/BENCH_<figure>.json`` (default: the repo root)."""
        out_dir = out_dir or repo_root()
        ffspeed = self.ffspeed_payload()
        if ffspeed is not None:
            # A fast-forward sweep writes only its own bench file: the
            # Tier-1 figure files stay cycle-accurate by construction.
            path = os.path.join(out_dir, "BENCH_ffspeed.json")
            return [merge_bench_json(path, "ffspeed", ffspeed,
                                     kind="bench_ffspeed")]
        paths = []
        for figure, payload in sorted(self.bench_payloads().items()):
            path = os.path.join(out_dir, "BENCH_%s.json" % figure)
            paths.append(merge_bench_json(path, figure, payload))
        occupancy = self.occupancy_payload()
        if occupancy is not None:
            path = os.path.join(out_dir, "BENCH_occupancy.json")
            paths.append(merge_bench_json(path, "occupancy", occupancy,
                                          kind="bench_occupancy"))
        return paths


def run_sweep(jobs: Sequence[SweepJob], n_procs: int = 1,
              cache: Optional[CompileCache] = None,
              cfg: Optional[WorkerConfig] = None,
              merge_into: Optional[obs_metrics.MetricsRegistry] = None,
              ) -> SweepResult:
    """Execute ``jobs`` with ``n_procs`` processes and merge results.

    ``n_procs <= 1`` runs every job inline (still one private registry
    per job); larger values fan jobs across a spawn pool after warming
    the compile cache for the distinct (app, level) pairs. Either way
    the returned :class:`SweepResult` lists jobs in sort-key order and
    each job's metric records are folded into ``merge_into`` (default:
    the process-global registry), so the two modes are
    indistinguishable to consumers.
    """
    if cfg is None:
        cfg = WorkerConfig(
            cache_dir=cache.cache_dir if cache is not None else None,
            use_cache=cache.enabled if cache is not None else True,
            obs=obs_metrics.get_registry().enabled,
            capture_spans=obs_trace.spans_armed(),
            ledger=obs_ledger.is_enabled(),
        )
    if cache is None:
        cache = CompileCache(cfg.cache_dir, enabled=cfg.use_cache)

    ordered = sorted(jobs, key=SweepJob.sort_key)
    t0 = time.perf_counter()
    warm_records: List[Tuple] = []
    if n_procs <= 1 or len(ordered) <= 1:
        results = [execute_job(job, cfg, cache) for job in ordered]
        n_procs = 1
    else:
        # repr() keys the sort: overrides mixes None with tuples.
        pairs = sorted({j.compile_identity() for j in ordered},
                       key=lambda p: (p[0], p[1], repr(p[2]), p[3]))
        ctx = multiprocessing.get_context("spawn")
        procs = min(n_procs, len(ordered))
        with ctx.Pool(procs, initializer=_worker_init,
                      initargs=(cfg,)) as pool:
            warm_records = pool.map(_worker_precompile, pairs)
            results = pool.map(_worker_run, ordered)
        # Local bookkeeping: pool workers hit their own cache objects.
        for _pair, hit, _recs, _spans, _dec in warm_records:
            if hit:
                cache.hits += 1
            else:
                cache.misses += 1

    reg = merge_into if merge_into is not None else obs_metrics.get_registry()
    led = obs_ledger.get_ledger()
    # warm_records is already in sorted-pair order (pool.map preserves
    # input order), so the merge is deterministic.
    for _pair, _hit, recs, spans, decisions in warm_records:
        reg.merge_records(recs)
        obs_trace.inject_compile_spans(spans)
        led.merge_records(decisions)
    for jr in results:
        reg.merge_records(jr.metrics)
        obs_trace.inject_compile_spans(jr.compile_spans)
        led.merge_records(jr.decisions)
        jr.compile_spans = []

    hits = sum(1 for jr in results if jr.cache_hit)
    misses = len(results) - hits
    return SweepResult(jobs=results, cache_hits=hits, cache_misses=misses,
                       wall_s=time.perf_counter() - t0, n_procs=n_procs)
