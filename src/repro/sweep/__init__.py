"""Process-parallel evaluation-sweep orchestrator with compile caching.

One command regenerates the paper's whole evaluation (Figures 13-15
rate curves + Table 1 access counts)::

    python -m repro.sweep --apps l3switch,firewall,mpls --jobs 4

Guarantees (see DESIGN.md section 9):

* ``--jobs 1`` and ``--jobs N`` produce **bit-identical**
  ``BENCH_*.json`` files -- results merge in job-key order, never
  completion order, and every job runs under a private metrics
  registry whether inline or in a worker process.
* Each (app, level) compiles **once ever**: artifacts persist in an
  on-disk cache keyed by a content fingerprint (Baker source, options,
  trace parameters, compiler version), shared by CLI runs, pytest
  benchmark sessions, and pool workers alike.
"""

from repro.sweep.benchio import merge_bench_json
from repro.sweep.cache import (
    CompileCache,
    cache_key,
    compiler_fingerprint,
    default_cache_dir,
    repo_root,
)
from repro.sweep.orchestrator import (
    FIG_BY_APP,
    ME_COUNTS,
    RATE_MEASURE,
    RATE_WARMUP,
    TABLE1_LEVELS,
    TABLE1_MEASURE,
    TABLE1_N_MES,
    TABLE1_WARMUP,
    TRACE_PACKETS,
    TRACE_SEED,
    JobResult,
    SweepJob,
    SweepResult,
    WorkerConfig,
    build_jobs,
    execute_job,
    run_sweep,
)

__all__ = [
    "CompileCache",
    "FIG_BY_APP",
    "JobResult",
    "ME_COUNTS",
    "RATE_MEASURE",
    "RATE_WARMUP",
    "SweepJob",
    "SweepResult",
    "TABLE1_LEVELS",
    "TABLE1_MEASURE",
    "TABLE1_N_MES",
    "TABLE1_WARMUP",
    "TRACE_PACKETS",
    "TRACE_SEED",
    "WorkerConfig",
    "build_jobs",
    "cache_key",
    "compiler_fingerprint",
    "default_cache_dir",
    "execute_job",
    "merge_bench_json",
    "repo_root",
    "run_sweep",
]
