"""Safe merge-writes for the repo-root ``BENCH_*.json`` files.

Multiple producers contribute to one bench file (the per-figure rate
benchmarks add ``rates``, the Table 1 benchmark adds ``mem_accesses``,
the sweep orchestrator writes both), in any order, possibly from
concurrent processes. Two historical bugs lived here:

* ``data.update(existing)`` let stale top-level keys from an existing
  file shadow the fresh ``kind``/``figure`` fields -- a file touched by
  an older schema could permanently mislabel itself. The merge now
  *forces* ``kind``/``figure`` after folding in existing content.
* The read-merge-write cycle was non-atomic: two concurrent writers
  could interleave (both read, both write) and silently lose one
  side's keys, and a reader could observe a half-written file. Writes
  now go through a tempfile + :func:`os.replace` under an advisory
  file lock, so concurrent merges serialize and readers only ever see
  complete documents.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from contextlib import contextmanager
from typing import Dict

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


@contextmanager
def locked(path: str):
    """Exclusive advisory lock scoped to ``path`` (via a ``.lock``
    sibling, so the data file itself can be atomically replaced while
    locked). Degrades to a no-op where ``fcntl`` is unavailable."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def _atomic_write_json(path: str, data: Dict) -> None:
    d = os.path.dirname(os.path.abspath(path))
    os.makedirs(d, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=d, prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def merge_bench_json(path: str, figure: str, payload: Dict,
                     kind: str = "bench") -> str:
    """Merge ``payload`` into the bench file at ``path``.

    Top-level keys merge key-wise when both sides are dicts, otherwise
    the new value wins; ``kind``/``figure`` are stamped *after* the
    merge so nothing in an existing file can shadow them (``kind``
    defaults to ``"bench"``; the serve harness writes
    ``"bench_churn"``). The whole read-merge-write runs atomically
    under :func:`locked`. Output is deterministic: stable key order, no
    timestamps.

    An existing file that cannot be parsed is **not** silently
    rewritten (that used to discard every other producer's merged keys
    -- e.g. Table 1 counts vanished with no signal): the unreadable
    content is preserved as a ``<path>.corrupt`` sidecar, a warning
    goes to stderr, and the ``sweep.bench_merge{result="corrupt"}``
    counter is bumped before the fresh payload is written.
    """
    from repro.obs import metrics as obs_metrics

    with locked(path):
        data: Dict = {}
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    existing = json.load(fh)
                if isinstance(existing, dict):
                    data.update(existing)
            except (OSError, json.JSONDecodeError) as exc:
                sidecar = path + ".corrupt"
                try:
                    os.replace(path, sidecar)
                except OSError:
                    sidecar = None
                print("warning: bench file %s is unreadable (%s); "
                      "previously merged keys are lost%s"
                      % (path, exc,
                         ", original preserved as %s" % sidecar
                         if sidecar else ""),
                      file=sys.stderr)
                reg = obs_metrics.get_registry()
                if reg.enabled:
                    reg.counter("sweep.bench_merge",
                                result="corrupt").inc()
        for key, value in payload.items():
            if isinstance(value, dict) and isinstance(data.get(key), dict):
                data[key].update(value)
            else:
                data[key] = value
        data["kind"] = kind
        data["figure"] = figure
        _atomic_write_json(path, data)
    return path
