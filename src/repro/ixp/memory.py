"""Memory subsystem model: storage plus latency/bandwidth channels.

Each level (Scratch / SRAM / DRAM) is a single command channel with

* an **occupancy** per access (the channel is busy for that long -- the
  reciprocal of bandwidth), growing sub-linearly with access width, and
* a **latency** until the data returns to the issuing thread.

Threads hide latency by swapping; occupancy is what saturates and caps
the forwarding rate. The constants are calibrated so the paper's own
memory-characterization experiment (Figure 6) reproduces: at 4.88 Mpps
(2.5 Gbps of 64 B packets) the system sustains about 2 DRAM, 8 SRAM or
64 Scratch accesses per packet across six MEs.

Rx/Tx packet-data DMA does not contend on these modeled channels (see
DESIGN.md): the paper's per-packet budgets are for ME-issued accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.ixp.counters import Counters

ME_HZ = 600e6  # ME clock; all times below are in ME cycles


@dataclass
class ChannelParams:
    latency: float
    occupancy_base: float
    occupancy_per_word: float

    def occupancy(self, words: int) -> float:
        return self.occupancy_base + self.occupancy_per_word * words


# Calibrated parameters (see module docstring / DESIGN.md section 5).
# Per-access overhead dominates; width adds only fractional cost (Figure
# 6's wide-access curves sit slightly below the narrow ones at equal
# access counts):
#   DRAM  8 B access ~ 57 cycles (2 of them per 64 B packet = 2.67 Gbps),
#         64 B access ~ 74 cycles (+30%);
#   SRAM  4 B ~ 15.4 cycles (8 per packet = 2.5 Gbps), 32 B ~ 23.8;
#   Scratch 4 B ~ 1.9 cycles (64 per packet = 2.5 Gbps).
SCRATCH = ChannelParams(latency=60, occupancy_base=1.8, occupancy_per_word=0.12)
SRAM = ChannelParams(latency=90, occupancy_base=14.8, occupancy_per_word=0.5)
DRAM = ChannelParams(latency=120, occupancy_base=55.0, occupancy_per_word=0.35)

SIZES = {
    "scratch": 16 * 1024,
    "sram": 4 * 1024 * 1024,
    "dram": 16 * 1024 * 1024,
}


class MemoryChannel:
    """One command channel: FIFO server with occupancy + latency."""

    def __init__(self, name: str, params: ChannelParams):
        self.name = name
        self.params = params
        self.next_free = 0.0
        self.busy_time = 0.0

    def request(self, now: float, words: int) -> float:
        """Issue an access at time ``now``; returns the completion time
        (data available / write retired)."""
        occupancy = self.params.occupancy(words)
        start = max(now, self.next_free)
        self.next_free = start + occupancy
        self.busy_time += occupancy
        return start + occupancy + self.params.latency


class MemorySystem:
    """Storage arrays plus the command channels, with access accounting.

    SRAM is served by two QDR channels interleaved on 64 B granules
    (the IXP2400 has two SRAM channels): traffic spread over many
    addresses enjoys twice the single-channel bandwidth, while a
    microbenchmark hammering one location (Figure 6's loop) sees one
    channel -- matching how the paper's budget numbers and application
    rates coexist."""

    SRAM_INTERLEAVE_SHIFT = 6

    def __init__(self):
        self.stores: Dict[str, bytearray] = {
            name: bytearray(size) for name, size in SIZES.items()
        }
        self.channels: Dict[str, MemoryChannel] = {
            "scratch": MemoryChannel("scratch", SCRATCH),
            "sram": MemoryChannel("sram0", SRAM),
            "sram1": MemoryChannel("sram1", SRAM),
            "dram": MemoryChannel("dram", DRAM),
        }
        self.counters = Counters()
        # Optional repro.obs.profile.StallProfiler: records per-request
        # channel queueing delay. Pure observation -- every timed entry
        # point guards with ``is not None`` and only feeds profiler-side
        # accumulators, so attaching one cannot change completion times.
        self.profiler = None

    # -- data access (big-endian words) ------------------------------------------

    def read_words(self, space: str, addr: int, nwords: int) -> list:
        store = self.stores[space]
        end = addr + nwords * 4
        if addr < 0 or end > len(store):
            raise IndexError("%s read out of range at %#x" % (space, addr))
        if nwords == 1:
            return [int.from_bytes(store[addr:end], "big")]
        if nwords == 2:
            return [int.from_bytes(store[addr : addr + 4], "big"),
                    int.from_bytes(store[addr + 4 : end], "big")]
        return [
            int.from_bytes(store[i : i + 4], "big")
            for i in range(addr, end, 4)
        ]

    def write_words(self, space: str, addr: int, values: list,
                    byte_mask: int = None) -> None:
        store = self.stores[space]
        if addr < 0 or addr + len(values) * 4 > len(store):
            raise IndexError("%s write out of range at %#x" % (space, addr))
        if byte_mask is None:
            for i, value in enumerate(values):
                off = addr + i * 4
                store[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")
            return
        for i, value in enumerate(values):
            data = (value & 0xFFFFFFFF).to_bytes(4, "big")
            for b in range(4):
                if (byte_mask >> (i * 4 + b)) & 1:
                    store[addr + i * 4 + b] = data[b]

    def read_bytes(self, space: str, addr: int, n: int) -> bytes:
        store = self.stores[space]
        if addr < 0 or addr + n > len(store):
            # Unchecked, an out-of-range slice silently *truncates* (a
            # short Tx payload instead of an error). Same contract as
            # read_words.
            raise IndexError("%s read out of range at %#x" % (space, addr))
        return bytes(store[addr : addr + n])

    def write_bytes(self, space: str, addr: int, data: bytes) -> None:
        store = self.stores[space]
        if addr < 0 or addr + len(data) > len(store):
            # Unchecked, bytearray slice assignment past the end silently
            # *grows* the backing store beyond SIZES. Same contract as
            # write_words.
            raise IndexError("%s write out of range at %#x" % (space, addr))
        store[addr : addr + len(data)] = data

    # -- timed access from MEs -----------------------------------------------------

    def timed_access(self, now: float, space: str, words: int,
                     category: str, addr: int = 0) -> float:
        """Charge a channel and the counters; returns completion time.

        The counter bump and the channel request are inlined (this is
        the hottest memory-model entry point); the arithmetic matches
        :meth:`MemoryChannel.request` exactly."""
        counters = self.counters
        key = (space, category)
        counters.accesses[key] += 1
        counters.words[key] += words
        if space == "sram" and (addr >> self.SRAM_INTERLEAVE_SHIFT) & 1:
            ch = self.channels["sram1"]
        else:
            ch = self.channels[space]
        p = ch.params
        occupancy = p.occupancy_base + p.occupancy_per_word * words
        start = ch.next_free
        if now > start:
            start = now
        ch.next_free = start + occupancy
        ch.busy_time += occupancy
        prof = self.profiler
        if prof is not None:
            prof.note_mem(ch.name, start - now)
        return start + occupancy + p.latency

    def timed_read(self, now: float, space: str, nwords: int,
                   category: str, addr: int) -> Tuple[float, list]:
        """Fused :meth:`timed_access` + :meth:`read_words` for the
        predecoded fast path: one call per blocking read, both bodies
        inlined. Accounting, arithmetic and the charge-before-bounds-
        check order are identical to the two separate calls."""
        counters = self.counters
        key = (space, category)
        counters.accesses[key] += 1
        counters.words[key] += nwords
        if space == "sram" and (addr >> self.SRAM_INTERLEAVE_SHIFT) & 1:
            ch = self.channels["sram1"]
        else:
            ch = self.channels[space]
        p = ch.params
        occupancy = p.occupancy_base + p.occupancy_per_word * nwords
        start = ch.next_free
        if now > start:
            start = now
        ch.next_free = start + occupancy
        ch.busy_time += occupancy
        prof = self.profiler
        if prof is not None:
            prof.note_mem(ch.name, start - now)
        store = self.stores[space]
        end = addr + nwords * 4
        if addr < 0 or end > len(store):
            raise IndexError("%s read out of range at %#x" % (space, addr))
        if nwords == 1:
            values = [int.from_bytes(store[addr:end], "big")]
        elif nwords == 2:
            values = [int.from_bytes(store[addr : addr + 4], "big"),
                      int.from_bytes(store[addr + 4 : end], "big")]
        else:
            values = [int.from_bytes(store[i : i + 4], "big")
                      for i in range(addr, end, 4)]
        return start + occupancy + p.latency, values

    def timed_write(self, now: float, space: str, words: int,
                    category: str, addr: int, values: list,
                    byte_mask: int = None) -> float:
        """Fused :meth:`timed_access` + :meth:`write_words`, both bodies
        inlined; see :meth:`timed_read`."""
        counters = self.counters
        key = (space, category)
        counters.accesses[key] += 1
        counters.words[key] += words
        if space == "sram" and (addr >> self.SRAM_INTERLEAVE_SHIFT) & 1:
            ch = self.channels["sram1"]
        else:
            ch = self.channels[space]
        p = ch.params
        occupancy = p.occupancy_base + p.occupancy_per_word * words
        start = ch.next_free
        if now > start:
            start = now
        ch.next_free = start + occupancy
        ch.busy_time += occupancy
        prof = self.profiler
        if prof is not None:
            prof.note_mem(ch.name, start - now)
        store = self.stores[space]
        if addr < 0 or addr + len(values) * 4 > len(store):
            raise IndexError("%s write out of range at %#x" % (space, addr))
        if byte_mask is None:
            for i, value in enumerate(values):
                off = addr + i * 4
                store[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")
        else:
            for i, value in enumerate(values):
                data = (value & 0xFFFFFFFF).to_bytes(4, "big")
                for b in range(4):
                    if (byte_mask >> (i * 4 + b)) & 1:
                        store[addr + i * 4 + b] = data[b]
        return start + occupancy + p.latency
