"""Scratch rings: the hardware-assisted FIFOs used for CCs and free lists."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional


class Ring:
    """A scratch-memory ring of 32-bit words. ``get`` on empty returns 0
    (the hardware's convention, which is why packet handles are never
    placed at address 0)."""

    def __init__(self, name: str, capacity: int = 256):
        self.name = name
        self.capacity = capacity
        self.items: Deque[int] = deque()
        self.puts = 0
        self.gets = 0
        self.drops = 0  # rejected puts (ring full)
        self.empty_gets = 0  # gets that returned 0 (ring empty)
        self.max_depth = 0  # occupancy high watermark
        # Optional repro.obs.profile.StallProfiler: samples occupancy
        # after every operation. Pure observation, guarded, no effect on
        # ring contents or counters.
        self.profiler = None

    def put(self, value: int) -> bool:
        if len(self.items) >= self.capacity:
            self.drops += 1
            if self.profiler is not None:
                self.profiler.note_ring(self.name, len(self.items))
            return False
        self.items.append(value & 0xFFFFFFFF)
        self.puts += 1
        if len(self.items) > self.max_depth:
            self.max_depth = len(self.items)
        if self.profiler is not None:
            self.profiler.note_ring(self.name, len(self.items))
        return True

    def get(self) -> int:
        if not self.items:
            self.empty_gets += 1
            if self.profiler is not None:
                self.profiler.note_ring(self.name, 0)
            return 0
        self.gets += 1
        value = self.items.popleft()
        if self.profiler is not None:
            self.profiler.note_ring(self.name, len(self.items))
        return value

    def __len__(self) -> int:
        return len(self.items)


class RingSet:
    def __init__(self):
        self.rings: Dict[str, Ring] = {}

    def create(self, name: str, capacity: int = 256) -> Ring:
        ring = Ring(name, capacity)
        self.rings[name] = ring
        return ring

    def __getitem__(self, name: str) -> Ring:
        return self.rings[name]

    def get(self, name: str) -> Optional[Ring]:
        return self.rings.get(name)
