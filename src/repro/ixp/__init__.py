"""Cycle-approximate IXP2400 simulator: the evaluation substrate
substituting for the paper's hardware testbed."""

from repro.ixp.chip import IXP2400
from repro.ixp.counters import AccessProfile, Counters
from repro.ixp.memory import ME_HZ, MemorySystem

__all__ = ["IXP2400", "AccessProfile", "Counters", "ME_HZ", "MemorySystem"]
