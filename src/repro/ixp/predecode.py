"""Load-time predecode: bind instructions to specialized step closures
once, so the per-instruction interpreter loop does no dict dispatch,
isinstance/type tests, or operand attribute chasing.

Every instruction index ``i`` of an :class:`~repro.cg.assemble.MEImage`
gets a ``step(me, t, deadline)`` closure that executes the *straight-line
run* starting at ``i``: the instruction itself plus following fusable
instructions, inlined into one generated function body. Source code is
generated per run *shape* (opcodes, operand kinds, register banks,
positions) and ``exec``-compiled once per shape -- shape sources are
cached globally, so re-decoding the same image for a new chip only
re-instantiates closures. The varying parts (register indices, folded
immediates, resolved symbol addresses, branch targets, bound ring and
memory objects) enter as closure parameters.

Fusion changes *nothing* observable. A multi-instruction run opens with
one worst-case guard::

    if tm + CMAX >= deadline:  # CMAX = the run's maximum possible charge
        <execute only the first instruction, then return to the loop>

When the guard fails, *no* per-sub-instruction deadline check could have
fired either (each would compare a partial charge, and every partial
charge is <= CMAX), so the body runs **unchecked**: cycle charges fold
into compile-time constants applied at the exits, and the slice pacing
near a deadline is handled by the guard's solo path plus the ordinary
single-instruction steps that follow it -- exactly the legacy cadence.
Conditional branches bail to the target on the taken path (charging the
abort cycle) and continue inline on fallthrough; a failing
sub-instruction (Local Memory bounds) raises with ``time``, ``pc`` and
``executed_instrs`` restored to the legacy path's net effect. Runs end
inclusively at control transfers and blocking instructions (memory,
rings, ``ctx_arb``, ``halt``) and exclusively before unfusable
instructions or the length cap -- where they bail to the next
instruction's own step, so a thread resuming at *any* pc finds a valid
entry.

Step protocol: a step returns the new ``me.time`` while the thread keeps
running, or ``None`` when the thread stopped (blocked, yielded, or
halted). The dispatch loop in :meth:`Microengine._run_thread_fast` adds
one to ``executed_instrs`` per call; multi-instruction runs account for
the remainder themselves.

Programs are chip-specific (symbol addresses and ring objects live on
the chip) and cached per ``(image, chip)`` by
:meth:`MEImage.predecoded`. Any instruction the predecoder cannot bind
(virtual registers that escaped regalloc, unresolved branches, symbols
missing from a hand-built chip) *punts*: it gets a step that defers to
the legacy handler table at execution time, preserving the legacy
path's lazy error behavior instruction for instruction.

Equivalence with the legacy dict-dispatch interpreter is asserted
bit-for-bit (Tx signatures, cycle counts, executed_instrs, metrics) by
``tests/test_fastpath.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cg.isa import CAT_APP, Imm, PReg, SymRef
from repro.cg.melayout import LM_WORDS, SRAM_STACK_BYTES_PER_THREAD
from repro.ixp.memory import MemorySystem
from repro.ixp.microengine import _HANDLERS, SimError, _signed

_U32 = 0xFFFFFFFF
#: Spelled into generated source so stores mask exactly like Thread.set.
_MASK = "4294967295"

#: Longest fused run; longer straight-line stretches bail to the next
#: instruction's own step (one extra dispatch per crossing).
RUN_CAP = 24

#: A predecoded step: returns the new me.time (thread continues) or None
#: (thread blocked / yielded / halted).
Step = Callable[[object, object, float], object]
Prog = List[Step]


class DecodePunt(Exception):
    """Raised inside an emitter when an operand cannot be pre-bound; the
    run ends and the instruction falls back to legacy dispatch."""


#: Recorded for a symbol the decode looked up but the chip did not have
#: (the instruction punted); a chip that *does* define it must not reuse
#: the plan.
_SYM_MISSING = object()


class _ChipView:
    """Decode-time facade over a chip: forwards symbol resolution and
    records every name it depended on (value, or a miss). Symbols are
    the *only* chip state baked into generated closures -- memory and
    ring objects are reached through ``me.chip`` at run time -- so a
    program built against one chip is valid on any chip whose symbol
    table agrees on exactly the recorded names (:func:`plan_matches`)."""

    def __init__(self, chip):
        self._symbols = chip.symbols
        self.used: Dict[str, object] = {}

    def symbol(self, name: str) -> int:
        value = self._symbols.get(name, _SYM_MISSING)
        self.used[name] = value
        if value is _SYM_MISSING:
            raise KeyError("unresolved symbol %r (loader bug?)" % name)
        return value


def plan_matches(used: Dict[str, object], chip) -> bool:
    """True when ``chip`` resolves every recorded symbol to the recorded
    value (including recorded misses staying missing)."""
    symbols = chip.symbols
    for name, value in used.items():
        current = symbols.get(name, _SYM_MISSING)
        if current is not value and current != value:
            return False
    return True


# -- shape-template engine --------------------------------------------------------------
#
# _make_step assembles a full factory source
#
#     def _make(PARAM1, PARAM2, ...):
#         def step(me, t, deadline):
#             <body>
#         return step
#
# compiles it once per distinct source (the shape cache key IS the
# source text), and instantiates it with the run's parameters as closure
# cells. Parameter *names* are embedded in the source, so equal shapes
# share one code object no matter which instructions they bind.

_MAKE_CACHE: Dict[str, Callable] = {}

_EXEC_GLOBALS = {
    "SimError": SimError,
    "_signed": _signed,
}


def _make_step(body: str, params: Dict[str, object]) -> Step:
    names = sorted(params)
    src = ("def _make(%s):\n"
           "    def step(me, t, deadline):\n"
           "%s"
           "    return step\n" % (", ".join(names), body))
    make = _MAKE_CACHE.get(src)
    if make is None:
        ns: Dict[str, object] = {}
        exec(compile(src, "<predecode>", "exec"), dict(_EXEC_GLOBALS), ns)
        make = ns["_make"]
        _MAKE_CACHE[src] = make
    return make(*[params[n] for n in names])


# -- run builder -----------------------------------------------------------------------


class _RunBuilder:
    """Accumulates the generated body for one straight-line run.

    The body keeps the entry clock in a local ``tm`` and *defers* all
    cycle charges: ``cyc`` accumulates the straight-line charge as a
    compile-time constant, applied in one addition at each exit (bail,
    terminal, fallthrough close). ``cmax`` tracks the worst possible
    total charge over any path through the run -- the caller's deadline
    guard compares against it, which is what makes the checkless body
    bit-exact (see the module docstring).
    """

    def __init__(self, chip, prefix: str = "", puntable=None,
                 visited=None, bias=None):
        self.chip = chip
        self.prefix = prefix
        # Branch evidence for superblock fusion: indices of conditional
        # branches observed to be strongly taken-biased. _e_br inverts
        # those (guard bails to the fallthrough, emission continues at
        # the taken target) so the hot path stays in one fused run.
        self.bias = bias if bias is not None else {}
        self.lines: List[str] = ["        tm = me.time\n"]
        self.params: Dict[str, object] = {}
        self.k = 0  # sub-instructions emitted so far
        self.cyc = 0  # straight-line cycles charged so far (deferred)
        self.cmax = 0  # worst-case total charge over any exit path
        self.closed = False
        # Closed by an unconditional raise (static Local Memory bounds
        # violation): prior sub-instructions still need the guard so the
        # error surfaces in the same slice as on the legacy path.
        self.early_raise = False
        # Fuse-through support: an emitter for an unconditional control
        # transfer with a statically known, not-yet-visited target may
        # defer its charge (cont) and set ``goto`` instead of closing;
        # _emit_run then continues emitting at the target.
        self.goto: Optional[int] = None
        self._puntable = puntable if puntable is not None else set()
        self._visited = visited if visited is not None else set()

    def can_goto(self, target) -> bool:
        return (target is not None and target not in self._visited
                and target not in self._puntable)

    # parameter helpers ------------------------------------------------------

    def p(self, name: str, value) -> str:
        full = "%si%d_%s" % (self.prefix, self.k, name)
        self.params[full] = value
        return full

    def src(self, op, name: str):
        """Bind a source operand: (expr, is_const). Constants fold into
        a closure parameter; registers become direct bank indexing."""
        if type(op) is Imm:
            return self.p(name, op.value), True
        if type(op) is SymRef:
            return self.p(name, self.chip.symbol(op.name) + op.addend), True
        if type(op) is PReg:
            return "t.%s[%s]" % (op.bank, self.p(name, op.index)), False
        raise DecodePunt("operand %r" % (op,))

    def csrc(self, op, name: str) -> str:
        """Source operand whose constant form must be pre-masked (Cmp,
        Mov, LmWrite destinations mask on use)."""
        expr, const = self.src(op, name)
        if const:
            self.params[expr] &= _U32
            return expr
        return "(%s) & %s" % (expr, _MASK)

    def dst(self, reg, name: str) -> str:
        if type(reg) is not PReg:
            raise DecodePunt("destination %r" % (reg,))
        return "t.%s[%s]" % (reg.bank, self.p(name, reg.index))

    # structure helpers ------------------------------------------------------

    def add(self, line: str) -> None:
        self.lines.append("        " + line + "\n")

    def restore_time(self) -> str:
        """The assignment restoring ``me.time`` to "all *previous*
        sub-instructions charged, the current one not" -- the legacy
        net effect at a failing instruction."""
        if self.cyc:
            return "me.time = tm + %d" % self.cyc
        return "me.time = tm"

    def total(self, cycles: int) -> str:
        """The final charge for a terminal sub-instruction: everything
        accumulated plus this one's own cycles, in one addition."""
        self.cmax += cycles
        return "tm += %d" % (self.cyc + cycles)

    def cont(self, work: List[str], cycles: int) -> None:
        """A fallthrough sub-instruction: emit the work; its charge is
        deferred into ``cyc``."""
        for line in work:
            self.add(line)
        self.cyc += cycles
        self.cmax += cycles
        self.k += 1

    def close_fall(self, next_idx: int) -> None:
        """End the run *before* next_idx (cap or unfusable instruction):
        apply the accumulated charge and bail to that instruction's own
        step."""
        if self.cyc:
            self.add("tm += %d" % self.cyc)
        self.add("me.time = tm")
        self.add("t.pc = %s" % self.p("P", next_idx))
        if self.k > 1:
            self.add("me.executed_instrs += %d" % (self.k - 1))
        self.add("return tm")
        self.closed = True

    def close_terminal(self, tail: List[str]) -> None:
        """End the run with a terminal sub-instruction's own exit
        lines (control transfer / blocking / halt)."""
        for line in tail:
            self.add(line)
        self.k += 1
        self.closed = True

    def build(self) -> Step:
        assert self.closed
        return _make_step("".join(self.lines), self.params)


# -- per-kind emitters -----------------------------------------------------------------
# Each emits one sub-instruction into the builder. ``idx`` is the
# instruction's index in the image (fallthrough pc updates and link
# values fold to constants).


_ALU_EXPR = {
    "add": "(%s) + (%s)",
    "sub": "(%s) - (%s)",
    "and": "(%s) & (%s)",
    "or": "(%s) | (%s)",
    "xor": "(%s) ^ (%s)",
    "shl": "(%s) << ((%s) & 31)",
    "lshr": "((%s) & " + _MASK + ") >> ((%s) & 31)",
    "ashr": "_signed(%s) >> ((%s) & 31)",
    "mul": "(%s) * (%s)",
}

_ALU_FN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "lshr": lambda a, b: (a & _U32) >> (b & 31),
    "ashr": lambda a, b: _signed(a) >> (b & 31),
    "mul": lambda a, b: a * b,
}


def _e_alu(b: _RunBuilder, insn, idx):
    dex = b.dst(insn.dst, "D")
    aex, ac = b.src(insn.a, "A")
    bex, bc = b.src(insn.b, "B")
    if ac and bc:
        # Both operands folded: the whole ALU op becomes a constant.
        cv = _ALU_FN[insn.op](b.params.pop(aex), b.params.pop(bex)) & _U32
        work = ["%s = %s" % (dex, b.p("V", cv))]
    else:
        work = ["%s = (%s) & %s"
                % (dex, _ALU_EXPR[insn.op] % (aex, bex), _MASK)]
    b.cont(work, insn.cycles)


def _e_immed(b, insn, idx):
    dex = b.dst(insn.dst, "D")
    b.cont(["%s = %s" % (dex, b.p("V", insn.value))], insn.cycles)


def _e_loadsym(b, insn, idx):
    dex = b.dst(insn.dst, "D")
    value = (b.chip.symbol(insn.sym.name) + insn.sym.addend) & _U32
    b.cont(["%s = %s" % (dex, b.p("V", value))], insn.cycles)


def _e_mov(b, insn, idx):
    dex = b.dst(insn.dst, "D")
    b.cont(["%s = %s" % (dex, b.csrc(insn.src, "S"))], insn.cycles)


def _e_cmp(b, insn, idx):
    aex = b.csrc(insn.a, "A")
    bex = b.csrc(insn.b, "B")
    b.cont(["t.cmp_a = %s" % aex, "t.cmp_b = %s" % bex], insn.cycles)


_BR_CMP = {"eq": "==", "ne": "!=", "lt_u": "<", "le_u": "<=",
           "gt_u": ">", "ge_u": ">=",
           "lt_s": "<", "le_s": "<=", "gt_s": ">", "ge_s": ">="}


def _e_br(b: _RunBuilder, insn, idx):
    if insn.resolved is None:
        raise DecodePunt("unresolved branch %r" % (insn,))
    if insn.cond == "always":
        if b.can_goto(insn.resolved):
            # Fuse straight through the jump: charge (incl. the abort
            # cycle) is deferred like any fallthrough sub-instruction
            # and emission continues at the target.
            b.cont([], insn.cycles + 1)
            b.goto = insn.resolved
            return
        b.close_terminal([b.total(insn.cycles + 1),
                          "t.pc = %s" % b.p("T", insn.resolved),
                          "me.time = tm"]
                         + _exec_add(b.k)
                         + ["return tm"])
        return
    if insn.cond.endswith("_s"):
        test = "_signed(t.cmp_a) %s _signed(t.cmp_b)" % _BR_CMP[insn.cond]
    else:
        test = "t.cmp_a %s t.cmp_b" % _BR_CMP[insn.cond]
    if b.bias.get(idx) and b.can_goto(insn.resolved):
        # Superblock fusion: recorded branch evidence says this branch
        # is strongly taken-biased, so invert it -- the guard bails to
        # the fallthrough (charging everything accumulated plus this
        # branch, *no* abort cycle: legacy's not-taken cost), and
        # emission continues inline at the taken target with the abort
        # cycle deferred. Observable behavior on both paths is
        # bit-identical to the uninverted emission.
        b.add("if not (%s):" % test)
        b.add("    tm += %d" % (b.cyc + insn.cycles))
        b.add("    t.pc = %s" % b.p("F", idx + 1))
        b.add("    me.time = tm")
        if b.k:
            b.add("    me.executed_instrs += %d" % b.k)
        b.add("    return tm")
        b.cyc += insn.cycles + 1
        b.cmax += insn.cycles + 1
        b.k += 1
        b.goto = insn.resolved
        return
    tgt = b.p("T", insn.resolved)
    # Taken: bail to the target, charging everything accumulated plus
    # this branch and its abort cycle. Fallthrough: continue the run
    # inline, deferring the (abortless) charge.
    b.add("if %s:" % test)
    b.add("    tm += %d" % (b.cyc + insn.cycles + 1))
    b.add("    t.pc = %s" % tgt)
    b.add("    me.time = tm")
    if b.k:
        b.add("    me.executed_instrs += %d" % b.k)
    b.add("    return tm")
    b.cyc += insn.cycles
    b.cmax += insn.cycles + 1
    b.k += 1


def _exec_add(k: int) -> List[str]:
    return ["me.executed_instrs += %d" % k] if k else []


def _e_bal(b, insn, idx):
    if insn.resolved is None:
        raise DecodePunt("unresolved call %r" % (insn,))
    lex = b.dst(insn.link, "L")
    if b.can_goto(insn.resolved):
        # Fuse into the callee: write the link register, defer the
        # charge (incl. the taken-branch abort cycle), keep emitting at
        # the callee entry. The return is indirect and still dispatches
        # through the program table at ``idx + 1`` (a run leader).
        b.cont(["%s = %s" % (lex, b.p("R", idx + 1))], insn.cycles + 1)
        b.goto = insn.resolved
        return
    b.close_terminal(["%s = %s" % (lex, b.p("R", idx + 1)),
                      b.total(insn.cycles + 1),
                      "t.pc = %s" % b.p("T", insn.resolved),
                      "me.time = tm"]
                     + _exec_add(b.k)
                     + ["return tm"])


def _e_rtn(b, insn, idx):
    aex, _ = b.src(insn.addr, "A")
    b.close_terminal(["t.pc = %s" % aex,
                      b.total(insn.cycles + 1),
                      "me.time = tm"]
                     + _exec_add(b.k)
                     + ["return tm"])


def _block_tail(b, next_idx: int) -> List[str]:
    return (["t.pc = %s" % b.p("P", next_idx),
             "t.wake = done"]
            + _exec_add(b.k)
            + ["return None"])


def _charge_lines(b, space: str, words: int, category: str) -> List[str]:
    """The inlined body of :meth:`MemorySystem.timed_access`: counter
    bump, channel selection (``addr`` must be in scope for sram) and
    occupancy charge, leaving the completion time in ``done``. ``mem``
    must already be bound; ``tm`` holds the issue clock. Space, width
    and category are decode-time constants, so the per-access dispatch
    on them disappears; arithmetic and side-effect order are identical
    to the out-of-line call."""
    ky = b.p("KY", (space, category))
    lines = ["c = mem.counters",
             "c.accesses[%s] += 1" % ky,
             "c.words[%s] += %d" % (ky, words)]
    if space == "sram":
        lines.append(
            "ch = mem.channels['sram1' if (addr >> %d) & 1 else 'sram']"
            % MemorySystem.SRAM_INTERLEAVE_SHIFT)
    else:
        lines.append("ch = mem.channels['%s']" % space)
    lines += ["pp = ch.params",
              "occ = pp.occupancy_base + pp.occupancy_per_word * %d" % words,
              "start = ch.next_free",
              "if tm > start:",
              "    start = tm",
              "ch.next_free = start + occ",
              "ch.busy_time += occ",
              "mprof = mem.profiler",
              "if mprof is not None:",
              "    mprof.note_mem(ch.name, start - tm)",
              "done = start + occ + pp.latency"]
    return lines


def _e_mem(b: _RunBuilder, insn, idx):
    # Blocking ops charge the clock before issuing: completion times
    # include the issue cycles (exactly like the legacy loop, which
    # charges before the handler runs). The memory system is reached
    # through ``me.chip`` at run time -- blocking ops can afford the two
    # attribute loads, and it keeps the closures chip-independent.
    aex, ac = b.src(insn.addr_a, "A")
    bex, bc = b.src(insn.addr_b, "B")
    if ac and bc:
        addr_expr = b.p("AD", b.params.pop(aex) + b.params.pop(bex))
        addr_lines = ["addr = %s" % addr_expr]
    else:
        addr_lines = ["addr = (%s) + (%s)" % (aex, bex)]
    space, words = insn.space, insn.words
    tail = [b.total(insn.cycles), "me.time = tm",
            "mem = me.chip.memory"] + addr_lines
    if insn.rw == "read":
        tail += _charge_lines(b, space, words, insn.category)
        tail += ["store = mem.stores['%s']" % space,
                 "end = addr + %d" % (words * 4),
                 "if addr < 0 or end > len(store):",
                 "    raise IndexError('%s read out of range at %%#x'"
                 " %% addr)" % space]
        for i, reg in enumerate(insn.regs_out):
            lo = "addr + %d" % (4 * i) if i else "addr"
            hi = "end" if i == words - 1 else "addr + %d" % (4 * i + 4)
            tail.append("%s = int.from_bytes(store[%s : %s], 'big')"
                        % (b.dst(reg, "R%d" % i), lo, hi))
    else:
        exprs = [b.src(reg, "R%d" % i)[0]
                 for i, reg in enumerate(insn.regs_in)]
        if insn.mask_reg is not None or insn.byte_mask is not None:
            # Masked stores are rare: keep the out-of-line fused call.
            if insn.mask_reg is not None:
                mex, _ = b.src(insn.mask_reg, "M")
            else:
                mex = b.p("M", insn.byte_mask)
            tail.append("done = mem.timed_write(tm, '%s', %d, '%s', "
                        "addr, [%s], %s)"
                        % (space, words, insn.category,
                           ", ".join(exprs), mex))
        else:
            tail += _charge_lines(b, space, words, insn.category)
            tail += ["store = mem.stores['%s']" % space,
                     "if addr < 0 or addr + %d > len(store):" % (
                         4 * len(exprs)),
                     "    raise IndexError('%s write out of range at "
                     "%%#x' %% addr)" % space]
            for i, expr in enumerate(exprs):
                lo = "addr + %d" % (4 * i) if i else "addr"
                tail.append("store[%s : addr + %d] = ((%s) & %s)"
                            ".to_bytes(4, 'big')"
                            % (lo, 4 * i + 4, expr, _MASK))
    tail += ["prof = me.chip.profiler",
             "if prof is not None:",
             "    prof.note_block(me.index, t.index, 'mem_%s', tm, done)"
             % space]
    b.close_terminal(tail + _block_tail(b, idx + 1))


def _e_ring_get(b, insn, idx):
    name = b.p("RN", insn.ring.name)
    dex = b.dst(insn.dst, "D")
    b.close_terminal(
        [b.total(insn.cycles),
         "me.time = tm",
         "chip = me.chip",
         "ring = chip.ring_by_symbol(%s)" % name,
         "mem = chip.memory"]
        + _charge_lines(b, "scratch", 1, insn.category)
        + ["value = ring.get()",
         "%s = value" % dex,
         "tracer = chip.tracer",
         "if tracer is not None:",
         "    tracer.me_ring_get(me.index, t.index, %s, value, tm)" % name,
         "prof = chip.profiler",
         "if prof is not None:",
         "    prof.note_block(me.index, t.index,"
         " 'ring_empty' if value == 0 else 'mem_scratch', tm, done)"]
        + _block_tail(b, idx + 1))


def _e_ring_put(b, insn, idx):
    name = b.p("RN", insn.ring.name)
    sex, _ = b.src(insn.src, "S")
    b.close_terminal(
        [b.total(insn.cycles),
         "me.time = tm",
         "chip = me.chip",
         "ring = chip.ring_by_symbol(%s)" % name,
         "mem = chip.memory"]
        + _charge_lines(b, "scratch", 1, insn.category)
        + ["value = %s" % sex,
         "ok = ring.put(value)",
         "tracer = chip.tracer",
         "if tracer is not None:",
         "    tracer.me_ring_put(me.index, t.index, %s, value, tm, ok)"
         % name,
         "prof = chip.profiler",
         "if prof is not None:",
         "    prof.note_block(me.index, t.index,"
         " 'mem_scratch' if ok else 'ring_full', tm, done)"]
        + _block_tail(b, idx + 1))


def _e_tas(b, insn, idx):
    aex, _ = b.src(insn.addr_a, "A")
    dex = b.dst(insn.dst, "D")
    b.close_terminal(
        [b.total(insn.cycles),
         "me.time = tm",
         "mem = me.chip.memory",
         "addr = %s" % aex,
         "done = mem.timed_access(tm, 'scratch', 1, '%s')" % CAT_APP,
         "old = mem.read_words('scratch', addr, 1)[0]",
         "mem.write_words('scratch', addr, [1])",
         "%s = old" % dex,
         "prof = me.chip.profiler",
         "if prof is not None:",
         "    prof.note_block(me.index, t.index, 'mem_scratch', tm, done)"]
        + _block_tail(b, idx + 1))


def _e_release(b, insn, idx):
    aex, _ = b.src(insn.addr_a, "A")
    b.close_terminal(
        [b.total(insn.cycles),
         "me.time = tm",
         "mem = me.chip.memory",
         "addr = %s" % aex,
         "done = mem.timed_access(tm, 'scratch', 1, '%s')" % CAT_APP,
         "mem.write_words('scratch', addr, [0])",
         "prof = me.chip.profiler",
         "if prof is not None:",
         "    prof.note_block(me.index, t.index, 'mem_scratch', tm, done)"]
        + _block_tail(b, idx + 1))


def _lm_index(b: _RunBuilder, insn, idx) -> Tuple[str, List[str]]:
    """The Local Memory index expression plus its bounds-check lines.
    The check runs *before* the clock is charged and restores pc and the
    executed count, matching the legacy path's net effect on a failed
    access (the legacy loop rolls time and the count back)."""
    off = insn.offset
    terms = []
    if insn.base is not None:
        bex, bc = b.src(insn.base, "LB")
        if bc:
            off += b.params.pop(bex)
        else:
            terms.append(bex)
    if insn.thread_rel:
        terms.append("t.lm_base")
    if not terms:
        if 0 <= off < LM_WORDS:
            return b.p("LO", off), []
        raise_lines = [
            b.restore_time(),
            "t.pc = %s" % b.p("I", idx),
        ] + _exec_add(b.k) + [
            "raise SimError('Local Memory index %%d out of range' %% %s)"
            % b.p("LO", off),
        ]
        return "", raise_lines
    expr = " + ".join([b.p("LO", off)] + terms)
    check = (["li = %s" % expr,
              "if li < 0 or li >= %d:" % LM_WORDS,
              "    " + b.restore_time(),
              "    t.pc = %s" % b.p("I", idx)]
             + ["    " + ln for ln in _exec_add(b.k)]
             + ["    raise SimError('Local Memory index %d out of "
                "range' % li)"])
    return "li", check


def _e_lm_read(b, insn, idx):
    dex = b.dst(insn.dst, "D")
    iex, check = _lm_index(b, insn, idx)
    if not iex:  # constant index, statically out of range
        for line in check:
            b.add(line)
        b.closed = True
        b.early_raise = True
        return
    b.cont(check + ["%s = me.lm[%s]" % (dex, iex)], insn.cycles)


def _e_lm_write(b, insn, idx):
    vex = b.csrc(insn.src, "S")
    iex, check = _lm_index(b, insn, idx)
    if not iex:
        for line in check:
            b.add(line)
        b.closed = True
        b.early_raise = True
        return
    b.cont(check + ["me.lm[%s] = %s" % (iex, vex)], insn.cycles)


def _e_cam_lookup(b, insn, idx):
    dex = b.dst(insn.dst, "D")
    kex, _ = b.src(insn.key, "K")
    b.cont(["%s = me.cam.lookup(%s)" % (dex, kex)], insn.cycles)


def _e_cam_write(b, insn, idx):
    eex, _ = b.src(insn.entry, "E")
    kex, _ = b.src(insn.key, "K")
    b.cont(["me.cam.write(%s, %s)" % (eex, kex)], insn.cycles)


def _e_cam_clear(b, insn, idx):
    b.cont(["me.cam.clear()"], insn.cycles)


def _e_ctx_arb(b, insn, idx):
    b.close_terminal([b.total(insn.cycles),
                      "me.time = tm",
                      "prof = me.chip.profiler",
                      "if prof is not None:",
                      "    prof.note_block(me.index, t.index, 'ctx_arb',"
                      " tm, tm + 1)",
                      "t.pc = %s" % b.p("P", idx + 1),
                      "t.wake = tm + 1"]
                     + _exec_add(b.k)
                     + ["return None"])


def _e_halt(b, insn, idx):
    b.close_terminal([b.total(insn.cycles),
                      "me.time = tm",
                      "t.halted = True"]
                     + _exec_add(b.k)
                     + ["return None"])


def _e_thread_stack_addr(b, insn, idx):
    dex = b.dst(insn.dst, "D")
    base = b.p("SB", b.chip.symbol("__stack"))
    b.cont(["%s = %s + (me.index * len(me.threads) + t.index) * %d"
            % (dex, base, SRAM_STACK_BYTES_PER_THREAD)],
           insn.cycles)


#: kind tag (see isa.Insn.kind) -> emitter.
_EMITTERS = {
    "alu": _e_alu,
    "immed": _e_immed,
    "loadsym": _e_loadsym,
    "mov": _e_mov,
    "cmp": _e_cmp,
    "br": _e_br,
    "bal": _e_bal,
    "rtn": _e_rtn,
    "mem": _e_mem,
    "ring_get": _e_ring_get,
    "ring_put": _e_ring_put,
    "tas": _e_tas,
    "release": _e_release,
    "lm_read": _e_lm_read,
    "lm_write": _e_lm_write,
    "cam_lookup": _e_cam_lookup,
    "cam_write": _e_cam_write,
    "cam_clear": _e_cam_clear,
    "ctx_arb": _e_ctx_arb,
    "halt": _e_halt,
    "thread_stack_addr": _e_thread_stack_addr,
}


def _legacy_step(insn) -> Step:
    """Fallback for instructions the predecoder punts on: defer to the
    legacy handler table at execution time, so errors (unknown class,
    virtual registers, unresolved symbols) surface exactly as they would
    on the legacy path -- and only if the instruction actually runs."""
    handler = _HANDLERS.get(type(insn))
    if handler is None:
        def step(me, t, deadline):
            raise SimError("cannot execute %r" % insn)
        return step

    def step(me, t, deadline):
        cycles = insn.cycles
        me.time += cycles
        try:
            stop = handler(me, t, insn)
        except SimError:
            me.time -= cycles
            raise
        return None if stop else me.time
    return step


#: Instruction kinds after which control re-enters via a prog lookup
#: (the thread blocks / yields and later resumes at ``idx + 1``, or a
#: return jumps to the call's continuation).
_RESUME_AFTER = frozenset((
    "mem", "ring_get", "ring_put", "tas", "release", "ctx_arb", "bal"))


def _emit_run(image, chip, start: int, puntable: set, cap: int,
              prefix: str = "", bias=None) -> Optional[_RunBuilder]:
    """Emit the body of the run starting at ``start`` (at most ``cap``
    instructions) into a fresh builder; None when the first instruction
    itself is unfusable (caller punts it)."""
    insns = image.insns
    visited = {start}
    b = _RunBuilder(chip, prefix, puntable=puntable, visited=visited,
                    bias=bias)
    idx = start
    while not b.closed:
        if idx >= len(insns) or idx in puntable or b.k >= cap:
            if b.k == 0:
                return None
            b.close_fall(idx)
            break
        insn = insns[idx]
        emitter = _EMITTERS.get(getattr(insn, "kind", None))
        if emitter is None:
            if b.k == 0:
                return None
            b.close_fall(idx)
            break
        saved = (len(b.lines), len(b.params), b.k, b.cyc, b.cmax)
        try:
            emitter(b, insn, idx)
        except (DecodePunt, KeyError):
            # KeyError: a SymRef naming a symbol the loader has not
            # placed (hand-built chips); resolve lazily like legacy.
            del b.lines[saved[0]:]
            for key in list(b.params)[saved[1]:]:
                del b.params[key]
            b.k, b.cyc, b.cmax = saved[2], saved[3], saved[4]
            puntable.add(idx)
            if b.k == 0:
                return None
            b.close_fall(idx)
            break
        if b.goto is not None:
            # Unconditional transfer fused through: continue at the
            # target (can_goto guaranteed it is fresh, so emission
            # cannot loop).
            idx = b.goto
            b.goto = None
        else:
            idx += 1
        visited.add(idx)
    return b


def _compile_run(image, chip, start: int, puntable: set,
                 cap: int, bias=None) -> Optional[Step]:
    """Build the fused step for the run starting at ``start``. Single
    instruction runs compile as-is (their only charge happens under the
    dispatch loop's own deadline compare). Longer runs get the
    worst-case guard: when the remaining slice cannot fit ``cmax``, the
    guarded branch executes just the first instruction -- emitted by a
    second, solo builder whose parameters are namespaced with an ``s``
    prefix so they cannot collide with the main body's."""
    b = _emit_run(image, chip, start, puntable, cap, bias=bias)
    if b is None:
        return None
    if b.k <= 1 and not (b.early_raise and b.k >= 1):
        return b.build()
    solo = _emit_run(image, chip, start, puntable, 1, prefix="s",
                     bias=bias)
    assert solo is not None and solo.closed  # first insn emitted fine above
    params = dict(solo.params)
    params.update(b.params)
    params["CM"] = b.cmax
    body = ["        tm = me.time\n",
            "        if tm + CM >= deadline:\n"]
    body += ["    " + ln for ln in solo.lines[1:]]
    body += b.lines[1:]
    return _make_step("".join(body), params)


def _run_leaders(image) -> set:
    """Instruction indices where fused execution (re-)starts: the image
    entry, branch/call targets, and the continuation after anything
    control re-enters through the program table. Other indices are
    reached only by rare mid-run slice resumes and keep cheap
    single-instruction steps."""
    leaders = {image.entry, 0}
    for idx, insn in enumerate(image.insns):
        kind = getattr(insn, "kind", None)
        if kind in ("br", "bal"):
            if insn.resolved is not None:
                leaders.add(insn.resolved)
        if kind in _RESUME_AFTER:
            leaders.add(idx + 1)
    return leaders


def predecode_image(image, chip, branch_bias=None
                    ) -> Tuple[Prog, Dict[str, object]]:
    """Compile an MEImage into a step program, one closure per
    instruction index (so a thread can resume at any pc): fused
    straight-line runs at run leaders, single-instruction steps
    elsewhere.

    Returns ``(prog, used_symbols)``. The closures reach memory and
    rings through ``me.chip`` at run time, so the only chip state they
    bake in is resolved symbol values -- ``used_symbols`` records
    exactly those (name -> value, or a recorded miss), and
    :meth:`repro.cg.assemble.MEImage.predecoded` reuses the program on
    any chip for which :func:`plan_matches` accepts it.

    ``branch_bias`` maps instruction indices of conditional branches to
    True when recorded branch evidence says the branch is strongly
    taken-biased; those branches compile inverted so fused runs extend
    through them (superblock fusion). Biased programs are built on
    demand by the fast-forward engine and are *not* cached in
    ``MEImage._decode_plans`` -- the cache only ever holds the unbiased
    program."""
    view = _ChipView(chip)
    leaders = _run_leaders(image)
    puntable: set = set()
    prog: Prog = []
    for idx, insn in enumerate(image.insns):
        step = None
        if idx not in puntable:
            cap = RUN_CAP if idx in leaders else 1
            step = _compile_run(image, view, idx, puntable, cap,
                                bias=branch_bias)
        if step is None:
            puntable.add(idx)
            step = _legacy_step(insn)
        prog.append(step)
    return prog, view.used
