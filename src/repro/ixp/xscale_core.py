"""XScale core model.

The paper maps infrequently executed aggregates (control, management,
initialization) onto the IXP's XScale core, compiling them via C and
gcc. Our substitute executes the same IR with the functional
interpreter, but against the *simulated* chip memory: globals read/write
the loader-assigned SRAM/Scratch addresses, and packets are views over
simulated SRAM metadata + DRAM data, so XScale-side code observes and
mutates exactly the state the MEs do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baker.packetmodel import HEADROOM_BYTES, META_RX_PORT
from repro.ir.module import IRModule
from repro.profiler.hostpackets import get_bits, set_bits
from repro.profiler.interpreter import Interpreter

# Cost model: the XScale runs at 600 MHz too, but goes through its own
# caches/bus; we charge a flat per-serviced-packet cost.
XSCALE_CYCLES_PER_PACKET = 2000.0


class SimMeta:
    """dict-like view of a packet's metadata words in simulated SRAM."""

    def __init__(self, chip, handle: int):
        self.chip = chip
        self.handle = handle

    def get(self, word: int, default: int = 0) -> int:
        return self.chip.memory.read_words("sram", self.handle + word * 4, 1)[0]

    def __getitem__(self, word: int) -> int:
        return self.get(word)

    def __setitem__(self, word: int, value: int) -> None:
        self.chip.memory.write_words("sram", self.handle + word * 4, [value])


class SimPacket:
    """HostPacket-compatible view over a simulated packet."""

    def __init__(self, chip, handle: int):
        self.chip = chip
        self.handle = handle
        self.meta = SimMeta(chip, handle)
        self.dropped = False
        self.uid = handle

    # -- head/len metadata ----------------------------------------------------------

    @property
    def buf(self) -> int:
        return self.meta[0]

    @property
    def head(self) -> int:
        return self.meta[1]

    @head.setter
    def head(self, v: int) -> None:
        self.meta[1] = v

    @property
    def length(self) -> int:
        return self.meta[2]

    @length.setter
    def length(self, v: int) -> None:
        self.meta[2] = v

    # -- data access ---------------------------------------------------------------------

    def _window(self, bit_off: int, width: int):
        start_byte = self.buf + self.head + bit_off // 8
        nbytes = (bit_off % 8 + width + 7) // 8
        return start_byte, nbytes, bit_off % 8

    def load_bits(self, bit_off: int, width: int) -> int:
        start, nbytes, rel = self._window(bit_off, width)
        window = bytearray(self.chip.memory.read_bytes("dram", start, nbytes))
        return get_bits(window, rel, width)

    def store_bits(self, bit_off: int, width: int, value: int) -> None:
        start, nbytes, rel = self._window(bit_off, width)
        window = bytearray(self.chip.memory.read_bytes("dram", start, nbytes))
        set_bits(window, rel, width, value & ((1 << width) - 1))
        self.chip.memory.write_bytes("dram", start, bytes(window))

    def load_bytes(self, byte_off: int, nbytes: int) -> bytes:
        return self.chip.memory.read_bytes("dram", self.buf + self.head + byte_off, nbytes)

    def store_bytes(self, byte_off: int, data: bytes) -> None:
        self.chip.memory.write_bytes("dram", self.buf + self.head + byte_off, data)

    # -- encapsulation ---------------------------------------------------------------------

    def encap(self, header_bytes: int) -> None:
        if self.head < header_bytes:
            raise ValueError("no headroom")
        self.head = self.head - header_bytes
        self.length = self.length + header_bytes

    def decap(self, header_bytes: int) -> None:
        self.head = self.head + header_bytes
        self.length = self.length - header_bytes

    def add_tail(self, n: int) -> None:
        self.length = self.length + n

    def remove_tail(self, n: int) -> None:
        self.length = self.length - n

    def extend(self, n: int) -> None:
        self.encap(n)

    def shorten(self, n: int) -> None:
        self.decap(n)

    def copy(self) -> "SimPacket":
        chip = self.chip
        meta = chip.rings["ring.__meta_free"].get()
        buf = chip.rings["ring.__buf_free"].get()
        if meta == 0 or buf == 0:
            raise RuntimeError("packet pool exhausted during XScale copy")
        words = chip.memory.read_words("sram", self.handle, chip.meta_words)
        words[0] = buf
        chip.memory.write_words("sram", meta, words)
        data = chip.memory.read_bytes("dram", self.buf + self.head, self.length)
        chip.memory.write_bytes("dram", buf + self.head, data)
        if chip.tracer is not None:
            chip.tracer.alloc(meta, chip.now, "xscale_copy")
        return SimPacket(chip, meta)

    def payload(self) -> bytes:
        return self.chip.memory.read_bytes("dram", self.buf + self.head, self.length)


class SimGlobals:
    """GlobalMemory-compatible adapter hitting simulated SRAM/Scratch."""

    def __init__(self, chip, layout):
        self.chip = chip
        self.layout = layout  # rts.loader.LoadLayout

    def _locate(self, g: str):
        return self.layout.global_space[g], self.layout.global_addr[g]

    def load(self, g: str, offset: int, width: int) -> int:
        space, addr = self._locate(g)
        return int.from_bytes(
            self.chip.memory.read_bytes(space, addr + offset, width), "big"
        )

    def store(self, g: str, offset: int, value: int, width: int) -> None:
        space, addr = self._locate(g)
        self.chip.memory.write_bytes(
            space, addr + offset,
            (value & ((1 << (width * 8)) - 1)).to_bytes(width, "big"),
        )


class XScaleCore(Interpreter):
    """Interprets XScale-mapped aggregates against simulated memory."""

    def __init__(self, mod: IRModule, chip, layout,
                 input_channels: List[str]):
        super().__init__(mod)
        self.chip = chip
        self.layout = layout
        self.globals = SimGlobals(chip, layout)
        self.input_channels = list(input_channels)
        self.serviced = 0

    # -- hooks -------------------------------------------------------------------------

    def _emit_channel(self, channel: str, pkt) -> None:
        ring = self.chip.rings.get("ring.%s" % channel)
        if ring is None:
            raise RuntimeError("XScale put to unknown channel %r" % channel)
        ok = ring.put(pkt.handle)
        if self.chip.tracer is not None:
            self.chip.tracer.xscale_put(ring.name, pkt.handle,
                                        self.chip.now, ok)

    def _drop_packet(self, pkt) -> None:
        if self.chip.tracer is not None:
            self.chip.tracer.drop(pkt.handle, self.chip.now, "xscale_drop")
        self.chip.rings["ring.__buf_free"].put(pkt.buf)
        self.chip.rings["ring.__meta_free"].put(pkt.handle)
        pkt.dropped = True

    def _new_packet(self, size: int):
        chip = self.chip
        meta = chip.rings["ring.__meta_free"].get()
        buf = chip.rings["ring.__buf_free"].get()
        if meta == 0 or buf == 0:
            raise RuntimeError("packet pool exhausted during XScale create")
        words = [buf, HEADROOM_BYTES, size, 0] + [0] * (chip.meta_words - 4)
        chip.memory.write_words("sram", meta, words)
        chip.memory.write_bytes("dram", buf + HEADROOM_BYTES, bytes(size))
        if chip.tracer is not None:
            chip.tracer.alloc(meta, chip.now, "xscale_create")
        return SimPacket(chip, meta)

    # -- chip integration ---------------------------------------------------------------

    def service(self, now: float) -> float:
        """Drain pending packets from the XScale's input rings; returns
        the cycles of work performed (for pacing)."""
        busy = 0.0
        for chan in self.input_channels:
            ring = self.chip.rings.get("ring.%s" % chan)
            if ring is None:
                continue
            consumer = self._ppf_by_channel.get(chan)
            if consumer is None:
                continue
            while len(ring):
                handle = ring.get()
                if handle == 0:
                    break
                if self.chip.tracer is not None:
                    self.chip.tracer.xscale_get(ring.name, handle, now)
                pkt = SimPacket(self.chip, handle)
                self._deliver(consumer, pkt)
                self.serviced += 1
                busy += XSCALE_CYCLES_PER_PACKET
        return busy

    def run_boot_inits(self) -> None:
        """Execute module init blocks against simulated memory."""
        self.run_inits()
