"""Microengine execution model.

Each ME runs one :class:`~repro.cg.assemble.MEImage` on eight hardware
thread contexts. Threads are non-preemptive: a thread executes until it
issues a memory reference (which swaps it out until the data returns) or
an explicit ``ctx_arb``; a round-robin arbiter then picks the next ready
thread (paper section 3.1). Instructions cost their ``cycles``; taken
branches add one abort cycle.

Two dispatch cores execute the same images with bit-identical results
(tests/test_fastpath.py):

* ``fast`` (default) -- the image is predecoded once per chip into
  specialized step closures (:mod:`repro.ixp.predecode`), so the inner
  loop does no dict lookups, type tests, or operand attribute chasing;
* ``legacy`` -- the original per-instruction handler-table interpreter,
  kept as the equivalence reference and selectable with
  ``dispatch="legacy"`` or ``REPRO_SIM_DISPATCH=legacy``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.cg import abi
from repro.cg import isa
from repro.cg.isa import Imm, PReg, SymRef
from repro.cg.melayout import (
    LM_WORDS,
    N_THREADS,
    SRAM_STACK_BYTES_PER_THREAD,
    STACK_WORDS_PER_THREAD,
)
from repro.ixp.cam import CAM

_U32 = 0xFFFFFFFF


def _signed(v: int) -> int:
    return v - (1 << 32) if v & 0x80000000 else v


class SimError(RuntimeError):
    pass


DISPATCH_MODES = ("fast", "legacy")
#: Engine selection accepts the dispatch cores plus ``fastforward`` --
#: the run-level batched functional mode (repro.ixp.fastforward).
#: run_on_simulator routes it before MEs are built; an ME asked for it
#: directly runs its cycle-accurate ``fast`` core (the fast-forward
#: engine drives threads itself and only needs the predecoded program).
ENGINE_MODES = DISPATCH_MODES + ("fastforward",)


def default_dispatch() -> str:
    """Process-wide default engine mode (``REPRO_SIM_DISPATCH``)."""
    mode = os.environ.get("REPRO_SIM_DISPATCH", "fast")
    return mode if mode in ENGINE_MODES else "fast"


class Thread:
    __slots__ = ("index", "pc", "a", "b", "wake", "blocked", "halted",
                 "cmp_a", "cmp_b", "lm_base")

    def __init__(self, index: int, entry: int):
        self.index = index
        self.pc = entry
        self.a = [0] * 16
        self.b = [0] * 16
        self.wake = 0.0
        self.blocked = False
        self.halted = False
        self.cmp_a = 0
        self.cmp_b = 0
        self.lm_base = index * STACK_WORDS_PER_THREAD

    def get(self, reg) -> int:
        if reg.bank == "a":
            return self.a[reg.index]
        return self.b[reg.index]

    def set(self, reg, value: int) -> None:
        if reg.bank == "a":
            self.a[reg.index] = value & _U32
        else:
            self.b[reg.index] = value & _U32


class Microengine:
    """One ME: instruction store, 8 threads, Local Memory, CAM."""

    def __init__(self, index: int, image, chip, n_threads: int = N_THREADS,
                 dispatch: Optional[str] = None):
        self.index = index
        self.image = image
        self.chip = chip
        self.insns = image.insns
        self.time = 0.0
        self.threads = [Thread(i, image.entry) for i in range(n_threads)]
        self.lm = [0] * LM_WORDS
        self.cam = CAM()
        self.rr_next = 0
        self.executed_instrs = 0
        self.idle_time = 0.0
        # Thread paused only by the simulation slice boundary (threads are
        # non-preemptive: it MUST continue before any other runs).
        self.resume_thread: Optional[Thread] = None
        dispatch = dispatch if dispatch is not None else default_dispatch()
        if dispatch == "fastforward":
            dispatch = "fast"
        if dispatch not in DISPATCH_MODES:
            raise ValueError("unknown dispatch mode %r (expected one of %s)"
                             % (dispatch, ", ".join(ENGINE_MODES)))
        self.dispatch = dispatch
        # Predecoded step program; bound lazily on first run so the
        # loader has resolved symbols and created rings by then.
        self._prog = None
        self._exec = (self._run_thread_fast if dispatch == "fast"
                      else self._run_thread)
        if dispatch == "fast":
            # Shadow the class method: the fast-mode slice loop fuses
            # thread selection and dispatch (identical behavior).
            self.run_slice = self._run_slice_fast

    # -- scheduling ----------------------------------------------------------------

    def ready_thread(self) -> Optional[Thread]:
        t = self.resume_thread
        if t is not None:
            self.resume_thread = None
            if not t.halted:
                return t
        threads = self.threads
        n = len(threads)
        k = self.rr_next
        time = self.time
        for _ in range(n):
            t = threads[k]
            k += 1
            if k == n:
                k = 0
            if not t.halted and t.wake <= time:
                self.rr_next = k
                return t
        return None

    def next_wake(self) -> Optional[float]:
        nxt = None
        for t in self.threads:
            if not t.halted:
                w = t.wake
                if nxt is None or w < nxt:
                    nxt = w
        return nxt

    def run_slice(self, max_cycles: float = 400.0) -> Optional[float]:
        """Run ready threads until none is ready or the slice budget is
        spent. Returns the absolute time of the next event on this ME
        (None when all threads halted)."""
        deadline = self.time + max_cycles
        run_thread = self._exec
        while self.time < deadline:
            t = self.ready_thread()
            if t is None:
                nxt = self.next_wake()
                if nxt is None:
                    return None
                if nxt > self.time:
                    self.idle_time += nxt - self.time
                    return nxt
                # No thread is ready yet the earliest wake is not in the
                # future: looping would spin forever at a frozen clock.
                # Surface the stuck state instead of hanging.
                raise self._stuck_error(nxt)
            run_thread(t, deadline)
        return self.time

    def _stuck_error(self, nxt) -> SimError:
        states = "; ".join(
            "t%d pc=%d wake=%r%s" % (
                th.index, th.pc, th.wake,
                " halted" if th.halted else "")
            for th in self.threads)
        return SimError(
            "ME%d scheduler stuck at time %r: no ready thread but "
            "next wake %r is not in the future (%s)"
            % (self.index, self.time, nxt, states))

    def _run_slice_fast(self, max_cycles: float = 400.0) -> Optional[float]:
        """Fast-mode twin of :meth:`run_slice`: the ready-thread scan
        and the predecoded dispatch loop are fused inline so a thread
        burst (run until it blocks or the slice ends) pays no
        intermediate method calls. Installed as the instance's
        ``run_slice`` when ``dispatch == "fast"``; behavior -- thread
        order, idle accounting, stuck detection, counter effects -- is
        identical to :meth:`run_slice` over :meth:`_run_thread_fast`."""
        prog = self._prog
        if prog is None:
            prog = self._prog = self.image.predecoded(self.chip)
        time = self.time
        deadline = time + max_cycles
        threads = self.threads
        n = len(threads)
        executed = 0
        prof = self.chip.profiler
        try:
            while time < deadline:
                t = self.resume_thread
                if t is not None:
                    self.resume_thread = None
                    if t.halted:
                        t = None
                if t is None:
                    # One fused pass: round-robin scan for a ready
                    # thread, tracking the earliest wake of the
                    # non-halted threads seen on the way. When no thread
                    # is ready the scan covered all of them, so ``nxt``
                    # is exactly next_wake().
                    nxt = None
                    k = self.rr_next
                    for _ in range(n):
                        th = threads[k]
                        k += 1
                        if k == n:
                            k = 0
                        if not th.halted:
                            w = th.wake
                            if w <= time:
                                self.rr_next = k
                                t = th
                                break
                            if nxt is None or w < nxt:
                                nxt = w
                    if t is None:
                        # Nothing observes executed_instrs mid-slice, so
                        # the single flush in the finally covers every
                        # return.
                        if nxt is None:
                            return None
                        if nxt > time:
                            self.idle_time += nxt - time
                            return nxt
                        raise self._stuck_error(nxt)
                t0 = time
                while True:
                    tm = prog[t.pc](self, t, deadline)
                    executed += 1
                    if tm is None:
                        time = self.time
                        break  # thread blocked / yielded / halted
                    if tm >= deadline:
                        self.resume_thread = t
                        time = tm
                        break
                if prof is not None:
                    prof.note_burst(self.index, t.index, t0, time)
            return time
        finally:
            self.executed_instrs += executed

    # -- execution --------------------------------------------------------------------

    def _run_thread(self, t: Thread, deadline: float) -> None:
        """Legacy dispatch core: execute ``t`` until it blocks, yields,
        or halts. If the slice budget runs out first, the thread is
        remembered and continues before any other (hardware threads are
        non-preemptive).

        ``time`` is charged before the handler runs (memory completion
        times include the issue cycles) but rolled back if the handler
        raises, and ``executed_instrs`` counts only successfully
        dispatched instructions -- a failing instruction must not corrupt
        either counter."""
        insns = self.insns
        executed = 0
        cycles = 0
        prof = self.chip.profiler
        t0 = self.time
        try:
            while True:
                insn = insns[t.pc]
                cycles = 0
                handler = _HANDLERS.get(insn.__class__)
                if handler is None:
                    raise SimError("cannot execute %r" % insn)
                cycles = insn.cycles
                self.time += cycles
                stop = handler(self, t, insn)
                executed += 1
                if stop:
                    return  # thread blocked / yielded / halted
                if self.time >= deadline:
                    self.resume_thread = t
                    return
        except SimError:
            self.time -= cycles
            raise
        finally:
            self.executed_instrs += executed
            if prof is not None:
                prof.note_burst(self.index, t.index, t0, self.time)

    def _run_thread_fast(self, t: Thread, deadline: float) -> None:
        """Predecoded dispatch core: a tight loop over fused
        straight-line-run closures -- no per-step dict lookups, type
        tests, or operand decoding. Each step executes one or more
        instructions, charges its own cycles (checking ``deadline``
        between fused instructions exactly like this loop does), and
        returns the new ``time`` (``None`` when the thread blocked,
        yielded, or halted). A failing step restores ``time``, ``pc``
        and the executed count itself, so observable counter effects
        match :meth:`_run_thread` exactly. The loop counts one
        instruction per call; multi-instruction runs add the remainder
        to ``executed_instrs`` directly."""
        prog = self._prog
        if prog is None:
            prog = self._prog = self.image.predecoded(self.chip)
        executed = 0
        prof = self.chip.profiler
        t0 = self.time
        try:
            while True:
                tm = prog[t.pc](self, t, deadline)
                executed += 1
                if tm is None:
                    return  # thread blocked / yielded / halted
                if tm >= deadline:
                    self.resume_thread = t
                    return
        finally:
            self.executed_instrs += executed
            if prof is not None:
                prof.note_burst(self.index, t.index, t0, self.time)

    # -- operand helpers ----------------------------------------------------------------

    def value(self, t: Thread, op) -> int:
        if type(op) is Imm:
            return op.value
        if type(op) is PReg:
            return t.get(op)
        if type(op) is SymRef:
            return self.chip.symbol(op.name) + op.addend
        raise SimError("bad operand %r" % (op,))


# -- instruction handlers (return True if the thread stops running) ---------------------


def _h_alu(me: Microengine, t: Thread, insn) -> bool:
    a = me.value(t, insn.a)
    b = me.value(t, insn.b)
    op = insn.op
    if op == "add":
        r = a + b
    elif op == "sub":
        r = a - b
    elif op == "and":
        r = a & b
    elif op == "or":
        r = a | b
    elif op == "xor":
        r = a ^ b
    elif op == "shl":
        r = a << (b & 31)
    elif op == "lshr":
        r = (a & _U32) >> (b & 31)
    elif op == "ashr":
        r = _signed(a) >> (b & 31)
    elif op == "mul":
        r = a * b
    else:  # pragma: no cover
        raise SimError("bad alu op %s" % op)
    t.set(insn.dst, r)
    t.pc += 1
    return False


def _h_immed(me, t, insn) -> bool:
    t.set(insn.dst, insn.value)
    t.pc += 1
    return False


def _h_loadsym(me, t, insn) -> bool:
    t.set(insn.dst, me.chip.symbol(insn.sym.name) + insn.sym.addend)
    t.pc += 1
    return False


def _h_mov(me, t, insn) -> bool:
    t.set(insn.dst, me.value(t, insn.src))
    t.pc += 1
    return False


def _h_cmp(me, t, insn) -> bool:
    t.cmp_a = me.value(t, insn.a) & _U32
    t.cmp_b = me.value(t, insn.b) & _U32
    t.pc += 1
    return False


def _cond_true(t: Thread, cond: str) -> bool:
    a, b = t.cmp_a, t.cmp_b
    if cond == "always":
        return True
    if cond == "eq":
        return a == b
    if cond == "ne":
        return a != b
    if cond == "lt_u":
        return a < b
    if cond == "le_u":
        return a <= b
    if cond == "gt_u":
        return a > b
    if cond == "ge_u":
        return a >= b
    sa, sb = _signed(a), _signed(b)
    if cond == "lt_s":
        return sa < sb
    if cond == "le_s":
        return sa <= sb
    if cond == "gt_s":
        return sa > sb
    if cond == "ge_s":
        return sa >= sb
    raise SimError("bad condition %s" % cond)


def _h_br(me, t, insn) -> bool:
    if _cond_true(t, insn.cond):
        t.pc = insn.resolved
        me.time += 1  # taken-branch abort cycle
    else:
        t.pc += 1
    return False


def _h_bal(me, t, insn) -> bool:
    t.set(insn.link, t.pc + 1)
    t.pc = insn.resolved
    me.time += 1
    return False


def _h_rtn(me, t, insn) -> bool:
    t.pc = me.value(t, insn.addr)
    me.time += 1
    return False


def _h_mem(me, t, insn) -> bool:
    addr = me.value(t, insn.addr_a) + me.value(t, insn.addr_b)
    mem = me.chip.memory
    done = mem.timed_access(me.time, insn.space, insn.words, insn.category,
                            addr=addr)
    if insn.rw == "read":
        values = mem.read_words(insn.space, addr, insn.words)
        for reg, v in zip(insn.regs_out, values):
            t.set(reg, v)
    else:
        values = [me.value(t, r) for r in insn.regs_in]
        mask = insn.byte_mask
        if insn.mask_reg is not None:
            mask = me.value(t, insn.mask_reg)
        mem.write_words(insn.space, addr, values, mask)
    prof = me.chip.profiler
    if prof is not None:
        prof.note_block(me.index, t.index, "mem_" + insn.space,
                        me.time, done)
    t.pc += 1
    t.wake = done
    return True  # swap out until the reference completes


def _h_ring_get(me, t, insn) -> bool:
    ring = me.chip.ring_by_symbol(insn.ring.name)
    done = me.chip.memory.timed_access(me.time, "scratch", 1, insn.category)
    value = ring.get()
    t.set(insn.dst, value)
    tracer = me.chip.tracer
    if tracer is not None:
        tracer.me_ring_get(me.index, t.index, insn.ring.name, value, me.time)
    prof = me.chip.profiler
    if prof is not None:
        prof.note_block(me.index, t.index,
                        "ring_empty" if value == 0 else "mem_scratch",
                        me.time, done)
    t.pc += 1
    t.wake = done
    return True


def _h_ring_put(me, t, insn) -> bool:
    ring = me.chip.ring_by_symbol(insn.ring.name)
    done = me.chip.memory.timed_access(me.time, "scratch", 1, insn.category)
    value = me.value(t, insn.src)
    ok = ring.put(value)
    tracer = me.chip.tracer
    if tracer is not None:
        tracer.me_ring_put(me.index, t.index, insn.ring.name, value,
                           me.time, ok)
    prof = me.chip.profiler
    if prof is not None:
        prof.note_block(me.index, t.index,
                        "mem_scratch" if ok else "ring_full",
                        me.time, done)
    t.pc += 1
    t.wake = done
    return True


def _h_tas(me, t, insn) -> bool:
    addr = me.value(t, insn.addr_a)
    done = me.chip.memory.timed_access(me.time, "scratch", 1, isa.CAT_APP)
    old = me.chip.memory.read_words("scratch", addr, 1)[0]
    me.chip.memory.write_words("scratch", addr, [1])
    t.set(insn.dst, old)
    prof = me.chip.profiler
    if prof is not None:
        prof.note_block(me.index, t.index, "mem_scratch", me.time, done)
    t.pc += 1
    t.wake = done
    return True


def _h_release(me, t, insn) -> bool:
    addr = me.value(t, insn.addr_a)
    done = me.chip.memory.timed_access(me.time, "scratch", 1, isa.CAT_APP)
    me.chip.memory.write_words("scratch", addr, [0])
    prof = me.chip.profiler
    if prof is not None:
        prof.note_block(me.index, t.index, "mem_scratch", me.time, done)
    t.pc += 1
    t.wake = done
    return True


def _lm_index(me, t, insn) -> int:
    idx = insn.offset
    if insn.base is not None:
        idx += me.value(t, insn.base)
    if insn.thread_rel:
        idx += t.lm_base
    if not (0 <= idx < LM_WORDS):
        raise SimError("Local Memory index %d out of range" % idx)
    return idx


def _h_lm_read(me, t, insn) -> bool:
    t.set(insn.dst, me.lm[_lm_index(me, t, insn)])
    t.pc += 1
    return False


def _h_lm_write(me, t, insn) -> bool:
    me.lm[_lm_index(me, t, insn)] = me.value(t, insn.src) & _U32
    t.pc += 1
    return False


def _h_cam_lookup(me, t, insn) -> bool:
    t.set(insn.dst, me.cam.lookup(me.value(t, insn.key)))
    t.pc += 1
    return False


def _h_cam_write(me, t, insn) -> bool:
    me.cam.write(me.value(t, insn.entry), me.value(t, insn.key))
    t.pc += 1
    return False


def _h_cam_clear(me, t, insn) -> bool:
    me.cam.clear()
    t.pc += 1
    return False


def _h_ctx_arb(me, t, insn) -> bool:
    prof = me.chip.profiler
    if prof is not None:
        prof.note_block(me.index, t.index, "ctx_arb", me.time, me.time + 1)
    t.pc += 1
    t.wake = me.time + 1
    return True  # voluntary yield


def _h_halt(me, t, insn) -> bool:
    t.halted = True
    return True


def _h_thread_stack_addr(me, t, insn) -> bool:
    base = me.chip.symbol("__stack")
    slot = (me.index * len(me.threads) + t.index) * SRAM_STACK_BYTES_PER_THREAD
    t.set(insn.dst, base + slot)
    t.pc += 1
    return False


_HANDLERS: Dict[type, object] = {
    isa.Alu: _h_alu,
    isa.Immed: _h_immed,
    isa.LoadSym: _h_loadsym,
    isa.Mov: _h_mov,
    isa.Cmp: _h_cmp,
    isa.Br: _h_br,
    isa.Bal: _h_bal,
    isa.Rtn: _h_rtn,
    isa.Mem: _h_mem,
    isa.RingGet: _h_ring_get,
    isa.RingPut: _h_ring_put,
    isa.TestAndSet: _h_tas,
    isa.AtomicRelease: _h_release,
    isa.LmRead: _h_lm_read,
    isa.LmWrite: _h_lm_write,
    isa.CamLookup: _h_cam_lookup,
    isa.CamWrite: _h_cam_write,
    isa.CamClear: _h_cam_clear,
    isa.CtxArb: _h_ctx_arb,
    isa.Halt: _h_halt,
    isa.ThreadStackAddr: _h_thread_stack_addr,
}
