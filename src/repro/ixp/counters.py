"""Access and packet accounting for the evaluation (Table 1 metrics)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Counters:
    """Counts memory accesses by (space, category) plus moved words.

    ``snapshot()``/``delta()`` support measuring only the steady-state
    window (after warm-up), which is how Table 1's per-packet numbers
    and the figures' forwarding rates are produced.
    """

    def __init__(self):
        self.accesses: Counter = Counter()  # (space, category) -> count
        self.words: Counter = Counter()

    def record(self, space: str, category: str, words: int) -> None:
        key = (space, category)
        self.accesses[key] += 1
        self.words[key] += words

    def snapshot(self) -> Dict:
        return {
            "accesses": Counter(self.accesses),
            "words": Counter(self.words),
        }

    @staticmethod
    def delta(after: Dict, before: Dict) -> Dict:
        return {
            "accesses": after["accesses"] - before["accesses"],
            "words": after["words"] - before["words"],
        }


@dataclass
class AccessProfile:
    """Per-packet dynamic memory accesses, in Table 1's columns."""

    pkt_scratch: float = 0.0
    pkt_sram: float = 0.0
    pkt_dram: float = 0.0
    app_scratch: float = 0.0
    app_sram: float = 0.0

    @property
    def total(self) -> float:
        return (self.pkt_scratch + self.pkt_sram + self.pkt_dram
                + self.app_scratch + self.app_sram)

    @staticmethod
    def from_counters(delta: Dict, packets: int) -> "AccessProfile":
        if packets <= 0:
            return AccessProfile()
        acc = delta["accesses"]
        return AccessProfile(
            pkt_scratch=acc[("scratch", "pkt")] / packets,
            pkt_sram=acc[("sram", "pkt")] / packets,
            pkt_dram=acc[("dram", "pkt")] / packets,
            app_scratch=acc[("scratch", "app")] / packets,
            app_sram=acc[("sram", "app")] / packets,
        )

    def row(self) -> Tuple[float, float, float, float, float, float]:
        return (self.pkt_scratch, self.pkt_sram, self.pkt_dram,
                self.app_scratch, self.app_sram, self.total)
