"""Rx/Tx engines and the traffic source (the IXIA substitute).

On the real IXP2400 two of the eight MEs run Rx and Tx microblocks. We
model them as dedicated engines: Rx paces packets in at the offered line
rate (up to 3x1 Gbps), allocates a buffer + metadata from the free
rings, deposits the frame in DRAM and the handle on the ``rx`` ring; Tx
drains the ``tx`` ring at line rate, captures payloads for verification
and recycles buffers. Their packet-data DMA does not contend on the
modeled ME memory channels (see DESIGN.md), and their accesses are not
counted in the per-packet access profile -- matching how the paper's
Table 1 counts application accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.baker.packetmodel import HEADROOM_BYTES, META_USER_BASE
from repro.ixp.memory import ME_HZ
from repro.profiler.trace import Trace

GBPS = 1e9


@dataclass
class TxRecord:
    time: float  # ME cycles
    payload: bytes
    rx_port: int


class RxEngine:
    """Paces trace packets onto the rx ring at the offered load."""

    def __init__(self, chip, trace: Trace, offered_gbps: float = 3.0,
                 max_packets: Optional[int] = None, repeat: bool = True):
        self.chip = chip
        self.packets = list(trace.packets)
        self.offered_gbps = offered_gbps
        self.max_packets = max_packets
        self.repeat = repeat
        self.sent = 0
        # Drops by cause (free pool exhausted vs. rx ring backlogged);
        # ``dropped`` is the total the measurement code reports.
        self.dropped_freelist = 0
        self.dropped_ring_full = 0
        # Handles lost while recycling into a full free ring (must stay
        # zero: the free rings are sized to hold the whole pool).
        self.leaked_buffers = 0
        self.leaked_meta = 0
        # Ring objects, bound on first delivery (the loader creates them
        # after the engine is constructed).
        self._rx_ring = None
        self._meta_free = None
        self._buf_free = None

    @property
    def dropped(self) -> int:
        return self.dropped_freelist + self.dropped_ring_full

    def interval_cycles(self, frame_bytes: int) -> float:
        seconds = frame_bytes * 8 / (self.offered_gbps * GBPS)
        return seconds * ME_HZ

    def inject_next(self) -> Optional[float]:
        """Inject one packet now; returns the delay until the next
        injection (None when the trace is exhausted).

        All exhaustion guards (``max_packets`` budget, empty trace,
        one-shot trace fully sent) run *before* a packet is selected, so
        ``sent`` is exactly the number of injected packets under every
        combination of ``repeat`` and ``max_packets``."""
        if self.max_packets is not None and self.sent >= self.max_packets:
            return None
        if not self.packets:
            return None
        if not self.repeat and self.sent >= len(self.packets):
            return None
        tp = self.packets[self.sent % len(self.packets)]
        self.sent += 1
        self._deliver(tp)
        return self.interval_cycles(len(tp.data))

    def _deliver(self, tp) -> None:
        chip = self.chip
        tracer = chip.tracer
        meta_free = self._meta_free
        if meta_free is None:
            meta_free = self._meta_free = chip.rings["ring.__meta_free"]
            self._buf_free = chip.rings["ring.__buf_free"]
            self._rx_ring = chip.rings["ring.rx"]
        buf_free = self._buf_free
        rx_ring = self._rx_ring
        meta = meta_free.get()
        buf = buf_free.get()
        if meta == 0 or buf == 0 or len(rx_ring.items) >= rx_ring.capacity:
            if meta == 0 or buf == 0:
                self.dropped_freelist += 1
                cause = "freelist_empty"
            else:
                self.dropped_ring_full += 1
                cause = "ring_full"
            if meta and not meta_free.put(meta):
                self.leaked_meta += 1
            if buf and not buf_free.put(buf):
                self.leaked_buffers += 1
            if tracer is not None:
                tracer.rx_drop(chip.now, cause)
            return
        chip.memory.write_bytes("dram", buf + HEADROOM_BYTES, tp.data)
        words = [buf, HEADROOM_BYTES, len(tp.data), tp.rx_port]
        words += [0] * (chip.meta_words - len(words))
        chip.memory.write_words("sram", meta, words)
        rx_ring.put(meta)
        if tracer is not None:
            tracer.rx_packet(meta, chip.now, tp.rx_port, len(tp.data))


class TxEngine:
    """Drains the tx ring at line rate; records transmitted payloads."""

    def __init__(self, chip, line_gbps: float = 3.0):
        self.chip = chip
        self.line_gbps = line_gbps
        self.busy_until = 0.0
        self.records: List[TxRecord] = []
        self.bytes_out = 0
        # Handles lost recycling into a full free ring (must stay zero).
        self.leaked_buffers = 0
        self.leaked_meta = 0
        # Ring objects, bound on the first poll that finds them (the
        # loader creates them after the engine is constructed).
        self._tx_ring = None
        self._buf_free = None
        self._meta_free = None

    def poll(self, now: float) -> None:
        ring = self._tx_ring
        if ring is None:
            ring = self._tx_ring = self.chip.rings["ring.tx"]
            self._buf_free = self.chip.rings["ring.__buf_free"]
            self._meta_free = self.chip.rings["ring.__meta_free"]
        if not ring.items or self.busy_until > now:
            return
        memory = self.chip.memory
        tracer = self.chip.tracer
        while ring.items and self.busy_until <= now:
            meta = ring.get()
            buf, head, length, port = memory.read_words("sram", meta, 4)
            payload = memory.read_bytes("dram", buf + head, length)
            if tracer is not None:
                tracer.tx_packet(meta, now, port, length)
            self.records.append(TxRecord(now, payload, port))
            self.bytes_out += length
            tx_cycles = length * 8 / (self.line_gbps * GBPS) * ME_HZ
            self.busy_until = max(self.busy_until, now) + tx_cycles
            if not self._buf_free.put(buf):
                self.leaked_buffers += 1
            if not self._meta_free.put(meta):
                self.leaked_meta += 1

    def packets_out(self) -> int:
        return len(self.records)
