"""Two-speed simulation: batched functional fast-forward.

The cycle-accurate engine interleaves every ME thread, Rx/Tx pacing
event and memory completion in global time order -- that fidelity is
what the Tier-1 figures need, and it is also why a full apps x levels x
ME-counts sweep costs what it costs. Fast-forward trades the
interleaving for a calibrated cost model:

1. **Branch evidence.** A short warm-up batch runs under the legacy
   handler table, counting taken/not-taken per conditional branch.
   Branches taken on at least :data:`BIAS_THRESHOLD` of executions are
   recorded as biased.
2. **Superblock fusion.** The image is re-predecoded with
   ``branch_bias`` (:func:`repro.ixp.predecode.predecode_image`):
   biased branches compile *inverted*, so the hot path runs as one
   fused straight-line closure and the cold side pays a guard exit.
3. **Batched functional execution.** Packets are pushed through the
   fused program in bulk with no event heap and no pacing: every
   thread is force-woken each pass, the XScale services its rings
   between passes, and Tx drains greedily. Architectural effects
   (memory contents, counters, ring traffic, Tx payloads) are real;
   *time* is not simulated.
4. **Calibrated cost model.** Channel busy-time accounting is
   timing-independent (linear in accesses/words, `memory.py`), so the
   functional batch yields the exact per-packet channel occupancy and
   with it each channel's saturation capacity. Two cycle-accurate
   anchor runs (1 and 2 MEs, deep warm-up, self-extending least-squares
   slope window -- see :func:`_anchor_rate`) pin an Amdahl compute
   curve ``rate(n) = 1/(a + b/n)``; a cell whose compute curve clears
   the bottleneck channel
   capacity by :data:`SATURATION_MARGIN` is predicted *at* that
   capacity, and any cell in the ambiguous band is anchored on demand
   by a real cycle-accurate run. Predicted rates carry a documented
   error bound of :data:`RATE_ERROR_BOUND_PCT` percent against the
   converged cycle-accurate reference (see EXPERIMENTS.md: short
   measurement windows are themselves several percent noisy, so the
   bound is stated against deep windows).
5. **Resync windows.** Before the model is trusted, the cycle-accurate
   engine re-runs sampled packet slices (:data:`RESYNC_PACKETS` each,
   offsets spread across the trace) and the functional engine must
   reproduce the exact Tx payload multiset and agree on memory access
   counters within :data:`RESYNC_COUNTER_TOL` (spin-wait retries under
   different interleavings move poll-loop counts; payload bytes may
   not move at all).

Fast-forward is for sweeps and tuning trials (``python -m repro.sweep
--engine fastforward``); Tier-1 figures stay cycle-accurate. It is
incompatible with observation that attributes *time* (``--profile``,
packet tracing, time-series windows): those compose with a simulated
clock that fast-forward does not have, so they are refused loudly
(:class:`FastForwardError`) rather than silently misattributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ixp.chip import IXP2400
from repro.ixp.counters import AccessProfile
from repro.ixp.memory import ME_HZ
from repro.ixp.microengine import _HANDLERS, _cond_true
from repro.ixp.predecode import plan_matches, predecode_image
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.profiler.trace import Trace
from repro.rts.loader import load_system

#: Packets run under the legacy core to record branch evidence (hot
#: per-packet branches execute once per packet, so 48 packets give
#: every biasable site at least BIAS_MIN_COUNT observations).
EVIDENCE_PACKETS = 48
#: A conditional branch is biased when taken on >= this fraction.
BIAS_THRESHOLD = 0.85
#: ... of at least this many executions (rare paths stay uninverted).
BIAS_MIN_COUNT = 16
#: Functional batch size; occupancy is measured after FF_WARMUP of them
#: (the evidence batch already warmed tables/caches on the same chip).
#: The 400-packet measure window is two full trace periods, so the
#: per-packet occupancy sees the exact steady packet mix.
FUNCTIONAL_PACKETS = 460
FF_WARMUP_PACKETS = 60
#: Cycle-accurate anchor runs: deep warm-up, then a least-squares slope
#: over [ANCHOR_WARMUP, x) where x starts at ANCHOR_FIRST_DEPTH and
#: *extends* (by ANCHOR_STEP) until the fit agrees with the fit one
#: step back (ANCHOR_STABLE_TOL, relative). The forwarding-rate
#: process has low-frequency queue-oscillation noise, so a fixed short
#: window can sit on a swing; the look-back test detects the swing
#: from data the run already has, costing nothing when the estimate is
#: already flat (see EXPERIMENTS.md for the per-cell validation).
ANCHOR_WARMUP = 600
ANCHOR_FIRST_DEPTH = 1480
ANCHOR_STEP = 220
ANCHOR_STABLE_TOL = 0.006
ANCHOR_MAX_DEPTH = 2400
ANCHOR_MAX_CYCLES = 400e6
#: Converged cycle-accurate reference protocol: what BENCH_ffspeed.json
#: grades fast-forward against, via run_on_simulator's own estimator.
#: Residual disjoint-window disagreement at this depth is ~0.3-0.9%
#: (EXPERIMENTS.md); deeper windows do NOT converge further -- the
#: rate process wanders +-1-2% on 5000-packet horizons -- so this is
#: the tightest reference the simulated system supports.
REF_WARMUP = 600
REF_MEASURE = 2500
#: Compute-curve headroom over the channel cap before a cell is
#: predicted saturated instead of anchored (see DESIGN.md section 13).
SATURATION_MARGIN = 1.15
#: Documented per-cell rate error bound vs the converged reference.
RATE_ERROR_BOUND_PCT = 2.0
#: Resync windows: slice length and trace offsets sampled.
RESYNC_PACKETS = 40
RESYNC_OFFSETS = (0, 100)
#: Tolerated relative drift on SRAM access counts between the
#: functional and cycle-accurate resync runs (lock/flag spin retries
#: re-read SRAM a different number of times under different
#: interleavings; everything else in the contract is exact).
RESYNC_COUNTER_TOL = 0.15
#: Safety rails for the functional fixpoint loop.
_BURST_CAP = 2_000_000
_PASS_CAP = 200_000

_INF = float("inf")


class FastForwardError(ValueError):
    """Fast-forward refused to run or failed its own validation."""


# -- functional batched executor -------------------------------------------------------


def _count_burst(me, t, counts: Dict[int, List[int]]) -> None:
    """Legacy-core burst (run ``t`` until it blocks/yields/halts) that
    records taken/total per conditional branch pc. The loop body is the
    legacy ``_run_thread`` dispatch without slice deadlines."""
    insns = me.insns
    steps = 0
    while True:
        insn = insns[t.pc]
        if getattr(insn, "kind", None) == "br" and insn.cond != "always":
            rec = counts.get(t.pc)
            if rec is None:
                rec = counts[t.pc] = [0, 0]
            if _cond_true(t, insn.cond):
                rec[0] += 1
            rec[1] += 1
        handler = _HANDLERS.get(insn.__class__)
        me.time += insn.cycles
        me.executed_instrs += 1
        if handler(me, t, insn):
            return
        steps += 1
        if steps > _BURST_CAP:
            raise FastForwardError(
                "ME%d thread %d ran %d instructions without blocking"
                % (me.index, t.index, steps))


def _fast_burst(me, t, prog) -> None:
    """Fused-program burst: step until a blocking step returns None.
    ``deadline`` is +inf so fused runs never take their slice bail."""
    steps = 0
    while True:
        tm = prog[t.pc](me, t, _INF)
        me.executed_instrs += 1
        if tm is None:
            return
        steps += 1
        if steps > _BURST_CAP:
            raise FastForwardError(
                "ME%d thread %d ran %d steps without blocking"
                % (me.index, t.index, steps))


def _run_functional(chip, rx: RxEngine, tx: TxEngine, burst,
                    on_pass=None) -> None:
    """Drive the whole system to quiescence with no event heap.

    Each pass: (1) batch-inject every packet the free pools and rx ring
    can hold (pacing ignored), (2) force-wake and burst every live
    thread in ME/thread order, (3) service the XScale, (4) drain Tx
    greedily. The run is done when the trace is exhausted and every
    buffer/metadata handle is back on its free ring (the recycle-leak
    invariant guarantees quiescence implies exactly that).

    Determinism: thread order, ring contents and memory effects depend
    only on the pass structure, so two runs over the same inputs are
    bit-identical.
    """
    rings = chip.rings
    rx_ring = rings["ring.rx"]
    tx_ring = rings["ring.tx"]
    meta_free = rings["ring.__meta_free"]
    buf_free = rings["ring.__buf_free"]
    full_meta = len(meta_free.items)
    full_buf = len(buf_free.items)
    exhausted = False
    passes = 0
    while True:
        passes += 1
        if passes > _PASS_CAP:
            raise FastForwardError(
                "functional execution did not quiesce in %d passes "
                "(rx sent=%d tx out=%d)" % (passes, rx.sent,
                                            tx.packets_out()))
        if not exhausted:
            while (len(rx_ring.items) < rx_ring.capacity
                   and meta_free.items and buf_free.items):
                if rx.inject_next() is None:
                    exhausted = True
                    break
        for me in chip.mes:
            for t in me.threads:
                if t.halted:
                    continue
                if t.wake > me.time:
                    # Force-wake: latency hiding is assumed perfect in
                    # functional mode; the cost model owns time.
                    me.time = t.wake
                burst(me, t)
        if chip.xscale is not None:
            chip.xscale.service(max(me.time for me in chip.mes))
        while tx_ring.items:
            # Tx pacing collapses: polling at busy_until emits exactly
            # one record per call with a deterministic timestamp chain.
            tx.poll(tx.busy_until)
        if on_pass is not None:
            on_pass()
        if (exhausted and not rx_ring.items
                and len(meta_free.items) == full_meta
                and len(buf_free.items) == full_buf):
            return


# -- calibration pieces ----------------------------------------------------------------


def _slope_rate(records, lo: int, hi: int) -> float:
    """Forwarding rate in Gbps from the least-squares slope of
    cumulative Tx bytes vs simulated time over records [lo, hi) -- far
    less noisy than the endpoint delta over the same window."""
    xs: List[float] = []
    ys: List[float] = []
    cum = 0
    for i, rec in enumerate(records[:hi]):
        cum += len(rec.payload)
        if i >= lo:
            xs.append(rec.time)
            ys.append(float(cum))
    n = len(xs)
    if n < 2:
        raise FastForwardError("slope window [%d,%d) has %d records"
                               % (lo, hi, n))
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) * (x - mx) for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    if sxx <= 0:
        raise FastForwardError("degenerate slope window (zero time span)")
    return sxy / sxx * ME_HZ * 8 / 1e9


def _install_fused(chip, fused) -> None:
    """Install an already-built biased program on every ME of ``chip``
    running the calibrated image. Predecoded closures reach memory and
    rings through ``me.chip`` at run time, so a program is portable to
    any chip whose symbol table matches the decode-time bindings
    (:func:`plan_matches`) -- which holds across every chip the loader
    builds for one CompileResult, at any ME count. Biased inversion is
    semantics-preserving *and* schedule-preserving: paced runs under the
    fused program are cycle-identical to plain dispatch (asserted in
    tests), just cheaper per instruction."""
    if fused is None:
        return
    image, prog, used = fused
    if not plan_matches(used, chip):
        return
    for me in chip.mes:
        if me.image is image:
            me._prog = prog


def _anchor_rate(result, trace: Trace, n_mes: int,
                 depths: Optional[Dict[int, int]] = None,
                 fused=None) -> float:
    """One cycle-accurate anchor at ``n_mes`` MEs: deep warm-up, then a
    measure window that *extends itself until the estimate stabilizes*.

    The forwarding-rate process carries low-frequency queue-oscillation
    noise (window rates swing by a couple percent for ~1000-packet
    stretches at any depth -- EXPERIMENTS.md), so a fixed short window
    cannot certify the documented bound. The cumulative slope
    ``s(x) = fit over [ANCHOR_WARMUP, x)`` is accepted at the first
    depth ``x >= ANCHOR_FIRST_DEPTH`` where it agrees with the fit one
    step back, ``s(x - ANCHOR_STEP)``, within :data:`ANCHOR_STABLE_TOL`
    relative. The look-back fit is computed from records the run
    already holds, so a stable cell pays exactly ANCHOR_FIRST_DEPTH
    packets; a cell caught mid-swing keeps extending (up to
    :data:`ANCHOR_MAX_DEPTH`) until the swing flattens out.
    """
    chip = IXP2400(n_programmable_mes=n_mes)
    load_system(result, chip, n_mes=n_mes, dispatch="fast")
    _install_fused(chip, fused)
    rx = RxEngine(chip, trace, offered_gbps=3.0)
    tx = TxEngine(chip, line_gbps=3.0)
    chip.attach_traffic(rx, tx)

    def run_to(target: int) -> None:
        chip.run(ANCHOR_MAX_CYCLES,
                 stop=lambda: tx.packets_out() >= target,
                 stop_check_interval=16)
        if tx.packets_out() < target:
            raise FastForwardError(
                "anchor run at %d MEs transmitted %d/%d packets within "
                "the cycle budget" % (n_mes, tx.packets_out(), target))

    hi = ANCHOR_FIRST_DEPTH
    run_to(hi)
    rate = _slope_rate(tx.records, ANCHOR_WARMUP, hi)
    prev = _slope_rate(tx.records, ANCHOR_WARMUP, hi - ANCHOR_STEP)
    while (abs(rate - prev) / max(rate, prev) > ANCHOR_STABLE_TOL
           and hi < ANCHOR_MAX_DEPTH):
        hi += ANCHOR_STEP
        run_to(hi)
        prev, rate = rate, _slope_rate(tx.records, ANCHOR_WARMUP, hi)
    if depths is not None:
        depths[n_mes] = hi
    return rate


def _resync_counters(chip) -> Dict[str, int]:
    """The counter agreement contract's comparable, per space:

    * ``scratch`` is *poll-adjusted*: raw accesses minus empty-ring
      gets. Spin-polling an empty ring charges one scratch access per
      try, and the try count is pure interleaving (the paced
      cycle-accurate run polls the idle rx ring tens of thousands of
      times; the batched functional run polls once per pass) -- but
      every empty try is also an ``empty_gets`` tick, so the adjusted
      count is the productive traffic and matches exactly.
    * ``dram`` is exact as-is (packet data never spins).
    * ``sram`` carries lock/flag spin retries, which legitimately vary
      with interleaving -- it gets RESYNC_COUNTER_TOL headroom.
    """
    acc = chip.memory.counters.snapshot()["accesses"]
    by_space: Dict[str, int] = {}
    for (space, _cat), n in acc.items():
        by_space[space] = by_space.get(space, 0) + n
    empty = sum(r.empty_gets for r in chip.rings.rings.values())
    by_space["scratch"] = by_space.get("scratch", 0) - empty
    return by_space


def _ring_ops(chip) -> Dict[str, Tuple[int, int, int]]:
    return {name: (r.gets, r.puts, r.drops)
            for name, r in chip.rings.rings.items()}


def _delta(new: Dict, old: Dict, zero) -> Dict:
    if zero == 0:
        return {k: new.get(k, 0) - old.get(k, 0)
                for k in set(new) | set(old)}
    return {k: tuple(x - y for x, y in zip(new[k], old.get(k, zero)))
            for k in new}


def _resync_windows(result, trace: Trace,
                    fused) -> List[Dict[str, object]]:
    """Resync windows: for each offset, the functional engine (with the
    biased program) and the cycle-accurate engine run the same finite
    RESYNC_PACKETS slice. Exact agreement is required on the Tx payload
    multiset, on every ring's successful operation counts, and on the
    poll-adjusted scratch / raw DRAM access counts; SRAM access counts
    must agree within RESYNC_COUNTER_TOL (see _resync_counters).

    Both engines are loaded **once** and run every window to
    quiescence: window k+1 starts from the same warm-but-quiescent
    architectural state on both sides (all handles recycled, rings
    empty), so per-window *deltas* of counters and ring operations stay
    directly comparable while the fixed chip-construction cost is paid
    once instead of per window."""
    fchip = IXP2400(n_programmable_mes=1)
    load_system(result, fchip, n_mes=1, dispatch="fast")
    _install_fused(fchip, fused)
    prog = fchip.mes[0]._prog
    if prog is None:
        raise FastForwardError(
            "fused program does not bind on a freshly loaded chip "
            "(symbol layout changed between calibration and resync?)")

    cchip = IXP2400(n_programmable_mes=1)
    load_system(result, cchip, n_mes=1, dispatch="fast")
    ctx = TxEngine(cchip)
    meta_free = cchip.rings["ring.__meta_free"]
    buf_free = cchip.rings["ring.__buf_free"]
    full_meta = len(meta_free.items)
    full_buf = len(buf_free.items)

    out: List[Dict[str, object]] = []
    f_counts, f_rings = _resync_counters(fchip), _ring_ops(fchip)
    c_counts, c_rings = _resync_counters(cchip), _ring_ops(cchip)
    ca_done = 0
    attached = False
    for offset in RESYNC_OFFSETS:
        packets = [trace.packets[(offset + i) % len(trace.packets)]
                   for i in range(RESYNC_PACKETS)]
        finite = Trace(packets=packets)

        # Functional side.
        frx = RxEngine(fchip, finite, max_packets=RESYNC_PACKETS,
                       repeat=False)
        ftx = TxEngine(fchip)
        _run_functional(fchip, frx, ftx,
                        lambda m, t: _fast_burst(m, t, prog))
        func_sig = sorted(r.payload for r in ftx.records)
        nf_counts, nf_rings = _resync_counters(fchip), _ring_ops(fchip)
        func_counts = _delta(nf_counts, f_counts, 0)
        func_rings = _delta(nf_rings, f_rings, (0, 0, 0))
        f_counts, f_rings = nf_counts, nf_rings

        # Cycle-accurate side: same finite slice under full offered
        # load (the slice is far smaller than the rx ring, so pacing
        # cannot drop); run until every buffer/metadata handle is
        # recycled, which implies the Tx side emitted its last record.
        # The Tx engine and its poll event persist across windows --
        # a paced tx_event closure outlives its window, so handing the
        # chip a fresh TxEngine per window would leave a stale poller
        # stealing packets; per-window output is records[ca_done:].
        crx = RxEngine(cchip, finite, offered_gbps=3.0,
                       max_packets=RESYNC_PACKETS, repeat=False)
        if not attached:
            cchip.attach_traffic(crx, ctx)
            attached = True
        else:
            def rx_event(rx=crx):
                delay = rx.inject_next()
                if delay is None:
                    return None
                return cchip.now + delay
            cchip.schedule(cchip.now, rx_event)
            cchip.rx = crx
        cchip.run_for(100e6, stop=lambda rx=crx: (
            rx.sent >= RESYNC_PACKETS
            and len(meta_free.items) == full_meta
            and len(buf_free.items) == full_buf))
        ca_sig = sorted(r.payload for r in ctx.records[ca_done:])
        ca_done = len(ctx.records)
        nc_counts, nc_rings = _resync_counters(cchip), _ring_ops(cchip)
        ca_counts = _delta(nc_counts, c_counts, 0)
        ca_rings = _delta(nc_rings, c_rings, (0, 0, 0))
        c_counts, c_rings = nc_counts, nc_rings

        if func_sig != ca_sig:
            raise FastForwardError(
                "resync window at offset %d diverged: functional Tx %d "
                "packets, cycle-accurate %d, payload multisets differ"
                % (offset, len(func_sig), len(ca_sig)))
        if func_rings != ca_rings:
            raise FastForwardError(
                "resync window at offset %d: ring operation counts "
                "differ (functional %r vs cycle-accurate %r)"
                % (offset, func_rings, ca_rings))
        drift = 0.0
        for space in sorted(set(func_counts) | set(ca_counts)):
            a = func_counts.get(space, 0)
            b = ca_counts.get(space, 0)
            if a == b:
                continue
            rel = abs(a - b) / max(a, b, 1)
            if space == "sram":
                drift = max(drift, rel)
                if rel <= RESYNC_COUNTER_TOL:
                    continue
            raise FastForwardError(
                "resync window at offset %d: %s access count drifted "
                "%s vs %s (functional vs cycle-accurate)"
                % (offset, space, a, b))
        out.append({"offset": offset, "packets_out": len(func_sig),
                    "sram_drift": round(drift, 4)})
    return out


# -- the per-(program) plan --------------------------------------------------------------


@dataclass
class FastForwardPlan:
    """Everything fast-forward learns about one compiled program:
    branch bias, per-channel occupancy capacity, Amdahl compute curve
    through the cycle-accurate anchors, resync evidence. ``rate(n)``
    then prices any ME count -- from the model when it is clearly
    saturated, from an on-demand anchor otherwise."""

    result: object
    trace: Trace
    bias: Dict[int, bool]
    biased_branches: int
    conditional_sites: int
    busy_per_packet: Dict[str, float]  # channel -> cycles per Tx packet
    bytes_per_packet: float
    bottleneck: str
    chcap_gbps: float
    anchors: Dict[int, float]
    amdahl_a: Optional[float]
    amdahl_b: Optional[float]
    resync: List[Dict[str, object]]
    functional_packets: int = 0
    cell_modes: Dict[int, str] = field(default_factory=dict)
    anchor_depths: Dict[int, int] = field(default_factory=dict)
    #: (image, biased prog, decode-time bindings): shared by anchors and
    #: resync runs (closures are chip-portable; see _install_fused).
    #: Holds closures, so a plan is process-local -- never pickle one.
    fused: Optional[tuple] = None

    def amdahl(self, n_mes: int) -> Optional[float]:
        a, b = self.amdahl_a, self.amdahl_b
        if a is None or b is None:
            return None
        denom = a + b / n_mes
        if denom <= 0:
            return None
        return 1.0 / denom

    def rate(self, n_mes: int) -> Tuple[float, str]:
        """(forwarding Gbps, how it was obtained). Modes: ``anchored``
        (a real cycle-accurate run backs this cell) or ``saturated``
        (the compute curve clears the channel cap by the margin, so the
        cell is priced at the cap)."""
        if n_mes in self.anchors:
            self.cell_modes[n_mes] = "anchored"
            return self.anchors[n_mes], "anchored"
        pred = self.amdahl(n_mes)
        if pred is not None and pred >= SATURATION_MARGIN * self.chcap_gbps:
            self.cell_modes[n_mes] = "saturated"
            return self.chcap_gbps, "saturated"
        rate = _anchor_rate(self.result, self.trace, n_mes,
                            depths=self.anchor_depths, fused=self.fused)
        self.anchors[n_mes] = rate
        self.cell_modes[n_mes] = "anchored"
        return rate, "anchored"

    def describe(self) -> Dict[str, object]:
        """Deterministic JSON-ready summary (no wall-clock anywhere)."""
        return {
            "bias_sites": self.biased_branches,
            "conditional_sites": self.conditional_sites,
            "bottleneck": self.bottleneck,
            "chcap_gbps": round(self.chcap_gbps, 4),
            "busy_per_packet": {k: round(v, 3)
                                for k, v in sorted(
                                    self.busy_per_packet.items())},
            "anchors": {str(n): round(r, 4)
                        for n, r in sorted(self.anchors.items())},
            "anchor_depths": {str(n): d
                              for n, d in sorted(
                                  self.anchor_depths.items())},
            "resync": self.resync,
            "functional_packets": self.functional_packets,
            "error_bound_pct": RATE_ERROR_BOUND_PCT,
        }


#: Per-process plan memo (mirrors the sweep's analysis memo): planning
#: costs anchor runs, so repeated cells of one program must share it.
_PLAN_MEMO: Dict[object, FastForwardPlan] = {}


def build_plan(result, trace: Trace) -> FastForwardPlan:
    """Calibrate fast-forward for one compiled program (see module
    docstring for the five stages)."""
    reg = obs_metrics.get_registry()
    led = obs_ledger.get_ledger()

    # Stage 1+2+3 share one chip: the evidence batch doubles as cache/
    # table warm-up, so the functional batch measures steady state.
    chip = IXP2400(n_programmable_mes=1)
    load_system(result, chip, n_mes=1, dispatch="fast")
    me = chip.mes[0]

    counts: Dict[int, List[int]] = {}
    erx = RxEngine(chip, trace, max_packets=EVIDENCE_PACKETS)
    etx = TxEngine(chip)
    _run_functional(chip, erx, etx,
                    lambda m, t: _count_burst(m, t, counts))

    bias = {pc: True for pc, (taken, total) in counts.items()
            if total >= BIAS_MIN_COUNT
            and taken / total >= BIAS_THRESHOLD}
    if led.enabled:
        for pc in sorted(counts):
            taken, total = counts[pc]
            led.record("fastforward.superblock", "pc=%d" % pc,
                       "inverted" if pc in bias else "kept",
                       taken=taken, total=total)

    prog, used = predecode_image(me.image, chip, branch_bias=bias)
    me._prog = prog
    fused = (me.image, prog, used)

    busy0 = {name: ch.busy_time
             for name, ch in chip.memory.channels.items()}
    state = {"snap": None, "tx0": 0, "bytes0": 0}
    frx = RxEngine(chip, trace, max_packets=FUNCTIONAL_PACKETS)
    ftx = TxEngine(chip)

    def snap_after_warmup():
        if state["snap"] is None and ftx.packets_out() >= FF_WARMUP_PACKETS:
            state["snap"] = {name: ch.busy_time
                             for name, ch in chip.memory.channels.items()}
            state["tx0"] = ftx.packets_out()
            state["bytes0"] = ftx.bytes_out

    _run_functional(chip, frx, ftx,
                    lambda m, t: _fast_burst(m, t, prog),
                    on_pass=snap_after_warmup)
    snap = state["snap"] or busy0
    measured = ftx.packets_out() - state["tx0"]
    if measured <= 0:
        raise FastForwardError(
            "functional batch transmitted no packets past warm-up "
            "(tx=%d)" % ftx.packets_out())
    bytes_pp = (ftx.bytes_out - state["bytes0"]) / measured
    busy_pp = {name: (ch.busy_time - snap[name]) / measured
               for name, ch in chip.memory.channels.items()}
    bottleneck = max(busy_pp, key=lambda k: (busy_pp[k], k))
    if busy_pp[bottleneck] <= 0:
        raise FastForwardError("no channel occupancy recorded; cannot "
                               "calibrate a capacity")
    chcap_gbps = ME_HZ / busy_pp[bottleneck] * bytes_pp * 8 / 1e9

    # Stage 4: anchors + Amdahl fit 1/rate = a + b/n through n=1,2.
    anchor_depths: Dict[int, int] = {}
    anchors = {1: _anchor_rate(result, trace, 1, depths=anchor_depths,
                               fused=fused),
               2: _anchor_rate(result, trace, 2, depths=anchor_depths,
                               fused=fused)}
    r1, r2 = anchors[1], anchors[2]
    amdahl_a: Optional[float] = None
    amdahl_b: Optional[float] = None
    if r1 > 0 and r2 > 0:
        b = 2.0 * (1.0 / r1 - 1.0 / r2)
        a = 1.0 / r1 - b
        # a <= 0 means the two anchors imply super-linear scaling --
        # almost certainly the n=2 anchor is already capped by a
        # channel; extrapolating would be meaningless, so every later
        # cell falls back to on-demand anchoring.
        if a > 0 and b >= 0:
            amdahl_a, amdahl_b = a, b

    # Stage 5: resync windows.
    resync = _resync_windows(result, trace, fused)

    plan = FastForwardPlan(
        result=result, trace=trace, bias=bias,
        biased_branches=len(bias), conditional_sites=len(counts),
        busy_per_packet=busy_pp, bytes_per_packet=bytes_pp,
        bottleneck=bottleneck, chcap_gbps=chcap_gbps,
        anchors=anchors, amdahl_a=amdahl_a, amdahl_b=amdahl_b,
        resync=resync, functional_packets=ftx.packets_out(),
        anchor_depths=anchor_depths, fused=fused)
    if reg.enabled:
        reg.counter("fastforward.plan", result="built").inc()
    if led.enabled:
        led.record("fastforward.calibrate", "cost_model", "calibrated",
                   bottleneck=bottleneck,
                   chcap_gbps=round(chcap_gbps, 4),
                   anchor1=round(r1, 4), anchor2=round(r2, 4),
                   resync_windows=len(resync))
    return plan


def get_plan(result, trace: Trace, plan_key=None) -> FastForwardPlan:
    """Per-process memoized :func:`build_plan`. ``plan_key`` should be
    a stable identity for (program, trace) -- the sweep passes (app,
    level, trace params); without one, object identity is used (the
    plan holds the result alive, so ids cannot be recycled)."""
    key = plan_key if plan_key is not None else ("id", id(result), id(trace))
    plan = _PLAN_MEMO.get(key)
    if plan is None:
        plan = _PLAN_MEMO[key] = build_plan(result, trace)
    return plan


def run_fastforward(result, trace: Trace, n_mes: Optional[int] = None,
                    registry=None, plan_key=None,
                    tracer=None, timeseries=None, profiler=None,
                    trace_json: Optional[str] = None,
                    trace_events_jsonl: Optional[str] = None):
    """Fast-forward twin of :func:`repro.rts.system.run_on_simulator`:
    returns a RunResult whose ``forwarding_gbps`` comes from the
    calibrated plan instead of a full cycle-accurate run.

    Warm-up/measure windows do not apply (the model is calibrated at
    converged windows -- deeper than the sweep's); time-attributing
    observers (tracer / timeseries / profiler) are refused because
    fast-forward has no simulated clock to attribute
    (:class:`FastForwardError`). ``RunResult.fastforward`` carries the
    plan summary and the cell's pricing mode; ``tx_payloads`` is empty
    (resync windows, not per-cell runs, carry the payload evidence).
    """
    for name, value in (("tracer", tracer), ("timeseries", timeseries),
                        ("profiler", profiler), ("trace_json", trace_json),
                        ("trace_events_jsonl", trace_events_jsonl)):
        if value:
            raise FastForwardError(
                "fast-forward cannot honor %s=%r: it attributes "
                "simulated time, which the functional engine does not "
                "model -- run dispatch='fast' (cycle-accurate) instead"
                % (name, value))
    if registry is not None:
        with obs_metrics.scoped_registry(registry):
            return run_fastforward(result, trace, n_mes=n_mes,
                                   plan_key=plan_key)
    from repro.rts.system import RunResult

    n = n_mes if n_mes is not None else result.opts.num_mes
    plan = get_plan(result, trace, plan_key=plan_key)
    gbps, mode = plan.rate(n)
    reg = obs_metrics.get_registry()
    if reg.enabled:
        reg.counter("fastforward.cell", mode=mode).inc()
    info = plan.describe()
    info["mode"] = mode
    info["n_mes"] = n
    info["gbps"] = round(gbps, 4)
    return RunResult(
        forwarding_gbps=gbps,
        packets_measured=0,
        packets_out=0,
        rx_offered=0,
        rx_dropped=0,
        sim_cycles=0.0,
        access_profile=AccessProfile(),
        fastforward=info,
    )
