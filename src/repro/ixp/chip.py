"""The IXP2400 chip model: event-driven top level.

Owns the memory system, the scratch rings, the programmable MEs, the
Rx/Tx engines and the XScale core, and advances them in global time
order with a small event heap. MEs run in bounded slices so cross-ME
memory contention stays causally tight.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.ixp.memory import ME_HZ, MemorySystem
from repro.ixp.microengine import Microengine
from repro.ixp.rings import Ring, RingSet
from repro.ixp.rxtx import RxEngine, TxEngine


class IXP2400:
    """Configured chip: call :meth:`run` (or the measurement helpers in
    :mod:`repro.rts.system`) after the loader has populated memory,
    rings, symbols and ME images."""

    def __init__(self, n_programmable_mes: int = 6):
        self.n_programmable_mes = n_programmable_mes
        self.memory = MemorySystem()
        self.rings = RingSet()
        self.symbols: Dict[str, int] = {}
        self.mes: List[Microengine] = []
        self.rx: Optional[RxEngine] = None
        self.tx: Optional[TxEngine] = None
        self.xscale = None  # repro.ixp.xscale_core.XScaleCore
        self.meta_words = 8
        self.now = 0.0
        self._events: List[Tuple[float, int, object]] = []
        self._seq = 0
        # Optional repro.obs.SimSampler, polled by run() between event
        # dispatches (never scheduled on the heap, so attaching one does
        # not perturb event order or stop-condition cadence).
        self.sampler = None
        # Optional repro.obs.trace.PacketTracer. Pure observation: every
        # instrumentation site guards with ``tracer is not None`` and
        # only appends to tracer-side lists, so attaching one cannot
        # perturb simulated state or event order.
        self.tracer = None
        # Optional repro.obs.timeseries.TimeseriesCollector, pulled by
        # run() through the same next_t/catch-up contract as the
        # sampler: window boundaries close before any event action at
        # the same timestamp runs, so a control-plane action at exactly
        # boundary k*W annotates window k.
        self.window = None
        # Optional repro.obs.profile.StallProfiler (attach via its
        # attach()): MEs classify thread bursts and blocking waits
        # through this reference, and run() pulls its optional
        # occupancy samples via the same next_t contract (next_t stays
        # +inf when time sampling is off). Pure observation.
        self.profiler = None

    # -- symbols / rings ---------------------------------------------------------

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError("unresolved symbol %r (loader bug?)" % name)

    def ring_by_symbol(self, name: str) -> Ring:
        ring = self.rings.get(name)
        if ring is None:
            raise KeyError("no ring %r" % name)
        return ring

    # -- event scheduling -----------------------------------------------------------

    def schedule(self, time: float, action: Callable[[], Optional[float]]) -> None:
        """``action`` runs at ``time``; if it returns a float, it is
        rescheduled at that absolute time."""
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, action))

    def add_me(self, me: Microengine) -> None:
        self.mes.append(me)

        def run() -> Optional[float]:
            if self.now > me.time:
                me.time = self.now
            return me.run_slice()

        self.schedule(0.0, run)

    def attach_traffic(self, rx: RxEngine, tx: TxEngine,
                       tx_poll_cycles: float = 50.0) -> None:
        self.rx = rx
        self.tx = tx

        def rx_event() -> Optional[float]:
            delay = rx.inject_next()
            if delay is None:
                return None
            return self.now + delay

        def tx_event() -> Optional[float]:
            now = self.now
            tx.poll(now)
            # poll() bound (or raised on) the tx ring, so reuse its
            # reference instead of a fresh RingSet lookup.
            ring = tx._tx_ring
            if ring.items and tx.busy_until > now:
                # Packets are waiting on line-rate pacing: wake exactly
                # when the transmitter frees up.
                return max(tx.busy_until, now + 1.0)
            return now + tx_poll_cycles

        self.schedule(0.0, rx_event)
        self.schedule(0.0, tx_event)

    def attach_xscale(self, xscale, poll_cycles: float = 600.0) -> None:
        self.xscale = xscale

        def xscale_event() -> Optional[float]:
            busy = xscale.service(self.now)
            return self.now + max(poll_cycles, busy)

        self.schedule(poll_cycles, xscale_event)

    # -- main loop ----------------------------------------------------------------------

    def run(self, until_cycles: float,
            stop: Optional[Callable[[], bool]] = None,
            stop_check_interval: int = 64) -> None:
        """Advance simulation until the **absolute** simulated time
        ``until_cycles`` (or until ``stop()`` returns true).

        ``until_cycles`` is a deadline on the simulation clock, not a
        budget relative to ``self.now`` -- calling ``run(X)`` twice does
        not advance time past ``X``. Use :meth:`run_for` for a relative
        budget.
        """
        countdown = stop_check_interval
        sampler = self.sampler
        window = self.window
        profiler = self.profiler
        events = self._events
        pop = heapq.heappop
        push = heapq.heappush
        now = self.now
        while events:
            time, seq, action = pop(events)
            if time > until_cycles:
                push(events, (time, seq, action))
                # The whole window up to the deadline was granted: advance
                # the clock to it (the next event is beyond it) so repeated
                # run_for drain loops do not re-grant the same window and
                # ``seconds`` reports the simulated span honestly.
                self.now = max(now, min(until_cycles, time))
                return
            if time > now:
                self.now = now = time
            if sampler is not None:
                # Catch up past *every* elapsed sample mark, not just one:
                # sparse event periods must not silently skip grid points.
                while now >= sampler.next_t:
                    sampler.sample(sampler.next_t)
            if window is not None:
                # Same catch-up rule: every elapsed boundary closes its
                # window, and all of them close before this action runs.
                while now >= window.next_t:
                    window.tick(window.next_t)
            if profiler is not None:
                # Occupancy/queue-depth samples on the same grid
                # contract (a single always-false compare when the
                # profiler's time sampling is disabled).
                while now >= profiler.next_t:
                    profiler.tick(profiler.next_t)
            nxt = action()
            if nxt is not None:
                # Re-arm at the requested time; past-due times collapse to
                # ``now`` and the integer sequence number breaks the tie
                # (no 1e-9 clock-noise bumps).
                self._seq += 1
                push(events, (nxt if nxt > now else now, self._seq, action))
            countdown -= 1
            if countdown == 0:
                countdown = stop_check_interval
                if stop is not None and stop():
                    return
        # Event heap drained before the deadline: the quiet remainder of
        # the window still elapsed.
        self.now = max(now, until_cycles)

    def run_for(self, cycles: float,
                stop: Optional[Callable[[], bool]] = None,
                stop_check_interval: int = 64) -> None:
        """Advance simulation by at most ``cycles`` **relative** to the
        current time (the unambiguous spelling of a drain budget)."""
        self.run(self.now + cycles, stop=stop,
                 stop_check_interval=stop_check_interval)

    @property
    def seconds(self) -> float:
        return self.now / ME_HZ
