"""The per-ME 16-entry content-addressable memory (paper section 3.3)."""

from __future__ import annotations

from typing import List, Optional


class CAM:
    """16 entries of 32-bit tags with LRU replacement. ``lookup`` returns
    ``(entry << 1) | hit``; on a miss the reported entry is the LRU
    victim (the software cache installs the new tag there)."""

    ENTRIES = 16

    def __init__(self):
        self.tags: List[Optional[int]] = [None] * self.ENTRIES
        self.lru: List[int] = list(range(self.ENTRIES))

    def lookup(self, key: int) -> int:
        key &= 0xFFFFFFFF
        try:
            entry = self.tags.index(key)  # lowest matching entry
        except ValueError:
            # Miss: the LRU victim is returned AND becomes most-recently-
            # used (MEv2 behavior) -- concurrent missing threads therefore
            # receive distinct victims instead of racing on one entry.
            victim = self.lru[0]
            self._touch(victim)
            return victim << 1
        self._touch(entry)
        return (entry << 1) | 1

    def write(self, entry: int, key: int) -> None:
        entry &= 0xF
        self.tags[entry] = key & 0xFFFFFFFF
        self._touch(entry)

    def clear(self) -> None:
        self.tags = [None] * self.ENTRIES
        self.lru = list(range(self.ENTRIES))

    def _touch(self, entry: int) -> None:
        self.lru.remove(entry)
        self.lru.append(entry)
