"""Aggregate formation: the heuristic of paper Figure 7.

Starting from one aggregate per PPF, repeatedly:

1. if one aggregate dominates execution time, consider duplicating it;
2. otherwise merge the pair of aggregates joined by the most expensive
   channel, provided the merge does not hurt throughput and the merged
   code still fits an ME's instruction store;
3. if nothing changed but there are still more aggregates than
   processors, relax the throughput target and try again.

Afterwards, aggregates that overflow the code store or are infrequently
executed move to the XScale, and the remaining ME aggregates are
duplicated across the available MEs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.aggregation.aggregate import (
    Aggregate,
    AggregationPlan,
    aggregate_cost,
    external_channels,
)
from repro.aggregation.throughput import (
    CC_COST,
    ME_IPS,
    assign_mes,
    packets_per_second_for_gbps,
    system_throughput,
)
from repro.cg.codesize import estimate_closure
from repro.ir import instructions as I
from repro.ir.module import IRModule
from repro.obs import ledger as obs_ledger
from repro.options import CompilerOptions
from repro.profiler.stats import ProfileData

# An aggregate handling less than this fraction of packets is control
# plane and belongs on the XScale.
INFREQUENT_RATE = 0.05

# "EXEC_TIME(dom) >> EXEC_TIME(next_dom)" threshold.
DOMINANCE_FACTOR = 2.0


def form_aggregates(
    mod: IRModule,
    profile: ProfileData,
    opts: CompilerOptions,
    target_gbps: float = 2.5,
    me_ips: float = ME_IPS,
) -> AggregationPlan:
    """Run Figure 7 and return the mapping plan (IR is not yet rewritten;
    see :func:`apply_plan`)."""
    aggregates = [
        Aggregate(name=fn.name, ppfs=[fn.name]) for fn in mod.ppfs()
    ]
    target = packets_per_second_for_gbps(target_gbps)

    def refresh(agg: Aggregate) -> None:
        agg.cost = aggregate_cost(mod, profile, agg.members(), CC_COST)
        agg.code_size = estimate_closure(mod, agg.ppfs, opts)

    for agg in aggregates:
        refresh(agg)

    def hot(aggs: List[Aggregate]) -> List[Aggregate]:
        return [a for a in aggs if _rate(profile, a) >= INFREQUENT_RATE]

    led = obs_ledger.get_ledger()
    overflow_seen = set()  # dedup: the same pair re-overflows every round

    done = False
    guard = 0
    while not done and guard < 10 * len(aggregates) + 50:
        guard += 1
        done = True

        candidates = hot(aggregates)
        # FIND_DOMINATING: the two costliest hot aggregates.
        ranked = sorted(candidates, key=lambda a: a.cost, reverse=True)
        if len(ranked) >= 2:
            dom, next_dom = ranked[0], ranked[1]
            if (
                dom.cost >= DOMINANCE_FACTOR * max(next_dom.cost, 1e-9)
                and _duplicate_improves(candidates, dom, opts, target, me_ips)
            ):
                dom.duplicate_hint += 1
                led.record("aggregation", dom.name, "duplicated",
                           reason="dominates execution time and another "
                                  "copy raises throughput",
                           cost=dom.cost, next_cost=next_dom.cost,
                           duplicate_hint=dom.duplicate_hint)
                done = False
                continue

        # FORM_PAIRS / SORT_BY_HIGHEST_CHANNEL_COST.
        pairs = _connected_pairs(mod, profile, aggregates)
        for cc_weight, a, b in pairs:
            if not _merge_improves(mod, profile, candidates, a, b, opts,
                                   target, me_ips):
                continue
            merged_members = a.members() | b.members()
            size = estimate_closure(mod, sorted(merged_members), opts)
            if size > opts.me_code_store:
                pair = (a.name, b.name)
                if led.enabled and pair not in overflow_seen:
                    overflow_seen.add(pair)
                    led.record("aggregation", "%s+%s" % pair,
                               "merge_rejected",
                               reason="merged closure overflows the "
                                      "ME code store",
                               code_size=size,
                               me_code_store=opts.me_code_store)
                continue
            led.record("aggregation", "%s+%s" % (a.name, b.name), "merged",
                       reason="highest-cost connecting channel, merge "
                              "does not hurt throughput",
                       cc_cost=cc_weight, code_size=size,
                       members=len(merged_members))
            a.ppfs = sorted(merged_members)
            a.duplicate_hint = max(a.duplicate_hint, b.duplicate_hint)
            aggregates.remove(b)
            refresh(a)
            done = False
            break

        if done and len(hot(aggregates)) > opts.num_mes:
            target *= 0.9  # RELAX_CONSTRAINT
            led.record("aggregation", "<plan>", "target_relaxed",
                       reason="more hot aggregates than MEs",
                       target_pps=target, hot_aggregates=len(hot(aggregates)),
                       num_mes=opts.num_mes)
            done = False

    # MAP_TO_XSCALE: oversized or infrequently executed aggregates.
    me_aggs: List[Aggregate] = []
    xscale: List[Aggregate] = []
    for agg in aggregates:
        if agg.code_size > opts.me_code_store or _rate(profile, agg) < INFREQUENT_RATE:
            agg.target = "xscale"
            xscale.append(agg)
            led.record("aggregation", agg.name, "mapped_xscale",
                       reason="oversized for the ME code store"
                              if agg.code_size > opts.me_code_store
                              else "infrequently executed (control plane)",
                       code_size=agg.code_size,
                       rate=_rate(profile, agg), ppfs=len(agg.ppfs))
        else:
            agg.target = "me"
            me_aggs.append(agg)

    # MAP_TO_MES with duplication.
    costs = [a.cost for a in me_aggs]
    assignment = assign_mes(costs, opts.num_mes, me_ips)
    for agg, count in zip(me_aggs, assignment):
        agg.me_count = count
        led.record("aggregation", agg.name, "mapped_me",
                   reason="hot aggregate, fits the code store",
                   me_count=count, cost=agg.cost,
                   code_size=agg.code_size, ppfs=len(agg.ppfs))

    plan = AggregationPlan(me_aggregates=me_aggs, xscale_aggregates=xscale)
    plan.throughput_pps = system_throughput(costs, opts.num_mes, me_ips)
    plan.internal_channels = _internal_channels(mod, me_aggs + xscale)
    return plan


def _rate(profile: ProfileData, agg: Aggregate) -> float:
    if profile.packets_in == 0:
        # No profile (empty trace): assume everything is hot rather than
        # shipping the whole program to the XScale.
        return 1.0
    return max((profile.invocation_rate(p) for p in agg.ppfs), default=0.0)


def _connected_pairs(mod: IRModule, profile: ProfileData,
                     aggregates: List[Aggregate]):
    """Aggregate pairs joined by at least one channel, sorted by total
    connecting-channel cost, highest first."""
    owner: Dict[str, Aggregate] = {}
    for agg in aggregates:
        for ppf in agg.ppfs:
            owner[ppf] = agg
    weights: Dict[Tuple[int, int], float] = {}
    index = {id(a): i for i, a in enumerate(aggregates)}
    for name, chan in mod.channels.items():
        if chan.consumer is None:
            continue
        consumer = owner.get(chan.consumer)
        for producer in chan.producers:
            prod = owner.get(producer)
            if prod is None or consumer is None or prod is consumer:
                continue
            key = tuple(sorted((index[id(prod)], index[id(consumer)])))
            weights[key] = weights.get(key, 0.0) + profile.channel_utilization(name)
    pairs = [
        (w * CC_COST, aggregates[i], aggregates[j])
        for (i, j), w in weights.items()
    ]
    pairs.sort(key=lambda t: t[0], reverse=True)
    return pairs


def _system_costs(candidates: List[Aggregate]) -> List[float]:
    return [a.cost for a in candidates]


def _duplicate_improves(candidates: List[Aggregate], dom: Aggregate,
                        opts: CompilerOptions, target: float,
                        me_ips: float) -> bool:
    """True if the optimal ME assignment is still short of the target and
    giving the dominating aggregate another copy would help. Because the
    final mapping already assigns MEs greedily, an explicit duplicate
    only helps while the hint lags the would-be assignment."""
    costs = _system_costs(candidates)
    current = system_throughput(costs, opts.num_mes, me_ips)
    if current >= target:
        return False
    assignment = assign_mes(costs, opts.num_mes, me_ips)
    idx = candidates.index(dom)
    return bool(assignment) and dom.duplicate_hint < assignment[idx]


def _merge_improves(mod: IRModule, profile: ProfileData,
                    candidates: List[Aggregate], a: Aggregate, b: Aggregate,
                    opts: CompilerOptions, target: float, me_ips: float) -> bool:
    """MERGE_IMPROVES_THROUGHPUT: system throughput with the pair merged
    (saving the connecting CC overhead) must not regress, or must reach
    the (possibly relaxed) target. A hot aggregate never absorbs an
    infrequently-executed one: that work is destined for the XScale
    (MAP_TO_XSCALE), so pulling it onto the MEs wastes code store and
    per-packet budget."""
    a_hot, b_hot = a in candidates, b in candidates
    if not a_hot and not b_hot:
        return True  # both cold: merging control PPFs is harmless
    if a_hot != b_hot:
        return False
    merged_cost = aggregate_cost(mod, profile, a.members() | b.members(), CC_COST)
    before = system_throughput(_system_costs(candidates), opts.num_mes, me_ips)
    after_costs = [x.cost for x in candidates if x is not a and x is not b]
    after_costs.append(merged_cost)
    after = system_throughput(after_costs, opts.num_mes, me_ips)
    return after >= min(before, target) or after >= before


def _internal_channels(mod: IRModule, aggregates: List[Aggregate]) -> Set[str]:
    internal: Set[str] = set()
    for agg in aggregates:
        members = agg.members()
        for name, chan in mod.channels.items():
            if chan.consumer in members and chan.producers and all(
                p in members for p in chan.producers
            ):
                internal.add(name)
    return internal


# -- IR rewriting --------------------------------------------------------------------


def apply_plan(mod: IRModule, plan: AggregationPlan) -> None:
    """Rewrite the IR for the chosen aggregation: every ``channel_put``
    to a channel that is internal to an aggregate becomes a direct call
    of the consumer PPF (eliminating the CC overhead -- the point of
    merging). Channels whose conversion would create a call cycle stay
    rings (Baker code itself cannot recurse, but a channel cycle inside
    one aggregate could)."""
    edges: Dict[str, Set[str]] = {name: set() for name in mod.functions}
    from repro.ir.callgraph import CallGraph

    cg = CallGraph(mod)
    for name, callees in cg.callees.items():
        edges[name].update(callees)

    def creates_cycle(producer: str, consumer: str) -> bool:
        # Is producer reachable from consumer?
        stack, seen = [consumer], set()
        while stack:
            n = stack.pop()
            if n == producer:
                return True
            if n in seen:
                continue
            seen.add(n)
            stack.extend(edges.get(n, ()))
        return False

    for name in sorted(plan.internal_channels):
        chan = mod.channels[name]
        consumer = chan.consumer
        if consumer is None:
            continue
        if any(creates_cycle(p, consumer) for p in chan.producers):
            plan.internal_channels.discard(name)
            continue
        for fn in mod.functions.values():
            for bb in fn.blocks:
                for idx, instr in enumerate(bb.instrs):
                    if isinstance(instr, I.ChanPut) and instr.channel == name:
                        bb.instrs[idx] = I.Call(None, consumer, [instr.ph])
            edges[fn.name].add(consumer)
        setattr(chan, "internal", True)
