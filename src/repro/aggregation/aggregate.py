"""Aggregate data structures (paper section 5.1).

An aggregate is a collection of PPFs mapped to one processing element.
Channels wholly inside an aggregate are compiled into direct calls; the
remaining channels are the aggregate's external inputs/outputs and stay
scratch rings at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.module import IRModule
from repro.profiler.stats import ProfileData


@dataclass
class Aggregate:
    name: str
    ppfs: List[str] = field(default_factory=list)
    cost: float = 0.0  # per-packet instruction-equivalents incl. CC overhead
    code_size: int = 0
    target: str = "me"  # 'me' | 'xscale'
    me_count: int = 0
    duplicate_hint: int = 1  # explicit DUPLICATE() requests from Figure 7

    def members(self) -> Set[str]:
        return set(self.ppfs)


@dataclass
class AggregationPlan:
    """The output of aggregate formation."""

    me_aggregates: List[Aggregate] = field(default_factory=list)
    xscale_aggregates: List[Aggregate] = field(default_factory=list)
    internal_channels: Set[str] = field(default_factory=set)
    throughput_pps: float = 0.0

    def aggregate_of(self, ppf: str):
        for agg in self.me_aggregates + self.xscale_aggregates:
            if ppf in agg.ppfs:
                return agg
        return None

    def fast_functions(self, mod: IRModule) -> Set[str]:
        """Every function executed on the MEs: the ME aggregates' PPFs
        plus their transitive callees."""
        from repro.ir.callgraph import CallGraph

        cg = CallGraph(mod)
        out: Set[str] = set()
        for agg in self.me_aggregates:
            for ppf in agg.ppfs:
                out.add(ppf)
                out |= cg.transitive_callees(ppf)
        return out


def external_channels(mod: IRModule, members: Set[str]):
    """(inputs, outputs) of a PPF set: channels crossing its boundary.
    Inputs are channels consumed by a member with at least one producer
    outside (or from rx); outputs are channels a member puts to whose
    consumer is outside (or tx)."""
    inputs: List[str] = []
    outputs: List[str] = []
    for name, chan in mod.channels.items():
        consumer_in = chan.consumer in members
        producers_in = [p for p in chan.producers if p in members]
        producers_out = [p for p in chan.producers if p not in members]
        if consumer_in and (producers_out or name == "rx"):
            inputs.append(name)
        if producers_in and not consumer_in:
            outputs.append(name)
    return inputs, outputs


def aggregate_cost(mod: IRModule, profile: ProfileData, members: Set[str],
                   cc_cost: float) -> float:
    """Per-packet cost of an aggregate: member execution plus boundary CC
    overhead (a ring get per entering packet, a ring put per leaving
    packet), normalized per input packet of the whole system."""
    cost = sum(profile.ppf_weight(p) for p in members)
    inputs, outputs = external_channels(mod, members)
    for chan in inputs:
        consumer = mod.channels[chan].consumer
        cost += profile.invocation_rate(consumer) * cc_cost if consumer else 0.0
    for chan in outputs:
        cost += profile.channel_utilization(chan) * cc_cost
    return cost
