"""Aggregation: mapping PPFs onto processing elements to maximize packet
forwarding rate (paper section 5.1)."""

from repro.aggregation.aggregate import Aggregate, AggregationPlan
from repro.aggregation.formation import apply_plan, form_aggregates
from repro.aggregation.throughput import (
    CC_COST,
    ME_IPS,
    assign_mes,
    packets_per_second_for_gbps,
    stage_throughput,
    system_throughput,
)

__all__ = [
    "Aggregate",
    "AggregationPlan",
    "apply_plan",
    "form_aggregates",
    "CC_COST",
    "ME_IPS",
    "assign_mes",
    "packets_per_second_for_gbps",
    "stage_throughput",
    "system_throughput",
]
