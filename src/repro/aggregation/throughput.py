"""The throughput model of paper section 5.1 (Equation 1).

Packet throughput ``t`` is proportional to ``n * k / p``: with ``n``
processing elements, ``p`` pipeline stages and ``k`` the throughput of
the slowest stage, duplicating the whole pipeline ``floor(n/p)`` times
multiplies the slowest-stage throughput. Unlike latency-oriented
parallelization, only the bottleneck stage matters; latency through the
pipe is irrelevant as long as other packets hide it.

Costs are expressed in per-packet ME instruction-equivalents (from the
functional profiler); a stage's standalone throughput is
``me_ips / cost`` packets per second per assigned ME.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Default ME clock: the IXP2400's MEs run at 600 MHz, ~1 instr/cycle.
ME_IPS = 600e6

#: Per-packet cost of one inter-aggregate CC traversal (scratch-ring put
#: or get: ring pointer maintenance + the scratch access wait).
CC_COST = 30.0


def stage_throughput(cost: float, mes: int, me_ips: float = ME_IPS) -> float:
    """Packets/second of one pipeline stage given its per-packet cost and
    the number of MEs running copies of it."""
    if cost <= 0:
        return float("inf")
    return mes * me_ips / cost


def assign_mes(costs: Sequence[float], n_mes: int,
               me_ips: float = ME_IPS) -> List[int]:
    """Distribute ``n_mes`` MEs over pipeline stages to maximize the
    bottleneck throughput: every stage gets one ME, then each remaining
    ME goes to the current bottleneck (greedy is optimal for max-min of
    linear stage throughputs)."""
    p = len(costs)
    if p == 0 or n_mes < p:
        return [0] * p if p else []
    assignment = [1] * p
    for _ in range(n_mes - p):
        worst = min(range(p), key=lambda i: stage_throughput(costs[i], assignment[i], me_ips))
        assignment[worst] += 1
    return assignment


def system_throughput(costs: Sequence[float], n_mes: int,
                      me_ips: float = ME_IPS) -> float:
    """Equation 1: the throughput of the full pipeline on ``n_mes`` MEs
    under the optimal duplication assignment. Zero if the pipeline has
    more stages than processors."""
    if not costs:
        return float("inf")
    assignment = assign_mes(costs, n_mes, me_ips)
    if not assignment or 0 in assignment:
        return 0.0
    return min(
        stage_throughput(c, m, me_ips) for c, m in zip(costs, assignment)
    )


def packets_per_second_for_gbps(gbps: float, frame_bytes: int = 64) -> float:
    """Offered packet rate at a line rate (the paper evaluates 64 B
    minimum-size frames)."""
    return gbps * 1e9 / (frame_bytes * 8)
