"""Dispatch-loop synthesis.

Every thread of an ME runs the aggregate's dispatch loop: poll each
input channel's scratch ring, call the consuming PPF for any packet
found, yield, repeat. (Paper section 5.4: "an aggregate's dispatch loop
calls PPFs that have packets arriving on its input CCs", which is why
the call graph is flat and top-level frames deserve Local Memory.)
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cg import abi
from repro.cg.isa import (
    Bal, Br, Cmp, CtxArb, Imm, LIRFunction, Mov, RingGet, SymRef, VReg,
)

DISPATCH_NAME = "__dispatch"


def build_dispatch(inputs: List[Tuple[str, str]]) -> LIRFunction:
    """``inputs``: (ring symbol name, consumer function entry label)."""
    fn = LIRFunction(DISPATCH_NAME)
    fn.is_leaf = False
    entry = fn.new_block(fn.entry_label)
    loop = fn.new_block(fn.entry_label + "__loop")
    entry.emit(Br("always", loop.label))

    cur = loop
    for i, (ring, consumer_entry) in enumerate(inputs):
        handle = VReg("pkt%d" % i)
        cur.emit(RingGet(handle, SymRef(ring)))
        skip = "%s__skip%d" % (fn.entry_label, i)
        cur.emit(Cmp(handle, Imm(0)))
        cur.emit(Br("eq", skip))
        cur.emit(Mov(abi.ARG_REGS[0], handle))
        cur.emit(Bal(consumer_entry, abi.LINK,
                     arg_regs=[abi.ARG_REGS[0]],
                     ret_regs=[abi.RET_LO, abi.RET_HI]))
        cur = fn.new_block(skip)
    cur.emit(CtxArb())
    cur.emit(Br("always", loop.label))
    return fn
