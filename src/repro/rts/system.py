"""Whole-system execution: compile result + trace -> forwarding rate and
per-packet access profile on the simulated IXP2400.

This is the reproduction's stand-in for the paper's evaluation rig (an
IXP2400 board driven by an IXIA packet generator): packets are offered
at up to 3 Gbps of 64 B frames; after a warm-up window, the forwarding
rate is measured at Tx and memory accesses are normalized per forwarded
packet (Table 1's metric).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ixp.chip import IXP2400
from repro.ixp.counters import AccessProfile, Counters
from repro.ixp.memory import ME_HZ
from repro.ixp.microengine import default_dispatch
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.sim import SimSampler, record_run_summary
from repro.profiler.trace import Trace
from repro.rts.loader import LoadLayout, load_system


@dataclass
class RunResult:
    forwarding_gbps: float
    packets_measured: int
    packets_out: int
    rx_offered: int
    rx_dropped: int
    sim_cycles: float
    access_profile: AccessProfile
    tx_payloads: List[bytes] = field(default_factory=list)
    layout: Optional[LoadLayout] = None
    me_utilization: float = 0.0
    # Rx drops by cause (their sum is rx_dropped).
    rx_dropped_freelist: int = 0
    rx_dropped_ring_full: int = 0
    # Per-ME accounting, in ME index order (the fast-path equivalence
    # suite asserts these match between dispatch cores bit for bit).
    me_executed_instrs: List[int] = field(default_factory=list)
    me_times: List[float] = field(default_factory=list)
    me_idle_times: List[float] = field(default_factory=list)
    # Stall-attribution snapshot (repro.obs.profile), present only when
    # a profiler was passed to run_on_simulator.
    occupancy: Optional[dict] = None
    # Fast-forward plan summary + pricing mode (repro.ixp.fastforward),
    # present only for dispatch="fastforward" runs -- those results are
    # model-priced, not measured, and this records how.
    fastforward: Optional[dict] = None

    def tx_signature(self) -> List[bytes]:
        return sorted(self.tx_payloads)


def run_on_simulator(
    result,
    trace: Trace,
    n_mes: Optional[int] = None,
    warmup_packets: int = 100,
    measure_packets: int = 300,
    offered_gbps: float = 3.0,
    max_cycles: float = 40e6,
    metrics_jsonl: Optional[str] = None,
    tracer: Optional[obs_trace.PacketTracer] = None,
    trace_json: Optional[str] = None,
    trace_events_jsonl: Optional[str] = None,
    dispatch: Optional[str] = None,
    registry: Optional[obs_metrics.MetricsRegistry] = None,
    timeseries=None,
    profiler=None,
    plan_key=None,
) -> RunResult:
    """Load and run a compiled program; measure steady-state behavior.

    ``max_cycles`` is an absolute cap on the simulation clock shared by
    the warm-up and measurement phases (the run never simulates past
    it). When the global observability registry is enabled
    (``repro.obs.enable()`` or ``REPRO_OBS=1``), ring/ME time series and
    an end-of-run summary are recorded, and the registry is dumped to
    ``metrics_jsonl`` (or ``$REPRO_OBS_JSONL``) if set; measured numbers
    are identical either way.

    Per-packet lifecycle tracing: pass a
    :class:`repro.obs.trace.PacketTracer` (or just set ``trace_json`` /
    ``trace_events_jsonl`` / ``$REPRO_TRACE_JSON`` and one is created)
    to record every packet's Rx->Tx journey in simulated cycles.
    ``trace_json`` writes Chrome trace-event JSON (open in Perfetto);
    ``trace_events_jsonl`` writes the raw events (convert later with
    ``python -m repro.obs.trace export``). Tracing is pure observation:
    traced and untraced runs are bit-identical (tests/test_trace.py).

    ``dispatch`` selects the ME dispatch core: ``"fast"`` (predecoded,
    the default) or ``"legacy"`` (the reference interpreter). The two
    produce bit-identical results (tests/test_fastpath.py); legacy is
    kept for equivalence testing and the sim-speed benchmark's speedup
    column. ``"fastforward"`` instead routes the whole run to the
    batched functional engine (:mod:`repro.ixp.fastforward`): the
    forwarding rate comes from a calibrated cost model with documented
    error bounds, not a cycle-accurate measurement, and time-attributing
    observers (tracer / timeseries / profiler) are refused. ``plan_key``
    (fast-forward only) is a stable identity for (program, trace) under
    which the calibration plan is memoized per process; the sweep
    passes (app, level, trace packets, trace seed).

    ``registry`` runs the whole load+simulate under a private metrics
    registry (installed process-globally for the duration, so loader
    and chip instrumentation see it too). The sweep orchestrator uses
    this to give every job its own mergeable metric set; measured
    numbers are unaffected.

    ``timeseries`` attaches a
    :class:`repro.obs.timeseries.TimeseriesCollector` as the chip's
    window hook: per-window rate/latency/drop records over simulated
    time, closed by the run loop's boundary pull and finalized at the
    end of the run. Pure observation -- runs with and without a
    collector are bit-identical (tests/test_obs.py).

    ``profiler`` attaches a :class:`repro.obs.profile.StallProfiler`
    to the chip: per-thread stall-cycle attribution and channel/ring
    queue statistics, snapshotted into ``RunResult.occupancy``. Pure
    observation -- profiled runs are bit-identical to unprofiled ones
    (tests/test_profile.py).
    """
    engine = dispatch if dispatch is not None else default_dispatch()
    if engine == "fastforward":
        # Whole-run reroute to the batched functional engine. Refusals
        # (profiler & co.) happen inside run_fastforward so direct
        # callers get the same contract.
        from repro.ixp.fastforward import run_fastforward

        return run_fastforward(
            result, trace, n_mes=n_mes, registry=registry,
            plan_key=plan_key, tracer=tracer,
            timeseries=timeseries, profiler=profiler,
            trace_json=trace_json or os.environ.get("REPRO_TRACE_JSON"),
            trace_events_jsonl=trace_events_jsonl)
    if registry is not None:
        with obs_metrics.scoped_registry(registry):
            return run_on_simulator(
                result, trace, n_mes=n_mes, warmup_packets=warmup_packets,
                measure_packets=measure_packets, offered_gbps=offered_gbps,
                max_cycles=max_cycles, metrics_jsonl=metrics_jsonl,
                tracer=tracer, trace_json=trace_json,
                trace_events_jsonl=trace_events_jsonl, dispatch=dispatch,
                timeseries=timeseries, profiler=profiler)
    reg = obs_metrics.get_registry()
    trace_json = trace_json or os.environ.get("REPRO_TRACE_JSON")
    if tracer is None and (trace_json or trace_events_jsonl):
        tracer = obs_trace.PacketTracer()
    total_mes = n_mes if n_mes is not None else result.opts.num_mes
    chip = IXP2400(n_programmable_mes=total_mes)
    layout = load_system(result, chip, n_mes=total_mes, dispatch=dispatch)

    rx = RxEngine(chip, trace, offered_gbps=offered_gbps)
    tx = TxEngine(chip, line_gbps=offered_gbps)
    chip.attach_traffic(rx, tx)
    if reg.enabled:
        chip.sampler = SimSampler(chip, reg)
    if tracer is not None:
        chip.tracer = tracer
    if timeseries is not None:
        # Windowed streaming observability (repro.obs.timeseries):
        # pulled by the run loop like the sampler, pure observation.
        timeseries.attach(rx=rx, tx=tx, tracer=tracer)
        chip.window = timeseries
    if profiler is not None:
        profiler.attach(chip)
        if timeseries is not None:
            timeseries.add_source(profiler.window_source())

    target = warmup_packets + measure_packets
    with reg.timer("sim.wall").time():
        # Phase 1: warm-up.
        chip.run(max_cycles, stop=lambda: tx.packets_out() >= warmup_packets,
                 stop_check_interval=16)
        t0 = chip.now
        base_counts = chip.memory.counters.snapshot()
        packets0 = tx.packets_out()
        bytes0 = tx.bytes_out

        # Phase 2: measurement window.
        chip.run(max_cycles, stop=lambda: tx.packets_out() >= target,
                 stop_check_interval=16)
    t1 = chip.now
    end_counts = chip.memory.counters.snapshot()
    packets1 = tx.packets_out()
    bytes1 = tx.bytes_out

    measured = packets1 - packets0
    elapsed_s = max((t1 - t0) / ME_HZ, 1e-12)
    gbps = (bytes1 - bytes0) * 8 / elapsed_s / 1e9 if measured > 0 else 0.0
    delta = Counters.delta(end_counts, base_counts)
    profile = AccessProfile.from_counters(delta, measured)

    busy = sum(me.time - me.idle_time for me in chip.mes)
    total = sum(max(me.time, 1e-9) for me in chip.mes)

    # Buffer/metadata recycling must never hit a full free ring: the
    # free rings are sized to hold the entire pool, so a failed put is
    # a lost handle (an accounting bug, not back-pressure).
    assert rx.leaked_meta == 0 and rx.leaked_buffers == 0, (
        "Rx leaked handles recycling into full free rings: meta=%d buf=%d"
        % (rx.leaked_meta, rx.leaked_buffers))
    assert tx.leaked_meta == 0 and tx.leaked_buffers == 0, (
        "Tx leaked handles recycling into full free rings: meta=%d buf=%d"
        % (tx.leaked_meta, tx.leaked_buffers))

    run = RunResult(
        forwarding_gbps=gbps,
        packets_measured=measured,
        packets_out=packets1,
        rx_offered=rx.sent,
        rx_dropped=rx.dropped,
        sim_cycles=chip.now,
        access_profile=profile,
        tx_payloads=[r.payload for r in tx.records],
        layout=layout,
        me_utilization=busy / total if total else 0.0,
        rx_dropped_freelist=rx.dropped_freelist,
        rx_dropped_ring_full=rx.dropped_ring_full,
        me_executed_instrs=[me.executed_instrs for me in chip.mes],
        me_times=[me.time for me in chip.mes],
        me_idle_times=[me.idle_time for me in chip.mes],
        occupancy=profiler.snapshot(chip) if profiler is not None else None,
    )

    if tracer is not None:
        tracer.finish(chip.now)
        if reg.enabled:
            obs_trace.record_trace_summary(reg, tracer)
    if timeseries is not None:
        timeseries.finish(chip.now)

    if reg.enabled:
        record_run_summary(reg, chip, rx, tx)
        reg.gauge("run.forwarding_gbps").set(round(gbps, 6))
        reg.gauge("run.packets_measured").set(measured)
        reg.gauge("run.me_utilization").set(round(run.me_utilization, 6))
        path = metrics_jsonl or os.environ.get("REPRO_OBS_JSONL")
        if path:
            reg.dump_jsonl(path)

    if tracer is not None:
        if trace_events_jsonl:
            tracer.dump_events_jsonl(trace_events_jsonl)
        if trace_json:
            from repro.obs.export import write_chrome_trace

            write_chrome_trace(trace_json, tracer.event_dicts(),
                               compile_spans=obs_trace.drain_compile_spans(),
                               profile=(profiler.samples
                                        if profiler is not None else None))
    return run


def verify_against_reference(result, trace: Trace, packets: int = 60,
                             n_mes: int = 2) -> bool:
    """Differential oracle: the simulator's transmitted payload multiset
    must match the functional interpreter's on the same finite trace."""
    from repro.baker.lowering import lower_program
    from repro.profiler.interpreter import run_reference

    ref_mod = lower_program(result.checked)
    finite = trace.repeated(packets)
    ref = run_reference(ref_mod, finite)

    chip = IXP2400(n_programmable_mes=n_mes)
    load_system(result, chip, n_mes=n_mes)
    rx = RxEngine(chip, finite, offered_gbps=1.0, max_packets=packets,
                  repeat=False)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)
    expected = ref.profile.packets_out
    # Both limits are relative budgets from a fresh chip: a generous cap
    # for the run itself, then a short fixed drain window for stragglers
    # (XScale round trips). run_for makes the relative/absolute
    # distinction explicit -- chip.run() takes an absolute deadline.
    chip.run_for(100e6, stop=lambda: tx.packets_out() >= expected)
    chip.run_for(300_000)
    got = sorted(r.payload for r in tx.records)
    want = ref.tx_signature()
    return got == want
