"""Whole-system execution: compile result + trace -> forwarding rate and
per-packet access profile on the simulated IXP2400.

This is the reproduction's stand-in for the paper's evaluation rig (an
IXP2400 board driven by an IXIA packet generator): packets are offered
at up to 3 Gbps of 64 B frames; after a warm-up window, the forwarding
rate is measured at Tx and memory accesses are normalized per forwarded
packet (Table 1's metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ixp.chip import IXP2400
from repro.ixp.counters import AccessProfile, Counters
from repro.ixp.memory import ME_HZ
from repro.ixp.rxtx import RxEngine, TxEngine
from repro.profiler.trace import Trace
from repro.rts.loader import LoadLayout, load_system


@dataclass
class RunResult:
    forwarding_gbps: float
    packets_measured: int
    packets_out: int
    rx_offered: int
    rx_dropped: int
    sim_cycles: float
    access_profile: AccessProfile
    tx_payloads: List[bytes] = field(default_factory=list)
    layout: Optional[LoadLayout] = None
    me_utilization: float = 0.0

    def tx_signature(self) -> List[bytes]:
        return sorted(self.tx_payloads)


def run_on_simulator(
    result,
    trace: Trace,
    n_mes: Optional[int] = None,
    warmup_packets: int = 100,
    measure_packets: int = 300,
    offered_gbps: float = 3.0,
    max_cycles: float = 40e6,
) -> RunResult:
    """Load and run a compiled program; measure steady-state behavior."""
    total_mes = n_mes if n_mes is not None else result.opts.num_mes
    chip = IXP2400(n_programmable_mes=total_mes)
    layout = load_system(result, chip, n_mes=total_mes)

    rx = RxEngine(chip, trace, offered_gbps=offered_gbps)
    tx = TxEngine(chip, line_gbps=offered_gbps)
    chip.attach_traffic(rx, tx)

    target = warmup_packets + measure_packets
    # Phase 1: warm-up.
    chip.run(max_cycles, stop=lambda: tx.packets_out() >= warmup_packets,
             stop_check_interval=16)
    t0 = chip.now
    base_counts = chip.memory.counters.snapshot()
    packets0 = tx.packets_out()
    bytes0 = tx.bytes_out

    # Phase 2: measurement window.
    chip.run(max_cycles, stop=lambda: tx.packets_out() >= target,
             stop_check_interval=16)
    t1 = chip.now
    end_counts = chip.memory.counters.snapshot()
    packets1 = tx.packets_out()
    bytes1 = tx.bytes_out

    measured = packets1 - packets0
    elapsed_s = max((t1 - t0) / ME_HZ, 1e-12)
    gbps = (bytes1 - bytes0) * 8 / elapsed_s / 1e9 if measured > 0 else 0.0
    delta = Counters.delta(end_counts, base_counts)
    profile = AccessProfile.from_counters(delta, measured)

    busy = sum(me.time - me.idle_time for me in chip.mes)
    total = sum(max(me.time, 1e-9) for me in chip.mes)

    return RunResult(
        forwarding_gbps=gbps,
        packets_measured=measured,
        packets_out=packets1,
        rx_offered=rx.sent,
        rx_dropped=rx.dropped,
        sim_cycles=chip.now,
        access_profile=profile,
        tx_payloads=[r.payload for r in tx.records],
        layout=layout,
        me_utilization=busy / total if total else 0.0,
    )


def verify_against_reference(result, trace: Trace, packets: int = 60,
                             n_mes: int = 2) -> bool:
    """Differential oracle: the simulator's transmitted payload multiset
    must match the functional interpreter's on the same finite trace."""
    from repro.baker.lowering import lower_program
    from repro.profiler.interpreter import run_reference

    ref_mod = lower_program(result.checked)
    finite = trace.repeated(packets)
    ref = run_reference(ref_mod, finite)

    chip = IXP2400(n_programmable_mes=n_mes)
    load_system(result, chip, n_mes=n_mes)
    rx = RxEngine(chip, finite, offered_gbps=1.0, max_packets=packets,
                  repeat=False)
    tx = TxEngine(chip)
    chip.attach_traffic(rx, tx)
    expected = ref.profile.packets_out
    chip.run(100e6, stop=lambda: tx.packets_out() >= expected)
    # Let stragglers (XScale round trips) drain.
    chip.run(chip.now + 300_000)
    got = sorted(r.payload for r in tx.records)
    want = ref.tx_signature()
    return got == want
