"""Loader: place globals/locks/rings/pools into simulated chip memory,
install ME images, and boot the XScale (init blocks).

Address-space conventions (all addresses are byte addresses within their
space; nothing is ever placed at address 0 so ring ``get`` can use 0 as
"empty"):

* **Scratch**: locks, then scratch-mapped globals (SWC update flags or
  profiler-promoted small tables).
* **SRAM**: application globals, the packet metadata pool, the stack
  overflow area.
* **DRAM**: the packet buffer pool (2 KiB buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aggregation.throughput import assign_mes
from repro.baker import types as T
from repro.cg.melayout import SRAM_STACK_BYTES_PER_THREAD
from repro.baker.packetmodel import BUFFER_BYTES
from repro.ixp.chip import IXP2400
from repro.ixp.microengine import Microengine
from repro.ixp.xscale_core import XScaleCore
from repro.obs import metrics as obs_metrics
from repro.profiler.interpreter import GlobalMemory

RING_CAPACITY = 128  # channel rings (Rx drops when the rx ring is full)
POOL_PACKETS = 1024  # buffer/metadata pool (larger than any ring backlog)


@dataclass
class LoadLayout:
    global_addr: Dict[str, int] = field(default_factory=dict)
    global_space: Dict[str, str] = field(default_factory=dict)
    me_assignment: Dict[str, int] = field(default_factory=dict)  # aggregate -> MEs


class LoaderError(Exception):
    pass


def load_system(result, chip: IXP2400, n_mes: Optional[int] = None,
                dispatch: Optional[str] = None) -> LoadLayout:
    """Install a CompileResult onto a chip; returns the layout.

    ``dispatch`` selects the ME dispatch core (``"fast"`` predecoded /
    ``"legacy"``; None = process default). Symbols, rings and memory are
    all placed before any ME is created, so the predecode stage -- which
    runs lazily on first execution -- sees a fully resolved chip."""
    mod = result.mod
    plan = result.plan
    layout = LoadLayout()
    chip.meta_words = mod.meta_words

    scratch_ptr = 64
    sram_ptr = 64
    dram_ptr = BUFFER_BYTES  # first buffer at 2 KiB, never 0

    # Locks.
    for lock in mod.locks:
        chip.symbols["lock.%s" % lock] = scratch_ptr
        scratch_ptr += 4

    # Globals (initial values via the same byte layout the profiler uses).
    init_mem = GlobalMemory(mod)
    for name, sym in sorted(mod.globals.items()):
        size = sym.type.size_bytes()
        if sym.memory == "scratch":
            addr = scratch_ptr
            scratch_ptr += (size + 3) & ~3
        else:
            addr = sram_ptr
            sram_ptr += (size + 7) & ~7
        chip.symbols[name] = addr
        layout.global_addr[name] = addr
        layout.global_space[name] = sym.memory
        chip.memory.write_bytes(sym.memory, addr, bytes(init_mem.data[name]))
    if scratch_ptr > chip.memory.stores["scratch"].__len__():
        raise LoaderError("scratch memory exhausted")

    # Rings: builtin, one per non-internal channel, plus the free lists.
    ring_names = ["rx", "tx", "__buf_free", "__meta_free"]
    for name, chan in mod.channels.items():
        if name in ("rx", "tx"):
            continue
        if name in plan.internal_channels:
            continue
        ring_names.append(name)
    for name in ring_names:
        capacity = POOL_PACKETS if name.startswith("__") else RING_CAPACITY
        chip.rings.create("ring.%s" % name, capacity=capacity)

    # Packet pools.
    meta_bytes = mod.meta_words * 4
    for _ in range(POOL_PACKETS):
        addr = sram_ptr
        sram_ptr += (meta_bytes + 7) & ~7
        chip.rings["ring.__meta_free"].put(addr)
        chip.rings["ring.__buf_free"].put(dram_ptr)
        dram_ptr += BUFFER_BYTES
    if dram_ptr > len(chip.memory.stores["dram"]):
        raise LoaderError("DRAM exhausted by buffer pool")

    # SRAM stack overflow area.
    chip.symbols["__stack"] = sram_ptr
    sram_ptr += chip.n_programmable_mes * 8 * SRAM_STACK_BYTES_PER_THREAD
    if sram_ptr > len(chip.memory.stores["sram"]):
        raise LoaderError("SRAM exhausted")

    # ME images, duplicated per the plan (re-balanced if n_mes overrides).
    total_mes = n_mes if n_mes is not None else chip.n_programmable_mes
    aggs = plan.me_aggregates
    if not aggs:
        raise LoaderError("no ME aggregates to load")
    counts = assign_mes([a.cost for a in aggs], total_mes)
    if not counts or 0 in counts:
        raise LoaderError(
            "cannot map %d pipeline stages onto %d MEs" % (len(aggs), total_mes)
        )
    me_index = 0
    for agg, count in zip(aggs, counts):
        layout.me_assignment[agg.name] = count
        image = result.images[agg.name]
        for _ in range(count):
            chip.add_me(Microengine(me_index, image, chip, dispatch=dispatch))
            me_index += 1

    # XScale: control aggregates + boot-time init blocks.
    xscale_inputs: List[str] = []
    for agg in plan.xscale_aggregates:
        for ppf in agg.ppfs:
            fn = mod.functions[ppf]
            xscale_inputs.extend(
                c for c in fn.input_channels if c not in plan.internal_channels
            )
    xscale = XScaleCore(mod, chip, layout, xscale_inputs)
    # Boot: init blocks execute against *simulated* memory through the
    # XScale's global adapter (so they see/extend the loader's image).
    xscale.run_boot_inits()
    chip.attach_xscale(xscale)

    reg = obs_metrics.get_registry()
    if reg.enabled:
        reg.gauge("loader.scratch_bytes").set(scratch_ptr)
        reg.gauge("loader.sram_bytes").set(sram_ptr)
        reg.gauge("loader.dram_bytes").set(dram_ptr)
        reg.gauge("loader.pool_packets").set(POOL_PACKETS)
        reg.gauge("loader.mes_loaded").set(me_index)
        for agg_name, count in layout.me_assignment.items():
            reg.gauge("loader.me_count", aggregate=agg_name).set(count)
            image = result.images[agg_name]
            insns = getattr(image, "insns", None)
            if insns is not None:
                reg.gauge("loader.code_size", aggregate=agg_name).set(len(insns))
    return layout
