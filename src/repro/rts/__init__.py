"""Runtime system: dispatch loops, channel/ring mapping, loader, and the
whole-system builder that runs compiled code on the simulated IXP2400."""
