"""Functional profiler: IR interpretation over packet traces.

Provides the profile statistics that drive aggregation, global memory
mapping and SWC candidate selection, and serves as the semantic
reference for differential testing of the optimizer and code generator.
"""

from repro.profiler.hostpackets import HostPacket
from repro.profiler.interpreter import Interpreter, SystemResult, run_reference
from repro.profiler.stats import GlobalStats, ProfileData
from repro.profiler.trace import Trace, TracePacket

__all__ = [
    "HostPacket",
    "Interpreter",
    "SystemResult",
    "run_reference",
    "GlobalStats",
    "ProfileData",
    "Trace",
    "TracePacket",
]
