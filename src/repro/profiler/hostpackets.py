"""Host-side packet model used by the functional profiler.

Mirrors the runtime packet model (:mod:`repro.baker.packetmodel`): a DRAM
buffer with headroom, a head offset, a length and a metadata block. Field
access is big-endian bit addressing relative to the head, exactly as the
generated ME code computes it, so the interpreter and the simulator agree
bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baker.packetmodel import (
    BUFFER_BYTES,
    HEADROOM_BYTES,
    META_RX_PORT,
)


def get_bits(buf: bytearray, bit_off: int, width: int) -> int:
    """Read ``width`` bits big-endian starting at absolute ``bit_off``."""
    out = 0
    for i in range(width):
        bit = bit_off + i
        byte = buf[bit >> 3]
        out = (out << 1) | ((byte >> (7 - (bit & 7))) & 1)
    return out


def set_bits(buf: bytearray, bit_off: int, width: int, value: int) -> None:
    """Write ``width`` bits big-endian starting at absolute ``bit_off``."""
    for i in range(width):
        bit = bit_off + i
        mask = 1 << (7 - (bit & 7))
        if (value >> (width - 1 - i)) & 1:
            buf[bit >> 3] |= mask
        else:
            buf[bit >> 3] &= ~mask & 0xFF


class HostPacket:
    """A packet as seen by the functional profiler.

    ``head`` is the byte offset of the current protocol head within the
    buffer; ``length`` counts bytes from head to tail. ``meta`` maps
    metadata word indices to 32-bit values.
    """

    _next_uid = 0

    def __init__(self, data: bytes = b"", rx_port: int = 0,
                 headroom: int = HEADROOM_BYTES, bufsize: int = BUFFER_BYTES):
        if headroom + len(data) > bufsize:
            raise ValueError("packet larger than buffer")
        self.buf = bytearray(bufsize)
        self.buf[headroom : headroom + len(data)] = data
        self.head = headroom
        self.length = len(data)
        self.meta: Dict[int, int] = {META_RX_PORT: rx_port}
        self.dropped = False
        self.uid = HostPacket._next_uid
        HostPacket._next_uid += 1

    # -- field access ------------------------------------------------------------

    def load_bits(self, bit_off: int, width: int) -> int:
        return get_bits(self.buf, self.head * 8 + bit_off, width)

    def store_bits(self, bit_off: int, width: int, value: int) -> None:
        set_bits(self.buf, self.head * 8 + bit_off, width, value & ((1 << width) - 1))

    def load_bytes(self, byte_off: int, nbytes: int) -> bytes:
        start = self.head + byte_off
        return bytes(self.buf[start : start + nbytes])

    def store_bytes(self, byte_off: int, data: bytes) -> None:
        start = self.head + byte_off
        self.buf[start : start + len(data)] = data

    # -- encapsulation -----------------------------------------------------------

    def encap(self, header_bytes: int) -> None:
        if self.head < header_bytes:
            raise ValueError("no headroom for encapsulation")
        self.head -= header_bytes
        self.length += header_bytes

    def decap(self, header_bytes: int) -> None:
        if header_bytes > self.length:
            raise ValueError("decap beyond packet length")
        self.head += header_bytes
        self.length -= header_bytes

    def add_tail(self, n: int) -> None:
        if self.head + self.length + n > len(self.buf):
            raise ValueError("no tailroom")
        self.length += n

    def remove_tail(self, n: int) -> None:
        if n > self.length:
            raise ValueError("remove_tail beyond packet length")
        self.length -= n

    def extend(self, n: int) -> None:
        self.encap(n)

    def shorten(self, n: int) -> None:
        self.decap(n)

    # -- misc ----------------------------------------------------------------------

    def copy(self) -> "HostPacket":
        dup = HostPacket.__new__(HostPacket)
        dup.buf = bytearray(self.buf)
        dup.head = self.head
        dup.length = self.length
        dup.meta = dict(self.meta)
        dup.dropped = False
        dup.uid = HostPacket._next_uid
        HostPacket._next_uid = HostPacket._next_uid + 1
        return dup

    def payload(self) -> bytes:
        """Bytes from head to tail (what Tx would transmit)."""
        return bytes(self.buf[self.head : self.head + self.length])

    def __repr__(self) -> str:
        return "<HostPacket #%d head=%d len=%d>" % (self.uid, self.head, self.length)
