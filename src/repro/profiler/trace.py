"""Packet trace construction.

The paper evaluates with NPF application-level benchmark traces (IP
forwarding and MPLS forwarding) plus home-grown Firewall traces; those
trace files are not public, so this module builds equivalent synthetic
traces: deterministic (seeded) streams of minimum-size 64 B Ethernet
frames with realistic header field distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

MIN_FRAME_BYTES = 64


@dataclass
class TracePacket:
    data: bytes
    rx_port: int = 0


@dataclass
class Trace:
    packets: List[TracePacket] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self):
        return iter(self.packets)

    def repeated(self, count: int) -> "Trace":
        """A trace of exactly ``count`` packets, cycling this trace."""
        out = Trace()
        n = len(self.packets)
        for i in range(count):
            out.packets.append(self.packets[i % n])
        return out


# -- header builders -----------------------------------------------------------


def mac_bytes(value: int) -> bytes:
    return value.to_bytes(6, "big")


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 one's-complement header checksum over 16-bit words."""
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def build_ipv4(
    src: int,
    dst: int,
    payload: bytes = b"",
    ttl: int = 64,
    proto: int = 17,
    tos: int = 0,
    ident: int = 0,
    total_length: Optional[int] = None,
) -> bytes:
    """A 20-byte IPv4 header (no options) plus payload, checksum filled."""
    length = total_length if total_length is not None else 20 + len(payload)
    hdr = bytearray(20)
    hdr[0] = (4 << 4) | 5
    hdr[1] = tos
    hdr[2:4] = length.to_bytes(2, "big")
    hdr[4:6] = ident.to_bytes(2, "big")
    hdr[6:8] = b"\x00\x00"
    hdr[8] = ttl
    hdr[9] = proto
    hdr[10:12] = b"\x00\x00"
    hdr[12:16] = src.to_bytes(4, "big")
    hdr[16:20] = dst.to_bytes(4, "big")
    csum = ipv4_checksum(bytes(hdr))
    hdr[10:12] = csum.to_bytes(2, "big")
    return bytes(hdr) + payload


def build_udp(sport: int, dport: int, payload: bytes = b"") -> bytes:
    """An 8-byte UDP header (checksum zero) plus payload."""
    length = 8 + len(payload)
    return (
        sport.to_bytes(2, "big")
        + dport.to_bytes(2, "big")
        + length.to_bytes(2, "big")
        + b"\x00\x00"
        + payload
    )


def build_ethernet(dst_mac: int, src_mac: int, ethertype: int,
                   payload: bytes, pad_to: int = MIN_FRAME_BYTES) -> bytes:
    """An Ethernet II frame, zero-padded to ``pad_to`` bytes (FCS omitted,
    as on the IXP receive path)."""
    frame = mac_bytes(dst_mac) + mac_bytes(src_mac) + ethertype.to_bytes(2, "big") + payload
    if len(frame) < pad_to:
        frame += bytes(pad_to - len(frame))
    return frame


def build_mpls_label(label: int, tc: int = 0, bottom: bool = True, ttl: int = 64) -> bytes:
    """One 4-byte MPLS label stack entry."""
    word = (label << 12) | (tc << 9) | (int(bottom) << 8) | ttl
    return word.to_bytes(4, "big")


def build_mpls_stack(labels: Sequence[int], ttl: int = 64) -> bytes:
    out = b""
    for i, label in enumerate(labels):
        out += build_mpls_label(label, bottom=(i == len(labels) - 1), ttl=ttl)
    return out


ETH_TYPE_IP = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_MPLS = 0x8847


# -- synthetic trace generators ------------------------------------------------------


def ipv4_trace(
    count: int,
    dst_addrs: Sequence[int],
    router_macs: Sequence[int],
    src_addr: int = 0x0A000001,
    seed: int = 1,
    arp_fraction: float = 0.0,
    ports: int = 3,
) -> Trace:
    """IPv4-over-Ethernet 64 B frames addressed to the router's MAC (so an
    L3 switch routes them). ``dst_addrs`` are drawn round-robin-with-jitter
    so route-table locality resembles the NPF IP forwarding benchmark."""
    rng = random.Random(seed)
    trace = Trace()
    for i in range(count):
        port = i % ports
        if arp_fraction > 0 and rng.random() < arp_fraction:
            frame = build_ethernet(0xFFFFFFFFFFFF, 0x020000000000 + i, ETH_TYPE_ARP, b"\x00\x01")
            trace.packets.append(TracePacket(frame, port))
            continue
        dst = dst_addrs[rng.randrange(len(dst_addrs))]
        ip = build_ipv4(src_addr + i, dst, payload=b"", total_length=46)
        frame = build_ethernet(router_macs[port], 0x020000000000 + i, ETH_TYPE_IP, ip)
        trace.packets.append(TracePacket(frame, port))
    return trace


def udp_flow_trace(
    count: int,
    router_macs: Sequence[int],
    flows: Sequence[Tuple[int, int, int, int, int]],
    seed: int = 2,
    ports: int = 3,
) -> Trace:
    """UDP/TCP 5-tuple flows for the Firewall benchmark. ``flows`` entries
    are (src_ip, dst_ip, src_port, dst_port, proto)."""
    rng = random.Random(seed)
    trace = Trace()
    for i in range(count):
        port = i % ports
        src_ip, dst_ip, sport, dport, proto = flows[rng.randrange(len(flows))]
        udp = build_udp(sport, dport)
        ip = build_ipv4(src_ip, dst_ip, payload=udp, proto=proto, total_length=46)
        frame = build_ethernet(router_macs[port], 0x020000000000 + i, ETH_TYPE_IP, ip)
        trace.packets.append(TracePacket(frame, port))
    return trace


def mpls_trace(
    count: int,
    router_macs: Sequence[int],
    labels: Sequence[int],
    seed: int = 3,
    ports: int = 3,
    stack_depth: int = 1,
) -> Trace:
    """MPLS-over-Ethernet 64 B frames with ``stack_depth`` labels, the
    innermost over an IPv4 payload (NPF MPLS forwarding shape)."""
    rng = random.Random(seed)
    trace = Trace()
    for i in range(count):
        port = i % ports
        stack = [labels[rng.randrange(len(labels))] for _ in range(stack_depth)]
        ip = build_ipv4(0x0A000001 + i, 0xC0A80101, total_length=26)
        payload = build_mpls_stack(stack) + ip
        frame = build_ethernet(router_macs[port], 0x020000000000 + i, ETH_TYPE_MPLS, payload)
        trace.packets.append(TracePacket(frame, port))
    return trace
