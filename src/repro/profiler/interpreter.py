"""The functional profiler: a whole-system IR interpreter.

Paper section 4.1: *"the Function Profiler, which takes a user-supplied
packet trace, simulates the network application by interpreting the IR
nodes. During simulation, the Functional profiler collects global data
structure access frequencies, CC utilizations and relative PPF execution
times."*

The interpreter is also the compiler's semantic oracle: its transmitted
packets are the reference output that optimized code (and the ME
simulator) must reproduce, and it can execute post-optimization IR
(including PAC/SOAR/SWC forms) so every pass can be differentially
tested.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.baker import ast
from repro.baker import types as T
from repro.baker.semantic import eval_const_expr
from repro.ir import instructions as I
from repro.ir.eval import EvalError, eval_binop, eval_cmp
from repro.ir.module import IRFunction, IRModule
from repro.ir.values import Const, Operand, Temp
from repro.profiler.hostpackets import HostPacket
from repro.profiler.stats import ProfileData
from repro.profiler.trace import Trace

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF


class InterpError(RuntimeError):
    pass


def _bits_of(type_: T.Type) -> int:
    if isinstance(type_, T.IntType):
        return type_.bits
    if type_.is_bool:
        return 1
    return 32


def _to_signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & ((1 << bits) - 1)) ^ sign if False else (
        value - (1 << bits) if value & sign else value
    )


class GlobalMemory:
    """Byte-addressed big-endian storage for every global variable."""

    def __init__(self, mod: IRModule):
        self.mod = mod
        self.data: Dict[str, bytearray] = {}
        for name, sym in mod.globals.items():
            size = sym.type.size_bytes()
            buf = bytearray(size)
            if sym.init_values:
                elem = sym.type.element if isinstance(sym.type, T.ArrayType) else sym.type
                esize = elem.size_bytes()
                for i, v in enumerate(sym.init_values):
                    buf[i * esize : (i + 1) * esize] = (v & ((1 << (esize * 8)) - 1)).to_bytes(
                        esize, "big"
                    )
            self.data[name] = buf

    def load(self, g: str, offset: int, width: int) -> int:
        buf = self.data[g]
        if offset < 0 or offset + width > len(buf):
            raise InterpError("out-of-bounds load of %s at %d" % (g, offset))
        return int.from_bytes(buf[offset : offset + width], "big")

    def store(self, g: str, offset: int, value: int, width: int) -> None:
        buf = self.data[g]
        if offset < 0 or offset + width > len(buf):
            raise InterpError("out-of-bounds store of %s at %d" % (g, offset))
        buf[offset : offset + width] = (value & ((1 << (width * 8)) - 1)).to_bytes(width, "big")


class SystemResult:
    """Outcome of interpreting a trace through the whole program."""

    def __init__(self, tx: List[HostPacket], profile: ProfileData):
        self.tx = tx
        self.profile = profile

    def tx_payloads(self) -> List[bytes]:
        return [p.payload() for p in self.tx]

    def tx_signature(self) -> List[bytes]:
        """Order-insensitive signature for differential testing."""
        return sorted(self.tx_payloads())


class Interpreter:
    """Interprets an IRModule; reusable across traces."""

    def __init__(self, mod: IRModule, fuel: int = 50_000_000,
                 attribute_lines: bool = False):
        self.mod = mod
        self.globals = GlobalMemory(mod)
        self.profile = ProfileData()
        self.fuel = fuel
        # When set, every interpreted instruction with a source location
        # is charged to its (filename, line) in profile.line_instrs --
        # the hot-path attribution behind the obs report's top-N table.
        # Off by default: the extra dict update is wasted work for plain
        # differential-oracle runs.
        self._attr_lines = attribute_lines
        self._ppf_by_channel: Dict[str, str] = {}
        for fn in mod.ppfs():
            for chan in fn.input_channels:
                self._ppf_by_channel[chan] = fn.name
        self._queue: deque = deque()
        self.tx: List[HostPacket] = []
        self._current_ppf: Optional[str] = None
        # ME-local structures (single logical ME for functional runs).
        self.cam_tags: List[Optional[int]] = [None] * 16
        self.cam_lru: List[int] = list(range(16))
        self.local_mem: Dict[int, int] = {}
        self._demux_cache: Dict[str, Callable[[HostPacket], int]] = {}

    # -- public API ---------------------------------------------------------------

    def run_inits(self) -> None:
        """Execute every module init block (the paper runs these on the
        XScale at boot). Boot-time activity is excluded from the profile:
        the functional profiler measures the packet trace only."""
        saved = self.profile
        self.profile = ProfileData()
        try:
            for fn in self.mod.inits():
                self._exec_function(fn, [])
        finally:
            self.profile = saved

    def run_trace(self, trace: Trace) -> SystemResult:
        """Feed every trace packet through rx and drain all channels."""
        rx_consumer = self._ppf_by_channel.get("rx")
        if rx_consumer is None:
            raise InterpError("no PPF consumes 'rx'")
        for tp in trace:
            self.profile.packets_in += 1
            pkt = HostPacket(tp.data, rx_port=tp.rx_port)
            self._deliver(rx_consumer, pkt)
            while self._queue:
                chan, qpkt = self._queue.popleft()
                self._deliver(self._ppf_by_channel[chan], qpkt)
        return SystemResult(self.tx, self.profile)

    def call(self, name: str, args: List[object]) -> object:
        """Call one function directly (unit-testing convenience)."""
        return self._exec_function(self.mod.functions[name], list(args))

    # -- dispatch -----------------------------------------------------------------

    def _deliver(self, ppf_name: str, pkt: HostPacket) -> None:
        fn = self.mod.functions[ppf_name]
        self.profile.ppf_invocations[ppf_name] += 1
        prev = self._current_ppf
        self._current_ppf = ppf_name
        try:
            self._exec_function(fn, [pkt])
        finally:
            self._current_ppf = prev

    # -- execution ---------------------------------------------------------------------

    def _exec_function(self, fn: IRFunction, args: List[object]) -> object:
        if len(args) != len(fn.params):
            raise InterpError("%s: expected %d args" % (fn.name, len(fn.params)))
        self.profile.func_invocations[fn.name] += 1
        env: Dict[Temp, object] = dict(zip(fn.params, args))
        arrays: Dict[str, bytearray] = {
            name: bytearray(arr.size_bytes) for name, arr in fn.local_arrays.items()
        }
        bb = fn.entry
        while True:
            for instr in bb.instrs:
                self._step(fn, instr, env, arrays)
            term = bb.terminator
            self._count_instr()
            if isinstance(term, I.Jump):
                bb = term.target
            elif isinstance(term, I.Branch):
                cond = self._value(term.cond, env)
                bb = term.then_bb if cond != 0 else term.else_bb
            elif isinstance(term, I.Ret):
                if term.value is None:
                    return None
                return self._value(term.value, env)
            else:  # pragma: no cover
                raise InterpError("bad terminator %r" % term)

    def _count_instr(self) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise InterpError("interpreter fuel exhausted (infinite loop?)")
        if self._current_ppf is not None:
            self.profile.ppf_instrs[self._current_ppf] += 1

    def _value(self, op: Operand, env: Dict[Temp, object]) -> object:
        if isinstance(op, Const):
            return op.value
        try:
            return env[op]
        except KeyError:
            raise InterpError("use of undefined temp %r" % op)

    def _set(self, dst: Temp, value: object, env: Dict[Temp, object]) -> None:
        if isinstance(value, int):
            value &= (1 << _bits_of(dst.type)) - 1
        env[dst] = value

    # -- instruction semantics ------------------------------------------------------

    def _step(self, fn: IRFunction, instr: I.Instr, env: Dict[Temp, object],
              arrays: Dict[str, bytearray]) -> None:
        self._count_instr()
        if self._attr_lines:
            loc = instr.loc
            if loc is not None:
                self.profile.line_instrs[(loc.filename, loc.line)] += 1
        v = self._value

        if isinstance(instr, I.Assign):
            self._set(instr.dst, v(instr.src, env), env)
        elif isinstance(instr, I.BinOp):
            self._set(instr.dst, self._binop(instr, env), env)
        elif isinstance(instr, I.Cmp):
            self._set(instr.dst, self._cmp(instr, env), env)
        elif isinstance(instr, I.Call):
            result = self._exec_function(self.mod.functions[instr.func],
                                         [v(a, env) for a in instr.args])
            if instr.dst is not None:
                self._set(instr.dst, result if result is not None else 0, env)
        elif isinstance(instr, I.LoadG):
            offset = v(instr.offset, env)
            value = self.globals.load(instr.g, offset, instr.width)
            stat = self.profile.gstat(instr.g)
            stat.loads += 1
            stat.load_offsets[offset] += 1
            self._set(instr.dst, value, env)
        elif isinstance(instr, I.LoadGWords):
            offset = v(instr.offset, env)
            stat = self.profile.gstat(instr.g)
            stat.loads += 1
            stat.load_offsets[offset] += 1
            for i, dst in enumerate(instr.dsts):
                self._set(dst, self.globals.load(instr.g, offset + i * 4, 4), env)
        elif isinstance(instr, I.StoreG):
            offset = v(instr.offset, env)
            self.globals.store(instr.g, offset, v(instr.value, env), instr.width)
            self.profile.gstat(instr.g).stores += 1
        elif isinstance(instr, I.LoadL):
            buf = arrays[instr.array]
            off = v(instr.offset, env)
            if off < 0 or off + instr.width > len(buf):
                raise InterpError("%s: out-of-bounds local access" % fn.name)
            self._set(instr.dst, int.from_bytes(buf[off : off + instr.width], "big"), env)
        elif isinstance(instr, I.StoreL):
            buf = arrays[instr.array]
            off = v(instr.offset, env)
            if off < 0 or off + instr.width > len(buf):
                raise InterpError("%s: out-of-bounds local access" % fn.name)
            value = v(instr.value, env) & ((1 << (instr.width * 8)) - 1)
            buf[off : off + instr.width] = value.to_bytes(instr.width, "big")
        elif isinstance(instr, I.PktLoadField):
            pkt: HostPacket = v(instr.ph, env)
            self._set(instr.dst, pkt.load_bits(instr.bit_off, instr.bit_width), env)
        elif isinstance(instr, I.PktStoreField):
            pkt = v(instr.ph, env)
            pkt.store_bits(instr.bit_off, instr.bit_width, v(instr.value, env))
        elif isinstance(instr, I.PktLoadWords):
            pkt = v(instr.ph, env)
            raw = pkt.load_bytes(instr.byte_off, instr.nwords * 4)
            for i, dst in enumerate(instr.dsts):
                self._set(dst, int.from_bytes(raw[i * 4 : i * 4 + 4], "big"), env)
        elif isinstance(instr, I.PktStoreWords):
            pkt = v(instr.ph, env)
            for i in range(instr.nwords):
                word = v(instr.values[i], env) & _U32
                mask = instr.byte_masks[i]
                data = word.to_bytes(4, "big")
                for b in range(4):
                    if mask & (1 << (3 - b)):  # bit 3 = most-significant byte
                        pkt.store_bytes(instr.byte_off + i * 4 + b, data[b : b + 1])
        elif isinstance(instr, I.MetaLoad):
            pkt = v(instr.ph, env)
            self._set(instr.dst, pkt.meta.get(instr.word, 0), env)
        elif isinstance(instr, I.MetaStore):
            pkt = v(instr.ph, env)
            pkt.meta[instr.word] = v(instr.value, env) & _U32
        elif isinstance(instr, I.PktEncap):
            pkt = v(instr.ph if hasattr(instr, "ph") else instr.src, env)
            pkt.encap(instr.header_bytes)
            self._set(instr.dst, pkt, env)
        elif isinstance(instr, I.PktDecap):
            pkt = v(instr.src, env)
            hdr = instr.header_bytes
            if hdr is None:
                hdr = self._demux_bytes(instr.src_proto, pkt)
            pkt.decap(hdr)
            self._set(instr.dst, pkt, env)
        elif isinstance(instr, I.PktCopy):
            pkt = v(instr.src, env)
            self._set(instr.dst, pkt.copy(), env)
        elif isinstance(instr, I.PktDrop):
            pkt = v(instr.ph, env)
            self._drop_packet(pkt)
        elif isinstance(instr, I.PktCreate):
            length = v(instr.length, env)
            pkt = self._new_packet(instr.header_bytes + length)
            self._set(instr.dst, pkt, env)
        elif isinstance(instr, I.PktLength):
            pkt = v(instr.ph, env)
            self._set(instr.dst, pkt.length, env)
        elif isinstance(instr, I.PktAdjust):
            pkt = v(instr.ph, env)
            amount = v(instr.amount, env)
            getattr(pkt, instr.op)(amount)
        elif isinstance(instr, I.PktSyncHead):
            pkt = v(instr.ph, env)
            if instr.delta_bytes >= 0:
                pkt.decap(instr.delta_bytes)
            else:
                pkt.encap(-instr.delta_bytes)
        elif isinstance(instr, I.CamClear):
            self.cam_tags = [None] * 16
            self.cam_lru = list(range(16))
        elif isinstance(instr, I.ChanPut):
            pkt = v(instr.ph, env)
            self.profile.channel_puts[instr.channel] += 1
            self._emit_channel(instr.channel, pkt)
        elif isinstance(instr, (I.LockAcquire, I.LockRelease)):
            pass  # single-threaded functional model
        elif isinstance(instr, I.CamLookup):
            self._set(instr.dst, self._cam_lookup(v(instr.key, env)), env)
        elif isinstance(instr, I.CamWrite):
            entry = v(instr.entry, env) & 0xF
            self.cam_tags[entry] = v(instr.key, env) & _U32
            self._cam_touch(entry)
        elif isinstance(instr, I.LmLoad):
            self._set(instr.dst, self.local_mem.get(v(instr.index, env), 0), env)
        elif isinstance(instr, I.LmStore):
            self.local_mem[v(instr.index, env)] = v(instr.value, env) & _U32
        else:  # pragma: no cover
            raise InterpError("cannot interpret %r" % instr)

    # -- integration hooks (overridden by the simulated-XScale executor) -----------

    def _emit_channel(self, channel: str, pkt) -> None:
        if channel == "tx":
            self.profile.packets_out += 1
            self.tx.append(pkt)
        else:
            self._queue.append((channel, pkt))

    def _drop_packet(self, pkt) -> None:
        pkt.dropped = True
        self.profile.packets_dropped += 1

    def _new_packet(self, size: int):
        return HostPacket(bytes(size))

    # -- helpers ---------------------------------------------------------------------

    def _binop(self, instr: I.BinOp, env) -> int:
        a = self._value(instr.a, env)
        b = self._value(instr.b, env)
        bits = _bits_of(instr.dst.type)
        try:
            return eval_binop(instr.op, a, b, bits)
        except EvalError as exc:
            raise InterpError(str(exc))

    def _cmp(self, instr: I.Cmp, env) -> int:
        a = self._value(instr.a, env)
        b = self._value(instr.b, env)
        op = instr.op
        if op in ("eq", "ne"):
            # Packet handles compare by identity (same metadata address).
            if isinstance(a, HostPacket) or isinstance(b, HostPacket):
                same = a is b
                return int(same) if op == "eq" else int(not same)
        elif isinstance(a, HostPacket) or isinstance(b, HostPacket):
            raise InterpError("ordered comparison of packet handles")
        bits = max(_bits_of(getattr(instr.a, "type", T.U32)),
                   _bits_of(getattr(instr.b, "type", T.U32)))
        try:
            return eval_cmp(op, a, b, bits)
        except EvalError as exc:
            raise InterpError(str(exc))

    def _demux_bytes(self, proto_name: str, pkt: HostPacket) -> int:
        """Evaluate a protocol's demux expression against a live packet."""
        fn = self._demux_cache.get(proto_name)
        if fn is None:
            proto = self.mod.protocols[proto_name]

            def evaluator(packet: HostPacket, proto=proto) -> int:
                env = {
                    f.name: packet.load_bits(f.offset_bits, f.width_bits)
                    for f in proto.fields
                }
                return eval_const_expr(proto.demux_expr, env)

            fn = evaluator
            self._demux_cache[proto_name] = fn
        return fn(pkt)

    def _cam_lookup(self, key: int) -> int:
        key &= _U32
        for entry, tag in enumerate(self.cam_tags):
            if tag == key:
                self._cam_touch(entry)
                return (entry << 1) | 1
        # Miss: the reported LRU victim becomes MRU (MEv2 behavior).
        lru = self.cam_lru[0]
        self._cam_touch(lru)
        return lru << 1

    def _cam_touch(self, entry: int) -> None:
        self.cam_lru.remove(entry)
        self.cam_lru.append(entry)


def run_reference(mod: IRModule, trace: Trace,
                  attribute_lines: bool = False) -> SystemResult:
    """Convenience: init globals, run init blocks, feed the trace."""
    interp = Interpreter(mod, attribute_lines=attribute_lines)
    interp.run_inits()
    return interp.run_trace(trace)
