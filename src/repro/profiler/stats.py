"""Profile data collected by the functional profiler (paper section 4.1).

The aggregation pass consumes PPF execution costs and CC utilizations;
the global memory mapper and the SWC candidate selector consume
global-data access statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple


@dataclass
class GlobalStats:
    """Access statistics for one global variable."""

    loads: int = 0
    stores: int = 0
    load_offsets: Counter = field(default_factory=Counter)  # byte offset -> count

    @property
    def distinct_load_offsets(self) -> int:
        return len(self.load_offsets)

    def estimated_hit_rate(self, cache_lines: int, line_words: int = 1) -> float:
        """Hit rate a ``cache_lines``-entry cache would achieve on the
        observed load stream, assuming an ideal (Belady-ish) mapping:
        the hottest ``cache_lines`` lines always hit."""
        if self.loads == 0:
            return 0.0
        lines = Counter()
        for off, count in self.load_offsets.items():
            lines[off // (4 * line_words)] += count
        hot = sum(count for _, count in lines.most_common(cache_lines))
        return hot / self.loads

    def working_set_lines(self, fraction: float = 0.8, line_words: int = 1) -> int:
        """Smallest number of cache lines covering ``fraction`` of the
        observed loads (the structure's hot working set)."""
        if self.loads == 0:
            return 0
        lines = Counter()
        for off, count in self.load_offsets.items():
            lines[off // (4 * line_words)] += count
        needed = fraction * self.loads
        covered = 0
        for i, (_, count) in enumerate(lines.most_common()):
            covered += count
            if covered >= needed:
                return i + 1
        return len(lines)


@dataclass
class ProfileData:
    """Whole-program profile over one trace."""

    packets_in: int = 0
    packets_out: int = 0
    packets_dropped: int = 0
    # Per-PPF (qualified name):
    ppf_invocations: Counter = field(default_factory=Counter)
    ppf_instrs: Counter = field(default_factory=Counter)  # executed IR instrs
    # Per-channel (qualified name): number of puts.
    channel_puts: Counter = field(default_factory=Counter)
    # Per-global (qualified name):
    global_stats: Dict[str, GlobalStats] = field(default_factory=dict)
    # Per-function total invocation counts (incl. support funcs).
    func_invocations: Counter = field(default_factory=Counter)
    # Per-source-line interpreted IR instruction counts, keyed by
    # (filename, 1-based line). Only populated when the interpreter runs
    # with ``attribute_lines=True`` (the hot-path attribution the
    # observability report renders as a top-N table).
    line_instrs: Counter = field(default_factory=Counter)

    def gstat(self, name: str) -> GlobalStats:
        if name not in self.global_stats:
            self.global_stats[name] = GlobalStats()
        return self.global_stats[name]

    # -- derived quantities used by aggregation --------------------------------

    def ppf_cost_per_packet(self, ppf: str) -> float:
        """Average executed IR instructions per invocation (the paper's
        'relative PPF execution time')."""
        n = self.ppf_invocations.get(ppf, 0)
        if n == 0:
            return 0.0
        return self.ppf_instrs.get(ppf, 0) / n

    def ppf_weight(self, ppf: str) -> float:
        """Total executed instructions attributed to the PPF, normalized
        per input packet -- the execution-frequency-weighted cost."""
        if self.packets_in == 0:
            return 0.0
        return self.ppf_instrs.get(ppf, 0) / self.packets_in

    def channel_utilization(self, channel: str) -> float:
        """Puts per input packet (the paper's CC utilization)."""
        if self.packets_in == 0:
            return 0.0
        return self.channel_puts.get(channel, 0) / self.packets_in

    def invocation_rate(self, ppf: str) -> float:
        """PPF invocations per input packet."""
        if self.packets_in == 0:
            return 0.0
        return self.ppf_invocations.get(ppf, 0) / self.packets_in

    def hot_lines(self, n: int = 10) -> "list[Tuple[str, int]]":
        """Top-``n`` Baker source lines by interpreted IR instruction
        count, as ("file:line", count) pairs (hottest first)."""
        return [("%s:%d" % key, count)
                for key, count in self.line_instrs.most_common(n)]
