"""Streaming traffic generation for the live-churn service harness.

The run-to-completion benchmarks replay a fixed finite trace; a
long-running service needs an *infinite* deterministic packet stream
with service-like structure:

* **zipf flow popularity** -- a seeded population of per-app flows
  (built with the application's own trace generator, so every packet
  is valid for its data plane) drawn with a zipf rank distribution:
  a few hot flows dominate, a long tail keeps tables busy;
* **IMIX frame sizes** -- the classic 64/576/1500-byte 7:4:1 mix,
  applied by padding the flow's frame (Ethernet padding past the IP
  total length, which every app ignores);
* **seeded bursts** -- short spans injected at a pace multiplier below
  1.0 (above the offered rate), stressing rings and the drop path at
  deterministic points.

Everything is driven by one ``random.Random(seed)``, so a fixed seed
reproduces the byte-exact packet sequence.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.ixp.rxtx import RxEngine
from repro.profiler.trace import Trace, TracePacket

#: IMIX frame sizes and draw weights (7:4:1).
IMIX_SIZES = (64, 576, 1500)
IMIX_WEIGHTS = (7, 4, 1)


@dataclass
class TrafficSpec:
    """Knobs of the streaming generator (all deterministic under
    ``seed``)."""

    seed: int = 7
    n_flows: int = 256
    zipf_s: float = 1.1      # zipf exponent over flow ranks
    imix: bool = True
    burst_len: int = 32      # packets per burst
    burst_gap: int = 400     # mean packets between burst starts
    burst_pace: float = 0.25  # pace multiplier inside a burst (<1 = faster)


class TrafficModel:
    """Infinite deterministic (packet, pace) stream for one app."""

    def __init__(self, app, spec: TrafficSpec):
        self.spec = spec
        # The app's own generator yields a valid flow population (with
        # its natural mix of control/error packets); zipf ranks it.
        self.flows: List[TracePacket] = list(
            app.make_trace(spec.n_flows, seed=spec.seed).packets)
        if not self.flows:
            raise ValueError("app produced an empty flow population")
        weights = [1.0 / (rank + 1) ** spec.zipf_s
                   for rank in range(len(self.flows))]
        total = sum(weights)
        acc = 0.0
        self._cdf: List[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0
        self._rng = random.Random(spec.seed + 1)
        self._burst_left = 0
        self.generated = 0

    def _pick_flow(self) -> TracePacket:
        r = self._rng.random()
        return self.flows[bisect.bisect_left(self._cdf, r)]

    def _pick_size(self, minimum: int) -> int:
        r = self._rng.random() * sum(IMIX_WEIGHTS)
        acc = 0.0
        for size, w in zip(IMIX_SIZES, IMIX_WEIGHTS):
            acc += w
            if r < acc:
                return max(size, minimum)
        return max(IMIX_SIZES[-1], minimum)

    def next_packet(self) -> Tuple[TracePacket, float]:
        """(packet, pace multiplier) for the next injection."""
        self.generated += 1
        tp = self._pick_flow()
        if self.spec.imix:
            size = self._pick_size(len(tp.data))
            if size > len(tp.data):
                tp = TracePacket(tp.data + bytes(size - len(tp.data)),
                                 tp.rx_port)
        if self._burst_left > 0:
            self._burst_left -= 1
            pace = self.spec.burst_pace
        elif (self.spec.burst_gap > 0
              and self._rng.random() < 1.0 / self.spec.burst_gap):
            self._burst_left = self.spec.burst_len - 1
            pace = self.spec.burst_pace
        else:
            pace = 1.0
        return tp, pace


class StreamingRxEngine(RxEngine):
    """RxEngine fed by a :class:`TrafficModel` instead of a finite
    trace: injection never exhausts, and each packet's inter-arrival
    gap is the line-rate interval scaled by the model's pace."""

    def __init__(self, chip, model: TrafficModel,
                 offered_gbps: float = 2.5):
        super().__init__(chip, Trace(), offered_gbps=offered_gbps)
        self.model = model

    def inject_next(self):
        tp, pace = self.model.next_packet()
        self.sent += 1
        self._deliver(tp)
        return self.interval_cycles(len(tp.data)) * pace
