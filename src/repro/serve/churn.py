"""Control-plane churn: scheduled live table mutations on a running chip.

A :class:`ChurnSpec` (parsed from the CLI's ``--churn`` syntax)
describes *when* updates happen, in window coordinates; the
deterministic mutation helpers in :mod:`repro.apps.tables` describe
*what* each update writes. :class:`ControlPlane` applies them on the
simulated XScale path: the store goes through the same
:class:`~repro.ixp.xscale_core.SimGlobals` adapter compiled control
code uses, and when the target global is SWC-cached (§5.2) the
``<name>.__swc_flag`` scratch word is raised exactly as the compiler's
instrumented stores do -- so the MEs keep serving cached values until
their periodic flag check flushes the CAM. That delayed-coherency
window is what the serve harness measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.tables import (
    TableMutation,
    firewall_rule_mutations,
    mpls_label_mutations,
    route_flap_mutations,
)
from repro.ixp.xscale_core import SimGlobals

#: churn kind -> the app whose tables it mutates.
CHURN_KINDS = {
    "route-flap": "l3switch",
    "fw-toggle": "firewall",
    "mpls-relabel": "mpls",
}


@dataclass
class ChurnSpec:
    """``kind:n=<count>,start=<window>,every=<windows>`` -- ``count``
    updates, the first in window ``start``, then one every ``every``
    windows (each applied mid-window)."""

    kind: str
    count: int = 4
    start: int = 4
    every: int = 4

    def to_string(self) -> str:
        return "%s:n=%d,start=%d,every=%d" % (self.kind, self.count,
                                              self.start, self.every)


def parse_churn_spec(text: str) -> ChurnSpec:
    kind, _, rest = text.partition(":")
    if kind not in CHURN_KINDS:
        raise ValueError("unknown churn kind %r (choose from %s)"
                         % (kind, ", ".join(sorted(CHURN_KINDS))))
    spec = ChurnSpec(kind)
    if rest:
        for item in rest.split(","):
            if not item:
                continue
            key, _, value = item.partition("=")
            if key == "n":
                spec.count = int(value)
            elif key == "start":
                spec.start = int(value)
            elif key == "every":
                spec.every = max(1, int(value))
            else:
                raise ValueError("unknown churn option %r in %r"
                                 % (key, text))
    if spec.count < 1 or spec.start < 0:
        raise ValueError("churn spec %r needs n >= 1 and start >= 0" % text)
    return spec


def build_mutations(app_name: str, app, spec: ChurnSpec,
                    seed: int) -> List[TableMutation]:
    """The spec's mutation sequence against this app's tables."""
    if CHURN_KINDS[spec.kind] != app_name:
        raise ValueError("churn kind %r mutates %s tables, not %s"
                         % (spec.kind, CHURN_KINDS[spec.kind], app_name))
    if spec.kind == "route-flap":
        return route_flap_mutations(app.routes, spec.count, seed=seed)
    if spec.kind == "fw-toggle":
        return firewall_rule_mutations(app.config, spec.count, seed=seed)
    return mpls_label_mutations(app.config, spec.count, seed=seed)


def schedule_times(spec: ChurnSpec, window_cycles: float,
                   count: int) -> List[float]:
    """Mid-window apply times for the first ``count`` updates."""
    return [(spec.start + j * spec.every + 0.5) * window_cycles
            for j in range(count)]


class ControlPlane:
    """Applies scheduled mutations to live chip memory, XScale-style."""

    def __init__(self, chip, layout, collector=None):
        self.chip = chip
        self.layout = layout
        self.collector = collector
        self.globals = SimGlobals(chip, layout)
        self.applied: List[Tuple[float, TableMutation]] = []

    def schedule(self, timed: List[Tuple[float, TableMutation]]) -> None:
        for t, mut in timed:
            self.chip.schedule(t, self._action(mut))

    def _action(self, mut: TableMutation):
        def apply_update():
            self.apply(mut)
            return None

        return apply_update

    def apply(self, mut: TableMutation) -> None:
        chip = self.chip
        current = self.globals.load(mut.target, mut.offset, mut.width)
        if current != mut.old_value:
            raise RuntimeError(
                "control-plane update %s expected %#x in memory, found %#x "
                "(table layout drift?)" % (mut.describe(), mut.old_value,
                                           current))
        self.globals.store(mut.target, mut.offset, mut.new_value, mut.width)
        flag = mut.target + ".__swc_flag"
        swc_flagged = flag in self.layout.global_addr
        if swc_flagged:
            # Exactly what an SWC-instrumented StoreG does: raise the
            # update flag; MEs flush their CAM at the next periodic
            # check, serving stale values until then.
            self.globals.store(flag, 0, 1, 4)
        self.applied.append((chip.now, mut))
        if self.collector is not None:
            self.collector.registry.counter(
                "updates", kind=mut.kind).inc()
            self.collector.annotate(
                chip.now, "update", churn=mut.kind,
                target="%s[%d]" % (mut.target, mut.index),
                swc_flagged=swc_flagged)


# -- stale-traffic probes ---------------------------------------------------------

ETH_TYPE_MPLS = 0x8847


def stale_tx_counts(tx_records,
                    applied: List[Tuple[float, TableMutation]]
                    ) -> List[int]:
    """Per-update count of Tx frames that carry a *retired* value after
    the update was applied.

    ``route-flap`` retires a destination MAC, ``mpls-relabel`` retires
    an outgoing label; both are drawn from reserved ranges so a late
    match is provably stale data-plane state (the SWC coherency
    window). Updates without a stale probe (``fw-toggle``) count 0.
    """
    out: List[int] = []
    for t_apply, mut in applied:
        stale = 0
        mac = mut.probe.get("stale_dst_mac")
        label = mut.probe.get("stale_mpls_label")
        if mac is not None:
            needle = mac.to_bytes(6, "big")
            stale = sum(1 for r in tx_records
                        if r.time > t_apply and r.payload[:6] == needle)
        elif label is not None:
            for r in tx_records:
                if r.time <= t_apply or len(r.payload) < 18:
                    continue
                if r.payload[12:14] != ETH_TYPE_MPLS.to_bytes(2, "big"):
                    continue
                top = int.from_bytes(r.payload[14:18], "big") >> 12
                if top == label:
                    stale += 1
        out.append(stale)
    return out


def drop_cause_totals(tracer) -> Dict[str, int]:
    return {cause: int(n) for cause, n in sorted(tracer.drops.items())}
