"""The live-churn service harness: run a compiled app as a *service*.

The measurement harness in :mod:`repro.rts.system` answers "how fast is
this program" -- warm up, measure a fixed packet count, report one
number. This harness answers the operational question the paper's §5.2
delayed-update coherency raises but never measures: *what does a
control-plane update look like from the data plane?* It runs the chip
to a fixed cycle budget under an infinite deterministic traffic stream
(:mod:`repro.serve.traffic`) while the XScale-side control plane
mutates live table state (:mod:`repro.serve.churn`), and records the
whole run as per-window time series (:mod:`repro.obs.timeseries`).

Everything is seeded; a fixed configuration reproduces the bench JSON
and the timeline JSONL byte for byte (tests/test_serve.py, CI's
serve-smoke job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps import APP_CLASSES
from repro.compiler import compile_baker
from repro.ixp.chip import IXP2400
from repro.ixp.rxtx import TxEngine
from repro.obs.timeseries import (
    TimeseriesCollector,
    update_impact,
    window_drops,
)
from repro.obs.trace import PacketTracer
from repro.options import options_for
from repro.rts.loader import load_system
from repro.serve.churn import (
    ChurnSpec,
    ControlPlane,
    build_mutations,
    schedule_times,
    stale_tx_counts,
)
from repro.serve.traffic import StreamingRxEngine, TrafficModel, TrafficSpec
from repro.sweep.benchio import merge_bench_json


@dataclass
class ServeConfig:
    """One deterministic service run: app + traffic + churn schedule."""

    app: str = "l3switch"
    level: str = "SWC"
    n_mes: int = 3
    windows: int = 50
    window_cycles: float = 40_000.0
    offered_gbps: float = 2.5
    line_gbps: float = 3.0
    churn: List[ChurnSpec] = field(default_factory=list)
    traffic_seed: int = 7
    table_seed: Optional[int] = None  # None -> the app's default tables
    churn_seed: int = 0
    impact_k: int = 2
    exact_limit: int = 256
    profile_packets: int = 200  # compile-time profiling trace length
    # Attach a stall-cycle attribution profiler (repro.obs.profile):
    # windows gain occ.* counter deltas (visible in the timeline dump)
    # and ServeResult.occupancy is filled. Pure observation -- the
    # simulation and the churn bench payload are bit-identical either
    # way (tests/test_profile.py).
    profile: bool = False


@dataclass
class ServeResult:
    config: ServeConfig
    collector: TimeseriesCollector
    bench: Dict[str, object]
    applied: List[object]       # (time, TableMutation) pairs, time order
    stale_tx: List[int]         # per applied update
    tracer: PacketTracer
    # occupancy_cell dict when cfg.profile was set, else None.
    occupancy: Optional[Dict[str, object]] = None


def build_app(name: str, table_seed: Optional[int] = None):
    """App instance for serving. ``mpls`` gets a 16-label config: the
    default 8 labels are all FTN push targets, which leaves no ILM entry
    whose outgoing label can serve as an unambiguous stale-traffic
    probe (see :func:`repro.apps.tables.mpls_label_mutations`)."""
    cls = APP_CLASSES[name]
    kwargs: Dict[str, object] = {}
    if table_seed is not None:
        kwargs["seed"] = table_seed
    if name == "mpls":
        kwargs["n_labels"] = 16
    return cls(**kwargs)


def run_service(cfg: ServeConfig,
                timeline_path: Optional[str] = None,
                bench_path: Optional[str] = None) -> ServeResult:
    """Compile, load, and serve ``cfg.windows`` windows of traffic while
    the scheduled churn plays out; optionally export the timeline JSONL
    and merge the churn bench JSON."""
    if cfg.app not in APP_CLASSES:
        raise ValueError("unknown app %r" % cfg.app)
    app = build_app(cfg.app, cfg.table_seed)
    result = compile_baker(app.source, options_for(cfg.level),
                           app.make_trace(cfg.profile_packets))

    chip = IXP2400(n_programmable_mes=cfg.n_mes)
    layout = load_system(result, chip, n_mes=cfg.n_mes)

    model = TrafficModel(app, TrafficSpec(seed=cfg.traffic_seed))
    rx = StreamingRxEngine(chip, model, offered_gbps=cfg.offered_gbps)
    tx = TxEngine(chip, line_gbps=cfg.line_gbps)
    chip.attach_traffic(rx, tx)

    tracer = PacketTracer(streaming=True)
    chip.tracer = tracer
    collector = TimeseriesCollector(cfg.window_cycles,
                                    exact_limit=cfg.exact_limit)
    collector.attach(rx=rx, tx=tx, tracer=tracer)
    chip.window = collector

    profiler = None
    if cfg.profile:
        from repro.obs.profile import StallProfiler

        profiler = StallProfiler().attach(chip)
        collector.add_source(profiler.window_source())

    control = ControlPlane(chip, layout, collector)
    horizon = cfg.windows * cfg.window_cycles
    for spec in cfg.churn:
        muts = build_mutations(cfg.app, app, spec, cfg.churn_seed)
        times = schedule_times(spec, cfg.window_cycles, len(muts))
        timed = [(t, m) for t, m in zip(times, muts) if t < horizon]
        if len(timed) < len(muts):
            # Silently dropping updates would make "n=8" lie; land the
            # overflow in the final window instead of past the horizon.
            raise ValueError(
                "churn %s schedules updates past the run (%d of %d fit "
                "in %d windows); lower n/start/every or raise --windows"
                % (spec.to_string(), len(timed), len(muts), cfg.windows))
        control.schedule(timed)

    chip.run(horizon)
    tracer.finish(chip.now)
    collector.finish(chip.now)

    stale = stale_tx_counts(tx.records, control.applied)
    bench = _bench_payload(cfg, collector, control, stale, rx, tx, tracer)

    if timeline_path:
        collector.dump_jsonl(timeline_path, header={
            "app": cfg.app, "level": cfg.level, "n_mes": cfg.n_mes,
            "churn": [s.to_string() for s in cfg.churn],
            "seeds": _seeds(cfg),
        })
    if bench_path:
        merge_bench_json(bench_path, "churn", bench, kind="bench_churn")

    occupancy = None
    if profiler is not None:
        from repro.obs.profile import occupancy_cell

        mean_rate = bench["summary"]["mean_rate_gbps"]
        occupancy = occupancy_cell(cfg.app, cfg.level, cfg.n_mes,
                                   mean_rate, profiler.snapshot(chip))

    return ServeResult(config=cfg, collector=collector, bench=bench,
                       applied=list(control.applied), stale_tx=stale,
                       tracer=tracer, occupancy=occupancy)


def _seeds(cfg: ServeConfig) -> Dict[str, object]:
    return {"traffic": cfg.traffic_seed, "table": cfg.table_seed,
            "churn": cfg.churn_seed}


def _bench_payload(cfg: ServeConfig, collector: TimeseriesCollector,
                   control: ControlPlane, stale: List[int],
                   rx, tx, tracer: PacketTracer) -> Dict[str, object]:
    windows = collector.windows
    rates = [w["rate_gbps"] for w in windows]
    mean_rate = round(sum(rates) / len(rates), 6) if rates else 0.0
    impact = update_impact(windows, k=cfg.impact_k)
    # Impact rows and applied updates are both in apply-time order;
    # attach the per-update stale-frame counts by matching timestamps.
    stale_by_t = {round(t, 3): s for (t, _), s in zip(control.applied, stale)}
    updates = []
    for row in impact:
        if row.get("kind") != "update":
            continue
        row = dict(row)
        row["stale_tx"] = stale_by_t.get(row.get("t"), 0)
        updates.append(row)
    return {
        "app": cfg.app,
        "level": cfg.level,
        "n_mes": cfg.n_mes,
        "windows": cfg.windows,
        "window_cycles": cfg.window_cycles,
        "offered_gbps": cfg.offered_gbps,
        "seeds": _seeds(cfg),
        "churn": [s.to_string() for s in cfg.churn],
        "summary": {
            "mean_rate_gbps": mean_rate,
            "latency": collector.cumulative.summary(),
            "drops": sum(window_drops(w) for w in windows),
            "rx_offered": rx.sent,
            "tx_packets": tx.packets_out(),
            "updates_applied": len(control.applied),
            "stale_tx_total": sum(stale),
            "latencies_truncated": tracer.latencies_truncated,
        },
        "timeline": {
            "rate_gbps": rates,
            "p50": [w["latency"]["p50"] for w in windows],
            "p95": [w["latency"]["p95"] for w in windows],
            "p99": [w["latency"]["p99"] for w in windows],
            "drops": [window_drops(w) for w in windows],
        },
        "updates": updates,
    }
