"""Live-churn service harness (``python -m repro.serve``).

Runs a compiled application as a long-lived *service* -- infinite
deterministic traffic, cycle-budget run, live control-plane table churn
-- and records the run as windowed time series. The operational
counterpart to the one-number measurement rig in
:mod:`repro.rts.system`; see :mod:`repro.serve.harness`.
"""

from repro.serve.churn import (
    CHURN_KINDS,
    ChurnSpec,
    ControlPlane,
    build_mutations,
    parse_churn_spec,
    stale_tx_counts,
)
from repro.serve.harness import (
    ServeConfig,
    ServeResult,
    build_app,
    run_service,
)
from repro.serve.traffic import (
    IMIX_SIZES,
    IMIX_WEIGHTS,
    StreamingRxEngine,
    TrafficModel,
    TrafficSpec,
)

__all__ = [
    "CHURN_KINDS",
    "ChurnSpec",
    "ControlPlane",
    "IMIX_SIZES",
    "IMIX_WEIGHTS",
    "ServeConfig",
    "ServeResult",
    "StreamingRxEngine",
    "TrafficModel",
    "TrafficSpec",
    "build_app",
    "build_mutations",
    "parse_churn_spec",
    "run_service",
    "stale_tx_counts",
]
