"""CLI for the live-churn service harness.

Usage::

    python -m repro.serve --app l3switch --windows 50 \\
        --churn route-flap:n=6,start=8,every=6 \\
        --out BENCH_churn.json --timeline timeline.jsonl --report

Every run is fully determined by its flags: the same command line
produces byte-identical ``--out`` and ``--timeline`` files (CI's
serve-smoke job runs one twice and ``cmp``s them).
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APP_CLASSES
from repro.serve.churn import CHURN_KINDS, parse_churn_spec
from repro.serve.harness import ServeConfig, run_service


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve an app under streaming traffic while the "
                    "control plane mutates live table state; record the "
                    "run as windowed time series.")
    ap.add_argument("--app", default="l3switch",
                    choices=sorted(APP_CLASSES),
                    help="application to serve (default: %(default)s)")
    ap.add_argument("--level", default="SWC",
                    help="optimization level (default: %(default)s)")
    ap.add_argument("--mes", type=int, default=3,
                    help="programmable MEs (default: %(default)s)")
    ap.add_argument("--windows", type=int, default=50,
                    help="run length in windows (default: %(default)s)")
    ap.add_argument("--window-cycles", type=float, default=40_000.0,
                    help="window width in ME cycles (default: %(default)s)")
    ap.add_argument("--gbps", type=float, default=2.5,
                    help="offered load in Gbps (default: %(default)s)")
    ap.add_argument("--churn", action="append", default=[],
                    metavar="KIND[:n=N,start=W,every=E]",
                    help="churn schedule (repeatable); kinds: "
                         + ", ".join(sorted(CHURN_KINDS)))
    ap.add_argument("--seed", type=int, default=7,
                    help="traffic seed (default: %(default)s)")
    ap.add_argument("--table-seed", type=int, default=None,
                    help="table-generation seed (default: the app's own)")
    ap.add_argument("--churn-seed", type=int, default=0,
                    help="mutation-selection seed (default: %(default)s)")
    ap.add_argument("-k", "--impact-k", type=int, default=2,
                    help="impact windows before/after each update "
                         "(default: %(default)s)")
    ap.add_argument("--out", default=None, metavar="BENCH.json",
                    help="merge the churn bench JSON into this file")
    ap.add_argument("--timeline", default=None, metavar="FILE.jsonl",
                    help="dump the per-window timeline JSONL here")
    ap.add_argument("--report", action="store_true",
                    help="print the timeline report after the run")
    ap.add_argument("--profile", action="store_true",
                    help="attach the stall-cycle attribution profiler: "
                         "timeline windows carry occ.* counter deltas "
                         "and a bottleneck verdict is printed; the "
                         "bench JSON is byte-identical either way")
    args = ap.parse_args(argv)

    try:
        churn = [parse_churn_spec(text) for text in args.churn]
    except ValueError as exc:
        ap.error(str(exc))

    cfg = ServeConfig(
        app=args.app, level=args.level, n_mes=args.mes,
        windows=args.windows, window_cycles=args.window_cycles,
        offered_gbps=args.gbps, churn=churn, traffic_seed=args.seed,
        table_seed=args.table_seed, churn_seed=args.churn_seed,
        impact_k=args.impact_k, profile=args.profile)
    try:
        res = run_service(cfg, timeline_path=args.timeline,
                          bench_path=args.out)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1

    s = res.bench["summary"]
    print("served %s/%s on %d MEs: %d windows x %g cycles at %g Gbps "
          "offered" % (cfg.app, cfg.level, cfg.n_mes, cfg.windows,
                       cfg.window_cycles, cfg.offered_gbps))
    print("  rate=%.4f Gbps  tx=%d  drops=%g  p50=%g  p99=%g"
          % (s["mean_rate_gbps"], s["tx_packets"], s["drops"],
             s["latency"]["p50"], s["latency"]["p99"]))
    print("  updates applied=%d  stale tx after update=%d"
          % (s["updates_applied"], s["stale_tx_total"]))
    if res.occupancy is not None:
        print("  bottleneck: %s" % res.occupancy["verdict"]["text"])
    if args.out:
        print("  bench -> %s" % args.out)
    if args.timeline:
        print("  timeline -> %s" % args.timeline)

    if args.report:
        from repro.obs.report import render_timeline

        header = res.collector.to_records()[0]
        header.update({"app": cfg.app, "level": cfg.level,
                       "n_mes": cfg.n_mes,
                       "churn": [c.to_string() for c in churn]})
        print()
        print(render_timeline(header, res.collector.windows,
                              k=args.impact_k))
    return 0


if __name__ == "__main__":
    sys.exit(main())
