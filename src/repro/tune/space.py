"""Search space for the ``repro.tune`` autotuner.

A *trial configuration* is one point in CompilerOptions space: a named
optimization level plus keyword overrides (SWC check period, SWC
candidate exclusions) and a compile-time aggregation ``target_gbps``.
Each configuration is evaluated at every ME count of the space, so one
configuration owns a *family* of grid cells.

The space is generated in two evidence-driven generations:

* **Generation 0** enumerates the declared axes: every level, every
  check period (for levels with SWC enabled), every ``target_gbps``.
* **Generation 1** refines the best generation-0 SWC configuration
  using the compiler's own selection evidence: one *exclude variant*
  per global the SWC pass considered. Excluding a *cached* global is a
  real trial (it frees CAM capacity for the remaining candidates);
  excluding a *rejected* global provably cannot change the compile, so
  the pruner kills that region before it costs a single simulation,
  citing the rejection decision as provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.options import options_for

#: Default axes: the two strongest paper levels, check periods around
#: the stock 16, the stock aggregation target, ME counts 1-4 (the
#: region where the figure curves still climb).
DEFAULT_LEVELS = ("PHR", "SWC")
DEFAULT_CHECK_PERIODS = (4, 16, 64)
DEFAULT_TARGETS = (2.5,)
DEFAULT_ME_COUNTS = (1, 2, 3, 4)


@dataclass(frozen=True)
class TrialConfig:
    """One point in CompilerOptions space (identity, not results)."""

    level: str
    #: Sorted (field, value) pairs applied over the level's options --
    #: the same shape :class:`repro.sweep.orchestrator.SweepJob` carries.
    overrides: Tuple[Tuple[str, object], ...] = ()
    target_gbps: float = 2.5

    def overrides_or_none(self) -> Optional[Tuple]:
        return self.overrides or None

    def override_dict(self) -> Dict[str, object]:
        return dict(self.overrides)

    def label(self) -> str:
        """Stable human/report key, e.g. ``SWC[swc_check_period=64]``."""
        parts = []
        for name, value in self.overrides:
            if name == "swc_exclude":
                value = "+".join(value)
            parts.append("%s=%s" % (name, value))
        out = self.level
        if parts:
            out += "[%s]" % ",".join(parts)
        if self.target_gbps != 2.5:
            out += "@%.3gGbps" % self.target_gbps
        return out

    def sort_key(self) -> Tuple:
        return (self.level, repr(self.overrides), self.target_gbps)


@dataclass(frozen=True)
class SearchSpace:
    """The declared axes of one app's tuning run."""

    app: str
    levels: Tuple[str, ...] = DEFAULT_LEVELS
    check_periods: Tuple[int, ...] = DEFAULT_CHECK_PERIODS
    target_gbps: Tuple[float, ...] = DEFAULT_TARGETS
    me_counts: Tuple[int, ...] = DEFAULT_ME_COUNTS
    #: Configurations confirmed cycle-accurately (the frontier size).
    confirm_top: int = 4

    def describe(self) -> Dict[str, object]:
        return {
            "levels": list(self.levels),
            "check_periods": list(self.check_periods),
            "target_gbps": list(self.target_gbps),
            "me_counts": list(self.me_counts),
            "confirm_top": self.confirm_top,
        }


def base_trials(space: SearchSpace) -> List[TrialConfig]:
    """Generation 0: the declared axes, in deterministic order."""
    trials: List[TrialConfig] = []
    for target in space.target_gbps:
        for level in space.levels:
            if options_for(level).swc:
                for period in space.check_periods:
                    trials.append(TrialConfig(
                        level,
                        (("swc_check_period", period),),
                        target))
            else:
                trials.append(TrialConfig(level, (), target))
    trials.sort(key=TrialConfig.sort_key)
    return trials


def exclude_trials(base: TrialConfig,
                   swc_summary: Dict) -> List[TrialConfig]:
    """Generation 1: one exclude variant of ``base`` per global the SWC
    pass considered (cached or rejected), per its selection evidence
    (``JobResult.swc``). The pruner decides which variants are no-ops.
    """
    names = sorted(set(swc_summary.get("cached", []))
                   | set(swc_summary.get("rejected", {})))
    variants: List[TrialConfig] = []
    for name in names:
        overrides = dict(base.overrides)
        overrides["swc_exclude"] = (name,)
        variants.append(TrialConfig(
            base.level,
            tuple(sorted(overrides.items())),
            base.target_gbps))
    return variants
