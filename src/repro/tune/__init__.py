"""``repro.tune``: evidence-pruned autotuner over the evaluation grid.

Searches CompilerOptions (SWC candidate sets and check periods),
aggregation ``target_gbps`` and ME counts for the configuration that
maximizes an app's forwarding rate, using the fast-forward engine to
explore and the cycle-accurate simulator to confirm, with ledger-style
evidence pruning the space. See :mod:`repro.tune.driver` for the trial
protocol and ``DESIGN.md`` section 14 for the full design.
"""

from repro.tune.driver import TuneOutcome, committed_baseline, run_tune
from repro.tune.pruner import PrunedRegion
from repro.tune.space import SearchSpace, TrialConfig

__all__ = ["SearchSpace", "TrialConfig", "TuneOutcome", "PrunedRegion",
           "run_tune", "committed_baseline"]
