"""Deterministic search driver for ``repro.tune``.

The trial protocol is two-engine (fast-forward to explore, cycle-
accurate to confirm) and four-phase, with evidence pruning between
phases:

1. **seed** -- compile one representative SWC configuration per
   ``target_gbps`` (lowest check period; the compile cache makes this
   free when the grid reuses it). Its selection evidence drives the
   *period-beyond-clamp* rule before any exploration.
2. **explore** -- every surviving generation-0 configuration at every
   ME count through ``run_sweep(engine="fastforward")``.
3. **refine** -- exclude variants of the best-exploring SWC
   configuration, *noop-exclude*-pruned against its own selection
   evidence, then explored the same way.
4. **confirm** -- the ``confirm_top`` best configurations by explored
   rate re-run cycle-accurately (the figures' engine and windows) in
   ascending-ME waves with the stall profiler attached; the
   *memory-bound-mes* rule prunes the remaining waves of a family as
   verdicts arrive.

Everything the driver emits is deterministic: rates are simulation
outputs, trial order is sort-key order, pruning depends only on
recorded evidence -- so ``--jobs 1`` and ``--jobs N`` produce
byte-identical ``BENCH_tune.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.options import options_for
from repro.sweep.cache import CompileCache, repo_root
from repro.sweep.orchestrator import (
    FIG_BY_APP,
    RATE_MEASURE,
    RATE_WARMUP,
    TRACE_PACKETS,
    TRACE_SEED,
    SweepJob,
    WorkerConfig,
    run_sweep,
    swc_summary,
)
from repro.tune import pruner
from repro.tune.space import (
    SearchSpace,
    TrialConfig,
    base_trials,
    exclude_trials,
)


@dataclass
class Cell:
    """One evaluated (configuration, ME count) grid cell."""

    config: TrialConfig
    n_mes: int
    explore_gbps: Optional[float] = None
    explore_mode: Optional[str] = None  # fast-forward pricing mode
    confirmed_gbps: Optional[float] = None

    def key(self) -> Tuple:
        return self.config.sort_key() + (self.n_mes,)


@dataclass
class TuneOutcome:
    """Everything one app's tuning run learned."""

    app: str
    space: SearchSpace
    cells: List[Cell] = field(default_factory=list)
    pruned: List[pruner.PrunedRegion] = field(default_factory=list)
    frontier: List[TrialConfig] = field(default_factory=list)
    swc_evidence: Optional[Dict] = None  # best SWC config's selection facts
    best: Optional[Cell] = None
    baseline: Optional[Dict] = None  # committed figure rate it must beat

    def improvement_pct(self) -> Optional[float]:
        if (self.best is None or self.best.confirmed_gbps is None
                or not self.baseline or not self.baseline.get("gbps")):
            return None
        base = float(self.baseline["gbps"])
        return round(100.0 * (self.best.confirmed_gbps - base) / base, 2)


def _worker_config(cache: CompileCache, trace_packets: int, trace_seed: int,
                   **kw) -> WorkerConfig:
    return WorkerConfig(
        cache_dir=cache.cache_dir, use_cache=cache.enabled,
        trace_packets=trace_packets, trace_seed=trace_seed,
        obs=obs_metrics.get_registry().enabled,
        capture_spans=obs_trace.spans_armed(),
        ledger=obs_ledger.is_enabled(), **kw)


def _jobs_for(app: str, configs: List[TrialConfig], me_counts: List[int],
              warmup: int, measure: int) -> List[SweepJob]:
    return [SweepJob(app, c.level, "rate", n, warmup, measure,
                     overrides=c.overrides_or_none(),
                     target_gbps=c.target_gbps)
            for c in configs for n in me_counts]


def _cells_from(results, configs: List[TrialConfig]) -> Dict[Tuple, Dict]:
    """(config sort_key, n_mes) -> {gbps, mode, swc} from a SweepResult."""
    by_identity = {(c.level, c.overrides_or_none(), c.target_gbps): c
                   for c in configs}
    out: Dict[Tuple, Dict] = {}
    for jr in results.jobs:
        cfg = by_identity.get((jr.job.level, jr.job.overrides,
                               jr.job.target_gbps))
        if cfg is None:
            continue
        mode = (jr.fastforward or {}).get("mode")
        out[cfg.sort_key() + (jr.job.n_mes,)] = {
            "config": cfg, "n_mes": jr.job.n_mes, "gbps": jr.rate_gbps,
            "mode": mode, "swc": jr.swc, "occupancy": jr.occupancy,
        }
    return out


def committed_baseline(app: str, n_mes: int,
                       out_dir: Optional[str] = None) -> Optional[Dict]:
    """The committed figure file's default-SWC rate at ``n_mes`` -- the
    number a tuned configuration has to beat."""
    figure = FIG_BY_APP.get(app, app)
    path = os.path.join(out_dir or repo_root(), "BENCH_%s.json" % figure)
    try:
        with open(path) as fh:
            data = json.load(fh)
        counts = list(data["me_counts"])
        rate = float(data["rates"]["SWC"][counts.index(n_mes)])
    except (OSError, ValueError, KeyError, IndexError, TypeError):
        return None
    return {"level": "SWC", "n_mes": n_mes, "gbps": rate,
            "source": os.path.basename(path)}


def run_tune(space: SearchSpace, n_jobs: int = 1,
             cache: Optional[CompileCache] = None,
             cache_dir: Optional[str] = None,
             use_cache: Optional[bool] = None,
             trace_packets: int = TRACE_PACKETS,
             trace_seed: int = TRACE_SEED,
             warmup: int = RATE_WARMUP,
             measure: int = RATE_MEASURE,
             baseline_dir: Optional[str] = None,
             progress=None) -> TuneOutcome:
    """Search ``space`` and return the learned outcome (no files
    written; the CLI/report layer owns output)."""
    say = progress or (lambda msg: None)
    if cache is None:
        cache = CompileCache(cache_dir, enabled=use_cache)
    outcome = TuneOutcome(app=space.app, space=space)
    me_counts = sorted(set(space.me_counts))
    n_cells = len(me_counts)

    # -- phase 1: seed compiles + period pruning ---------------------------------
    gen0 = base_trials(space)
    swc_level = next((lv for lv in space.levels if options_for(lv).swc), None)
    seed_summaries: Dict[float, Dict] = {}
    if swc_level is not None and space.check_periods:
        for target in sorted(set(space.target_gbps)):
            seed_cfg = TrialConfig(
                swc_level,
                (("swc_check_period", min(space.check_periods)),),
                target)
            result, _trace, _hit = cache.get_or_compile(
                space.app, seed_cfg.level, trace_packets, trace_seed,
                overrides=seed_cfg.overrides_or_none(),
                target_gbps=seed_cfg.target_gbps)
            summary = swc_summary(result)
            if summary is not None:
                seed_summaries[target] = summary
                family = [t for t in gen0
                          if t.level == swc_level and t.target_gbps == target]
                others = [t for t in gen0 if t not in family]
                kept, pruned = pruner.prune_clamped_periods(
                    family, summary, n_cells)
                outcome.pruned.extend(pruned)
                gen0 = sorted(others + kept, key=TrialConfig.sort_key)
    say("seed: %d generation-0 configurations (%d pruned)"
        % (len(gen0), len(outcome.pruned)))

    # -- phase 2: explore generation 0 (fast-forward) ----------------------------
    explore_cfg = _worker_config(cache, trace_packets, trace_seed,
                                 engine="fastforward")
    results0 = run_sweep(_jobs_for(space.app, gen0, me_counts,
                                   warmup, measure),
                         n_procs=n_jobs, cache=cache, cfg=explore_cfg)
    explored = _cells_from(results0, gen0)

    # -- phase 3: refine the best SWC configuration with exclude variants --------
    gen1: List[TrialConfig] = []
    swc_gen0 = [c for c in gen0 if options_for(c.level).swc]
    if swc_gen0:
        def _gen0_rate(c: TrialConfig) -> float:
            rates = [explored[c.sort_key() + (n,)]["gbps"]
                     for n in me_counts if c.sort_key() + (n,) in explored]
            return max(rates) if rates else float("-inf")

        best_swc = min(swc_gen0,
                       key=lambda c: (-_gen0_rate(c), c.sort_key()))
        summary = next(
            (explored[best_swc.sort_key() + (n,)]["swc"]
             for n in me_counts
             if explored.get(best_swc.sort_key() + (n,), {}).get("swc")),
            None) or seed_summaries.get(best_swc.target_gbps)
        if summary:
            outcome.swc_evidence = summary
            variants = exclude_trials(best_swc, summary)
            gen1, pruned = pruner.prune_noop_excludes(
                variants, summary, n_cells)
            outcome.pruned.extend(pruned)
            say("refine: %s -> %d exclude variants (%d pruned as no-ops)"
                % (best_swc.label(), len(gen1), len(pruned)))
    if gen1:
        results1 = run_sweep(_jobs_for(space.app, gen1, me_counts,
                                       warmup, measure),
                             n_procs=n_jobs, cache=cache, cfg=explore_cfg)
        explored.update(_cells_from(results1, gen1))

    all_configs = sorted(gen0 + gen1, key=TrialConfig.sort_key)
    for key in sorted(explored, key=repr):
        info = explored[key]
        outcome.cells.append(Cell(config=info["config"], n_mes=info["n_mes"],
                                  explore_gbps=info["gbps"],
                                  explore_mode=info["mode"]))

    # -- phase 4: confirm the frontier cycle-accurately --------------------------
    def best_rate(c: TrialConfig) -> float:
        rates = [explored[c.sort_key() + (n,)]["gbps"] for n in me_counts
                 if c.sort_key() + (n,) in explored]
        return max(rates) if rates else float("-inf")

    frontier = sorted(all_configs,
                      key=lambda c: (-best_rate(c), c.sort_key()))
    frontier = frontier[:max(1, space.confirm_top)]
    outcome.frontier = frontier
    say("confirm: %d configurations x MEs %s, cycle-accurate"
        % (len(frontier), ",".join(map(str, me_counts))))

    confirm_cfg = _worker_config(cache, trace_packets, trace_seed,
                                 engine=None, profile=True)
    alive: Dict[Tuple, List[int]] = {c.sort_key(): list(me_counts)
                                     for c in frontier}
    rates: Dict[Tuple, Dict[int, float]] = {c.sort_key(): {}
                                            for c in frontier}
    occup: Dict[Tuple, Dict[int, Optional[Dict]]] = {c.sort_key(): {}
                                                     for c in frontier}
    cell_index = {c.key(): c for c in outcome.cells}
    for n in me_counts:
        wave = [c for c in frontier if n in alive[c.sort_key()]]
        if not wave:
            continue
        results = run_sweep(_jobs_for(space.app, wave, [n],
                                      warmup, measure),
                            n_procs=n_jobs, cache=cache, cfg=confirm_cfg)
        for key, info in _cells_from(results, wave).items():
            cfg = info["config"]
            rates[cfg.sort_key()][n] = info["gbps"]
            occup[cfg.sort_key()][n] = info["occupancy"]
            cell = cell_index.get(key)
            if cell is None:
                cell = Cell(config=cfg, n_mes=n)
                cell_index[key] = cell
                outcome.cells.append(cell)
            cell.confirmed_gbps = info["gbps"]
        # Occupancy verdicts from this wave prune later waves.
        for c in wave:
            kept, pruned = pruner.prune_memory_bound_mes(
                c, alive[c.sort_key()], rates[c.sort_key()],
                occup[c.sort_key()])
            alive[c.sort_key()] = kept
            outcome.pruned.extend(pruned)

    # -- select the winner -------------------------------------------------------
    confirmed = [c for c in outcome.cells if c.confirmed_gbps is not None]
    if confirmed:
        outcome.best = min(
            confirmed,
            key=lambda c: (-c.confirmed_gbps, c.n_mes, c.config.sort_key()))
        outcome.baseline = committed_baseline(space.app, outcome.best.n_mes,
                                              baseline_dir)
    outcome.cells.sort(key=Cell.key)
    return outcome
