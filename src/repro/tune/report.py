"""Report layer for ``repro.tune``: the diffable ``BENCH_tune.json``
payload and the human summary.

The payload is **byte-reproducible**: every field is a simulation
output, a configuration identity, or recorded evidence -- never a
wall-clock time, a cache-hit flag, or a path. Repeated runs over the
same space therefore write identical bytes (CI double-runs ``cmp``),
and ``python -m repro.obs.diff`` gates regressions via the
``bench_tune`` kind.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.sweep.benchio import merge_bench_json
from repro.sweep.cache import repo_root
from repro.tune.driver import Cell, TuneOutcome


def _config_record(cell: Cell) -> Dict[str, object]:
    overrides = {}
    for name, value in cell.config.overrides:
        overrides[name] = list(value) if isinstance(value, tuple) else value
    return {
        "config": cell.config.label(),
        "level": cell.config.level,
        "overrides": overrides,
        "target_gbps": cell.config.target_gbps,
        "n_mes": cell.n_mes,
    }


def _cell_record(cell: Cell) -> Dict[str, object]:
    rec = _config_record(cell)
    if cell.explore_gbps is not None:
        rec["explore_gbps"] = round(cell.explore_gbps, 4)
        rec["explore_mode"] = cell.explore_mode
    if cell.confirmed_gbps is not None:
        rec["confirmed_gbps"] = round(cell.confirmed_gbps, 3)
    return rec


def app_payload(outcome: TuneOutcome) -> Dict[str, object]:
    """One app's entry under the payload's ``apps`` key."""
    best = None
    if outcome.best is not None:
        best = _cell_record(outcome.best)
        best["baseline"] = outcome.baseline
        best["improvement_pct"] = outcome.improvement_pct()
    return {
        "space": outcome.space.describe(),
        "trials": [_cell_record(c) for c in outcome.cells],
        "pruned_regions": [p.to_record() for p in outcome.pruned],
        "frontier": [c.label() for c in outcome.frontier],
        "best": best,
    }


def tune_payload(outcomes: List[TuneOutcome]) -> Dict[str, object]:
    return {"apps": {o.app: app_payload(o) for o in outcomes}}


def write_bench(outcomes: List[TuneOutcome],
                out_dir: Optional[str] = None) -> str:
    path = os.path.join(out_dir or repo_root(), "BENCH_tune.json")
    return merge_bench_json(path, "tune", tune_payload(outcomes),
                            kind="bench_tune")


def render_text(outcome: TuneOutcome) -> str:
    """The CLI's per-app summary block."""
    lines = ["%s: %d cells explored, %d confirmed, %d regions pruned"
             % (outcome.app,
                sum(1 for c in outcome.cells if c.explore_gbps is not None),
                sum(1 for c in outcome.cells
                    if c.confirmed_gbps is not None),
                len(outcome.pruned))]
    for p in outcome.pruned:
        lines.append("  pruned [%s] %s (%d cells): %s"
                     % (p.rule, p.region, p.trials_skipped,
                        p.provenance.get("why", "")))
    best = outcome.best
    if best is None:
        lines.append("  no configuration confirmed")
        return "\n".join(lines)
    lines.append("  best: %s @%d MEs = %.3f Gbps (cycle-accurate; "
                 "explored %.4f)"
                 % (best.config.label(), best.n_mes,
                    best.confirmed_gbps, best.explore_gbps or 0.0))
    if outcome.baseline:
        delta = outcome.improvement_pct()
        lines.append("  default %s @%d MEs = %.3f Gbps (%s) -> %+0.2f%%"
                     % (outcome.baseline["level"], outcome.baseline["n_mes"],
                        outcome.baseline["gbps"], outcome.baseline["source"],
                        delta if delta is not None else 0.0))
    else:
        lines.append("  no committed baseline to compare against")
    return "\n".join(lines)
