"""Evidence pruning for the ``repro.tune`` search.

Every rule consumes *recorded* evidence -- SWC selection decisions
(``JobResult.swc``, the same facts the decision ledger records) or
occupancy-profiler verdicts -- and kills a search region before it
costs a compile or a simulation. Each kill is returned as a
:class:`PrunedRegion` carrying the provenance (which decision killed
it), which the report and ``BENCH_tune.json`` surface per trial.

Rules:

* **noop-exclude** -- an exclude variant whose every excluded global
  the SWC pass already *rejected* compiles to the identical artifact
  (exclusion only preempts selection, and selection already said no).
  Provenance: the rejection decision.
* **period-beyond-clamp** -- Equation-2 enforcement clamps any
  requested check period above ``floor(1 / eq2_min_check_rate)`` down
  to that bound, so all such periods compile identically: keep one,
  prune the rest. Provenance: the clamp decision fields.
* **memory-bound-mes** -- once a cycle-accurate cell is memory-bound
  on a *saturated* channel and adding the previous ME brought no rate
  gain, higher ME counts only deepen the queue: prune them.
  Provenance: the occupancy verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tune.space import TrialConfig

#: A channel this utilized is "saturated" for the memory-bound ME rule
#: (stricter than the profiler's 75% attribution threshold: rates can
#: still climb a little while the queue fills).
SATURATED_UTILIZATION = 0.95


@dataclass
class PrunedRegion:
    """One killed search region plus the evidence that killed it."""

    region: str  # human-readable subspace, e.g. "SWC[swc_exclude=x]"
    rule: str  # "noop-exclude" | "period-beyond-clamp" | "memory-bound-mes"
    trials_skipped: int  # grid cells never run
    provenance: Dict[str, object] = field(default_factory=dict)

    def to_record(self) -> Dict[str, object]:
        return {"region": self.region, "rule": self.rule,
                "trials_skipped": self.trials_skipped,
                "provenance": dict(self.provenance)}


def prune_noop_excludes(
        trials: Sequence[TrialConfig], swc_summary: Dict, n_cells: int,
) -> Tuple[List[TrialConfig], List[PrunedRegion]]:
    """Split exclude variants into (worth running, provably no-ops).

    ``swc_summary`` is the parent configuration's selection evidence;
    ``n_cells`` is how many grid cells each configuration owns (the ME
    counts a kept trial would be explored at).
    """
    rejected: Dict[str, str] = dict(swc_summary.get("rejected", {}))
    kept: List[TrialConfig] = []
    pruned: List[PrunedRegion] = []
    for trial in trials:
        excl = trial.override_dict().get("swc_exclude", ())
        if excl and all(name in rejected for name in excl):
            pruned.append(PrunedRegion(
                region=trial.label(),
                rule="noop-exclude",
                trials_skipped=n_cells,
                provenance={
                    "pass": "swc",
                    "verdict": "rejected",
                    "decisions": {name: rejected[name] for name in excl},
                    "why": "excluding an already-rejected global cannot "
                           "change the compile",
                }))
        else:
            kept.append(trial)
    return kept, pruned


def prune_clamped_periods(
        trials: Sequence[TrialConfig], swc_summary: Dict, n_cells: int,
) -> Tuple[List[TrialConfig], List[PrunedRegion]]:
    """Collapse check periods beyond the Equation-2 clamp bound.

    ``swc_summary`` must come from a configuration in the same family
    (same level/excludes/target: candidate selection, hence the bound,
    does not depend on the period). When its evidence shows a positive
    ``eq2_min_check_rate``, every requested period above
    ``floor(1/rate)`` compiles to the same clamped artifact: the lowest
    such period is kept as the family representative, the rest pruned.
    """
    rate = float(swc_summary.get("eq2_min_check_rate") or 0.0)
    if rate <= 0.0:
        return list(trials), []
    bound = max(1, int(1.0 / rate))
    over = sorted(
        (t for t in trials
         if int(t.override_dict().get("swc_check_period", 0)) > bound),
        key=lambda t: int(t.override_dict()["swc_check_period"]))
    if len(over) <= 1:
        return list(trials), []
    keep_one, redundant = over[0], over[1:]
    dropped = set(id(t) for t in redundant)
    kept = [t for t in trials if id(t) not in dropped]
    pruned = [PrunedRegion(
        region=t.label(),
        rule="period-beyond-clamp",
        trials_skipped=n_cells,
        provenance={
            "pass": "swc",
            "subject": "check_period",
            "verdict": "clamped",
            "eq2_min_check_rate": rate,
            "max_effective_period": bound,
            "represented_by": keep_one.label(),
            "why": "every period above the Equation-2 bound clamps to "
                   "the same effective period",
        }) for t in redundant]
    return kept, pruned


def saturated_memory_bound(occupancy: Optional[Dict]) -> Optional[Dict]:
    """The binding-channel facts when an occupancy cell is memory-bound
    on a saturated channel, else None."""
    if not occupancy:
        return None
    verdict = occupancy.get("verdict", {})
    if verdict.get("kind") != "memory-bound":
        return None
    channel = verdict.get("channel")
    stats = occupancy.get("channels", {}).get(channel, {})
    util = float(stats.get("utilization", 0.0))
    if util < SATURATED_UTILIZATION:
        return None
    return {"channel": channel, "utilization": util,
            "verdict": verdict.get("text", "memory-bound")}


def prune_memory_bound_mes(
        config: TrialConfig,
        me_counts: Sequence[int],
        rates_by_me: Dict[int, float],
        occupancy_by_me: Dict[int, Optional[Dict]],
) -> Tuple[List[int], List[PrunedRegion]]:
    """ME counts still worth confirming for ``config``, given the
    cycle-accurate cells measured so far (ascending waves).

    A count is pruned when some lower count is memory-bound on a
    saturated channel *and* its rate did not improve on the count
    below it -- more engines then only lengthen the memory queue.
    """
    counts = sorted(me_counts)
    for i, n in enumerate(counts):
        if n not in rates_by_me:
            continue
        facts = saturated_memory_bound(occupancy_by_me.get(n))
        if facts is None:
            continue
        prev = counts[i - 1] if i > 0 else None
        if prev is not None and prev in rates_by_me \
                and rates_by_me[n] > rates_by_me[prev]:
            continue  # still scaling despite the saturated channel
        above = [m for m in counts if m > n]
        if not above:
            return counts, []
        kept = [m for m in counts if m <= n]
        pruned = [PrunedRegion(
            region="%s @%d..%d MEs" % (config.label(), above[0], above[-1]),
            rule="memory-bound-mes",
            trials_skipped=len(above),
            provenance=dict(facts, n_mes=n,
                            rate_gbps=rates_by_me[n],
                            prev_rate_gbps=(rates_by_me.get(prev)
                                            if prev is not None else None),
                            why="saturated memory channel with no rate "
                                "gain over the previous ME count"),
        )]
        return kept, pruned
    return counts, []
