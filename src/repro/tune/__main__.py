"""CLI: tune one or more apps over the sweep grid.

Usage::

    python -m repro.tune --app mpls

explores CompilerOptions x SWC candidate sets/check periods x
``target_gbps`` x ME counts with the fast-forward engine, confirms the
frontier cycle-accurately, and writes a byte-reproducible
``BENCH_tune.json`` (plus a per-app summary naming every pruned search
region and its evidence). Compare runs with
``python -m repro.obs.diff`` (kind ``bench_tune``, exit 2 on
regression).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.obs import ledger as obs_ledger
from repro.options import LEVEL_ORDER
from repro.sweep.cache import CompileCache, repo_root
from repro.sweep.orchestrator import (
    RATE_MEASURE,
    RATE_WARMUP,
    TRACE_PACKETS,
    TRACE_SEED,
)
from repro.tune.driver import run_tune
from repro.tune.report import render_text, write_bench
from repro.tune.space import (
    DEFAULT_CHECK_PERIODS,
    DEFAULT_LEVELS,
    DEFAULT_ME_COUNTS,
    DEFAULT_TARGETS,
    SearchSpace,
)


def _csv(value: str):
    return [item.strip() for item in value.split(",") if item.strip()]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Evidence-pruned autotuner: search compiler "
                    "configurations for the best forwarding rate, "
                    "fast-forward to explore, cycle-accurate to "
                    "confirm.")
    ap.add_argument("--app", action="append", dest="app_list",
                    metavar="APP",
                    help="app to tune (repeatable; default: mpls)")
    ap.add_argument("--apps", default=None, dest="apps_csv", metavar="A,B",
                    help="comma-separated apps (alternative to --app)")
    ap.add_argument("--levels", default=",".join(DEFAULT_LEVELS),
                    help="comma-separated optimization levels to search "
                         "(default: %(default)s)")
    ap.add_argument("--check-periods",
                    default=",".join(map(str, DEFAULT_CHECK_PERIODS)),
                    help="SWC check periods to search (default: "
                         "%(default)s)")
    ap.add_argument("--target-gbps",
                    default=",".join(map(str, DEFAULT_TARGETS)),
                    help="aggregation targets to search (default: "
                         "%(default)s)")
    ap.add_argument("--me-counts",
                    default=",".join(map(str, DEFAULT_ME_COUNTS)),
                    help="ME counts to search (default: %(default)s)")
    ap.add_argument("--confirm-top", type=int, default=4, metavar="K",
                    help="configurations confirmed cycle-accurately "
                         "(default: %(default)s)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes; 1 runs inline and is "
                         "byte-identical to N>1 (default: %(default)s)")
    ap.add_argument("--warmup", type=int, default=RATE_WARMUP,
                    help="warm-up packets per confirm run (default: "
                         "%(default)s)")
    ap.add_argument("--measure", type=int, default=RATE_MEASURE,
                    help="measured packets per confirm run (default: "
                         "%(default)s)")
    ap.add_argument("--trace-packets", type=int, default=TRACE_PACKETS,
                    help="profiling-trace packets per compile (default: "
                         "%(default)s)")
    ap.add_argument("--trace-seed", type=int, default=TRACE_SEED,
                    help="profiling-trace seed (default: %(default)s)")
    ap.add_argument("--out-dir", default=None, metavar="DIR",
                    help="directory for BENCH_tune.json (default: repo "
                         "root)")
    ap.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="compile-artifact cache directory (default: "
                         "$REPRO_CACHE_DIR or <repo>/.repro_cache/compile)")
    ap.add_argument("--no-cache", action="store_true",
                    help="bypass the on-disk compile cache")
    ap.add_argument("--metrics-jsonl", default=None, metavar="PATH",
                    help="metrics output (appended under a run header; "
                         "default: benchmarks/results/metrics.jsonl)")
    args = ap.parse_args(argv)

    # Fail fast on a bad space, naming the offending token -- not a
    # KeyError (or a hang) deep inside a spawned worker.
    from repro.apps import APP_CLASSES

    apps = list(args.app_list or []) + _csv(args.apps_csv or "")
    if not apps:
        apps = ["mpls"]
    bad = [a for a in apps if a not in APP_CLASSES]
    if bad:
        ap.error("unknown apps: %s (choose from %s)"
                 % (",".join(bad), ",".join(sorted(APP_CLASSES))))
    levels = _csv(args.levels)
    bad = [lv for lv in levels if lv not in LEVEL_ORDER]
    if bad:
        ap.error("unknown levels: %s (choose from %s)"
                 % (",".join(bad), ",".join(LEVEL_ORDER)))
    try:
        me_counts = [int(n) for n in _csv(args.me_counts)]
        periods = [int(p) for p in _csv(args.check_periods)]
        targets = [float(t) for t in _csv(args.target_gbps)]
    except ValueError as exc:
        ap.error("bad numeric list: %s" % exc)
    bad = [n for n in me_counts if n < 1]
    if bad:
        ap.error("--me-counts values must be >= 1, got %s"
                 % ",".join(map(str, bad)))
    bad = [p for p in periods if p < 1]
    if bad:
        ap.error("--check-periods values must be >= 1, got %s"
                 % ",".join(map(str, bad)))
    if not me_counts:
        ap.error("--me-counts must name at least one ME count")
    if args.jobs < 1:
        ap.error("--jobs must be >= 1, got %d" % args.jobs)
    if args.confirm_top < 1:
        ap.error("--confirm-top must be >= 1, got %d" % args.confirm_top)

    reg = obs.enable()
    obs_ledger.enable()  # pruning provenance rides on compile decisions
    cache = CompileCache(args.cache_dir, enabled=not args.no_cache)
    t0 = time.perf_counter()
    outcomes = []
    for app in apps:
        space = SearchSpace(app=app, levels=tuple(levels),
                            check_periods=tuple(sorted(set(periods))),
                            target_gbps=tuple(sorted(set(targets))),
                            me_counts=tuple(sorted(set(me_counts))),
                            confirm_top=args.confirm_top)
        print("tune %s: levels %s, periods %s, targets %s, MEs %s, "
              "confirm top %d, %d process%s"
              % (app, ",".join(levels),
                 ",".join(map(str, space.check_periods)),
                 ",".join(map(str, space.target_gbps)),
                 ",".join(map(str, space.me_counts)),
                 space.confirm_top, args.jobs,
                 "" if args.jobs == 1 else "es"))
        outcome = run_tune(space, n_jobs=args.jobs, cache=cache,
                           trace_packets=args.trace_packets,
                           trace_seed=args.trace_seed,
                           warmup=args.warmup, measure=args.measure,
                           progress=lambda m: print("  " + m))
        outcomes.append(outcome)
        print(render_text(outcome))

    out_dir = args.out_dir or repo_root()
    os.makedirs(out_dir, exist_ok=True)
    path = write_bench(outcomes, out_dir)

    metrics_path = args.metrics_jsonl or os.path.join(
        repo_root(), "benchmarks", "results", "metrics.jsonl")
    run_id = "tune-%s-p%d" % (
        time.strftime("%Y%m%dT%H%M%S", time.gmtime()), os.getpid())
    reg.dump_jsonl(metrics_path, append=True,
                   header={"run": run_id, "source": "repro.tune",
                           "jobs": args.jobs, "apps": apps,
                           "levels": levels})

    print("\ntuned %d app%s in %.1fs wall; compile cache: %d hit%s, "
          "%d compile%s"
          % (len(apps), "" if len(apps) == 1 else "s",
             time.perf_counter() - t0,
             cache.hits, "" if cache.hits == 1 else "s",
             cache.misses, "" if cache.misses == 1 else "s"))
    print("wrote %s" % path)
    print("metrics: %s (run %s)" % (metrics_path, run_id))
    return 0


if __name__ == "__main__":
    sys.exit(main())
