"""Liveness analysis over IR temps (backward may-analysis)."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.cfg import compute_cfg
from repro.ir.dataflow import DataflowProblem, solve
from repro.ir.module import BasicBlock, IRFunction
from repro.ir.values import Temp


class _Liveness(DataflowProblem[FrozenSet[Temp]]):
    direction = "backward"

    def boundary(self, fn: IRFunction) -> FrozenSet[Temp]:
        return frozenset()

    def initial(self, fn: IRFunction) -> FrozenSet[Temp]:
        return frozenset()

    def meet(self, a: FrozenSet[Temp], b: FrozenSet[Temp]) -> FrozenSet[Temp]:
        return a | b

    def transfer(self, bb: BasicBlock, live_out: FrozenSet[Temp]) -> FrozenSet[Temp]:
        live: Set[Temp] = set(live_out)
        for instr in reversed(list(bb.all_instrs())):
            for d in instr.defs():
                live.discard(d)
            for u in instr.uses():
                if isinstance(u, Temp):
                    live.add(u)
        return frozenset(live)


class LivenessInfo:
    """Block-level live-in/live-out sets plus an iterator producing
    per-instruction live-out sets (for register allocation)."""

    def __init__(self, fn: IRFunction):
        compute_cfg(fn)
        result = solve(_Liveness(), fn)
        self.fn = fn
        self.live_in: Dict[BasicBlock, FrozenSet[Temp]] = result.inp
        self.live_out: Dict[BasicBlock, FrozenSet[Temp]] = result.out

    def instr_live_out(self, bb: BasicBlock) -> List[Tuple[object, Set[Temp]]]:
        """Returns [(instr, live_out_after_instr)] in block order."""
        live: Set[Temp] = set(self.live_out.get(bb, frozenset()))
        rows: List[Tuple[object, Set[Temp]]] = []
        for instr in reversed(list(bb.all_instrs())):
            rows.append((instr, set(live)))
            for d in instr.defs():
                live.discard(d)
            for u in instr.uses():
                if isinstance(u, Temp):
                    live.add(u)
        rows.reverse()
        return rows


def liveness(fn: IRFunction) -> LivenessInfo:
    return LivenessInfo(fn)
