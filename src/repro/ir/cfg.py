"""CFG utilities: edge computation, orderings, cleanup."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.instructions import Branch, Jump
from repro.ir.module import BasicBlock, IRFunction
from repro.ir.values import Const


def compute_cfg(fn: IRFunction) -> None:
    """(Re)compute pred/succ lists for every block."""
    for bb in fn.blocks:
        bb.preds = []
        bb.succs = []
    for bb in fn.blocks:
        for succ in bb.successors():
            bb.succs.append(succ)
            succ.preds.append(bb)


def reverse_postorder(fn: IRFunction) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable blocks
    excluded). Assumes compute_cfg has run."""
    visited: Set[BasicBlock] = set()
    post: List[BasicBlock] = []

    def visit(bb: BasicBlock) -> None:
        stack = [(bb, iter(bb.succs))]
        visited.add(bb)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.succs)))
                    advanced = True
                    break
            if not advanced:
                post.append(node)
                stack.pop()

    visit(fn.entry)
    return list(reversed(post))


def remove_unreachable(fn: IRFunction) -> int:
    """Delete blocks not reachable from the entry. Returns removal count."""
    compute_cfg(fn)
    reachable = set(reverse_postorder(fn))
    removed = [bb for bb in fn.blocks if bb not in reachable]
    if removed:
        fn.blocks = [bb for bb in fn.blocks if bb in reachable]
        compute_cfg(fn)
    return len(removed)


def simplify_cfg(fn: IRFunction) -> bool:
    """Classic CFG cleanup, iterated to fixpoint:

    * constant branches become jumps;
    * jump-to-jump (empty block) threading;
    * merge a block into its unique predecessor when that pred has a
      single successor.

    Returns True if anything changed.
    """
    changed_any = False
    while True:
        changed = False
        remove_unreachable(fn)

        # Constant branches -> jumps.
        for bb in fn.blocks:
            term = bb.terminator
            if isinstance(term, Branch) and isinstance(term.cond, Const):
                target = term.then_bb if term.cond.value != 0 else term.else_bb
                bb.terminator = Jump(target)
                changed = True
            elif isinstance(term, Branch) and term.then_bb is term.else_bb:
                bb.terminator = Jump(term.then_bb)
                changed = True

        compute_cfg(fn)

        # Thread jumps through empty forwarding blocks.
        forward: Dict[BasicBlock, BasicBlock] = {}
        for bb in fn.blocks:
            if bb is not fn.entry and not bb.instrs and isinstance(bb.terminator, Jump):
                forward[bb] = bb.terminator.target

        def resolve(bb: BasicBlock) -> BasicBlock:
            seen = set()
            while bb in forward and bb not in seen:
                seen.add(bb)
                bb = forward[bb]
            return bb

        if forward:
            for bb in fn.blocks:
                term = bb.terminator
                if isinstance(term, Jump):
                    target = resolve(term.target)
                    if target is not term.target:
                        term.target = target
                        changed = True
                elif isinstance(term, Branch):
                    t, e = resolve(term.then_bb), resolve(term.else_bb)
                    if t is not term.then_bb or e is not term.else_bb:
                        term.then_bb, term.else_bb = t, e
                        changed = True
            remove_unreachable(fn)

        # Merge straight-line pairs.
        compute_cfg(fn)
        merged = False
        for bb in list(fn.blocks):
            if isinstance(bb.terminator, Jump):
                succ = bb.terminator.target
                if succ is not fn.entry and succ is not bb and len(succ.preds) == 1:
                    bb.instrs.extend(succ.instrs)
                    bb.terminator = succ.terminator
                    fn.blocks.remove(succ)
                    compute_cfg(fn)
                    merged = True
                    changed = True
                    break  # restart scan; block list changed
        if merged:
            continue

        changed_any = changed_any or changed
        if not changed:
            break
    compute_cfg(fn)
    return changed_any


def split_critical_edges(fn: IRFunction) -> None:
    """Insert empty blocks on edges from multi-successor blocks to
    multi-predecessor blocks."""
    compute_cfg(fn)
    for bb in list(fn.blocks):
        term = bb.terminator
        if not isinstance(term, Branch):
            continue
        for attr in ("then_bb", "else_bb"):
            succ = getattr(term, attr)
            if len(succ.preds) > 1:
                mid = fn.new_block("crit")
                mid.terminate(Jump(succ))
                setattr(term, attr, mid)
    compute_cfg(fn)
