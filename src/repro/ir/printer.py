"""Human-readable IR printing (for debugging and golden tests)."""

from __future__ import annotations

from typing import List

from repro.ir import instructions as I
from repro.ir.module import IRFunction, IRModule


def _fmt(v) -> str:
    return repr(v)


def format_instr(instr: I.Instr) -> str:
    if isinstance(instr, I.Assign):
        return "%s = %s" % (_fmt(instr.dst), _fmt(instr.src))
    if isinstance(instr, I.BinOp):
        return "%s = %s %s, %s" % (_fmt(instr.dst), instr.op, _fmt(instr.a), _fmt(instr.b))
    if isinstance(instr, I.Cmp):
        return "%s = cmp.%s %s, %s" % (_fmt(instr.dst), instr.op, _fmt(instr.a), _fmt(instr.b))
    if isinstance(instr, I.Call):
        args = ", ".join(_fmt(a) for a in instr.args)
        if instr.dst is not None:
            return "%s = call %s(%s)" % (_fmt(instr.dst), instr.func, args)
        return "call %s(%s)" % (instr.func, args)
    if isinstance(instr, I.Jump):
        return "jump %s" % instr.target.label
    if isinstance(instr, I.Branch):
        return "br %s ? %s : %s" % (_fmt(instr.cond), instr.then_bb.label, instr.else_bb.label)
    if isinstance(instr, I.Ret):
        return "ret %s" % _fmt(instr.value) if instr.value is not None else "ret"
    if isinstance(instr, I.LoadG):
        return "%s = loadg %s[%s] w%d" % (_fmt(instr.dst), instr.g, _fmt(instr.offset), instr.width)
    if isinstance(instr, I.LoadGWords):
        dsts = ", ".join(_fmt(d) for d in instr.dsts)
        return "[%s] = loadg_words %s[%s] x%d" % (dsts, instr.g, _fmt(instr.offset),
                                                  instr.nwords)
    if isinstance(instr, I.StoreG):
        return "storeg %s[%s] = %s w%d" % (instr.g, _fmt(instr.offset), _fmt(instr.value), instr.width)
    if isinstance(instr, I.LoadL):
        return "%s = loadl %s[%s] w%d" % (_fmt(instr.dst), instr.array, _fmt(instr.offset), instr.width)
    if isinstance(instr, I.StoreL):
        return "storel %s[%s] = %s w%d" % (instr.array, _fmt(instr.offset), _fmt(instr.value), instr.width)
    if isinstance(instr, I.PktLoadField):
        return "%s = pkt_load %s %s.%s [+%db w%d]%s" % (
            _fmt(instr.dst), _fmt(instr.ph), instr.proto, instr.field,
            instr.bit_off // 8, instr.bit_width, _soar(instr),
        )
    if isinstance(instr, I.PktStoreField):
        return "pkt_store %s %s.%s = %s [+%db w%d]%s" % (
            _fmt(instr.ph), instr.proto, instr.field, _fmt(instr.value),
            instr.bit_off // 8, instr.bit_width, _soar(instr),
        )
    if isinstance(instr, I.PktLoadWords):
        dsts = ", ".join(_fmt(d) for d in instr.dsts)
        return "[%s] = pkt_load_words %s +%d x%d%s" % (
            dsts, _fmt(instr.ph), instr.byte_off, instr.nwords, _soar(instr))
    if isinstance(instr, I.PktStoreWords):
        vals = ", ".join(_fmt(v) for v in instr.values)
        return "pkt_store_words %s +%d x%d = [%s] masks=%s%s" % (
            _fmt(instr.ph), instr.byte_off, instr.nwords, vals,
            [bin(m) for m in instr.byte_masks], _soar(instr))
    if isinstance(instr, I.MetaLoad):
        return "%s = meta_load %s.%s [w%d]" % (_fmt(instr.dst), _fmt(instr.ph), instr.field, instr.word)
    if isinstance(instr, I.MetaStore):
        return "meta_store %s.%s [w%d] = %s" % (_fmt(instr.ph), instr.field, instr.word, _fmt(instr.value))
    if isinstance(instr, I.PktEncap):
        return "%s = pkt_encap %s %s (+%dB)%s" % (
            _fmt(instr.dst), _fmt(instr.src), instr.proto, instr.header_bytes, _soar(instr))
    if isinstance(instr, I.PktDecap):
        size = "%dB" % instr.header_bytes if instr.header_bytes is not None else "dyn"
        return "%s = pkt_decap %s %s->%s (-%s)%s" % (
            _fmt(instr.dst), _fmt(instr.src), instr.src_proto,
            instr.result_proto or "raw", size, _soar(instr))
    if isinstance(instr, I.PktCopy):
        return "%s = pkt_copy %s" % (_fmt(instr.dst), _fmt(instr.src))
    if isinstance(instr, I.PktDrop):
        return "pkt_drop %s" % _fmt(instr.ph)
    if isinstance(instr, I.PktCreate):
        return "%s = pkt_create %s len=%s" % (_fmt(instr.dst), instr.proto, _fmt(instr.length))
    if isinstance(instr, I.PktLength):
        return "%s = pkt_length %s" % (_fmt(instr.dst), _fmt(instr.ph))
    if isinstance(instr, I.PktAdjust):
        return "pkt_%s %s %s" % (instr.op, _fmt(instr.ph), _fmt(instr.amount))
    if isinstance(instr, I.PktSyncHead):
        return "pkt_sync_head %s delta=%+d" % (_fmt(instr.ph), instr.delta_bytes)
    if isinstance(instr, I.CamClear):
        return "cam_clear"
    if isinstance(instr, I.ChanPut):
        return "chan_put %s, %s" % (instr.channel, _fmt(instr.ph))
    if isinstance(instr, I.LockAcquire):
        return "lock_acquire %s" % instr.lock
    if isinstance(instr, I.LockRelease):
        return "lock_release %s" % instr.lock
    if isinstance(instr, I.CamLookup):
        return "%s = cam_lookup %s" % (_fmt(instr.dst), _fmt(instr.key))
    if isinstance(instr, I.CamWrite):
        return "cam_write [%s] = %s" % (_fmt(instr.entry), _fmt(instr.key))
    if isinstance(instr, I.LmLoad):
        return "%s = lm_load [%s]" % (_fmt(instr.dst), _fmt(instr.index))
    if isinstance(instr, I.LmStore):
        return "lm_store [%s] = %s" % (_fmt(instr.index), _fmt(instr.value))
    return "<%s>" % type(instr).__name__


def _soar(instr: I.PktInstr) -> str:
    parts = []
    if getattr(instr, "c_offset_bits", None) is not None:
        parts.append("off=%d" % instr.c_offset_bits)
    if getattr(instr, "c_alignment", None) is not None:
        parts.append("align=%d" % instr.c_alignment)
    return " {%s}" % ", ".join(parts) if parts else ""


def format_function(fn: IRFunction) -> str:
    lines: List[str] = []
    params = ", ".join(repr(p) for p in fn.params)
    lines.append("%s %s(%s):  ; kind=%s" % (fn.ret_type, fn.name, params, fn.kind))
    for arr in fn.local_arrays.values():
        lines.append("  local %s: %s[%d]" % (arr.name, arr.element, arr.length))
    for bb in fn.blocks:
        lines.append("%s:" % bb.label)
        for instr in bb.all_instrs():
            lines.append("  %s" % format_instr(instr))
    return "\n".join(lines)


def format_module(mod: IRModule) -> str:
    return "\n\n".join(format_function(fn) for fn in mod.functions.values())
