"""Shared evaluation semantics for IR arithmetic.

Both the functional interpreter and the constant folder call these, so
compile-time folding can never disagree with runtime evaluation.
"""

from __future__ import annotations


class EvalError(ArithmeticError):
    pass


def to_signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & sign else value


def eval_binop(op: str, a: int, b: int, bits: int) -> int:
    """Evaluate a BinOp; result is masked to ``bits``."""
    mask = (1 << bits) - 1
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "mul":
        return (a * b) & mask
    if op == "and":
        return a & b & mask
    if op == "or":
        return (a | b) & mask
    if op == "xor":
        return (a ^ b) & mask
    if op == "shl":
        return (a << (b & (bits - 1))) & mask
    if op == "lshr":
        return (a & mask) >> (b & (bits - 1))
    if op == "ashr":
        return (to_signed(a, bits) >> (b & (bits - 1))) & mask
    if op == "div_u":
        if b == 0:
            raise EvalError("division by zero")
        return ((a & mask) // (b & mask)) & mask
    if op == "rem_u":
        if b == 0:
            raise EvalError("division by zero")
        return ((a & mask) % (b & mask)) & mask
    if op == "div_s":
        sa, sb = to_signed(a, bits), to_signed(b, bits)
        if sb == 0:
            raise EvalError("division by zero")
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return q & mask
    if op == "rem_s":
        sa, sb = to_signed(a, bits), to_signed(b, bits)
        if sb == 0:
            raise EvalError("division by zero")
        r = abs(sa) % abs(sb)
        if sa < 0:
            r = -r
        return r & mask
    raise EvalError("unknown binop %r" % op)


def eval_cmp(op: str, a: int, b: int, bits: int) -> int:
    """Evaluate a Cmp; ``bits`` is the width used for signed reinterpretation."""
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    if op.endswith("_s"):
        a, b = to_signed(a, bits), to_signed(b, bits)
    base = op[:2]
    if base == "lt":
        return int(a < b)
    if base == "le":
        return int(a <= b)
    if base == "gt":
        return int(a > b)
    if base == "ge":
        return int(a >= b)
    raise EvalError("unknown cmp %r" % op)
