"""IR containers: basic blocks, functions and the module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.baker import types as T
from repro.baker.semantic import CheckedProgram
from repro.baker.symbols import GlobalSymbol
from repro.ir.instructions import Instr, Jump, Ret
from repro.ir.values import Temp


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator.

    ``instrs`` excludes the terminator, which is stored separately in
    ``terminator`` so passes can iterate body instructions without
    worrying about control flow edges.
    """

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []
        self.terminator: Optional[Instr] = None
        # Filled by cfg.compute_cfg():
        self.preds: List["BasicBlock"] = []
        self.succs: List["BasicBlock"] = []

    def append(self, instr: Instr) -> None:
        assert self.terminator is None, "appending to a terminated block"
        assert not instr.is_terminator
        self.instrs.append(instr)

    def terminate(self, instr: Instr) -> None:
        assert instr.is_terminator
        if self.terminator is None:
            self.terminator = instr

    @property
    def terminated(self) -> bool:
        return self.terminator is not None

    def all_instrs(self) -> Iterator[Instr]:
        yield from self.instrs
        if self.terminator is not None:
            yield self.terminator

    def successors(self) -> List["BasicBlock"]:
        if self.terminator is None:
            return []
        return self.terminator.successors()  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return "<bb %s>" % self.label


@dataclass
class LocalArray:
    """A stack-allocated local array (word-granular layout)."""

    name: str
    element: T.Type
    length: int

    @property
    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.length


class IRFunction:
    """One function, PPF or init body in IR form."""

    def __init__(
        self,
        name: str,
        kind: str,  # 'func' | 'ppf' | 'init'
        ret_type: T.Type = T.VOID,
        module: Optional[str] = None,
    ):
        assert kind in ("func", "ppf", "init")
        self.name = name
        self.kind = kind
        self.ret_type = ret_type
        self.module = module
        self.params: List[Temp] = []
        self.blocks: List[BasicBlock] = []
        self.local_arrays: Dict[str, LocalArray] = {}
        self.input_channels: List[str] = []  # PPFs only
        self._next_temp = 0
        self._next_label = 0

    # -- construction helpers -------------------------------------------------

    def new_temp(self, type_: T.Type, hint: str = "") -> Temp:
        t = Temp(self._next_temp, type_, hint)
        self._next_temp += 1
        return t

    def new_block(self, hint: str = "bb") -> BasicBlock:
        bb = BasicBlock("%s%d" % (hint, self._next_label))
        self._next_label += 1
        self.blocks.append(bb)
        return bb

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def all_instrs(self) -> Iterator[Instr]:
        for bb in self.blocks:
            yield from bb.all_instrs()

    def instr_count(self) -> int:
        return sum(1 for _ in self.all_instrs())

    def ensure_terminated(self) -> None:
        """Give any fall-off blocks an explicit return (void functions)."""
        for bb in self.blocks:
            if bb.terminator is None:
                bb.terminate(Ret(None))

    def __repr__(self) -> str:
        return "<IRFunction %s (%s)>" % (self.name, self.kind)


class IRModule:
    """The whole-program IR: all functions plus the front-end tables the
    mid-end needs (globals, protocols, channels, metadata layout)."""

    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.functions: Dict[str, IRFunction] = {}
        self.globals: Dict[str, GlobalSymbol] = dict(checked.globals)
        self.protocols = checked.protocols
        self.channels = checked.channels
        self.meta_fields = checked.meta_fields
        self.meta_words = checked.meta_words
        self.locks = list(checked.locks)

    def add(self, fn: IRFunction) -> None:
        assert fn.name not in self.functions, fn.name
        self.functions[fn.name] = fn

    def ppfs(self) -> List[IRFunction]:
        return [f for f in self.functions.values() if f.kind == "ppf"]

    def funcs(self) -> List[IRFunction]:
        return [f for f in self.functions.values() if f.kind == "func"]

    def inits(self) -> List[IRFunction]:
        return [f for f in self.functions.values() if f.kind == "init"]

    def __repr__(self) -> str:
        return "<IRModule %d functions>" % len(self.functions)
