"""Typed three-address IR with first-class packet operations.

This plays the role of WHIRL in the paper's ORC-based compiler: the
functional profiler interprets it, the scalar and packet optimizations
transform it, and the code generator lowers it to CGIR.
"""

from repro.ir import instructions
from repro.ir.module import BasicBlock, IRFunction, IRModule, LocalArray
from repro.ir.values import Const, Operand, Temp

__all__ = [
    "instructions",
    "BasicBlock",
    "IRFunction",
    "IRModule",
    "LocalArray",
    "Const",
    "Operand",
    "Temp",
]
