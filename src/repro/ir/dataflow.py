"""A small generic dataflow framework.

Problems supply per-block transfer functions and a meet over lattice
values; the solver runs a worklist to fixpoint. Used by liveness, SOAR
(static offset / alignment determination) and the scalar optimizations.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterable, List, TypeVar

from repro.ir.cfg import compute_cfg, reverse_postorder
from repro.ir.module import BasicBlock, IRFunction

L = TypeVar("L")  # lattice value type


class DataflowProblem(Generic[L]):
    """Subclass and override; direction is 'forward' or 'backward'."""

    direction = "forward"

    def boundary(self, fn: IRFunction) -> L:
        """Value at the entry (forward) or exits (backward)."""
        raise NotImplementedError

    def initial(self, fn: IRFunction) -> L:
        """Optimistic initial value for interior blocks."""
        raise NotImplementedError

    def meet(self, a: L, b: L) -> L:
        raise NotImplementedError

    def transfer(self, bb: BasicBlock, value: L) -> L:
        raise NotImplementedError

    def equal(self, a: L, b: L) -> bool:
        return a == b


class DataflowResult(Generic[L]):
    def __init__(self, inp: Dict[BasicBlock, L], out: Dict[BasicBlock, L]):
        self.inp = inp
        self.out = out


def solve(problem: DataflowProblem[L], fn: IRFunction) -> DataflowResult[L]:
    compute_cfg(fn)
    order = reverse_postorder(fn)
    forward = problem.direction == "forward"
    if not forward:
        order = list(reversed(order))

    inp: Dict[BasicBlock, L] = {}
    out: Dict[BasicBlock, L] = {}
    boundary = problem.boundary(fn)
    for bb in order:
        inp[bb] = problem.initial(fn)
        out[bb] = problem.initial(fn)

    work: List[BasicBlock] = list(order)
    in_work = set(work)
    while work:
        bb = work.pop(0)
        in_work.discard(bb)
        if forward:
            neighbors = [p for p in bb.preds if p in out]
            if neighbors:
                acc = out[neighbors[0]]
                for p in neighbors[1:]:
                    acc = problem.meet(acc, out[p])
            else:
                acc = boundary
            inp[bb] = acc
            new_out = problem.transfer(bb, acc)
            if not problem.equal(new_out, out[bb]):
                out[bb] = new_out
                for succ in bb.succs:
                    if succ not in in_work and succ in inp:
                        work.append(succ)
                        in_work.add(succ)
        else:
            neighbors = [s for s in bb.succs if s in inp]
            if neighbors:
                acc = inp[neighbors[0]]
                for s in neighbors[1:]:
                    acc = problem.meet(acc, inp[s])
            else:
                acc = boundary
            out[bb] = acc
            new_in = problem.transfer(bb, acc)
            if not problem.equal(new_in, inp[bb]):
                inp[bb] = new_in
                for pred in bb.preds:
                    if pred not in in_work and pred in out:
                        work.append(pred)
                        in_work.add(pred)
    return DataflowResult(inp, out)
