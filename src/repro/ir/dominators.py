"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import compute_cfg, reverse_postorder
from repro.ir.module import BasicBlock, IRFunction


class DomTree:
    """Immediate-dominator tree over the blocks of one function.

    ``idom[entry] is entry`` by convention; unreachable blocks are absent.
    """

    def __init__(self, idom: Dict[BasicBlock, BasicBlock], order: List[BasicBlock]):
        self.idom = idom
        self.order = order  # reverse postorder
        self._index = {bb: i for i, bb in enumerate(order)}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {bb: [] for bb in order}
        for bb in order:
            parent = idom.get(bb)
            if parent is not None and parent is not bb:
                self.children[parent].append(bb)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            parent = self.idom.get(node)
            if parent is node:
                return False
            node = parent
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)


def _build(order: List[BasicBlock], preds_of) -> Dict[BasicBlock, BasicBlock]:
    index = {bb: i for i, bb in enumerate(order)}
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {bb: None for bb in order}
    entry = order[0]
    idom[entry] = entry

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for bb in order[1:]:
            new_idom: Optional[BasicBlock] = None
            for pred in preds_of(bb):
                if pred not in index:
                    continue  # unreachable pred
                if idom[pred] is not None:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom[bb] is not new_idom:
                idom[bb] = new_idom
                changed = True
    return {bb: d for bb, d in idom.items() if d is not None}


def dominator_tree(fn: IRFunction) -> DomTree:
    compute_cfg(fn)
    order = reverse_postorder(fn)
    return DomTree(_build(order, lambda bb: bb.preds), order)


def postdominator_tree(fn: IRFunction) -> DomTree:
    """Post-dominators computed on the reversed CFG. Multiple exits are
    handled with a virtual exit block whose preds are all Ret blocks; the
    virtual block is stripped from the result."""
    compute_cfg(fn)
    exits = [bb for bb in fn.blocks if not bb.succs]
    virtual = BasicBlock("<exit>")
    virtual.preds = exits

    # Reverse-graph reverse postorder starting from the virtual exit.
    visited = {virtual}
    post: List[BasicBlock] = []

    def visit(bb: BasicBlock) -> None:
        stack = [(bb, iter(bb.preds))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for pred in it:
                if pred not in visited:
                    visited.add(pred)
                    stack.append((pred, iter(pred.preds)))
                    advanced = True
                    break
            if not advanced:
                post.append(node)
                stack.pop()

    visit(virtual)
    order = list(reversed(post))

    def rev_preds(bb: BasicBlock) -> List[BasicBlock]:
        if bb is virtual:
            return []
        succs = list(bb.succs)
        if not succs:
            return [virtual]
        return succs

    idom = _build(order, rev_preds)
    # Remap virtual-exit parents to self-loops on real exits.
    cleaned: Dict[BasicBlock, BasicBlock] = {}
    for bb, d in idom.items():
        if bb is virtual:
            continue
        cleaned[bb] = bb if d is virtual else d
    return DomTree(cleaned, [bb for bb in order if bb is not virtual])
