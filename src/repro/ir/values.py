"""IR values: virtual registers (temps) and constants.

The IR is a typed three-address code. Operands are either :class:`Temp`
(virtual registers, unlimited supply per function) or :class:`Const`.
Types are shared with the Baker front-end (:mod:`repro.baker.types`);
packet handles and channel references are first-class value types so
packet primitives can remain analyzable IR operations.
"""

from __future__ import annotations

from typing import Union

from repro.baker import types as T


class Value:
    """Base class for IR operands."""

    type: T.Type


class Temp(Value):
    """A virtual register. Identity-based equality; ``id`` is unique within
    its function. ``hint`` carries a source-level name for readability."""

    __slots__ = ("id", "type", "hint")

    def __init__(self, id: int, type: T.Type, hint: str = ""):
        self.id = id
        self.type = type
        self.hint = hint

    def __repr__(self) -> str:
        if self.hint:
            return "%%%d<%s>" % (self.id, self.hint)
        return "%%%d" % self.id

    @property
    def name(self) -> str:
        return "%%%d" % self.id


class Const(Value):
    """An integer constant (also used for bool). Values are stored as
    arbitrary-precision ints; consumers mask to the type width."""

    __slots__ = ("value", "type")

    def __init__(self, value: int, type: T.Type = T.U32):
        self.value = value
        self.type = type

    def __repr__(self) -> str:
        if self.value >= 4096 or self.value < 0:
            return "#%#x" % self.value
        return "#%d" % self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value and other.type == self.type

    def __hash__(self) -> int:
        return hash((self.value, str(self.type)))


Operand = Union[Temp, Const]


def is_const(v: object, value: int = None) -> bool:
    """True if ``v`` is a Const (optionally equal to ``value``)."""
    if not isinstance(v, Const):
        return False
    return value is None or v.value == value
