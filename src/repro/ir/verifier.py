"""IR structural verifier.

Run after lowering and between optimization passes (in tests) to catch
malformed IR early: unterminated blocks, dangling block references, use
of temps from other functions, calls to unknown functions, etc.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import Branch, Call, ChanPut, Jump, LoadG, StoreG
from repro.ir.module import IRFunction, IRModule
from repro.ir.values import Temp


class IRVerifyError(AssertionError):
    pass


def verify_function(fn: IRFunction, mod: IRModule = None) -> None:
    if not fn.blocks:
        raise IRVerifyError("%s: function has no blocks" % fn.name)
    block_set = set(fn.blocks)
    labels: Set[str] = set()
    for bb in fn.blocks:
        if bb.label in labels:
            raise IRVerifyError("%s: duplicate block label %s" % (fn.name, bb.label))
        labels.add(bb.label)
        if bb.terminator is None:
            raise IRVerifyError("%s: block %s is unterminated" % (fn.name, bb.label))
        for instr in bb.instrs:
            if instr.is_terminator:
                raise IRVerifyError(
                    "%s: terminator %r in block body of %s" % (fn.name, instr, bb.label)
                )
        for succ in bb.successors():
            if succ not in block_set:
                raise IRVerifyError(
                    "%s: block %s references dangling block %s"
                    % (fn.name, bb.label, getattr(succ, "label", succ))
                )

    # Defs must precede uses in straight-line order within a block, or the
    # temp must be defined in some other block (we don't enforce full
    # SSA-style dominance, but we do catch temps never defined anywhere).
    defined: Set[Temp] = set(fn.params)
    for bb in fn.blocks:
        for instr in bb.all_instrs():
            defined.update(instr.defs())
    for bb in fn.blocks:
        for instr in bb.all_instrs():
            for use in instr.uses():
                if isinstance(use, Temp) and use not in defined:
                    raise IRVerifyError(
                        "%s: use of undefined temp %r in %r" % (fn.name, use, instr)
                    )

    if mod is not None:
        for bb in fn.blocks:
            for instr in bb.all_instrs():
                if isinstance(instr, Call) and instr.func not in mod.functions:
                    raise IRVerifyError(
                        "%s: call to unknown function %r" % (fn.name, instr.func)
                    )
                if isinstance(instr, (LoadG, StoreG)) and instr.g not in mod.globals:
                    raise IRVerifyError(
                        "%s: access to unknown global %r" % (fn.name, instr.g)
                    )
                if isinstance(instr, ChanPut) and instr.channel not in mod.channels:
                    raise IRVerifyError(
                        "%s: put to unknown channel %r" % (fn.name, instr.channel)
                    )


def verify_module(mod: IRModule) -> None:
    for fn in mod.functions.values():
        verify_function(fn, mod)
