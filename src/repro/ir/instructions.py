"""IR instruction set.

Instructions are small mutable objects. Each class declares which of its
attributes are operand uses (``_uses``) and which are definitions
(``_defs``); generic passes use :meth:`Instr.uses`, :meth:`Instr.defs` and
:meth:`Instr.replace_uses` so they never need to know concrete classes.

Packet primitives (``PktLoadField`` etc.) are first-class instructions --
this is the property the paper's packet optimizations (PAC, SOAR, PHR)
rely on. They carry optional SOAR annotations:

* ``c_offset_bits`` -- statically resolved bit offset of the handle's head
  relative to the start of packet data (``None`` = unknown / ``-offset``);
* ``c_alignment`` -- statically resolved byte alignment of the head
  (``None`` = unknown / ``-alignment``).

A late pass (:mod:`repro.cg.pktlower`) expands surviving packet
instructions into explicit metadata (SRAM) and packet-data (DRAM)
accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baker import types as T
from repro.ir.values import Const, Operand, Temp

# Binary opcodes. Shift/divide have signed/unsigned variants where it
# matters; Baker's checker picks based on operand signedness.
BINOPS = {
    "add", "sub", "mul", "div_u", "div_s", "rem_u", "rem_s",
    "and", "or", "xor", "shl", "lshr", "ashr",
}
CMPOPS = {"eq", "ne", "lt_u", "le_u", "gt_u", "ge_u", "lt_s", "le_s", "gt_s", "ge_s"}

# Opcodes with no side effects (eligible for DCE/CSE when result unused).
_PURE = True


class Instr:
    """Base instruction. Subclasses set ``_uses``/``_defs`` to attribute
    names; attributes may hold a single operand, a list of operands, or
    None."""

    _uses: Sequence[str] = ()
    _defs: Sequence[str] = ()
    side_effects = True
    is_terminator = False

    loc = None  # optional source location

    def uses(self) -> List[Operand]:
        out: List[Operand] = []
        for attr in self._uses:
            v = getattr(self, attr)
            if v is None:
                continue
            if isinstance(v, list):
                out.extend(x for x in v if x is not None)
            else:
                out.append(v)
        return out

    def defs(self) -> List[Temp]:
        out: List[Temp] = []
        for attr in self._defs:
            v = getattr(self, attr)
            if v is None:
                continue
            if isinstance(v, list):
                out.extend(v)
            else:
                out.append(v)
        return out

    def replace_uses(self, mapping: Dict[Temp, Operand]) -> None:
        """Substitute operands according to ``mapping`` (keyed by Temp)."""
        for attr in self._uses:
            v = getattr(self, attr)
            if v is None:
                continue
            if isinstance(v, list):
                setattr(
                    self,
                    attr,
                    [mapping.get(x, x) if isinstance(x, Temp) else x for x in v],
                )
            elif isinstance(v, Temp) and v in mapping:
                setattr(self, attr, mapping[v])

    def copy_annotations_from(self, other: "Instr") -> None:
        self.loc = other.loc

    def __repr__(self) -> str:
        from repro.ir.printer import format_instr

        return format_instr(self)


# -- core ---------------------------------------------------------------------


class Assign(Instr):
    """dst = src (move)."""

    _uses = ("src",)
    _defs = ("dst",)
    side_effects = False

    def __init__(self, dst: Temp, src: Operand):
        self.dst = dst
        self.src = src


class BinOp(Instr):
    """dst = a <op> b. Results wrap to the dst type width."""

    _uses = ("a", "b")
    _defs = ("dst",)
    side_effects = False

    def __init__(self, op: str, dst: Temp, a: Operand, b: Operand):
        assert op in BINOPS, op
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b


class Cmp(Instr):
    """dst = a <cmp> b (bool result)."""

    _uses = ("a", "b")
    _defs = ("dst",)
    side_effects = False

    def __init__(self, op: str, dst: Temp, a: Operand, b: Operand):
        assert op in CMPOPS, op
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b


class Call(Instr):
    """Direct call to a user function (qualified name)."""

    _uses = ("args",)
    _defs = ("dst",)

    def __init__(self, dst: Optional[Temp], func: str, args: List[Operand]):
        self.dst = dst
        self.func = func
        self.args = args


# -- terminators -----------------------------------------------------------------


class Jump(Instr):
    is_terminator = True

    def __init__(self, target: "object"):
        self.target = target  # BasicBlock

    def successors(self) -> List[object]:
        return [self.target]


class Branch(Instr):
    """Conditional branch: if cond != 0 goto then_bb else else_bb."""

    _uses = ("cond",)
    is_terminator = True

    def __init__(self, cond: Operand, then_bb: "object", else_bb: "object"):
        self.cond = cond
        self.then_bb = then_bb
        self.else_bb = else_bb

    def successors(self) -> List[object]:
        return [self.then_bb, self.else_bb]


class Ret(Instr):
    _uses = ("value",)
    is_terminator = True

    def __init__(self, value: Optional[Operand] = None):
        self.value = value

    def successors(self) -> List[object]:
        return []


# -- global / stack memory ----------------------------------------------------------


class LoadG(Instr):
    """dst = load(global g, byte offset, width bytes). ``g`` is the
    qualified global name; the symbol lives in the IR module's global
    table (memory space + address assigned there)."""

    _uses = ("offset",)
    _defs = ("dst",)
    side_effects = False  # reads memory; kept ordered by passes that care

    def __init__(self, dst: Temp, g: str, offset: Operand, width: int):
        assert width in (4, 8)
        self.dst = dst
        self.g = g
        self.offset = offset
        self.width = width


class StoreG(Instr):
    _uses = ("offset", "value")

    def __init__(self, g: str, offset: Operand, value: Operand, width: int):
        assert width in (4, 8)
        self.g = g
        self.offset = offset
        self.value = value
        self.width = width


class LoadGWords(Instr):
    """PAC result for application data: one wide SRAM/Scratch access
    loading ``nwords`` consecutive words of a global into ``dsts``
    (memory coalescing, Davidson & Jinturkar style -- the paper notes PAC
    'aids the scalar optimizer' on Firewall's rule table this way)."""

    _uses = ("offset",)
    _defs = ("dsts",)
    side_effects = False

    def __init__(self, dsts: List[Temp], g: str, offset: Operand, nwords: int):
        self.dsts = dsts
        self.g = g
        self.offset = offset
        self.nwords = nwords


class LoadL(Instr):
    """dst = load from a stack-local array (name is function-unique)."""

    _uses = ("offset",)
    _defs = ("dst",)
    side_effects = False

    def __init__(self, dst: Temp, array: str, offset: Operand, width: int):
        self.dst = dst
        self.array = array
        self.offset = offset
        self.width = width


class StoreL(Instr):
    _uses = ("offset", "value")

    def __init__(self, array: str, offset: Operand, value: Operand, width: int):
        self.array = array
        self.offset = offset
        self.value = value
        self.width = width


# -- packet primitives -----------------------------------------------------------------


class PktInstr(Instr):
    """Base for packet instructions; carries SOAR annotations."""

    c_offset_bits: Optional[int] = None
    c_alignment: Optional[int] = None


class PktLoadField(PktInstr):
    """dst = packet field (protocol bit-field relative to the handle's
    head)."""

    _uses = ("ph",)
    _defs = ("dst",)
    side_effects = False

    def __init__(self, dst: Temp, ph: Operand, proto: str, field: str,
                 bit_off: int, bit_width: int):
        self.dst = dst
        self.ph = ph
        self.proto = proto
        self.field = field
        self.bit_off = bit_off  # relative to the handle's head
        self.bit_width = bit_width


class PktStoreField(PktInstr):
    _uses = ("ph", "value")

    def __init__(self, ph: Operand, proto: str, field: str, bit_off: int,
                 bit_width: int, value: Operand):
        self.ph = ph
        self.proto = proto
        self.field = field
        self.bit_off = bit_off
        self.bit_width = bit_width
        self.value = value


class PktLoadWords(PktInstr):
    """PAC result: one wide DRAM access loading ``nwords`` 32-bit words
    starting at ``byte_off`` relative to the handle's head into ``dsts``."""

    _uses = ("ph",)
    _defs = ("dsts",)
    side_effects = False

    def __init__(self, dsts: List[Temp], ph: Operand, byte_off: int, nwords: int):
        self.dsts = dsts
        self.ph = ph
        self.byte_off = byte_off
        self.nwords = nwords


class PktStoreWords(PktInstr):
    """PAC result: one wide DRAM access writing ``nwords`` words.
    ``byte_masks[i]`` gives which bytes of word i are actually defined
    (0b1111 = full word); partial words require merge-with-memory."""

    _uses = ("ph", "values")

    def __init__(self, ph: Operand, byte_off: int, nwords: int,
                 values: List[Operand], byte_masks: List[int]):
        self.ph = ph
        self.byte_off = byte_off
        self.nwords = nwords
        self.values = values
        self.byte_masks = byte_masks


class MetaLoad(PktInstr):
    """dst = packet metadata word (SRAM)."""

    _uses = ("ph",)
    _defs = ("dst",)
    side_effects = False

    def __init__(self, dst: Temp, ph: Operand, field: str, word: int):
        self.dst = dst
        self.ph = ph
        self.field = field
        self.word = word


class MetaStore(PktInstr):
    _uses = ("ph", "value")

    def __init__(self, ph: Operand, field: str, word: int, value: Operand):
        self.ph = ph
        self.field = field
        self.word = word
        self.value = value


class PktEncap(PktInstr):
    """dst_ph = encapsulate src_ph with a new (constant-size) header."""

    _uses = ("src",)
    _defs = ("dst",)

    def __init__(self, dst: Temp, src: Operand, proto: str, header_bytes: int):
        self.dst = dst
        self.src = src
        self.proto = proto
        self.header_bytes = header_bytes


class PktDecap(PktInstr):
    """dst_ph = strip the current header of src_ph. ``src_proto`` is the
    protocol being stripped; its demux gives the (possibly dynamic)
    header size. ``header_bytes`` is set when the demux is constant."""

    _uses = ("src",)
    _defs = ("dst",)

    def __init__(self, dst: Temp, src: Operand, src_proto: str,
                 result_proto: Optional[str], header_bytes: Optional[int]):
        self.dst = dst
        self.src = src
        self.src_proto = src_proto
        self.result_proto = result_proto
        self.header_bytes = header_bytes


class PktCopy(PktInstr):
    _uses = ("src",)
    _defs = ("dst",)

    def __init__(self, dst: Temp, src: Operand):
        self.dst = dst
        self.src = src


class PktDrop(PktInstr):
    _uses = ("ph",)

    def __init__(self, ph: Operand):
        self.ph = ph


class PktCreate(PktInstr):
    _uses = ("length",)
    _defs = ("dst",)

    def __init__(self, dst: Temp, proto: str, header_bytes: int, length: Operand):
        self.dst = dst
        self.proto = proto
        self.header_bytes = header_bytes
        self.length = length  # payload bytes beyond the header


class PktLength(PktInstr):
    _uses = ("ph",)
    _defs = ("dst",)
    side_effects = False

    def __init__(self, dst: Temp, ph: Operand):
        self.dst = dst
        self.ph = ph


class PktAdjust(PktInstr):
    """Tail/head adjustment primitives: op in {'add_tail', 'remove_tail',
    'extend', 'shorten'}."""

    _uses = ("ph", "amount")

    def __init__(self, op: str, ph: Operand, amount: Operand):
        assert op in ("add_tail", "remove_tail", "extend", "shorten")
        self.op = op
        self.ph = ph
        self.amount = amount


class PktSyncHead(PktInstr):
    """Inserted by PHR: apply a deferred head movement to the packet's
    metadata (head_off += delta, len -= delta). Elided encap/decap
    primitives accumulate into one of these (or none, when the net
    movement is zero -- the paper's paired encap/decap elimination)."""

    _uses = ("ph",)

    def __init__(self, ph: Operand, delta_bytes: int):
        self.ph = ph
        self.delta_bytes = delta_bytes


class ChanPut(Instr):
    """Release a packet onto a channel (immediate-release endpoint)."""

    _uses = ("ph",)

    def __init__(self, channel: str, ph: Operand):
        self.channel = channel
        self.ph = ph


class LockAcquire(Instr):
    def __init__(self, lock: str):
        self.lock = lock


class LockRelease(Instr):
    def __init__(self, lock: str):
        self.lock = lock


# -- SWC / ME-specific (inserted by the SWC pass, post-aggregation) ----------------


class CamLookup(Instr):
    """dst = CAM lookup of key: returns (entry << 1) | hit. Models the
    IXP cam_lookup instruction (16-entry, LRU replacement)."""

    _uses = ("key",)
    _defs = ("dst",)

    def __init__(self, dst: Temp, key: Operand):
        self.dst = dst
        self.key = key


class CamWrite(Instr):
    """Install ``key`` into CAM entry ``entry`` (an operand)."""

    _uses = ("entry", "key")

    def __init__(self, entry: Operand, key: Operand):
        self.entry = entry
        self.key = key


class CamClear(Instr):
    """Invalidate all 16 CAM entries (the MEv2 cam_clear instruction)."""

    def __init__(self):
        pass


class LmLoad(Instr):
    """dst = ME Local Memory word at index (ME-shared across threads)."""

    _uses = ("index",)
    _defs = ("dst",)

    def __init__(self, dst: Temp, index: Operand):
        self.dst = dst
        self.index = index


class LmStore(Instr):
    _uses = ("index", "value")

    def __init__(self, index: Operand, value: Operand):
        self.index = index
        self.value = value


INSTR_CLASSES = [
    Assign, BinOp, Cmp, Call, Jump, Branch, Ret,
    LoadG, LoadGWords, StoreG, LoadL, StoreL,
    PktLoadField, PktStoreField, PktLoadWords, PktStoreWords,
    MetaLoad, MetaStore, PktEncap, PktDecap, PktCopy, PktDrop, PktCreate,
    PktLength, PktAdjust, PktSyncHead, ChanPut, LockAcquire, LockRelease,
    CamLookup, CamWrite, CamClear, LmLoad, LmStore,
]
