"""Static call graph over an IRModule (Baker forbids recursion, so the
graph is a DAG; used by inlining, code-size estimation and stack layout)."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.instructions import Call
from repro.ir.module import IRFunction, IRModule


class CallGraph:
    def __init__(self, mod: IRModule):
        self.mod = mod
        self.callees: Dict[str, List[str]] = {}
        self.callers: Dict[str, Set[str]] = {name: set() for name in mod.functions}
        for name, fn in mod.functions.items():
            seen: List[str] = []
            for instr in fn.all_instrs():
                if isinstance(instr, Call) and instr.func not in seen:
                    seen.append(instr.func)
            self.callees[name] = seen
            for callee in seen:
                if callee in self.callers:
                    self.callers[callee].add(name)

    def topological(self) -> List[str]:
        """Functions ordered callees-first (valid because no recursion)."""
        visited: Set[str] = set()
        order: List[str] = []

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for callee in self.callees.get(name, ()):
                visit(callee)
            order.append(name)

        for name in self.mod.functions:
            visit(name)
        return order

    def transitive_callees(self, name: str) -> Set[str]:
        out: Set[str] = set()
        stack = list(self.callees.get(name, ()))
        while stack:
            n = stack.pop()
            if n in out:
                continue
            out.add(n)
            stack.extend(self.callees.get(n, ()))
        return out

    def max_call_depth(self, name: str) -> int:
        """Longest call chain rooted at ``name`` (1 = leaf)."""
        memo: Dict[str, int] = {}

        def depth(n: str) -> int:
            if n in memo:
                return memo[n]
            kids = self.callees.get(n, ())
            memo[n] = 1 + (max((depth(k) for k in kids), default=0))
            return memo[n]

        return depth(name)
