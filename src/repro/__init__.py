"""repro: a from-scratch reproduction of *Shangri-La: Achieving High
Performance from Compiled Network Applications while Enabling Ease of
Programming* (PLDI 2005).

Top-level API
-------------
- :func:`repro.compiler.compile_baker` — compile Baker source through the
  full Shangri-La pipeline (profile, optimize, aggregate, generate ME code).
- :mod:`repro.rts` — build and run a compiled program on the simulated
  IXP2400 (``repro.rts.system.build_system``).
- :mod:`repro.apps` — the paper's three benchmark applications (L3-Switch,
  Firewall, MPLS) written in Baker, with table/trace generators.
"""

__version__ = "0.1.0"
