"""AST node definitions for Baker.

Nodes are plain dataclasses. Every node carries a source location for
diagnostics. Expression nodes gain a ``type`` attribute during semantic
analysis; name nodes gain a resolved ``symbol``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.baker.source import SourceLocation
from repro.baker.types import Type


@dataclass
class Node:
    loc: SourceLocation


# -- Type expressions (resolved to repro.baker.types during semantics) ------


@dataclass
class TypeExpr(Node):
    """A syntactic type: either a base-type keyword, a struct name, or a
    packet-handle type ``<proto>_pkt *`` (is_packet=True)."""

    name: str
    is_packet: bool = False
    resolved: Optional[Type] = None


# -- Expressions -------------------------------------------------------------


@dataclass
class Expr(Node):
    type: Optional[Type] = field(default=None, init=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Name(Expr):
    """A possibly-qualified identifier (``ident`` or ``module.ident``).

    Qualification is represented by the parser folding ``a.b`` into a
    Member node; semantic analysis rewrites module-qualified references
    back into Name nodes with ``qualifier`` set.
    """

    ident: str
    qualifier: Optional[str] = None
    symbol: Optional[object] = None  # repro.baker.symbols.Symbol


@dataclass
class Unary(Expr):
    op: str  # '-', '~', '!'
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str  # '+','-','*','/','%','&','|','^','<<','>>','==','!=','<','<=','>','>=','&&','||'
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass
class Cast(Expr):
    target: TypeExpr = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """A call to a user function or a builtin (``channel_put`` etc.).

    ``callee`` may be qualified (``module.func``) for cross-module support
    functions.
    """

    callee: str = ""
    qualifier: Optional[str] = None
    args: List[Expr] = field(default_factory=list)
    symbol: Optional[object] = None


@dataclass
class Index(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Member(Expr):
    """``base.name`` (struct field / module qualification) or
    ``base->name`` (packet protocol field / ``->meta``)."""

    base: Expr = None  # type: ignore[assignment]
    name: str = ""
    arrow: bool = False


@dataclass
class SizeofExpr(Expr):
    """``sizeof(type-or-protocol-name)``; resolved to a constant."""

    name: str = ""


# -- Statements ---------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    type_expr: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    array_len: Optional[int] = None
    init: Optional[Expr] = None
    symbol: Optional[object] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Stmt):
    """``target op= value``; ``op`` is None for plain assignment, else the
    binary operator text ('+', '<<', ...)."""

    target: Expr = None  # type: ignore[assignment]
    op: Optional[str] = None
    value: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Critical(Stmt):
    """``critical (lockname) { ... }`` -- an explicitly identified critical
    section, the only concurrency construct Baker exposes (paper section 2)."""

    lock_name: str = ""
    body: Stmt = None  # type: ignore[assignment]


# -- Declarations -------------------------------------------------------------


@dataclass
class FieldDecl(Node):
    name: str = ""
    width_bits: int = 0


@dataclass
class ProtocolDecl(Node):
    name: str = ""
    fields: List[FieldDecl] = field(default_factory=list)
    demux: Optional[Expr] = None


@dataclass
class VarFieldDecl(Node):
    """A typed field inside ``struct`` or ``metadata`` blocks."""

    type_expr: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    array_len: Optional[int] = None


@dataclass
class StructDecl(Node):
    name: str = ""
    fields: List[VarFieldDecl] = field(default_factory=list)


@dataclass
class MetadataDecl(Node):
    fields: List[VarFieldDecl] = field(default_factory=list)


@dataclass
class ConstDecl(Node):
    type_expr: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class GlobalDecl(Node):
    """A module-level or program-level variable. Globals live in SRAM (or
    Scratch when the global memory mapper promotes them); ``shared`` marks
    data mutated from multiple aggregates (disables SWC caching)."""

    type_expr: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    array_len: Optional[int] = None
    init: Optional[List[Expr]] = None
    shared: bool = False
    module: Optional[str] = None


@dataclass
class Param(Node):
    type_expr: TypeExpr = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class FuncDecl(Node):
    ret_type: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]
    module: Optional[str] = None


@dataclass
class PpfDecl(Node):
    """A packet processing function: consumes packets of protocol
    ``param_type`` from the channels in ``from_channels``."""

    name: str = ""
    param_type: TypeExpr = None  # type: ignore[assignment]
    param_name: str = ""
    from_channels: List[str] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]
    module: Optional[str] = None


@dataclass
class ChannelDecl(Node):
    names: List[str] = field(default_factory=list)
    module: Optional[str] = None


@dataclass
class InitDecl(Node):
    """Module initialization code; runs once on the XScale at boot."""

    body: Block = None  # type: ignore[assignment]
    module: Optional[str] = None


@dataclass
class ModuleDecl(Node):
    name: str = ""
    channels: List[ChannelDecl] = field(default_factory=list)
    ppfs: List[PpfDecl] = field(default_factory=list)
    funcs: List[FuncDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    consts: List[ConstDecl] = field(default_factory=list)
    inits: List[InitDecl] = field(default_factory=list)


@dataclass
class Program(Node):
    protocols: List[ProtocolDecl] = field(default_factory=list)
    metadata: Optional[MetadataDecl] = None
    structs: List[StructDecl] = field(default_factory=list)
    consts: List[ConstDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    funcs: List[FuncDecl] = field(default_factory=list)
    modules: List[ModuleDecl] = field(default_factory=list)
