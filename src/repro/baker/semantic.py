"""Semantic analysis for Baker.

Responsibilities (paper front-end, Figure 5 "Parse Baker"):

* resolve and lay out protocols (bit offsets, demux expressions),
  structs and the metadata block;
* build symbol tables for consts, globals, functions, PPFs and channels;
* type-check every function and PPF body;
* wiring analysis: every channel has exactly one consumer PPF
  (channels are point-to-point FIFOs) and producers are recorded;
* enforce Baker's restrictions: no recursion, no pointer typecasts
  (pointers exist only as packet handles), ``channel_put`` only inside
  PPFs, critical sections explicitly named.

The result is a :class:`CheckedProgram`, the input to IR lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Set, Tuple

from repro.baker import ast
from repro.baker import types as T
from repro.baker.builtins import BUILTINS, Builtin
from repro.baker.errors import SemanticError
from repro.baker.packetmodel import BUILTIN_META_FIELDS, META_USER_BASE
from repro.baker.symbols import (
    ChannelSymbol,
    ConstSymbol,
    FuncSymbol,
    GlobalSymbol,
    LocalSymbol,
    PpfSymbol,
    ProtocolSymbol,
    Scope,
    StructSymbol,
    Symbol,
    SymbolKind,
)

# Sentinel type given to `ph->meta` so that `.field` can be checked.
@dataclass(frozen=True)
class MetadataMarkerType(T.Type):
    def __str__(self) -> str:
        return "<metadata>"


METADATA_MARKER = MetadataMarkerType()

BUILTIN_CHANNELS = ("rx", "tx")


@dataclass
class MetaFieldInfo:
    """A resolved metadata field: its value type and word offset within the
    packet metadata block."""

    name: str
    type: T.Type
    word_offset: int
    builtin: bool = False


@dataclass
class CheckedProgram:
    """The output of semantic analysis: the AST plus resolved tables."""

    program: ast.Program
    protocols: Dict[str, T.Protocol] = dc_field(default_factory=dict)
    structs: Dict[str, T.StructType] = dc_field(default_factory=dict)
    meta_fields: Dict[str, MetaFieldInfo] = dc_field(default_factory=dict)
    meta_words: int = META_USER_BASE
    consts: Dict[str, ConstSymbol] = dc_field(default_factory=dict)
    globals: Dict[str, GlobalSymbol] = dc_field(default_factory=dict)
    funcs: Dict[str, FuncSymbol] = dc_field(default_factory=dict)
    ppfs: Dict[str, PpfSymbol] = dc_field(default_factory=dict)
    channels: Dict[str, ChannelSymbol] = dc_field(default_factory=dict)
    inits: List[ast.InitDecl] = dc_field(default_factory=list)
    locks: List[str] = dc_field(default_factory=list)

    def protocol_header_bytes(self, name: str) -> Optional[int]:
        """Constant header size of a protocol in bytes, or None if its demux
        expression is packet-dependent."""
        proto = self.protocols[name]
        return proto.demux_const_bytes


class SemanticAnalyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.checked = CheckedProgram(program=program)
        self.program_scope = Scope(name="<program>")
        self.module_scopes: Dict[str, Scope] = {}
        self._call_edges: Dict[str, Set[str]] = {}
        self._locks: Set[str] = set()

    # -- public entry --------------------------------------------------------

    def analyze(self) -> CheckedProgram:
        self._declare_protocols()
        self._declare_structs()
        self._declare_metadata()
        self._declare_builtin_channels()
        self._declare_program_items()
        self._declare_modules()
        self._check_function_bodies()
        self._check_wiring()
        self._check_no_recursion()
        self.checked.locks = sorted(self._locks)
        return self.checked

    # -- errors ----------------------------------------------------------------

    def _error(self, message: str, node) -> SemanticError:
        return SemanticError(message, getattr(node, "loc", None))

    # -- declarations ------------------------------------------------------------

    def _declare(self, scope: Scope, symbol: Symbol, node) -> None:
        prev = scope.declare(symbol)
        if prev is not None:
            raise self._error("duplicate declaration of %r" % symbol.name, node)

    def _declare_protocols(self) -> None:
        for decl in self.program.protocols:
            if decl.name in self.checked.protocols:
                raise self._error("duplicate protocol %r" % decl.name, decl)
            proto = T.Protocol(name=decl.name)
            seen: Set[str] = set()
            for fdecl in decl.fields:
                if fdecl.name in seen:
                    raise self._error(
                        "duplicate field %r in protocol %r" % (fdecl.name, decl.name), fdecl
                    )
                if not (1 <= fdecl.width_bits <= 64):
                    raise self._error(
                        "field %r width must be 1..64 bits" % fdecl.name, fdecl
                    )
                seen.add(fdecl.name)
                proto.fields.append(T.ProtocolField(fdecl.name, fdecl.width_bits))
            proto.assign_offsets()
            if decl.demux is None:
                raise self._error("protocol %r is missing a demux clause" % decl.name, decl)
            proto.demux_expr = decl.demux
            self._check_demux(proto, decl.demux)
            proto.demux_const_bytes = self._try_fold_demux(proto, decl.demux)
            self.checked.protocols[decl.name] = proto
            self._declare(
                self.program_scope,
                ProtocolSymbol(SymbolKind.PROTOCOL, decl.name, loc=decl.loc, protocol=proto),
                decl,
            )

    def _check_demux(self, proto: T.Protocol, expr: ast.Expr) -> None:
        """Demux expressions may reference only the protocol's own fields and
        integer arithmetic."""
        if isinstance(expr, ast.IntLit):
            expr.type = T.U32
            return
        if isinstance(expr, ast.Name):
            if expr.qualifier is not None or proto.field_by_name(expr.ident) is None:
                raise self._error(
                    "demux of protocol %r may only reference its own fields" % proto.name, expr
                )
            expr.type = proto.field_by_name(expr.ident).value_type
            return
        if isinstance(expr, ast.Binary):
            self._check_demux(proto, expr.left)
            self._check_demux(proto, expr.right)
            expr.type = T.U32
            return
        if isinstance(expr, ast.Unary) and expr.op in ("-", "~"):
            self._check_demux(proto, expr.operand)
            expr.type = T.U32
            return
        raise self._error("unsupported construct in demux expression", expr)

    def _try_fold_demux(self, proto: T.Protocol, expr: ast.Expr) -> Optional[int]:
        try:
            return eval_const_expr(expr, {})
        except SemanticError:
            return None

    def _resolve_type(self, texpr: ast.TypeExpr) -> T.Type:
        if texpr.resolved is not None:
            return texpr.resolved
        if texpr.is_packet:
            if texpr.name not in self.checked.protocols:
                raise self._error("unknown protocol %r" % texpr.name, texpr)
            texpr.resolved = T.PacketType(texpr.name)
            return texpr.resolved
        base = T.BASE_TYPES.get(texpr.name)
        if base is not None:
            texpr.resolved = base
            return base
        struct = self.checked.structs.get(texpr.name)
        if struct is not None:
            texpr.resolved = struct
            return struct
        raise self._error("unknown type %r" % texpr.name, texpr)

    def _field_type(self, fdecl: ast.VarFieldDecl) -> T.Type:
        base = self._resolve_type(fdecl.type_expr)
        if base.is_void or base.is_packet or isinstance(base, T.ChannelType):
            raise self._error("invalid field type %s" % base, fdecl)
        if fdecl.array_len is not None:
            if fdecl.array_len <= 0:
                raise self._error("array length must be positive", fdecl)
            return T.ArrayType(base, fdecl.array_len)
        return base

    def _declare_structs(self) -> None:
        # Two passes so structs may contain earlier-declared structs.
        for decl in self.program.structs:
            if decl.name in self.checked.structs or decl.name in T.BASE_TYPES:
                raise self._error("duplicate struct %r" % decl.name, decl)
            struct = T.StructType(name=decl.name)
            self.checked.structs[decl.name] = struct
            self._declare(
                self.program_scope,
                StructSymbol(SymbolKind.STRUCT, decl.name, loc=decl.loc, struct=struct),
                decl,
            )
        for decl in self.program.structs:
            struct = self.checked.structs[decl.name]
            seen: Set[str] = set()
            for fdecl in decl.fields:
                if fdecl.name in seen:
                    raise self._error(
                        "duplicate field %r in struct %r" % (fdecl.name, decl.name), fdecl
                    )
                seen.add(fdecl.name)
                ftype = self._field_type(fdecl)
                if ftype == struct:
                    raise self._error("struct %r contains itself" % decl.name, fdecl)
                struct.fields.append(T.StructField(fdecl.name, ftype))
            T.layout_struct(struct)

    def _declare_metadata(self) -> None:
        for name, word in BUILTIN_META_FIELDS.items():
            self.checked.meta_fields[name] = MetaFieldInfo(name, T.U32, word, builtin=True)
        decl = self.program.metadata
        word = META_USER_BASE
        if decl is not None:
            for fdecl in decl.fields:
                if fdecl.name in self.checked.meta_fields:
                    raise self._error("duplicate metadata field %r" % fdecl.name, fdecl)
                ftype = self._field_type(fdecl)
                if not ftype.is_scalar:
                    raise self._error("metadata fields must be scalar", fdecl)
                if isinstance(ftype, T.IntType) and ftype.bits > 32:
                    raise self._error("metadata fields must fit one word (<= 32 bits)", fdecl)
                self.checked.meta_fields[fdecl.name] = MetaFieldInfo(fdecl.name, ftype, word)
                word += ftype.size_words()
        self.checked.meta_words = word

    def _declare_builtin_channels(self) -> None:
        for name in BUILTIN_CHANNELS:
            sym = ChannelSymbol(
                SymbolKind.CHANNEL, name, type=T.CHANNEL, builtin=True, qualified=name
            )
            self.program_scope.declare(sym)
            self.checked.channels[name] = sym

    def _declare_program_items(self) -> None:
        for cdecl in self.program.consts:
            self._declare_const(cdecl, self.program_scope, module=None)
        for gdecl in self.program.globals:
            self._declare_global(gdecl, self.program_scope, module=None)
        for fdecl in self.program.funcs:
            self._declare_func(fdecl, self.program_scope, module=None)

    def _declare_const(self, decl: ast.ConstDecl, scope: Scope, module: Optional[str]) -> None:
        ctype = self._resolve_type(decl.type_expr)
        if not ctype.is_scalar:
            raise self._error("const must have scalar type", decl)
        env = {name: sym.value for name, sym in self.checked.consts.items()}
        # Also allow unqualified access to earlier consts of the same module.
        if module:
            prefix = module + "."
            for name, sym in self.checked.consts.items():
                if name.startswith(prefix):
                    env.setdefault(name[len(prefix) :], sym.value)
        value = eval_const_expr(decl.value, env)
        qualified = "%s.%s" % (module, decl.name) if module else decl.name
        sym = ConstSymbol(
            SymbolKind.CONST, decl.name, type=ctype, loc=decl.loc, qualified=qualified, value=value
        )
        self._declare(scope, sym, decl)
        self.checked.consts[qualified] = sym
        decl_value = ast.IntLit(loc=decl.loc, value=value)
        decl_value.type = ctype
        decl.value = decl_value

    def _declare_global(self, decl: ast.GlobalDecl, scope: Scope, module: Optional[str]) -> None:
        base = self._resolve_type(decl.type_expr)
        if base.is_void or isinstance(base, T.ChannelType) or base.is_packet:
            raise self._error("invalid global type %s" % base, decl)
        gtype: T.Type = base
        if decl.array_len is not None:
            if decl.array_len <= 0:
                raise self._error("array length must be positive", decl)
            gtype = T.ArrayType(base, decl.array_len)
        init_values = None
        if decl.init is not None:
            env = {name: sym.value for name, sym in self.checked.consts.items()}
            values = [eval_const_expr(e, env) for e in decl.init]
            if decl.array_len is None:
                if len(values) != 1:
                    raise self._error("scalar global takes a single initializer", decl)
            elif len(values) > decl.array_len:
                raise self._error("too many initializers", decl)
            init_values = values
        qualified = "%s.%s" % (module, decl.name) if module else decl.name
        sym = GlobalSymbol(
            SymbolKind.GLOBAL,
            decl.name,
            type=gtype,
            loc=decl.loc,
            qualified=qualified,
            shared=decl.shared,
            module=module,
            init_values=init_values,
        )
        self._declare(scope, sym, decl)
        self.checked.globals[qualified] = sym

    def _declare_func(self, decl: ast.FuncDecl, scope: Scope, module: Optional[str]) -> None:
        ret = self._resolve_type(decl.ret_type)
        params = []
        for p in decl.params:
            ptype = self._resolve_type(p.type_expr)
            if ptype.is_void:
                raise self._error("parameter cannot be void", p)
            params.append(ptype)
        qualified = "%s.%s" % (module, decl.name) if module else decl.name
        sym = FuncSymbol(
            SymbolKind.FUNC,
            decl.name,
            loc=decl.loc,
            qualified=qualified,
            param_types=params,
            ret_type=ret,
            module=module,
            decl=decl,
        )
        self._declare(scope, sym, decl)
        self.checked.funcs[qualified] = sym

    def _declare_modules(self) -> None:
        for mdecl in self.program.modules:
            if mdecl.name in self.module_scopes:
                raise self._error("duplicate module %r" % mdecl.name, mdecl)
            scope = Scope(parent=self.program_scope, name=mdecl.name)
            self.module_scopes[mdecl.name] = scope
            self._declare(
                self.program_scope,
                Symbol(SymbolKind.MODULE, mdecl.name, loc=mdecl.loc),
                mdecl,
            )
            for chdecl in mdecl.channels:
                for name in chdecl.names:
                    qualified = "%s.%s" % (mdecl.name, name)
                    sym = ChannelSymbol(
                        SymbolKind.CHANNEL,
                        name,
                        type=T.CHANNEL,
                        loc=chdecl.loc,
                        qualified=qualified,
                        module=mdecl.name,
                    )
                    self._declare(scope, sym, chdecl)
                    self.checked.channels[qualified] = sym
            for cdecl in mdecl.consts:
                self._declare_const(cdecl, scope, module=mdecl.name)
            for gdecl in mdecl.globals:
                self._declare_global(gdecl, scope, module=mdecl.name)
            for fdecl in mdecl.funcs:
                self._declare_func(fdecl, scope, module=mdecl.name)
            for pdecl in mdecl.ppfs:
                ptype = self._resolve_type(pdecl.param_type)
                qualified = "%s.%s" % (mdecl.name, pdecl.name)
                sym = PpfSymbol(
                    SymbolKind.PPF,
                    pdecl.name,
                    type=ptype,
                    loc=pdecl.loc,
                    qualified=qualified,
                    module=mdecl.name,
                    decl=pdecl,
                )
                self._declare(scope, sym, pdecl)
                self.checked.ppfs[qualified] = sym
            self.checked.inits.extend(mdecl.inits)

    # -- wiring -----------------------------------------------------------------

    def _resolve_channel(self, ref: str, module: Optional[str], node) -> ChannelSymbol:
        if "." in ref:
            sym = self.checked.channels.get(ref)
        else:
            sym = None
            if module is not None:
                sym = self.checked.channels.get("%s.%s" % (module, ref))
            if sym is None:
                sym = self.checked.channels.get(ref)
        if sym is None:
            raise self._error("unknown channel %r" % ref, node)
        return sym

    def _check_wiring(self) -> None:
        for qualified, ppf in self.checked.ppfs.items():
            decl: ast.PpfDecl = ppf.decl  # type: ignore[assignment]
            for ref in decl.from_channels:
                chan = self._resolve_channel(ref, ppf.module, decl)
                if chan.name == "tx":
                    raise self._error("PPFs may not consume from 'tx'", decl)
                if chan.consumer is not None:
                    raise self._error(
                        "channel %r already consumed by %r (channels are point-to-point)"
                        % (chan.qualified, chan.consumer),
                        decl,
                    )
                chan.consumer = qualified
                ppf.input_channels.append(chan.qualified)
        rx = self.checked.channels["rx"]
        if rx.consumer is None:
            raise self._error("no PPF consumes the builtin 'rx' channel", self.program)
        for chan in self.checked.channels.values():
            if chan.name == "tx" or chan.builtin:
                continue
            if chan.consumer is None:
                raise self._error("channel %r has no consumer PPF" % chan.qualified, self.program)
        # Producer type consistency: each channel_put's packet type must be
        # acceptable to the consumer's parameter protocol.
        for chan in self.checked.channels.values():
            if chan.consumer is None:
                continue
            consumer = self.checked.ppfs[chan.consumer]
            expected: T.PacketType = consumer.type  # type: ignore[assignment]
            for put_type in getattr(chan, "_put_types", []):
                if not T.assignable(expected, put_type):
                    raise self._error(
                        "channel %r carries %s but consumer %r expects %s"
                        % (chan.qualified, put_type, chan.consumer, expected),
                        consumer.decl,
                    )

    # -- bodies -----------------------------------------------------------------

    def _check_function_bodies(self) -> None:
        for fsym in self.checked.funcs.values():
            decl: ast.FuncDecl = fsym.decl  # type: ignore[assignment]
            scope = self._function_scope(fsym.module)
            checker = BodyChecker(self, fsym.qualified, fsym.ret_type, fsym.module, scope)
            for p, ptype in zip(decl.params, fsym.param_types):
                p.symbol = checker.declare_local(p.name, ptype, p, is_param=True)
            checker.check_block(decl.body)
        for psym in self.checked.ppfs.values():
            decl: ast.PpfDecl = psym.decl  # type: ignore[assignment]
            scope = self._function_scope(psym.module)
            checker = BodyChecker(
                self, psym.qualified, T.VOID, psym.module, scope, is_ppf=True
            )
            decl.param_symbol = checker.declare_local(  # type: ignore[attr-defined]
                decl.param_name, psym.type, decl, is_param=True
            )
            checker.check_block(decl.body)
        for idecl in self.checked.inits:
            scope = self._function_scope(idecl.module)
            checker = BodyChecker(
                self, "%s.<init>" % idecl.module, T.VOID, idecl.module, scope, is_init=True
            )
            checker.check_block(idecl.body)

    def _function_scope(self, module: Optional[str]) -> Scope:
        parent = self.module_scopes.get(module, self.program_scope) if module else self.program_scope
        return Scope(parent=parent, name="<function>")

    # -- recursion check ----------------------------------------------------------

    def record_call(self, caller: str, callee: str) -> None:
        self._call_edges.setdefault(caller, set()).add(callee)

    def _check_no_recursion(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}

        def visit(node: str, stack: List[str]) -> None:
            color[node] = GRAY
            stack.append(node)
            for succ in sorted(self._call_edges.get(node, ())):
                c = color.get(succ, WHITE)
                if c == GRAY:
                    cycle = " -> ".join(stack[stack.index(succ) :] + [succ])
                    sym = self.checked.funcs.get(succ)
                    raise SemanticError(
                        "recursion is not supported in Baker (cycle: %s)" % cycle,
                        sym.loc if sym else None,
                    )
                if c == WHITE:
                    visit(succ, stack)
            stack.pop()
            color[node] = BLACK

        for name in list(self._call_edges):
            if color.get(name, WHITE) == WHITE:
                visit(name, [])


class BodyChecker:
    """Type checker for one function / PPF / init body."""

    def __init__(
        self,
        analyzer: SemanticAnalyzer,
        owner: str,
        ret_type: T.Type,
        module: Optional[str],
        scope: Scope,
        is_ppf: bool = False,
        is_init: bool = False,
    ):
        self.analyzer = analyzer
        self.checked = analyzer.checked
        self.owner = owner
        self.ret_type = ret_type
        self.module = module
        self.scope = scope
        self.is_ppf = is_ppf
        self.is_init = is_init
        self.loop_depth = 0
        self.critical_depth = 0

    def _error(self, message: str, node) -> SemanticError:
        return SemanticError(message, getattr(node, "loc", None))

    # -- declarations ----------------------------------------------------------

    def declare_local(self, name: str, type_: T.Type, node, is_param: bool = False) -> LocalSymbol:
        sym = LocalSymbol(
            SymbolKind.PARAM if is_param else SymbolKind.LOCAL,
            name,
            type=type_,
            loc=getattr(node, "loc", None),
            is_param=is_param,
        )
        if self.scope.lookup_local(name) is not None:
            raise self._error("duplicate local %r" % name, node)
        self.scope.declare(sym)
        return sym

    # -- statements ----------------------------------------------------------------

    def check_block(self, block: ast.Block) -> None:
        saved = self.scope
        self.scope = Scope(parent=saved)
        for stmt in block.stmts:
            self.check_stmt(stmt)
        self.scope = saved

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.check_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            self._check_local_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.cond)
            self.check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.check_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self._check_condition(stmt.cond)
        elif isinstance(stmt, ast.For):
            saved = self.scope
            self.scope = Scope(parent=saved)
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_condition(stmt.cond)
            if stmt.step is not None:
                self.check_stmt(stmt.step)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.scope = saved
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise self._error("'break' outside a loop", stmt)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise self._error("'continue' outside a loop", stmt)
        elif isinstance(stmt, ast.Critical):
            if self.critical_depth > 0:
                raise self._error("critical sections may not nest", stmt)
            self.analyzer._locks.add(stmt.lock_name)
            self.critical_depth += 1
            self.check_stmt(stmt.body)
            self.critical_depth -= 1
        else:  # pragma: no cover - parser produces no other statements
            raise self._error("unsupported statement", stmt)

    def _check_local_decl(self, stmt: ast.LocalDecl) -> None:
        base = self.analyzer._resolve_type(stmt.type_expr)
        if base.is_void or isinstance(base, T.ChannelType):
            raise self._error("invalid local type %s" % base, stmt)
        ltype: T.Type = base
        if stmt.array_len is not None:
            if base.is_packet:
                raise self._error("arrays of packet handles are not supported", stmt)
            if stmt.array_len <= 0:
                raise self._error("array length must be positive", stmt)
            ltype = T.ArrayType(base, stmt.array_len)
            if stmt.init is not None:
                raise self._error("array locals cannot have initializers", stmt)
        if stmt.init is not None:
            itype = self.check_expr(stmt.init)
            if not T.assignable(ltype, itype):
                raise self._error("cannot initialize %s from %s" % (ltype, itype), stmt)
        stmt.symbol = self.declare_local(stmt.name, ltype, stmt)

    def _check_condition(self, expr: ast.Expr) -> None:
        ctype = self.check_expr(expr)
        if not ctype.is_scalar:
            raise self._error("condition must be scalar, got %s" % ctype, expr)

    def _check_return(self, stmt: ast.Return) -> None:
        if self.ret_type.is_void:
            if stmt.value is not None:
                raise self._error("void function cannot return a value", stmt)
            return
        if stmt.value is None:
            raise self._error("non-void function must return a value", stmt)
        vtype = self.check_expr(stmt.value)
        if not T.assignable(self.ret_type, vtype):
            raise self._error("cannot return %s from %s function" % (vtype, self.ret_type), stmt)

    def _check_assign(self, stmt: ast.Assign) -> None:
        ttype = self.check_expr(stmt.target, lvalue=True)
        vtype = self.check_expr(stmt.value)
        if stmt.op is not None:
            if not (ttype.is_scalar and vtype.is_scalar):
                raise self._error("compound assignment requires scalar operands", stmt)
        if not T.assignable(ttype, vtype):
            raise self._error("cannot assign %s to %s" % (vtype, ttype), stmt)

    # -- expressions ----------------------------------------------------------------

    def check_expr(self, expr: ast.Expr, lvalue: bool = False) -> T.Type:
        result = self._check_expr_inner(expr, lvalue)
        expr.type = result
        return result

    def _check_expr_inner(self, expr: ast.Expr, lvalue: bool) -> T.Type:
        if isinstance(expr, ast.IntLit):
            if lvalue:
                raise self._error("literal is not assignable", expr)
            return T.U64 if expr.value > 0xFFFFFFFF else T.U32
        if isinstance(expr, ast.BoolLit):
            if lvalue:
                raise self._error("literal is not assignable", expr)
            return T.BOOL
        if isinstance(expr, ast.Name):
            return self._check_name(expr, lvalue)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, lvalue)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, lvalue)
        if isinstance(expr, ast.Ternary):
            return self._check_ternary(expr, lvalue)
        if isinstance(expr, ast.Cast):
            if lvalue:
                raise self._error("cast is not assignable", expr)
            target = self.analyzer._resolve_type(expr.target)
            if not target.is_scalar:
                raise self._error("casts may only target scalar types", expr)
            otype = self.check_expr(expr.operand)
            if not otype.is_scalar:
                raise self._error("cannot cast %s to %s" % (otype, target), expr)
            return target
        if isinstance(expr, ast.SizeofExpr):
            if lvalue:
                raise self._error("sizeof is not assignable", expr)
            return self._check_sizeof(expr)
        if isinstance(expr, ast.Call):
            if lvalue:
                raise self._error("call result is not assignable", expr)
            return self._check_call(expr)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, lvalue)
        if isinstance(expr, ast.Member):
            return self._check_member(expr, lvalue)
        raise self._error("unsupported expression", expr)

    def _check_sizeof(self, expr: ast.SizeofExpr) -> T.Type:
        proto = self.checked.protocols.get(expr.name)
        if proto is not None:
            if proto.demux_const_bytes is None:
                raise self._error(
                    "sizeof(%s): protocol has a packet-dependent size" % expr.name, expr
                )
            expr.value = proto.demux_const_bytes  # type: ignore[attr-defined]
            return T.U32
        struct = self.checked.structs.get(expr.name)
        if struct is not None:
            expr.value = struct.size_bytes()  # type: ignore[attr-defined]
            return T.U32
        base = T.BASE_TYPES.get(expr.name)
        if base is not None and not base.is_void:
            expr.value = base.size_bytes()  # type: ignore[attr-defined]
            return T.U32
        raise self._error("sizeof: unknown type or protocol %r" % expr.name, expr)

    def _check_name(self, expr: ast.Name, lvalue: bool) -> T.Type:
        sym = self._lookup(expr.ident, expr.qualifier, expr)
        expr.symbol = sym
        if sym.kind is SymbolKind.CONST:
            if lvalue:
                raise self._error("const %r is not assignable" % expr.ident, expr)
            return sym.type
        if sym.kind in (SymbolKind.LOCAL, SymbolKind.PARAM):
            if lvalue and isinstance(sym.type, T.ArrayType):
                raise self._error("array %r is not assignable as a whole" % expr.ident, expr)
            return sym.type
        if sym.kind is SymbolKind.GLOBAL:
            if self.is_ppf or not self.is_init:
                pass  # all code may read/write globals; SWC handles caching
            if lvalue and isinstance(sym.type, T.ArrayType):
                raise self._error("array %r is not assignable as a whole" % expr.ident, expr)
            return sym.type
        if sym.kind is SymbolKind.CHANNEL:
            if lvalue:
                raise self._error("channel is not assignable", expr)
            return T.CHANNEL
        raise self._error("%r cannot be used as a value" % expr.ident, expr)

    def _lookup(self, ident: str, qualifier: Optional[str], node) -> Symbol:
        if qualifier is not None:
            scope = self.analyzer.module_scopes.get(qualifier)
            if scope is None:
                raise self._error("unknown module %r" % qualifier, node)
            sym = scope.lookup_local(ident)
            if sym is None:
                raise self._error("module %r has no member %r" % (qualifier, ident), node)
            return sym
        sym = self.scope.lookup(ident)
        if sym is None:
            raise self._error("undeclared identifier %r" % ident, node)
        return sym

    def _check_unary(self, expr: ast.Unary, lvalue: bool) -> T.Type:
        if lvalue:
            raise self._error("expression is not assignable", expr)
        otype = self.check_expr(expr.operand)
        if expr.op == "!":
            if not otype.is_scalar:
                raise self._error("'!' requires a scalar operand", expr)
            return T.BOOL
        if not otype.is_scalar:
            raise self._error("unary %r requires an integer operand" % expr.op, expr)
        return T.common_arith_type(otype, otype)

    def _check_binary(self, expr: ast.Binary, lvalue: bool) -> T.Type:
        if lvalue:
            raise self._error("expression is not assignable", expr)
        ltype = self.check_expr(expr.left)
        rtype = self.check_expr(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            if not (ltype.is_scalar and rtype.is_scalar):
                raise self._error("%r requires scalar operands" % op, expr)
            return T.BOOL
        if op in ("==", "!="):
            if ltype.is_packet and rtype.is_packet:
                return T.BOOL
            if ltype.is_scalar and rtype.is_scalar:
                return T.BOOL
            raise self._error("cannot compare %s with %s" % (ltype, rtype), expr)
        if op in ("<", "<=", ">", ">="):
            if not (ltype.is_scalar and rtype.is_scalar):
                raise self._error("cannot compare %s with %s" % (ltype, rtype), expr)
            return T.BOOL
        if not (ltype.is_scalar and rtype.is_scalar):
            raise self._error("operator %r requires integer operands" % op, expr)
        return T.common_arith_type(ltype, rtype)

    def _check_ternary(self, expr: ast.Ternary, lvalue: bool) -> T.Type:
        if lvalue:
            raise self._error("expression is not assignable", expr)
        self._check_condition(expr.cond)
        ttype = self.check_expr(expr.then)
        otype = self.check_expr(expr.otherwise)
        if ttype.is_scalar and otype.is_scalar:
            return T.common_arith_type(ttype, otype)
        if ttype == otype:
            return ttype
        raise self._error("ternary arms have mismatched types %s / %s" % (ttype, otype), expr)

    def _check_index(self, expr: ast.Index, lvalue: bool) -> T.Type:
        btype = self.check_expr(expr.base, lvalue=False)
        if not isinstance(btype, T.ArrayType):
            raise self._error("indexing requires an array, got %s" % btype, expr)
        itype = self.check_expr(expr.index)
        if not itype.is_scalar:
            raise self._error("array index must be an integer", expr)
        if lvalue and isinstance(btype.element, (T.ArrayType, T.StructType)):
            if isinstance(btype.element, T.ArrayType):
                raise self._error("nested arrays are not assignable as a whole", expr)
        return btype.element

    def _check_member(self, expr: ast.Member, lvalue: bool) -> T.Type:
        # Module qualification: `mod.x` parsed as Member(Name(mod), x).
        if (
            isinstance(expr.base, ast.Member) is False
            and isinstance(expr.base, ast.Name)
            and not expr.arrow
            and expr.base.symbol is None
        ):
            sym = self.scope.lookup(expr.base.ident)
            if sym is not None and sym.kind is SymbolKind.MODULE:
                # Rewrite in place into a qualified Name.
                replacement = ast.Name(loc=expr.loc, ident=expr.name, qualifier=expr.base.ident)
                result = self._check_name(replacement, lvalue)
                expr.__class__ = ast.Name  # type: ignore[misc]
                expr.__dict__.clear()
                expr.__dict__.update(replacement.__dict__)
                return result
        btype = self.check_expr(expr.base, lvalue=False)
        if expr.arrow:
            if not btype.is_packet:
                raise self._error("'->' requires a packet handle, got %s" % btype, expr)
            if expr.name == "meta":
                if lvalue:
                    raise self._error("'meta' itself is not assignable", expr)
                return METADATA_MARKER
            proto_name = btype.protocol  # type: ignore[union-attr]
            if proto_name is None:
                raise self._error(
                    "cannot access fields through a raw packet handle "
                    "(assign it to a typed handle first)",
                    expr,
                )
            proto = self.checked.protocols[proto_name]
            pfield = proto.field_by_name(expr.name)
            if pfield is None:
                raise self._error(
                    "protocol %r has no field %r" % (proto_name, expr.name), expr
                )
            expr.protocol = proto  # type: ignore[attr-defined]
            expr.field = pfield  # type: ignore[attr-defined]
            return pfield.value_type
        if isinstance(btype, MetadataMarkerType):
            info = self.checked.meta_fields.get(expr.name)
            if info is None:
                raise self._error("unknown metadata field %r" % expr.name, expr)
            expr.meta_info = info  # type: ignore[attr-defined]
            return info.type
        if isinstance(btype, T.StructType):
            sfield = btype.field_by_name(expr.name)
            if sfield is None:
                raise self._error("struct %r has no field %r" % (btype.name, expr.name), expr)
            expr.struct_field = sfield  # type: ignore[attr-defined]
            if lvalue and isinstance(sfield.type, T.ArrayType):
                raise self._error("array field is not assignable as a whole", expr)
            return sfield.type
        raise self._error("'.' requires a struct or metadata value, got %s" % btype, expr)

    # -- calls ----------------------------------------------------------------

    def _check_call(self, expr: ast.Call) -> T.Type:
        if expr.qualifier is None and expr.callee in BUILTINS:
            return self._check_builtin_call(expr, BUILTINS[expr.callee])
        sym = self._lookup(expr.callee, expr.qualifier, expr)
        if sym.kind is SymbolKind.PPF:
            raise self._error(
                "PPF %r cannot be called directly; packets reach PPFs via channels"
                % expr.callee,
                expr,
            )
        if sym.kind is not SymbolKind.FUNC:
            raise self._error("%r is not a function" % expr.callee, expr)
        fsym: FuncSymbol = sym  # type: ignore[assignment]
        if len(expr.args) != len(fsym.param_types):
            raise self._error(
                "%r expects %d arguments, got %d"
                % (expr.callee, len(fsym.param_types), len(expr.args)),
                expr,
            )
        for arg, ptype in zip(expr.args, fsym.param_types):
            atype = self.check_expr(arg)
            if not T.assignable(ptype, atype):
                raise self._error(
                    "argument type %s does not match parameter type %s" % (atype, ptype), arg
                )
        expr.symbol = fsym
        self.analyzer.record_call(self.owner, fsym.qualified)
        return fsym.ret_type

    def _check_builtin_call(self, expr: ast.Call, builtin: Builtin) -> T.Type:
        if len(expr.args) != builtin.arity:
            raise self._error(
                "%r expects %d arguments, got %d"
                % (builtin.name, builtin.arity, len(expr.args)),
                expr,
            )
        proto: Optional[T.Protocol] = None
        for i, arg in enumerate(expr.args):
            if builtin.proto_arg == i:
                if not isinstance(arg, ast.Name) or arg.qualifier is not None:
                    raise self._error(
                        "argument %d of %r must be a protocol name" % (i + 1, builtin.name), arg
                    )
                proto = self.checked.protocols.get(arg.ident)
                if proto is None:
                    raise self._error("unknown protocol %r" % arg.ident, arg)
                if proto.demux_const_bytes is None and builtin.name != "packet_as":
                    raise self._error(
                        "%r requires a protocol with a constant header size; "
                        "%r has a packet-dependent demux" % (builtin.name, arg.ident),
                        arg,
                    )
                arg.type = T.U32  # placeholder; lowering treats it as a name
                continue
            if builtin.chan_arg == i:
                if not isinstance(arg, ast.Name):
                    raise self._error(
                        "argument %d of %r must be a channel" % (i + 1, builtin.name), arg
                    )
                ctype = self.check_expr(arg)
                if not isinstance(ctype, T.ChannelType):
                    raise self._error(
                        "argument %d of %r must be a channel, got %s"
                        % (i + 1, builtin.name, ctype),
                        arg,
                    )
                continue
            atype = self.check_expr(arg)
            if builtin.name in ("packet_length",) or i == 0:
                # First value argument of packet primitives is the handle.
                if builtin.name != "packet_create" and i == 0 and not atype.is_packet:
                    raise self._error(
                        "%r requires a packet handle as its first argument" % builtin.name, arg
                    )
            if builtin.name in (
                "packet_add_tail",
                "packet_remove_tail",
                "packet_extend",
                "packet_shorten",
                "packet_create",
            ) and i == 1 and not atype.is_scalar:
                raise self._error("size argument of %r must be an integer" % builtin.name, arg)
        # Builtin-specific checks and result types.
        name = builtin.name
        if name == "channel_put":
            if not self.is_ppf:
                raise self._error("channel_put may only appear inside a PPF body", expr)
            chan_name: ast.Name = expr.args[0]  # type: ignore[assignment]
            chan: ChannelSymbol = chan_name.symbol  # type: ignore[assignment]
            if chan.name == "rx":
                raise self._error("cannot put onto the builtin 'rx' channel", expr)
            pkt_type = expr.args[1].type
            if not (pkt_type and pkt_type.is_packet):
                raise self._error("channel_put requires a packet handle", expr.args[1])
            if chan.qualified not in (p for p in chan.producers):
                pass
            chan.producers.append(self.owner)
            put_types = getattr(chan, "_put_types", None)
            if put_types is None:
                put_types = []
                setattr(chan, "_put_types", put_types)
            put_types.append(pkt_type)
            return T.VOID
        if name == "packet_decap":
            src = expr.args[0].type
            assert src is not None and src.is_packet
            if src.protocol is None:  # type: ignore[union-attr]
                raise self._error("cannot decap a raw packet handle", expr)
            expr.src_protocol = src.protocol  # type: ignore[attr-defined]
            return T.RAW_PACKET
        if name == "packet_encap":
            assert proto is not None
            expr.new_protocol = proto.name  # type: ignore[attr-defined]
            return T.PacketType(proto.name)
        if name == "packet_copy":
            return expr.args[0].type
        if name == "packet_as":
            assert proto is not None
            expr.new_protocol = proto.name  # type: ignore[attr-defined]
            return T.PacketType(proto.name)
        if name == "packet_create":
            assert proto is not None
            expr.new_protocol = proto.name  # type: ignore[attr-defined]
            return T.PacketType(proto.name)
        if name == "packet_input_port":
            return T.U32
        return builtin.ret_type


def eval_const_expr(expr: ast.Expr, env: Dict[str, int]) -> int:
    """Evaluate a compile-time constant expression (integer arithmetic over
    literals and already-known constants)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.Name):
        key = "%s.%s" % (expr.qualifier, expr.ident) if expr.qualifier else expr.ident
        if key in env:
            return env[key]
        raise SemanticError("not a constant expression (unknown name %r)" % key, expr.loc)
    if isinstance(expr, ast.Unary):
        v = eval_const_expr(expr.operand, env)
        if expr.op == "-":
            return -v
        if expr.op == "~":
            return ~v & 0xFFFFFFFFFFFFFFFF
        if expr.op == "!":
            return int(v == 0)
    if isinstance(expr, ast.Binary):
        lhs = eval_const_expr(expr.left, env)
        rhs = eval_const_expr(expr.right, env)
        op = expr.op
        try:
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs // rhs
            if op == "%":
                return lhs % rhs
            if op == "&":
                return lhs & rhs
            if op == "|":
                return lhs | rhs
            if op == "^":
                return lhs ^ rhs
            if op == "<<":
                return lhs << rhs
            if op == ">>":
                return lhs >> rhs
            if op == "==":
                return int(lhs == rhs)
            if op == "!=":
                return int(lhs != rhs)
            if op == "<":
                return int(lhs < rhs)
            if op == "<=":
                return int(lhs <= rhs)
            if op == ">":
                return int(lhs > rhs)
            if op == ">=":
                return int(lhs >= rhs)
            if op == "&&":
                return int(bool(lhs) and bool(rhs))
            if op == "||":
                return int(bool(lhs) or bool(rhs))
        except ZeroDivisionError:
            raise SemanticError("division by zero in constant expression", expr.loc)
    if isinstance(expr, ast.Ternary):
        return (
            eval_const_expr(expr.then, env)
            if eval_const_expr(expr.cond, env)
            else eval_const_expr(expr.otherwise, env)
        )
    if isinstance(expr, ast.SizeofExpr) and hasattr(expr, "value"):
        return expr.value  # type: ignore[attr-defined]
    raise SemanticError("not a constant expression", getattr(expr, "loc", None))


def analyze(program: ast.Program) -> CheckedProgram:
    """Run semantic analysis over a parsed Baker program."""
    return SemanticAnalyzer(program).analyze()
