"""Source text handling and source locations for Baker programs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position (1-based line and column) within a named source file."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return "%s:%d:%d" % (self.filename, self.line, self.column)


class SourceFile:
    """A Baker source file: text plus efficient line/column queries."""

    def __init__(self, text: str, filename: str = "<baker>"):
        self.text = text
        self.filename = filename
        self._line_starts = self._compute_line_starts(text)

    @staticmethod
    def _compute_line_starts(text: str) -> List[int]:
        starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                starts.append(i + 1)
        return starts

    def location(self, offset: int) -> SourceLocation:
        """Map a character offset to a :class:`SourceLocation`."""
        offset = max(0, min(offset, len(self.text)))
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return SourceLocation(self.filename, lo + 1, offset - self._line_starts[lo] + 1)

    def line_text(self, line: int) -> Optional[str]:
        """Return the text of a 1-based line number, without its newline."""
        if line < 1 or line > len(self._line_starts):
            return None
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]
