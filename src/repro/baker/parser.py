"""Recursive-descent parser for Baker.

Grammar summary (see DESIGN.md section 4 for the module inventory):

.. code-block:: text

    program       := top_decl*
    top_decl      := protocol | metadata | struct | const | global | func | module
    protocol      := 'protocol' IDENT '{' (field | demux)* '}' ';'?
    field         := IDENT ':' INT ';'
    demux         := 'demux' '{' expr '}' ';'
    metadata      := 'metadata' '{' var_field* '}' ';'?
    struct        := 'struct' IDENT '{' var_field* '}' ';'?
    const         := 'const' type IDENT '=' expr ';'
    global        := 'shared'? type IDENT ('[' INT ']')? ('=' ginit)? ';'
    module        := 'module' IDENT '{' module_item* '}' ';'?
    module_item   := 'channel' IDENT (',' IDENT)* ';'
                   | 'init' block
                   | ppf | const | global | func
    ppf           := 'ppf' IDENT '(' type IDENT ')' ('from' chan_list)? block
    func          := type IDENT '(' params? ')' block

Expressions use C precedence; assignment is a statement, not an expression
(Baker keeps side effects out of expressions, except calls).
"""

from __future__ import annotations

from typing import List, Optional

from repro.baker import ast
from repro.baker.errors import ParseError
from repro.baker.lexer import Lexer
from repro.baker.source import SourceFile
from repro.baker.tokens import ASSIGN_OPS, Token, TokenKind

_TYPE_KEYWORDS = {
    TokenKind.KW_VOID,
    TokenKind.KW_INT,
    TokenKind.KW_UINT,
    TokenKind.KW_BOOL,
    TokenKind.KW_U8,
    TokenKind.KW_U16,
    TokenKind.KW_U32,
    TokenKind.KW_U64,
}

# Binary operator precedence, higher binds tighter (C-like).
_BINOP_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_BINOP_TOKENS = {
    TokenKind.OROR: "||",
    TokenKind.ANDAND: "&&",
    TokenKind.PIPE: "|",
    TokenKind.CARET: "^",
    TokenKind.AMP: "&",
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.SHL: "<<",
    TokenKind.SHR: ">>",
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}


class Parser:
    def __init__(self, source: SourceFile):
        self.source = source
        self.tokens = Lexer(source).tokenize()
        self.pos = 0

    # -- token utilities -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def at(self, kind: TokenKind, ahead: int = 0) -> bool:
        return self.peek(ahead).kind is kind

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.at(kind):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, context: str = "") -> Token:
        if self.at(kind):
            return self.advance()
        tok = self.peek()
        where = " in %s" % context if context else ""
        raise ParseError(
            "expected %r but found %r%s" % (kind.value, tok.text or str(tok.kind.value), where),
            tok.loc,
        )

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().loc)

    # -- program -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        loc = self.peek().loc
        program = ast.Program(loc=loc)
        while not self.at(TokenKind.EOF):
            tok = self.peek()
            if tok.kind is TokenKind.KW_PROTOCOL:
                program.protocols.append(self.parse_protocol())
            elif tok.kind is TokenKind.KW_METADATA:
                decl = self.parse_metadata()
                if program.metadata is not None:
                    raise ParseError("duplicate metadata block", decl.loc)
                program.metadata = decl
            elif tok.kind is TokenKind.KW_STRUCT and self.peek(2).kind is TokenKind.LBRACE:
                program.structs.append(self.parse_struct())
            elif tok.kind is TokenKind.KW_CONST:
                program.consts.append(self.parse_const())
            elif tok.kind is TokenKind.KW_MODULE:
                program.modules.append(self.parse_module())
            elif tok.kind is TokenKind.KW_SHARED or self._starts_type():
                self._parse_global_or_func(program.globals, program.funcs, module=None)
            else:
                raise self._error("expected a top-level declaration, found %r" % tok.text)
        return program

    # -- protocols -------------------------------------------------------------

    def parse_protocol(self) -> ast.ProtocolDecl:
        loc = self.expect(TokenKind.KW_PROTOCOL).loc
        name = self.expect(TokenKind.IDENT, "protocol declaration").text
        decl = ast.ProtocolDecl(loc=loc, name=name)
        self.expect(TokenKind.LBRACE)
        while not self.accept(TokenKind.RBRACE):
            if self.at(TokenKind.KW_DEMUX):
                dloc = self.advance().loc
                self.expect(TokenKind.LBRACE)
                expr = self.parse_expr()
                self.expect(TokenKind.RBRACE)
                self.expect(TokenKind.SEMI)
                if decl.demux is not None:
                    raise ParseError("duplicate demux in protocol %r" % name, dloc)
                decl.demux = expr
            else:
                ftok = self.expect(TokenKind.IDENT, "protocol field")
                self.expect(TokenKind.COLON)
                width = self.expect(TokenKind.INT, "protocol field width")
                self.expect(TokenKind.SEMI)
                decl.fields.append(
                    ast.FieldDecl(loc=ftok.loc, name=ftok.text, width_bits=int(width.value))
                )
        self.accept(TokenKind.SEMI)
        return decl

    # -- struct / metadata ------------------------------------------------------

    def _parse_var_fields(self, context: str) -> List[ast.VarFieldDecl]:
        fields: List[ast.VarFieldDecl] = []
        self.expect(TokenKind.LBRACE)
        while not self.accept(TokenKind.RBRACE):
            type_expr = self.parse_type(context)
            name = self.expect(TokenKind.IDENT, context)
            array_len = None
            if self.accept(TokenKind.LBRACKET):
                array_len = int(self.expect(TokenKind.INT, "array length").value)
                self.expect(TokenKind.RBRACKET)
            self.expect(TokenKind.SEMI)
            fields.append(
                ast.VarFieldDecl(
                    loc=name.loc, type_expr=type_expr, name=name.text, array_len=array_len
                )
            )
        self.accept(TokenKind.SEMI)
        return fields

    def parse_struct(self) -> ast.StructDecl:
        loc = self.expect(TokenKind.KW_STRUCT).loc
        name = self.expect(TokenKind.IDENT, "struct declaration").text
        return ast.StructDecl(loc=loc, name=name, fields=self._parse_var_fields("struct field"))

    def parse_metadata(self) -> ast.MetadataDecl:
        loc = self.expect(TokenKind.KW_METADATA).loc
        return ast.MetadataDecl(loc=loc, fields=self._parse_var_fields("metadata field"))

    # -- const / globals / functions --------------------------------------------

    def parse_const(self) -> ast.ConstDecl:
        loc = self.expect(TokenKind.KW_CONST).loc
        type_expr = self.parse_type("const declaration")
        name = self.expect(TokenKind.IDENT, "const declaration").text
        self.expect(TokenKind.ASSIGN)
        value = self.parse_expr()
        self.expect(TokenKind.SEMI)
        return ast.ConstDecl(loc=loc, type_expr=type_expr, name=name, value=value)

    def _starts_type(self) -> bool:
        tok = self.peek()
        if tok.kind in _TYPE_KEYWORDS or tok.kind is TokenKind.KW_STRUCT:
            return True
        # "ident ident" or "ident * ident" looks like a declaration.
        if tok.kind is TokenKind.IDENT:
            nxt = self.peek(1)
            if nxt.kind is TokenKind.IDENT:
                return True
            if nxt.kind is TokenKind.STAR and self.peek(2).kind is TokenKind.IDENT:
                return True
        return False

    def parse_type(self, context: str) -> ast.TypeExpr:
        tok = self.peek()
        if tok.kind in _TYPE_KEYWORDS:
            self.advance()
            return ast.TypeExpr(loc=tok.loc, name=tok.text)
        if tok.kind is TokenKind.KW_STRUCT:
            self.advance()
            name = self.expect(TokenKind.IDENT, context)
            return ast.TypeExpr(loc=tok.loc, name=name.text)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            is_packet = bool(self.accept(TokenKind.STAR))
            name = tok.text
            if is_packet:
                if not name.endswith("_pkt"):
                    raise ParseError(
                        "pointer types are only allowed for packet handles "
                        "(expected '<protocol>_pkt *')",
                        tok.loc,
                    )
                name = name[: -len("_pkt")]
            return ast.TypeExpr(loc=tok.loc, name=name, is_packet=is_packet)
        raise ParseError("expected a type in %s" % context, tok.loc)

    def _parse_global_or_func(self, globals_out, funcs_out, module: Optional[str]) -> None:
        shared = bool(self.accept(TokenKind.KW_SHARED))
        type_expr = self.parse_type("declaration")
        name = self.expect(TokenKind.IDENT, "declaration")
        if self.at(TokenKind.LPAREN):
            if shared:
                raise ParseError("'shared' applies only to data", name.loc)
            funcs_out.append(self._parse_func_rest(type_expr, name, module))
            return
        array_len = None
        if self.accept(TokenKind.LBRACKET):
            array_len = int(self.expect(TokenKind.INT, "array length").value)
            self.expect(TokenKind.RBRACKET)
        init = None
        if self.accept(TokenKind.ASSIGN):
            init = self._parse_global_init()
        self.expect(TokenKind.SEMI)
        globals_out.append(
            ast.GlobalDecl(
                loc=name.loc,
                type_expr=type_expr,
                name=name.text,
                array_len=array_len,
                init=init,
                shared=shared,
                module=module,
            )
        )

    def _parse_global_init(self) -> List[ast.Expr]:
        if self.accept(TokenKind.LBRACE):
            items: List[ast.Expr] = []
            if not self.at(TokenKind.RBRACE):
                items.append(self.parse_expr())
                while self.accept(TokenKind.COMMA):
                    if self.at(TokenKind.RBRACE):
                        break  # trailing comma
                    items.append(self.parse_expr())
            self.expect(TokenKind.RBRACE)
            return items
        return [self.parse_expr()]

    def _parse_func_rest(
        self, ret_type: ast.TypeExpr, name: Token, module: Optional[str]
    ) -> ast.FuncDecl:
        self.expect(TokenKind.LPAREN)
        params: List[ast.Param] = []
        if not self.at(TokenKind.RPAREN):
            while True:
                ptype = self.parse_type("parameter")
                pname = self.expect(TokenKind.IDENT, "parameter")
                params.append(ast.Param(loc=pname.loc, type_expr=ptype, name=pname.text))
                if not self.accept(TokenKind.COMMA):
                    break
        self.expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.FuncDecl(
            loc=name.loc,
            ret_type=ret_type,
            name=name.text,
            params=params,
            body=body,
            module=module,
        )

    # -- modules ------------------------------------------------------------------

    def parse_module(self) -> ast.ModuleDecl:
        loc = self.expect(TokenKind.KW_MODULE).loc
        name = self.expect(TokenKind.IDENT, "module declaration").text
        decl = ast.ModuleDecl(loc=loc, name=name)
        self.expect(TokenKind.LBRACE)
        while not self.accept(TokenKind.RBRACE):
            tok = self.peek()
            if tok.kind is TokenKind.KW_CHANNEL:
                decl.channels.append(self._parse_channel_decl(name))
            elif tok.kind is TokenKind.KW_PPF:
                decl.ppfs.append(self._parse_ppf(name))
            elif tok.kind is TokenKind.KW_INIT:
                iloc = self.advance().loc
                decl.inits.append(ast.InitDecl(loc=iloc, body=self.parse_block(), module=name))
            elif tok.kind is TokenKind.KW_CONST:
                decl.consts.append(self.parse_const())
            elif tok.kind is TokenKind.KW_SHARED or self._starts_type():
                self._parse_global_or_func(decl.globals, decl.funcs, module=name)
            else:
                raise self._error("expected a module item, found %r" % tok.text)
        self.accept(TokenKind.SEMI)
        return decl

    def _parse_channel_decl(self, module: str) -> ast.ChannelDecl:
        loc = self.expect(TokenKind.KW_CHANNEL).loc
        names = [self.expect(TokenKind.IDENT, "channel declaration").text]
        while self.accept(TokenKind.COMMA):
            names.append(self.expect(TokenKind.IDENT, "channel declaration").text)
        self.expect(TokenKind.SEMI)
        return ast.ChannelDecl(loc=loc, names=names, module=module)

    def _parse_ppf(self, module: str) -> ast.PpfDecl:
        loc = self.expect(TokenKind.KW_PPF).loc
        name = self.expect(TokenKind.IDENT, "ppf declaration").text
        self.expect(TokenKind.LPAREN)
        param_type = self.parse_type("ppf parameter")
        if not param_type.is_packet:
            raise ParseError("ppf parameter must be a packet handle", param_type.loc)
        param_name = self.expect(TokenKind.IDENT, "ppf parameter").text
        self.expect(TokenKind.RPAREN)
        from_channels: List[str] = []
        if self.accept(TokenKind.KW_FROM):
            from_channels.append(self._parse_chan_ref())
            while self.accept(TokenKind.COMMA):
                from_channels.append(self._parse_chan_ref())
        body = self.parse_block()
        return ast.PpfDecl(
            loc=loc,
            name=name,
            param_type=param_type,
            param_name=param_name,
            from_channels=from_channels,
            body=body,
            module=module,
        )

    def _parse_chan_ref(self) -> str:
        first = self.expect(TokenKind.IDENT, "channel reference").text
        if self.accept(TokenKind.DOT):
            second = self.expect(TokenKind.IDENT, "channel reference").text
            return "%s.%s" % (first, second)
        return first

    # -- statements ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        loc = self.expect(TokenKind.LBRACE).loc
        block = ast.Block(loc=loc)
        while not self.accept(TokenKind.RBRACE):
            block.stmts.append(self.parse_stmt())
        return block

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        kind = tok.kind
        if kind is TokenKind.LBRACE:
            return self.parse_block()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_RETURN:
            self.advance()
            value = None if self.at(TokenKind.SEMI) else self.parse_expr()
            self.expect(TokenKind.SEMI)
            return ast.Return(loc=tok.loc, value=value)
        if kind is TokenKind.KW_BREAK:
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.Break(loc=tok.loc)
        if kind is TokenKind.KW_CONTINUE:
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.Continue(loc=tok.loc)
        if kind is TokenKind.KW_CRITICAL:
            return self._parse_critical()
        if self._starts_type():
            return self._parse_local_decl()
        stmt = self._parse_expr_or_assign()
        self.expect(TokenKind.SEMI)
        return stmt

    def _parse_simple_stmt(self) -> ast.Stmt:
        """A declaration or expression/assignment without the trailing ';'
        (used by 'for' headers)."""
        if self._starts_type():
            return self._parse_local_decl(consume_semi=False)
        return self._parse_expr_or_assign()

    def _parse_local_decl(self, consume_semi: bool = True) -> ast.LocalDecl:
        type_expr = self.parse_type("local declaration")
        name = self.expect(TokenKind.IDENT, "local declaration")
        array_len = None
        if self.accept(TokenKind.LBRACKET):
            array_len = int(self.expect(TokenKind.INT, "array length").value)
            self.expect(TokenKind.RBRACKET)
        init = None
        if self.accept(TokenKind.ASSIGN):
            init = self.parse_expr()
        if consume_semi:
            self.expect(TokenKind.SEMI)
        return ast.LocalDecl(
            loc=name.loc, type_expr=type_expr, name=name.text, array_len=array_len, init=init
        )

    def _parse_expr_or_assign(self) -> ast.Stmt:
        loc = self.peek().loc
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind in ASSIGN_OPS:
            self.advance()
            value = self.parse_expr()
            op_token = ASSIGN_OPS[tok.kind]
            op = _BINOP_TOKENS[op_token] if op_token is not None else None
            return ast.Assign(loc=loc, target=expr, op=op, value=value)
        if tok.kind is TokenKind.PLUSPLUS or tok.kind is TokenKind.MINUSMINUS:
            self.advance()
            one = ast.IntLit(loc=tok.loc, value=1)
            op = "+" if tok.kind is TokenKind.PLUSPLUS else "-"
            return ast.Assign(loc=loc, target=expr, op=op, value=one)
        return ast.ExprStmt(loc=loc, expr=expr)

    def _parse_if(self) -> ast.If:
        loc = self.expect(TokenKind.KW_IF).loc
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        then = self.parse_stmt()
        otherwise = None
        if self.accept(TokenKind.KW_ELSE):
            otherwise = self.parse_stmt()
        return ast.If(loc=loc, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> ast.While:
        loc = self.expect(TokenKind.KW_WHILE).loc
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        return ast.While(loc=loc, cond=cond, body=self.parse_stmt())

    def _parse_do_while(self) -> ast.DoWhile:
        loc = self.expect(TokenKind.KW_DO).loc
        body = self.parse_stmt()
        self.expect(TokenKind.KW_WHILE)
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.SEMI)
        return ast.DoWhile(loc=loc, body=body, cond=cond)

    def _parse_for(self) -> ast.For:
        loc = self.expect(TokenKind.KW_FOR).loc
        self.expect(TokenKind.LPAREN)
        init = None if self.at(TokenKind.SEMI) else self._parse_simple_stmt()
        self.expect(TokenKind.SEMI)
        cond = None if self.at(TokenKind.SEMI) else self.parse_expr()
        self.expect(TokenKind.SEMI)
        step = None if self.at(TokenKind.RPAREN) else self._parse_expr_or_assign()
        self.expect(TokenKind.RPAREN)
        return ast.For(loc=loc, init=init, cond=cond, step=step, body=self.parse_stmt())

    def _parse_critical(self) -> ast.Critical:
        loc = self.expect(TokenKind.KW_CRITICAL).loc
        self.expect(TokenKind.LPAREN)
        lock = self.expect(TokenKind.IDENT, "critical section lock name").text
        self.expect(TokenKind.RPAREN)
        return ast.Critical(loc=loc, lock_name=lock, body=self.parse_block())

    # -- expressions ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.accept(TokenKind.QUESTION):
            then = self.parse_expr()
            self.expect(TokenKind.COLON)
            otherwise = self._parse_ternary()
            node = ast.Ternary(loc=cond.loc)
            node.cond, node.then, node.otherwise = cond, then, otherwise
            return node
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            op = _BINOP_TOKENS.get(tok.kind)
            if op is None:
                return left
            prec = _BINOP_PRECEDENCE[op]
            if prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            node = ast.Binary(loc=tok.loc, op=op)
            node.left, node.right = left, right
            left = node

    def _parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.MINUS:
            self.advance()
            node = ast.Unary(loc=tok.loc, op="-")
            node.operand = self._parse_unary()
            return node
        if tok.kind is TokenKind.TILDE:
            self.advance()
            node = ast.Unary(loc=tok.loc, op="~")
            node.operand = self._parse_unary()
            return node
        if tok.kind is TokenKind.BANG:
            self.advance()
            node = ast.Unary(loc=tok.loc, op="!")
            node.operand = self._parse_unary()
            return node
        if tok.kind is TokenKind.LPAREN and self.peek(1).kind in _TYPE_KEYWORDS:
            # A cast: '(' base-type ')' unary
            self.advance()
            target = self.parse_type("cast")
            self.expect(TokenKind.RPAREN)
            node = ast.Cast(loc=tok.loc)
            node.target, node.operand = target, self._parse_unary()
            return node
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.LBRACKET:
                self.advance()
                index = self.parse_expr()
                self.expect(TokenKind.RBRACKET)
                node = ast.Index(loc=tok.loc)
                node.base, node.index = expr, index
                expr = node
            elif tok.kind is TokenKind.DOT or tok.kind is TokenKind.ARROW:
                arrow = tok.kind is TokenKind.ARROW
                self.advance()
                name = self.expect(TokenKind.IDENT, "member access")
                if self.at(TokenKind.LPAREN) and not arrow:
                    # Qualified call: module.func(args)
                    if not isinstance(expr, ast.Name) or expr.qualifier is not None:
                        raise ParseError("calls may only be qualified by a module name", name.loc)
                    expr = self._parse_call(name.text, qualifier=expr.ident, loc=name.loc)
                else:
                    node = ast.Member(loc=tok.loc, name=name.text, arrow=arrow)
                    node.base = expr
                    expr = node
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT or tok.kind is TokenKind.CHAR:
            self.advance()
            return ast.IntLit(loc=tok.loc, value=int(tok.value))
        if tok.kind is TokenKind.KW_TRUE:
            self.advance()
            return ast.BoolLit(loc=tok.loc, value=True)
        if tok.kind is TokenKind.KW_FALSE:
            self.advance()
            return ast.BoolLit(loc=tok.loc, value=False)
        if tok.kind is TokenKind.KW_SIZEOF:
            self.advance()
            self.expect(TokenKind.LPAREN)
            name = self.expect(TokenKind.IDENT, "sizeof")
            self.expect(TokenKind.RPAREN)
            return ast.SizeofExpr(loc=tok.loc, name=name.text)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return expr
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.at(TokenKind.LPAREN):
                return self._parse_call(tok.text, qualifier=None, loc=tok.loc)
            return ast.Name(loc=tok.loc, ident=tok.text)
        raise self._error("expected an expression, found %r" % (tok.text or tok.kind.value))

    def _parse_call(self, callee: str, qualifier: Optional[str], loc) -> ast.Call:
        self.expect(TokenKind.LPAREN)
        args: List[ast.Expr] = []
        if not self.at(TokenKind.RPAREN):
            args.append(self.parse_expr())
            while self.accept(TokenKind.COMMA):
                args.append(self.parse_expr())
        self.expect(TokenKind.RPAREN)
        return ast.Call(loc=loc, callee=callee, qualifier=qualifier, args=args)


def parse(text: str, filename: str = "<baker>") -> ast.Program:
    """Parse Baker source text into an (unchecked) AST."""
    return Parser(SourceFile(text, filename)).parse_program()
