"""Token kinds and the Token record produced by the Baker lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.baker.source import SourceLocation


class TokenKind(enum.Enum):
    # Literals and identifiers.
    IDENT = "identifier"
    INT = "integer literal"
    STRING = "string literal"
    CHAR = "char literal"

    # Keywords.
    KW_PROTOCOL = "protocol"
    KW_DEMUX = "demux"
    KW_MODULE = "module"
    KW_PPF = "ppf"
    KW_CHANNEL = "channel"
    KW_FROM = "from"
    KW_WIRE = "wire"
    KW_METADATA = "metadata"
    KW_STRUCT = "struct"
    KW_CONST = "const"
    KW_SHARED = "shared"
    KW_INIT = "init"
    KW_CRITICAL = "critical"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_DO = "do"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_VOID = "void"
    KW_INT = "int"
    KW_UINT = "uint"
    KW_BOOL = "bool"
    KW_U8 = "u8"
    KW_U16 = "u16"
    KW_U32 = "u32"
    KW_U64 = "u64"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_SIZEOF = "sizeof"

    # Punctuation / operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    COLON = ":"
    QUESTION = "?"
    DOT = "."
    ARROW = "->"
    WIRE_ARROW = "=>"  # unused placeholder; wirings use ARROW
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    SHL = "<<"
    SHR = ">>"
    ANDAND = "&&"
    OROR = "||"
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="
    PLUSPLUS = "++"
    MINUSMINUS = "--"

    EOF = "end of input"


KEYWORDS = {
    "protocol": TokenKind.KW_PROTOCOL,
    "demux": TokenKind.KW_DEMUX,
    "module": TokenKind.KW_MODULE,
    "ppf": TokenKind.KW_PPF,
    "channel": TokenKind.KW_CHANNEL,
    "from": TokenKind.KW_FROM,
    "wire": TokenKind.KW_WIRE,
    "metadata": TokenKind.KW_METADATA,
    "struct": TokenKind.KW_STRUCT,
    "const": TokenKind.KW_CONST,
    "shared": TokenKind.KW_SHARED,
    "init": TokenKind.KW_INIT,
    "critical": TokenKind.KW_CRITICAL,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "void": TokenKind.KW_VOID,
    "int": TokenKind.KW_INT,
    "uint": TokenKind.KW_UINT,
    "bool": TokenKind.KW_BOOL,
    "u8": TokenKind.KW_U8,
    "u16": TokenKind.KW_U16,
    "u32": TokenKind.KW_U32,
    "u64": TokenKind.KW_U64,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "sizeof": TokenKind.KW_SIZEOF,
}

# Multi-character operators, longest first so the lexer can do greedy match.
OPERATORS = [
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("->", TokenKind.ARROW),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.ANDAND),
    ("||", TokenKind.OROR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (":", TokenKind.COLON),
    ("?", TokenKind.QUESTION),
    (".", TokenKind.DOT),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
    ("!", TokenKind.BANG),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
]

ASSIGN_OPS = {
    TokenKind.ASSIGN: None,
    TokenKind.PLUS_ASSIGN: TokenKind.PLUS,
    TokenKind.MINUS_ASSIGN: TokenKind.MINUS,
    TokenKind.STAR_ASSIGN: TokenKind.STAR,
    TokenKind.SLASH_ASSIGN: TokenKind.SLASH,
    TokenKind.PERCENT_ASSIGN: TokenKind.PERCENT,
    TokenKind.AMP_ASSIGN: TokenKind.AMP,
    TokenKind.PIPE_ASSIGN: TokenKind.PIPE,
    TokenKind.CARET_ASSIGN: TokenKind.CARET,
    TokenKind.SHL_ASSIGN: TokenKind.SHL,
    TokenKind.SHR_ASSIGN: TokenKind.SHR,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token."""

    kind: TokenKind
    text: str
    loc: SourceLocation
    value: Optional[Union[int, str]] = None  # decoded value for literals

    def __repr__(self) -> str:
        if self.value is not None:
            return "Token(%s, %r, %r)" % (self.kind.name, self.text, self.value)
        return "Token(%s, %r)" % (self.kind.name, self.text)
