"""The Baker language front-end: lexer, parser, semantic analysis.

Typical use::

    from repro.baker import parse_and_check
    checked = parse_and_check(source_text)
"""

from repro.baker.errors import BakerError, LexError, ParseError, SemanticError
from repro.baker.lexer import tokenize
from repro.baker.parser import parse
from repro.baker.semantic import CheckedProgram, analyze


def parse_and_check(text: str, filename: str = "<baker>") -> CheckedProgram:
    """Parse and semantically check Baker source text."""
    return analyze(parse(text, filename))


__all__ = [
    "BakerError",
    "LexError",
    "ParseError",
    "SemanticError",
    "CheckedProgram",
    "tokenize",
    "parse",
    "analyze",
    "parse_and_check",
]
