"""Baker builtin (intrinsic) functions.

Builtins are the packet primitives of section 2.2 of the paper plus the
channel operation ``channel_put``. Their argument checking is partly
custom (protocol-name arguments, channel arguments), handled in
:mod:`repro.baker.semantic`.

The table below records each builtin's shape; ``proto_arg`` /
``chan_arg`` give the index of an argument that must be a protocol name
or channel reference rather than a value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baker import types as T


@dataclass(frozen=True)
class Builtin:
    name: str
    arity: int
    returns_packet: bool = False  # result is a packet handle
    proto_arg: Optional[int] = None  # argument that names a protocol
    chan_arg: Optional[int] = None  # argument that names a channel
    ret_type: T.Type = T.VOID
    doc: str = ""


BUILTINS: Dict[str, Builtin] = {
    b.name: b
    for b in [
        Builtin(
            "channel_put",
            2,
            chan_arg=0,
            doc="Release a packet onto a communication channel (immediate-release).",
        ),
        Builtin(
            "packet_decap",
            1,
            returns_packet=True,
            doc="Strip the current protocol header; returns a handle to the payload.",
        ),
        Builtin(
            "packet_encap",
            2,
            returns_packet=True,
            proto_arg=1,
            doc="Prepend a header of the named protocol; returns the new outer handle.",
        ),
        Builtin(
            "packet_copy",
            1,
            returns_packet=True,
            doc="Duplicate a packet (new DRAM buffer and metadata).",
        ),
        Builtin("packet_drop", 1, doc="Free a packet's buffer and metadata."),
        Builtin(
            "packet_create",
            2,
            returns_packet=True,
            proto_arg=0,
            doc="Allocate a fresh packet of the named protocol with a payload size.",
        ),
        Builtin("packet_length", 1, ret_type=T.U32, doc="Bytes from head to tail."),
        Builtin("packet_add_tail", 2, doc="Append n zero bytes at the tail."),
        Builtin("packet_remove_tail", 2, doc="Truncate n bytes from the tail."),
        Builtin("packet_extend", 2, doc="Grow headroom: move head back n bytes."),
        Builtin("packet_shorten", 2, doc="Drop n bytes from the head."),
        Builtin(
            "packet_input_port",
            1,
            ret_type=T.U32,
            doc="Receive port recorded by Rx (alias of ->meta.rx_port).",
        ),
        Builtin(
            "packet_as",
            2,
            returns_packet=True,
            proto_arg=1,
            doc="Reinterpret a handle as the named protocol (checked cast; "
                "no runtime effect -- used after packet_extend/shorten "
                "repositions the head manually).",
        ),
    ]
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS
