"""The Baker type system.

Baker is deliberately small: 32/64-bit integers (the IXP is a 32-bit
machine; 64-bit values exist to model wide protocol fields such as MAC
addresses), booleans, fixed-size arrays, plain structs, packet handles and
channel references. There are no general pointers: packet handles are the
only pointer-like values, which keeps the language type-alias free (paper
section 2.3) and makes alias analysis trivial.

Memory layout notes
-------------------
Global and struct layout is *word-granular*: every scalar field occupies at
least one 32-bit word (u64 occupies two). This mirrors how hand-written IXP
code lays out application state -- SRAM and Scratch are word-addressed and
sub-word stores would require read-modify-write sequences. Sub-word types
(`u8`, `u16`) therefore only affect value range, not packing; dense bit
packing exists solely inside packets, where protocol fields may have
arbitrary bit widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

WORD_BYTES = 4
WORD_BITS = 32


class Type:
    """Base class for Baker types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, BoolType)

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, BoolType))

    @property
    def is_packet(self) -> bool:
        return isinstance(self, PacketType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def size_bytes(self) -> int:
        """Size of this type in word-granular storage (bytes)."""
        raise NotImplementedError("type %s has no storage size" % self)

    def size_words(self) -> int:
        return (self.size_bytes() + WORD_BYTES - 1) // WORD_BYTES


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """An integer type. ``bits`` is the value width; storage is a word
    (two words for widths above 32)."""

    bits: int
    signed: bool

    def __str__(self) -> str:
        if self.signed:
            return "int" if self.bits == 32 else "i%d" % self.bits
        return "u%d" % self.bits

    def size_bytes(self) -> int:
        return 8 if self.bits > 32 else 4

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"

    def size_bytes(self) -> int:
        return 4


@dataclass(frozen=True)
class PacketType(Type):
    """A packet handle whose current (outermost visible) protocol is
    ``protocol``; ``None`` means a raw handle of unknown protocol."""

    protocol: Optional[str]

    def __str__(self) -> str:
        return "%s_pkt*" % (self.protocol or "raw")

    def size_bytes(self) -> int:
        return 4  # handles are SRAM addresses


@dataclass(frozen=True)
class ChannelType(Type):
    def __str__(self) -> str:
        return "channel"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int

    def __str__(self) -> str:
        return "%s[%d]" % (self.element, self.length)

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.length


@dataclass
class StructField:
    name: str
    type: Type
    offset_bytes: int = 0


@dataclass
class StructType(Type):
    """A named struct; field offsets are word-granular, assigned in
    declaration order by :func:`layout_struct`."""

    name: str
    fields: List[StructField] = field(default_factory=list)
    _size_bytes: int = 0

    def __str__(self) -> str:
        return "struct %s" % self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def size_bytes(self) -> int:
        return self._size_bytes

    def field_by_name(self, name: str) -> Optional[StructField]:
        for f in self.fields:
            if f.name == name:
                return f
        return None


def layout_struct(struct: StructType) -> StructType:
    """Assign word-granular offsets to every field and set total size."""
    offset = 0
    for f in struct.fields:
        f.offset_bytes = offset
        offset += f.type.size_bytes()
    struct._size_bytes = offset
    return struct


# Canonical singletons ------------------------------------------------------

VOID = VoidType()
BOOL = BoolType()
INT = IntType(32, True)
U8 = IntType(8, False)
U16 = IntType(16, False)
U32 = IntType(32, False)
U64 = IntType(64, False)
CHANNEL = ChannelType()
RAW_PACKET = PacketType(None)

BASE_TYPES: Dict[str, Type] = {
    "void": VOID,
    "bool": BOOL,
    "int": INT,
    "uint": U32,
    "u8": U8,
    "u16": U16,
    "u32": U32,
    "u64": U64,
}


def integer_for_bits(bits: int) -> IntType:
    """The narrowest unsigned Baker value type holding a ``bits``-wide
    protocol field."""
    if bits <= 8:
        return U8
    if bits <= 16:
        return U16
    if bits <= 32:
        return U32
    if bits <= 64:
        return U64
    raise ValueError("protocol fields wider than 64 bits are not supported")


def common_arith_type(a: Type, b: Type) -> Type:
    """Usual-arithmetic-conversion analogue for Baker.

    Booleans promote to int; the result is 64-bit if either side is, and
    unsigned if either side is unsigned.
    """
    if a.is_bool:
        a = INT
    if b.is_bool:
        b = INT
    assert isinstance(a, IntType) and isinstance(b, IntType)
    bits = 64 if (a.bits > 32 or b.bits > 32) else 32
    signed = a.signed and b.signed
    return IntType(bits, signed)


def assignable(dst: Type, src: Type) -> bool:
    """Whether a value of ``src`` may be assigned to storage of ``dst``."""
    if dst == src:
        return True
    if dst.is_scalar and src.is_scalar:
        return True  # integer conversions are implicit (masked on store)
    if dst.is_packet and src.is_packet:
        dp, sp = dst.protocol, src.protocol  # type: ignore[union-attr]
        return dp is None or sp is None or dp == sp
    return False


@dataclass
class ProtocolField:
    """A named bit-field inside a protocol header."""

    name: str
    width_bits: int
    offset_bits: int = 0

    @property
    def value_type(self) -> IntType:
        return integer_for_bits(self.width_bits)


@dataclass
class Protocol:
    """A Baker ``protocol`` declaration: ordered bit-fields plus a demux
    expression giving the header size in bytes (evaluated per packet)."""

    name: str
    fields: List[ProtocolField] = field(default_factory=list)
    demux_expr: Optional[object] = None  # ast.Expr, evaluated over fields
    demux_const_bytes: Optional[int] = None  # set when demux is constant

    def field_by_name(self, name: str) -> Optional[ProtocolField]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    @property
    def min_header_bits(self) -> int:
        return sum(f.width_bits for f in self.fields)

    def assign_offsets(self) -> None:
        offset = 0
        for f in self.fields:
            f.offset_bits = offset
            offset += f.width_bits
