"""Symbols and scopes for Baker name resolution."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baker.source import SourceLocation
from repro.baker.types import Protocol, StructType, Type


class SymbolKind(enum.Enum):
    CONST = "const"
    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"
    FUNC = "func"
    PPF = "ppf"
    CHANNEL = "channel"
    PROTOCOL = "protocol"
    STRUCT = "struct"
    MODULE = "module"


@dataclass
class Symbol:
    kind: SymbolKind
    name: str
    type: Optional[Type] = None
    loc: Optional[SourceLocation] = None
    # Fully qualified name ("module.name" for module members).
    qualified: str = ""

    def __post_init__(self) -> None:
        if not self.qualified:
            self.qualified = self.name


@dataclass
class ConstSymbol(Symbol):
    value: int = 0


@dataclass
class GlobalSymbol(Symbol):
    """A global variable. ``memory`` is assigned by the global memory
    mapper ('sram' or 'scratch'); ``shared`` disables SWC caching."""

    shared: bool = False
    module: Optional[str] = None
    init_values: Optional[List[int]] = None
    memory: str = "sram"
    address: Optional[int] = None  # assigned at link/load time


@dataclass
class LocalSymbol(Symbol):
    is_param: bool = False


@dataclass
class FuncSymbol(Symbol):
    param_types: List[Type] = field(default_factory=list)
    ret_type: Optional[Type] = None
    module: Optional[str] = None
    decl: Optional[object] = None  # ast.FuncDecl


@dataclass
class PpfSymbol(Symbol):
    module: Optional[str] = None
    decl: Optional[object] = None  # ast.PpfDecl
    input_channels: List[str] = field(default_factory=list)  # qualified names


@dataclass
class ChannelSymbol(Symbol):
    module: Optional[str] = None
    builtin: bool = False
    # Filled during wiring analysis:
    producers: List[str] = field(default_factory=list)  # qualified PPF names
    consumer: Optional[str] = None  # qualified PPF name


@dataclass
class ProtocolSymbol(Symbol):
    protocol: Optional[Protocol] = None


@dataclass
class StructSymbol(Symbol):
    struct: Optional[StructType] = None


class Scope:
    """A lexical scope; lookup walks outward through ``parent``."""

    def __init__(self, parent: Optional["Scope"] = None, name: str = ""):
        self.parent = parent
        self.name = name
        self._symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> Optional[Symbol]:
        """Declare ``symbol``; returns the previous same-name symbol in
        *this* scope if one exists (caller reports the duplicate)."""
        prev = self._symbols.get(symbol.name)
        self._symbols[symbol.name] = symbol
        return prev

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope._symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def symbols(self) -> List[Symbol]:
        return list(self._symbols.values())
