"""The runtime packet model shared by the compiler, runtime and simulator.

A packet is represented exactly as on the IXP (paper Figure 3):

* **Packet data** lives in a DRAM buffer.
* **Packet metadata** lives in SRAM; a ``packet_handle`` *is* the SRAM
  address of the metadata block.

Metadata block layout (word-granular)::

    word 0   BUF_ADDR   DRAM address of the packet buffer
    word 1   HEAD_OFF   byte offset of the current protocol head within
                        the buffer (updated by encap/decap/extend/shorten)
    word 2   PKT_LEN    bytes from head to tail
    word 3   RX_PORT    receive port recorded by Rx
    word 4+  user metadata fields declared in the program's ``metadata``
             block (word-granular, in declaration order)

The DRAM buffer is allocated with ``HEADROOM_BYTES`` of headroom so that
``packet_encap``/``packet_extend`` can move the head backwards without
copying.
"""

from __future__ import annotations

# Builtin metadata word indices.
META_BUF_ADDR = 0
META_HEAD_OFF = 1
META_PKT_LEN = 2
META_RX_PORT = 3
META_USER_BASE = 4  # first user metadata word

# Builtin metadata fields accessible as ``ph->meta.<name>``.
BUILTIN_META_FIELDS = {
    "rx_port": META_RX_PORT,
}

# DRAM buffer geometry.
HEADROOM_BYTES = 64
BUFFER_BYTES = 2048  # fixed-size buffers, as on the IXP reference designs

WORD_BYTES = 4
