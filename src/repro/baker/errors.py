"""Diagnostics for the Baker front-end.

All front-end failures are reported as :class:`BakerError` (or one of its
subclasses) carrying a :class:`~repro.baker.source.SourceLocation` so that
tools can print ``file:line:col`` style messages.
"""

from __future__ import annotations

from typing import Optional

from repro.baker.source import SourceLocation


class BakerError(Exception):
    """Base class for all Baker front-end errors."""

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.message = message
        self.loc = loc
        super().__init__(self.format())

    def format(self) -> str:
        """Render the error as ``file:line:col: kind: message``."""
        kind = self.kind()
        if self.loc is not None:
            return "%s: %s: %s" % (self.loc, kind, self.message)
        return "%s: %s" % (kind, self.message)

    def kind(self) -> str:
        return "error"


class LexError(BakerError):
    """Raised when the lexer encounters an invalid character or literal."""

    def kind(self) -> str:
        return "lex error"


class ParseError(BakerError):
    """Raised when the parser encounters an unexpected token."""

    def kind(self) -> str:
        return "parse error"


class SemanticError(BakerError):
    """Raised for type errors, undeclared names, bad wirings, etc."""

    def kind(self) -> str:
        return "semantic error"


class LoweringError(BakerError):
    """Raised when a checked AST cannot be lowered to IR.

    Lowering failures indicate constructs that passed semantic analysis but
    are not supported by the current code-generation strategy (these should
    be rare; most restrictions are enforced during semantic analysis).
    """

    def kind(self) -> str:
        return "lowering error"
