"""Hand-written lexer for the Baker language.

Produces a list of :class:`~repro.baker.tokens.Token`, terminated by an
``EOF`` token. Supports ``//`` line comments, ``/* */`` block comments,
decimal / hex / octal / binary integer literals, character literals and
double-quoted strings (used only for diagnostics / table names).
"""

from __future__ import annotations

from typing import List

from repro.baker.errors import LexError
from repro.baker.source import SourceFile
from repro.baker.tokens import KEYWORDS, OPERATORS, Token, TokenKind

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


class Lexer:
    """Tokenizes one :class:`SourceFile`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            tok = self._next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens

    # -- internals ---------------------------------------------------------

    def _loc(self, offset: int):
        return self.source.location(offset)

    def _error(self, message: str, offset: int) -> LexError:
        return LexError(message, self._loc(offset))

    def _skip_trivia(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif text.startswith("//", self.pos):
                end = text.find("\n", self.pos)
                self.pos = n if end < 0 else end + 1
            elif text.startswith("/*", self.pos):
                end = text.find("*/", self.pos + 2)
                if end < 0:
                    raise self._error("unterminated block comment", self.pos)
                self.pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        start = self.pos
        text, n = self.text, len(self.text)
        if start >= n:
            return Token(TokenKind.EOF, "", self._loc(start))
        ch = text[start]

        if ch in _IDENT_START:
            return self._lex_ident(start)
        if ch in _DIGITS:
            return self._lex_number(start)
        if ch == '"':
            return self._lex_string(start)
        if ch == "'":
            return self._lex_char(start)

        for op_text, kind in OPERATORS:
            if text.startswith(op_text, start):
                self.pos = start + len(op_text)
                return Token(kind, op_text, self._loc(start))

        raise self._error("unexpected character %r" % ch, start)

    def _lex_ident(self, start: int) -> Token:
        text, n = self.text, len(self.text)
        pos = start + 1
        while pos < n and text[pos] in _IDENT_CONT:
            pos += 1
        self.pos = pos
        word = text[start:pos]
        kind = KEYWORDS.get(word, TokenKind.IDENT)
        return Token(kind, word, self._loc(start))

    def _lex_number(self, start: int) -> Token:
        text, n = self.text, len(self.text)
        pos = start
        base = 10
        if text.startswith(("0x", "0X"), pos):
            base, pos = 16, pos + 2
            digits = "0123456789abcdefABCDEF"
        elif text.startswith(("0b", "0B"), pos):
            base, pos = 2, pos + 2
            digits = "01"
        elif text[pos] == "0" and pos + 1 < n and text[pos + 1] in _DIGITS:
            base, pos = 8, pos + 1
            digits = "01234567"
        else:
            digits = "0123456789"
        digit_start = pos
        while pos < n and (text[pos] in digits or text[pos] == "_"):
            pos += 1
        if pos == digit_start and base != 10:
            raise self._error("invalid integer literal", start)
        if pos < n and text[pos] in _IDENT_START:
            raise self._error("invalid suffix on integer literal", pos)
        self.pos = pos
        literal = text[start:pos]
        value = int(literal.replace("_", ""), 0 if base in (10, 16, 2) else 8)
        return Token(TokenKind.INT, literal, self._loc(start), value=value)

    def _lex_string(self, start: int) -> Token:
        chars: List[str] = []
        pos = start + 1
        text, n = self.text, len(self.text)
        while True:
            if pos >= n or text[pos] == "\n":
                raise self._error("unterminated string literal", start)
            ch = text[pos]
            if ch == '"':
                pos += 1
                break
            if ch == "\\":
                if pos + 1 >= n or text[pos + 1] not in _ESCAPES:
                    raise self._error("invalid escape sequence", pos)
                chars.append(_ESCAPES[text[pos + 1]])
                pos += 2
            else:
                chars.append(ch)
                pos += 1
        self.pos = pos
        return Token(TokenKind.STRING, text[start:pos], self._loc(start), value="".join(chars))

    def _lex_char(self, start: int) -> Token:
        text, n = self.text, len(self.text)
        pos = start + 1
        if pos >= n:
            raise self._error("unterminated character literal", start)
        if text[pos] == "\\":
            if pos + 1 >= n or text[pos + 1] not in _ESCAPES:
                raise self._error("invalid escape sequence", pos)
            value = ord(_ESCAPES[text[pos + 1]])
            pos += 2
        else:
            value = ord(text[pos])
            pos += 1
        if pos >= n or text[pos] != "'":
            raise self._error("unterminated character literal", start)
        self.pos = pos + 1
        return Token(TokenKind.CHAR, text[start : pos + 1], self._loc(start), value=value)


def tokenize(text: str, filename: str = "<baker>") -> List[Token]:
    """Convenience wrapper: lex ``text`` into a token list (EOF-terminated)."""
    return Lexer(SourceFile(text, filename)).tokenize()
