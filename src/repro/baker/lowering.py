"""Lowering from the checked Baker AST to IR.

Every function, PPF and module init block becomes one
:class:`~repro.ir.module.IRFunction`. Scalar locals become temps; local
arrays become stack-allocated :class:`LocalArray` storage; packet and
metadata accesses become the first-class packet instructions that the
packet optimizations (PAC/SOAR/PHR) operate on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.baker import ast
from repro.baker import types as T
from repro.baker.errors import LoweringError
from repro.baker.semantic import CheckedProgram, MetadataMarkerType
from repro.baker.symbols import (
    ConstSymbol,
    GlobalSymbol,
    LocalSymbol,
    SymbolKind,
)
from repro.ir import instructions as I
from repro.ir.module import IRFunction, IRModule, LocalArray
from repro.ir.values import Const, Operand, Temp

_CMP_BY_OP = {"==": "eq", "!=": "ne"}
_ORDERED = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_ARITH = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
}


def lower_program(checked: CheckedProgram) -> IRModule:
    """Lower a checked program into an IRModule."""
    mod = IRModule(checked)
    for fsym in checked.funcs.values():
        fn = _FunctionLowerer(checked, mod, fsym.qualified, "func", fsym.ret_type,
                              fsym.module).lower_func(fsym.decl)
        mod.add(fn)
    for psym in checked.ppfs.values():
        fn = _FunctionLowerer(checked, mod, psym.qualified, "ppf", T.VOID,
                              psym.module).lower_ppf(psym.decl, psym)
        mod.add(fn)
    for idx, idecl in enumerate(checked.inits):
        name = "%s.<init%d>" % (idecl.module, idx)
        fn = _FunctionLowerer(checked, mod, name, "init", T.VOID,
                              idecl.module).lower_init(idecl)
        mod.add(fn)
    return mod


class _LoopContext:
    def __init__(self, break_bb, continue_bb, critical_depth: int):
        self.break_bb = break_bb
        self.continue_bb = continue_bb
        self.critical_depth = critical_depth


class _FunctionLowerer:
    def __init__(self, checked: CheckedProgram, mod: IRModule, name: str,
                 kind: str, ret_type: T.Type, module: Optional[str]):
        self.checked = checked
        self.mod = mod
        self.fn = IRFunction(name, kind, ret_type, module)
        self.vars: Dict[int, Temp] = {}  # id(LocalSymbol) -> Temp
        self.arrays: Dict[int, LocalArray] = {}  # id(LocalSymbol) -> LocalArray
        self.bb = None  # current block
        self.loops: List[_LoopContext] = []
        self.critical_depth = 0
        self.current_lock: Optional[str] = None

    # -- entry points ------------------------------------------------------------

    def lower_func(self, decl: ast.FuncDecl) -> IRFunction:
        self.bb = self.fn.new_block("entry")
        for p in decl.params:
            sym: LocalSymbol = p.symbol  # type: ignore[assignment]
            t = self.fn.new_temp(sym.type, p.name)
            self.fn.params.append(t)
            self.vars[id(sym)] = t
        self._lower_block(decl.body)
        self.fn.ensure_terminated()
        return self.fn

    def lower_ppf(self, decl: ast.PpfDecl, psym) -> IRFunction:
        self.bb = self.fn.new_block("entry")
        sym: LocalSymbol = decl.param_symbol  # type: ignore[attr-defined]
        t = self.fn.new_temp(sym.type, decl.param_name)
        self.fn.params.append(t)
        self.vars[id(sym)] = t
        self.fn.input_channels = list(psym.input_channels)
        self._lower_block(decl.body)
        self.fn.ensure_terminated()
        return self.fn

    def lower_init(self, decl: ast.InitDecl) -> IRFunction:
        self.bb = self.fn.new_block("entry")
        self._lower_block(decl.body)
        self.fn.ensure_terminated()
        return self.fn

    # -- helpers -----------------------------------------------------------------

    def _error(self, message: str, node) -> LoweringError:
        return LoweringError(message, getattr(node, "loc", None))

    def emit(self, instr: I.Instr, node=None) -> I.Instr:
        if node is not None:
            instr.loc = getattr(node, "loc", None)
        self.bb.append(instr)
        return instr

    def terminate(self, instr: I.Instr) -> None:
        if not self.bb.terminated:
            self.bb.terminate(instr)

    def new_temp(self, type_: T.Type, hint: str = "") -> Temp:
        return self.fn.new_temp(type_, hint)

    def _materialize(self, op: Operand, type_: T.Type, hint: str = "") -> Temp:
        if isinstance(op, Temp):
            return op
        t = self.new_temp(type_, hint)
        self.emit(I.Assign(t, op))
        return t

    def _convert(self, op: Operand, src: T.Type, dst: T.Type) -> Operand:
        """Insert masking for narrowing integer conversions."""
        if not (isinstance(dst, T.IntType) and src.is_scalar):
            return op
        src_bits = src.bits if isinstance(src, T.IntType) else 1
        if dst.bits >= src_bits:
            return op
        if isinstance(op, Const):
            return Const(op.value & dst.mask, dst)
        out = self.new_temp(dst)
        self.emit(I.BinOp("and", out, op, Const(dst.mask, dst)))
        return out

    # -- statements ---------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            if self.bb.terminated:
                return  # unreachable code after return/break
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            self._lower_local_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._lower_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._lower_continue(stmt)
        elif isinstance(stmt, ast.Critical):
            self._lower_critical(stmt)
        else:  # pragma: no cover
            raise self._error("cannot lower statement %r" % type(stmt).__name__, stmt)

    def _lower_local_decl(self, stmt: ast.LocalDecl) -> None:
        sym: LocalSymbol = stmt.symbol  # type: ignore[assignment]
        if isinstance(sym.type, T.ArrayType):
            arr = LocalArray("%s.%d" % (stmt.name, len(self.fn.local_arrays)),
                             sym.type.element, sym.type.length)
            self.fn.local_arrays[arr.name] = arr
            self.arrays[id(sym)] = arr
            return
        t = self.new_temp(sym.type, stmt.name)
        self.vars[id(sym)] = t
        if stmt.init is not None:
            # packet_decap result protocol comes from the declared type.
            value = self._lower_expr(stmt.init, decl_type=sym.type)
            value = self._convert(value, stmt.init.type, sym.type)
            self.emit(I.Assign(t, value), stmt)
        else:
            self.emit(I.Assign(t, Const(0, sym.type if sym.type.is_scalar else T.U32)), stmt)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if stmt.op is not None:
            current = self._lower_expr(target)
            rhs = self._lower_expr(stmt.value)
            value = self._lower_binop_values(stmt.op, current, rhs,
                                             target.type, stmt.value.type, stmt)
        else:
            value = self._lower_expr(stmt.value, decl_type=target.type)
        value = self._convert(value, stmt.value.type if stmt.op is None
                              else T.common_arith_type(target.type, stmt.value.type),
                              target.type)
        self._store_lvalue(target, value)

    def _store_lvalue(self, target: ast.Expr, value: Operand) -> None:
        if isinstance(target, ast.Name):
            sym = target.symbol
            if isinstance(sym, LocalSymbol):
                self.emit(I.Assign(self.vars[id(sym)], value), target)
                return
            if isinstance(sym, GlobalSymbol):
                width = 8 if _is_u64(sym.type) else 4
                self.emit(I.StoreG(sym.qualified, Const(0), value, width), target)
                return
            raise self._error("cannot assign to %r" % target.ident, target)
        if isinstance(target, ast.Member) and target.arrow:
            proto = target.protocol  # type: ignore[attr-defined]
            pfield = target.field  # type: ignore[attr-defined]
            ph = self._lower_expr(target.base)
            self.emit(
                I.PktStoreField(ph, proto.name, pfield.name, pfield.offset_bits,
                                pfield.width_bits, value),
                target,
            )
            return
        if isinstance(target, ast.Member) and isinstance(target.base.type, MetadataMarkerType):
            info = target.meta_info  # type: ignore[attr-defined]
            ph = self._lower_expr(target.base.base)
            self.emit(I.MetaStore(ph, info.name, info.word_offset, value), target)
            return
        # Global / local array or struct path.
        kind, name, offset, vtype = self._access_path(target)
        width = 8 if _is_u64(vtype) else 4
        if kind == "global":
            self.emit(I.StoreG(name, offset, value, width), target)
        else:
            self.emit(I.StoreL(name, offset, value, width), target)

    def _access_path(self, expr: ast.Expr) -> Tuple[str, str, Operand, T.Type]:
        """Resolve an Index/Member chain rooted at a global or local array
        into (kind, name, byte-offset operand, value type)."""
        if isinstance(expr, ast.Name):
            sym = expr.symbol
            if isinstance(sym, GlobalSymbol):
                return "global", sym.qualified, Const(0), sym.type
            if isinstance(sym, LocalSymbol) and id(sym) in self.arrays:
                return "local", self.arrays[id(sym)].name, Const(0), sym.type
            raise self._error("cannot address %r" % expr.ident, expr)
        if isinstance(expr, ast.Index):
            kind, name, offset, btype = self._access_path(expr.base)
            if not isinstance(btype, T.ArrayType):
                raise self._error("indexing non-array", expr)
            elem = btype.element
            idx = self._lower_expr(expr.index)
            offset = self._offset_add_scaled(offset, idx, elem.size_bytes())
            return kind, name, offset, elem
        if isinstance(expr, ast.Member) and not expr.arrow:
            kind, name, offset, btype = self._access_path(expr.base)
            if not isinstance(btype, T.StructType):
                raise self._error("member of non-struct", expr)
            sfield = btype.field_by_name(expr.name)
            offset = self._offset_add_const(offset, sfield.offset_bytes)
            return kind, name, offset, sfield.type
        raise self._error("unsupported access path", expr)

    def _offset_add_scaled(self, offset: Operand, idx: Operand, scale: int) -> Operand:
        if isinstance(idx, Const):
            return self._offset_add_const(offset, idx.value * scale)
        scaled = self.new_temp(T.U32)
        if scale & (scale - 1) == 0:
            self.emit(I.BinOp("shl", scaled, idx, Const(scale.bit_length() - 1)))
        else:
            self.emit(I.BinOp("mul", scaled, idx, Const(scale)))
        if isinstance(offset, Const) and offset.value == 0:
            return scaled
        out = self.new_temp(T.U32)
        self.emit(I.BinOp("add", out, offset, scaled))
        return out

    def _offset_add_const(self, offset: Operand, delta: int) -> Operand:
        if delta == 0:
            return offset
        if isinstance(offset, Const):
            return Const(offset.value + delta)
        out = self.new_temp(T.U32)
        self.emit(I.BinOp("add", out, offset, Const(delta)))
        return out

    # -- control flow ------------------------------------------------------------------

    def _lower_condition(self, expr: ast.Expr) -> Operand:
        value = self._lower_expr(expr)
        if expr.type is not None and expr.type.is_bool:
            return value
        # Non-bool scalar condition: compare against zero.
        out = self.new_temp(T.BOOL)
        self.emit(I.Cmp("ne", out, value, Const(0)))
        return out

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_condition(stmt.cond)
        then_bb = self.fn.new_block("then")
        join_bb = self.fn.new_block("join")
        else_bb = self.fn.new_block("else") if stmt.otherwise is not None else join_bb
        self.terminate(I.Branch(cond, then_bb, else_bb))
        self.bb = then_bb
        self._lower_stmt(stmt.then)
        self.terminate(I.Jump(join_bb))
        if stmt.otherwise is not None:
            self.bb = else_bb
            self._lower_stmt(stmt.otherwise)
            self.terminate(I.Jump(join_bb))
        self.bb = join_bb

    def _lower_while(self, stmt: ast.While) -> None:
        head = self.fn.new_block("while_head")
        body = self.fn.new_block("while_body")
        exit_bb = self.fn.new_block("while_exit")
        self.terminate(I.Jump(head))
        self.bb = head
        cond = self._lower_condition(stmt.cond)
        self.terminate(I.Branch(cond, body, exit_bb))
        self.loops.append(_LoopContext(exit_bb, head, self.critical_depth))
        self.bb = body
        self._lower_stmt(stmt.body)
        self.terminate(I.Jump(head))
        self.loops.pop()
        self.bb = exit_bb

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.fn.new_block("do_body")
        cond_bb = self.fn.new_block("do_cond")
        exit_bb = self.fn.new_block("do_exit")
        self.terminate(I.Jump(body))
        self.loops.append(_LoopContext(exit_bb, cond_bb, self.critical_depth))
        self.bb = body
        self._lower_stmt(stmt.body)
        self.terminate(I.Jump(cond_bb))
        self.loops.pop()
        self.bb = cond_bb
        cond = self._lower_condition(stmt.cond)
        self.terminate(I.Branch(cond, body, exit_bb))
        self.bb = exit_bb

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self.fn.new_block("for_head")
        body = self.fn.new_block("for_body")
        step_bb = self.fn.new_block("for_step")
        exit_bb = self.fn.new_block("for_exit")
        self.terminate(I.Jump(head))
        self.bb = head
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            self.terminate(I.Branch(cond, body, exit_bb))
        else:
            self.terminate(I.Jump(body))
        self.loops.append(_LoopContext(exit_bb, step_bb, self.critical_depth))
        self.bb = body
        self._lower_stmt(stmt.body)
        self.terminate(I.Jump(step_bb))
        self.loops.pop()
        self.bb = step_bb
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self.terminate(I.Jump(head))
        self.bb = exit_bb

    def _lower_return(self, stmt: ast.Return) -> None:
        if self.critical_depth > 0:
            raise self._error("'return' inside a critical section is not supported", stmt)
        value = None
        if stmt.value is not None:
            value = self._lower_expr(stmt.value)
            value = self._convert(value, stmt.value.type, self.fn.ret_type)
        self.terminate(I.Ret(value))
        self.bb = self.fn.new_block("dead")

    def _lower_break(self, stmt: ast.Break) -> None:
        ctx = self.loops[-1]
        if ctx.critical_depth != self.critical_depth:
            raise self._error("'break' out of a critical section is not supported", stmt)
        self.terminate(I.Jump(ctx.break_bb))
        self.bb = self.fn.new_block("dead")

    def _lower_continue(self, stmt: ast.Continue) -> None:
        ctx = self.loops[-1]
        if ctx.critical_depth != self.critical_depth:
            raise self._error("'continue' out of a critical section is not supported", stmt)
        self.terminate(I.Jump(ctx.continue_bb))
        self.bb = self.fn.new_block("dead")

    def _lower_critical(self, stmt: ast.Critical) -> None:
        self.emit(I.LockAcquire(stmt.lock_name), stmt)
        self.critical_depth += 1
        self._lower_stmt(stmt.body)
        self.critical_depth -= 1
        self.emit(I.LockRelease(stmt.lock_name), stmt)

    # -- expressions ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr, want_value: bool = True,
                    decl_type: Optional[T.Type] = None) -> Optional[Operand]:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value, expr.type or T.U32)
        if isinstance(expr, ast.BoolLit):
            return Const(int(expr.value), T.BOOL)
        if isinstance(expr, ast.Name):
            return self._lower_name(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Cast):
            inner = self._lower_expr(expr.operand)
            return self._convert(inner, expr.operand.type, expr.type)
        if isinstance(expr, ast.SizeofExpr):
            return Const(expr.value, T.U32)  # type: ignore[attr-defined]
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, want_value, decl_type)
        if isinstance(expr, ast.Index):
            return self._lower_load_path(expr)
        if isinstance(expr, ast.Member):
            return self._lower_member(expr)
        raise self._error("cannot lower expression %r" % type(expr).__name__, expr)

    def _lower_name(self, expr: ast.Name) -> Operand:
        sym = expr.symbol
        if isinstance(sym, ConstSymbol):
            return Const(sym.value, sym.type)
        if isinstance(sym, LocalSymbol):
            if id(sym) in self.vars:
                return self.vars[id(sym)]
            raise self._error("array %r used without an index" % expr.ident, expr)
        if isinstance(sym, GlobalSymbol):
            if isinstance(sym.type, T.ArrayType):
                raise self._error("array %r used without an index" % expr.ident, expr)
            width = 8 if _is_u64(sym.type) else 4
            dst = self.new_temp(sym.type, expr.ident)
            self.emit(I.LoadG(dst, sym.qualified, Const(0), width), expr)
            return dst
        raise self._error("cannot evaluate %r" % expr.ident, expr)

    def _lower_load_path(self, expr: ast.Expr) -> Operand:
        kind, name, offset, vtype = self._access_path(expr)
        if isinstance(vtype, (T.ArrayType, T.StructType)):
            raise self._error("aggregate value cannot be loaded as a whole", expr)
        width = 8 if _is_u64(vtype) else 4
        dst = self.new_temp(vtype)
        if kind == "global":
            self.emit(I.LoadG(dst, name, offset, width), expr)
        else:
            self.emit(I.LoadL(dst, name, offset, width), expr)
        return dst

    def _lower_member(self, expr: ast.Member) -> Operand:
        if expr.arrow:
            proto = expr.protocol  # type: ignore[attr-defined]
            pfield = expr.field  # type: ignore[attr-defined]
            ph = self._lower_expr(expr.base)
            dst = self.new_temp(pfield.value_type, pfield.name)
            self.emit(
                I.PktLoadField(dst, ph, proto.name, pfield.name,
                               pfield.offset_bits, pfield.width_bits),
                expr,
            )
            return dst
        if isinstance(expr.base.type, MetadataMarkerType):
            info = expr.meta_info  # type: ignore[attr-defined]
            ph = self._lower_expr(expr.base.base)
            dst = self.new_temp(info.type, info.name)
            self.emit(I.MetaLoad(dst, ph, info.name, info.word_offset), expr)
            return dst
        return self._lower_load_path(expr)

    def _lower_unary(self, expr: ast.Unary) -> Operand:
        operand = self._lower_expr(expr.operand)
        if expr.op == "-":
            dst = self.new_temp(expr.type)
            self.emit(I.BinOp("sub", dst, Const(0, expr.type), operand), expr)
            return dst
        if expr.op == "~":
            dst = self.new_temp(expr.type)
            mask = (1 << (expr.type.bits if isinstance(expr.type, T.IntType) else 32)) - 1
            self.emit(I.BinOp("xor", dst, operand, Const(mask, expr.type)), expr)
            return dst
        if expr.op == "!":
            dst = self.new_temp(T.BOOL)
            self.emit(I.Cmp("eq", dst, operand, Const(0)), expr)
            return dst
        raise self._error("unknown unary operator %r" % expr.op, expr)

    def _lower_binary(self, expr: ast.Binary) -> Operand:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        lhs = self._lower_expr(expr.left)
        rhs = self._lower_expr(expr.right)
        return self._lower_binop_values(expr.op, lhs, rhs,
                                        expr.left.type, expr.right.type, expr)

    def _lower_binop_values(self, op: str, lhs: Operand, rhs: Operand,
                            ltype: T.Type, rtype: T.Type, node) -> Operand:
        if op in _CMP_BY_OP:
            dst = self.new_temp(T.BOOL)
            self.emit(I.Cmp(_CMP_BY_OP[op], dst, lhs, rhs), node)
            return dst
        if op in _ORDERED:
            common = T.common_arith_type(ltype if ltype.is_scalar else T.U32,
                                         rtype if rtype.is_scalar else T.U32)
            suffix = "_s" if common.signed else "_u"
            dst = self.new_temp(T.BOOL)
            self.emit(I.Cmp(_ORDERED[op] + suffix, dst, lhs, rhs), node)
            return dst
        common = T.common_arith_type(ltype, rtype)
        if op in _ARITH:
            dst = self.new_temp(common)
            self.emit(I.BinOp(_ARITH[op], dst, lhs, rhs), node)
            return dst
        if op == ">>":
            opcode = "ashr" if common.signed else "lshr"
            dst = self.new_temp(common)
            self.emit(I.BinOp(opcode, dst, lhs, rhs), node)
            return dst
        if op in ("/", "%"):
            base = "div" if op == "/" else "rem"
            opcode = base + ("_s" if common.signed else "_u")
            dst = self.new_temp(common)
            self.emit(I.BinOp(opcode, dst, lhs, rhs), node)
            return dst
        raise self._error("unknown binary operator %r" % op, node)

    def _lower_short_circuit(self, expr: ast.Binary) -> Operand:
        result = self.new_temp(T.BOOL, "sc")
        rhs_bb = self.fn.new_block("sc_rhs")
        join_bb = self.fn.new_block("sc_join")
        lhs = self._lower_condition(expr.left)
        self.emit(I.Assign(result, lhs))
        if expr.op == "&&":
            self.terminate(I.Branch(lhs, rhs_bb, join_bb))
        else:
            self.terminate(I.Branch(lhs, join_bb, rhs_bb))
        self.bb = rhs_bb
        rhs = self._lower_condition(expr.right)
        self.emit(I.Assign(result, rhs))
        self.terminate(I.Jump(join_bb))
        self.bb = join_bb
        return result

    def _lower_ternary(self, expr: ast.Ternary) -> Operand:
        result = self.new_temp(expr.type, "sel")
        cond = self._lower_condition(expr.cond)
        then_bb = self.fn.new_block("sel_then")
        else_bb = self.fn.new_block("sel_else")
        join_bb = self.fn.new_block("sel_join")
        self.terminate(I.Branch(cond, then_bb, else_bb))
        self.bb = then_bb
        tval = self._lower_expr(expr.then)
        self.emit(I.Assign(result, self._convert(tval, expr.then.type, expr.type)))
        self.terminate(I.Jump(join_bb))
        self.bb = else_bb
        oval = self._lower_expr(expr.otherwise)
        self.emit(I.Assign(result, self._convert(oval, expr.otherwise.type, expr.type)))
        self.terminate(I.Jump(join_bb))
        self.bb = join_bb
        return result

    # -- calls -----------------------------------------------------------------------

    def _lower_call(self, expr: ast.Call, want_value: bool,
                    decl_type: Optional[T.Type]) -> Optional[Operand]:
        from repro.baker.builtins import BUILTINS

        if expr.qualifier is None and expr.callee in BUILTINS:
            return self._lower_builtin(expr, decl_type)
        fsym = expr.symbol
        args: List[Operand] = []
        for arg, ptype in zip(expr.args, fsym.param_types):
            v = self._lower_expr(arg)
            args.append(self._convert(v, arg.type, ptype))
        dst = None
        if want_value and not fsym.ret_type.is_void:
            dst = self.new_temp(fsym.ret_type)
        elif not fsym.ret_type.is_void:
            dst = self.new_temp(fsym.ret_type)  # result ignored; DCE may drop
        self.emit(I.Call(dst, fsym.qualified, args), expr)
        return dst

    def _lower_builtin(self, expr: ast.Call, decl_type: Optional[T.Type]) -> Optional[Operand]:
        name = expr.callee
        if name == "channel_put":
            chan = expr.args[0].symbol
            ph = self._lower_expr(expr.args[1])
            self.emit(I.ChanPut(chan.qualified, ph), expr)
            return None
        if name == "packet_decap":
            src_proto = expr.src_protocol  # type: ignore[attr-defined]
            proto = self.checked.protocols[src_proto]
            result_proto = None
            if decl_type is not None and decl_type.is_packet:
                result_proto = decl_type.protocol  # type: ignore[union-attr]
            ph = self._lower_expr(expr.args[0])
            dst = self.new_temp(T.PacketType(result_proto))
            self.emit(I.PktDecap(dst, ph, src_proto, result_proto,
                                 proto.demux_const_bytes), expr)
            return dst
        if name == "packet_encap":
            new_proto = expr.new_protocol  # type: ignore[attr-defined]
            hdr = self.checked.protocols[new_proto].demux_const_bytes
            ph = self._lower_expr(expr.args[0])
            dst = self.new_temp(T.PacketType(new_proto))
            self.emit(I.PktEncap(dst, ph, new_proto, hdr), expr)
            return dst
        if name == "packet_copy":
            src = self._lower_expr(expr.args[0])
            dst = self.new_temp(expr.type)
            self.emit(I.PktCopy(dst, src), expr)
            return dst
        if name == "packet_as":
            # A checked retype: same handle, new static protocol.
            src = self._lower_expr(expr.args[0])
            dst = self.new_temp(expr.type)
            self.emit(I.Assign(dst, src), expr)
            return dst
        if name == "packet_drop":
            ph = self._lower_expr(expr.args[0])
            self.emit(I.PktDrop(ph), expr)
            return None
        if name == "packet_create":
            new_proto = expr.new_protocol  # type: ignore[attr-defined]
            hdr = self.checked.protocols[new_proto].demux_const_bytes
            length = self._lower_expr(expr.args[1])
            dst = self.new_temp(T.PacketType(new_proto))
            self.emit(I.PktCreate(dst, new_proto, hdr, length), expr)
            return dst
        if name == "packet_length":
            ph = self._lower_expr(expr.args[0])
            dst = self.new_temp(T.U32)
            self.emit(I.PktLength(dst, ph), expr)
            return dst
        if name == "packet_input_port":
            from repro.baker.packetmodel import META_RX_PORT

            ph = self._lower_expr(expr.args[0])
            dst = self.new_temp(T.U32)
            self.emit(I.MetaLoad(dst, ph, "rx_port", META_RX_PORT), expr)
            return dst
        if name in ("packet_add_tail", "packet_remove_tail",
                    "packet_extend", "packet_shorten"):
            op = name[len("packet_"):]
            ph = self._lower_expr(expr.args[0])
            amount = self._lower_expr(expr.args[1])
            self.emit(I.PktAdjust(op, ph, amount), expr)
            return None
        raise self._error("unknown builtin %r" % name, expr)


def _is_u64(type_: T.Type) -> bool:
    return isinstance(type_, T.IntType) and type_.bits > 32
