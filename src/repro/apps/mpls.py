"""MPLS: the paper's third benchmark application (NPF MPLS forwarding).

Routes by label instead of destination IP (paper section 6.1 and the
MPLS-over-Ethernet example of Figure 9): an incoming label is looked up
in the ILM (incoming label map) and swapped, popped (possibly repeatedly
down the label stack, the case that defeats static offset resolution --
Figure 9's point) or a new label is pushed; ingress IPv4 packets are
labeled via a FEC-to-label (FTN) table keyed by destination /16.

The ILM and the next-hop table are the small, hot, rarely-written
structures that the delayed-update software cache captures for MPLS in
Table 1.
"""

from __future__ import annotations

import random
from typing import List

from repro.apps import tables
from repro.apps.tables import (
    MPLS_OP_POP,
    MPLS_OP_PUSH,
    MPLS_OP_SWAP,
    MplsConfig,
    make_mpls_config,
    render_mpls_config,
)
from repro.profiler.trace import (
    ETH_TYPE_IP,
    ETH_TYPE_MPLS,
    Trace,
    TracePacket,
    build_ethernet,
    build_ipv4,
    build_mpls_stack,
)

NAME = "mpls"

_TEMPLATE = r"""
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
}

protocol mpls {
  label : 20;
  tc : 3;
  bos : 1;
  ttl : 8;
  demux { 4 };
}

protocol ipv4 {
  ver : 4;
  ihl : 4;
  tos : 8;
  length : 16;
  ident : 16;
  flags_frag : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  src : 32;
  dst : 32;
  demux { ihl << 2 };
}

metadata {
  u32 nexthop;
  u32 out_type;
}

const u32 ETH_TYPE_IP = 0x0800;
const u32 ETH_TYPE_MPLS = 0x8847;
const u32 OP_SWAP = 1;
const u32 OP_POP = 2;
const u32 OP_PUSH = 3;

// -- label tables (generated) ---------------------------------------------------
%(tables)s

shared u32 mpls_errors = 0;

module mpls_fwd {
  channel label_cc;
  channel ingress_cc;
  channel encap_cc;
  channel err_cc;

  ppf clsfr(ether_pkt *ph) from rx {
    u32 t = ph->type;
    if (t == ETH_TYPE_MPLS) {
      mpls_pkt *mph = packet_decap(ph);
      channel_put(label_cc, mph);
    } else {
      if (t == ETH_TYPE_IP) {
        ipv4_pkt *iph = packet_decap(ph);
        channel_put(ingress_cc, iph);
      } else {
        channel_put(err_cc, ph);
      }
    }
  }

  // Label switching: swap / pop (down the stack) / push.
  ppf label_fwdr(mpls_pkt *mph) from label_cc {
    u32 guard = 6;
    bool done = false;
    bool failed = false;
    u32 nexthop = 0;
    while (!done && guard > 0) {
      guard -= 1;
      u32 entry = ilm[mph->label & 1023];
      u32 op = entry >> 30;
      u32 out_label = (entry >> 10) & 0xfffff;
      u32 ttl = mph->ttl;
      if (ttl <= 1 || op == 0) {
        failed = true;
        done = true;
      } else {
        if (op == OP_SWAP) {
          // Rewrite the whole label-stack entry (one word): the access
          // combiner then issues a single full-word store.
          u32 tc = mph->tc;
          u32 bos = mph->bos;
          mph->label = out_label;
          mph->tc = tc;
          mph->bos = bos;
          mph->ttl = ttl - 1;
          nexthop = entry & 0x3ff;
          done = true;
        }
        if (op == OP_PUSH) {
          mph->ttl = ttl - 1;
          mpls_pkt *outer = packet_encap(mph, mpls);
          outer->label = out_label;
          outer->tc = 0;
          outer->bos = 0;
          outer->ttl = ttl - 1;
          mph = outer;
          nexthop = entry & 0x3ff;
          done = true;
        }
        if (op == OP_POP) {
          if (mph->bos == 1) {
            // Final pop: IPv4 below; hand the bare IP packet to egress.
            nexthop = entry & 0x3ff;
            mph = packet_as(packet_decap(mph), mpls);
            mph->meta.out_type = ETH_TYPE_IP;
            mph->meta.nexthop = nexthop;
            channel_put(encap_cc, mph);
            done = true;
          } else {
            mpls_pkt *inner = packet_decap(mph);
            mph = inner;
            // continue around the loop with the inner label
          }
        }
      }
    }
    if (failed || guard == 0 && !done) {
      channel_put(err_cc, packet_as(mph, ether));
    } else {
      if (mph->meta.out_type != ETH_TYPE_IP) {
        mph->meta.out_type = ETH_TYPE_MPLS;
        mph->meta.nexthop = nexthop;
        channel_put(encap_cc, mph);
      }
    }
  }

  // IPv4 ingress: attach a label from the FTN and push it.
  ppf ingress(ipv4_pkt *iph) from ingress_cc {
    u32 dst = iph->dst;
    u32 idx = (dst >> 16) & 0xff;
    u32 label = ftn_label[idx];
    if (label == 0) {
      channel_put(err_cc, packet_as(iph, ether));
    } else {
      u32 ttl = iph->ttl;
      mpls_pkt *mph = packet_encap(iph, mpls);
      mph->label = label;
      mph->tc = 0;
      mph->bos = 1;
      mph->ttl = ttl;
      mph->meta.out_type = ETH_TYPE_MPLS;
      mph->meta.nexthop = ftn_nh[idx];
      channel_put(encap_cc, mph);
    }
  }

  ppf eth_out(mpls_pkt *mph) from encap_cc {
    u32 nh = mph->meta.nexthop;
    u64 dmac = nh_mac[nh];
    u32 out_port = nh_port[nh];
    ether_pkt *eph = packet_encap(mph, ether);
    eph->dst = dmac;
    eph->src = nh_mac[0];
    eph->type = mph->meta.out_type;
    channel_put(tx, eph);
  }

  // -- control path (XScale) -----------------------------------------------------

  ppf err_handler(ether_pkt *ph) from err_cc {
    critical (mpls_err_lock) {
      mpls_errors = mpls_errors + 1;
    }
    packet_drop(ph);
  }
}
"""


def build_source(config: MplsConfig) -> str:
    return _TEMPLATE % {"tables": render_mpls_config(config)}


class MplsApp:
    """Bundled application: source + trace generator + oracle."""

    name = NAME

    def __init__(self, n_labels: int = 8, seed: int = 45):
        self.config = make_mpls_config(n_labels=n_labels, seed=seed)
        self.source = build_source(self.config)

    def make_trace(self, count: int, seed: int = 3,
                   ingress_fraction: float = 0.15,
                   deep_stack_fraction: float = 0.2) -> Trace:
        """Mostly labeled traffic (hot ILM labels), some with 2-3 deep
        stacks whose top labels pop, plus IPv4 ingress packets."""
        rng = random.Random(seed)
        labels = self.config.hot_labels()
        pop_labels = [l for l in labels if self.config.ilm[l][0] == MPLS_OP_POP]
        fwd_labels = [l for l in labels if self.config.ilm[l][0] != MPLS_OP_POP]
        trace = Trace()
        for i in range(count):
            port = i % tables.N_PORTS
            if rng.random() < ingress_fraction:
                prefix16 = 0xC0A8 + rng.randrange(8)
                ip = build_ipv4(0x0A000001 + i, (prefix16 << 16) | rng.getrandbits(16),
                                total_length=46)
                frame = build_ethernet(tables.ROUTER_MACS[port],
                                       0x020000000000 | i, ETH_TYPE_IP, ip)
            else:
                roll = rng.random()
                if pop_labels and roll < deep_stack_fraction:
                    depth = rng.choice([2, 3])
                    stack = [pop_labels[rng.randrange(len(pop_labels))]
                             for _ in range(depth - 1)]
                    stack.append(fwd_labels[rng.randrange(len(fwd_labels))])
                elif pop_labels and roll < deep_stack_fraction + 0.15:
                    # A lone pop label at bottom-of-stack: exercises the
                    # final-pop / IP-egress path.
                    stack = [pop_labels[rng.randrange(len(pop_labels))]]
                else:
                    stack = [fwd_labels[rng.randrange(len(fwd_labels))]]
                ip = build_ipv4(0x0A000001 + i, 0xC0A80101, total_length=26)
                payload = build_mpls_stack(stack, ttl=64) + ip
                frame = build_ethernet(tables.ROUTER_MACS[port],
                                       0x020000000000 | i, ETH_TYPE_MPLS, payload)
            trace.packets.append(TracePacket(frame, port))
        return trace
