"""L3-Switch: the paper's first benchmark application (NPF IP forwarding).

Bridges and routes IPv4-over-Ethernet packets (paper section 6.1):

* ``l2_clsfr`` -- copies ARP frames to the control path, sends frames
  addressed to the router's port MAC to the L3 forwarder, bridges the
  rest;
* ``l3_fwdr`` -- validates the IPv4 header (version, IHL, TTL, full
  one's-complement checksum), performs the longest-prefix-match route
  lookup in a two-level (16+8) multibit trie held in SRAM, decrements
  TTL with an incremental checksum update (RFC 1624), and attaches the
  next-hop id to the packet metadata;
* ``eth_encap`` -- re-encapsulates with the next hop's MAC addresses
  (the metadata pattern of paper Figure 1);
* ``l2_bridge`` -- static MAC table lookup (open-addressing probe);
* ``arp_handler`` / ``err_handler`` -- control path (mapped to the
  XScale by aggregation): ARP reply generation via ``packet_create``,
  error accounting.

The route trie is built at boot by the module ``init`` block from the
flat route arrays -- real pointer-chasing table construction running on
the (simulated) XScale.
"""

from __future__ import annotations

import random
from typing import List

from repro.apps import tables
from repro.apps.tables import (
    BridgeTable,
    RouteTable,
    make_bridge_table,
    make_route_table,
    render_bridge_table,
    render_route_table,
)
from repro.profiler.trace import (
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    Trace,
    TracePacket,
    build_ethernet,
    build_ipv4,
)

NAME = "l3switch"

_TEMPLATE = r"""
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
}

protocol ipv4 {
  ver : 4;
  ihl : 4;
  tos : 8;
  length : 16;
  ident : 16;
  flags_frag : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  src : 32;
  dst : 32;
  demux { ihl << 2 };
}

protocol arp {
  htype : 16;
  ptype : 16;
  hlen : 8;
  plen : 8;
  oper : 16;
  sha : 48;
  spa : 32;
  tha : 48;
  tpa : 32;
  demux { 28 };
}

metadata {
  u32 nexthop;
}

const u32 ETH_TYPE_IP = 0x0800;
const u32 ETH_TYPE_ARP = 0x0806;

// -- tables (generated) ------------------------------------------------------
%(tables)s

// Two-level multibit trie (16-bit root stride, 8-bit second stride).
// Entry encoding: 0 = empty, 0x80000000|nh = leaf, 0x40000000|block = pointer.
u32 trie16[65536];
u32 trie8[16384];
u32 trie8_next = 0;

// Control-plane counters.
shared u32 arp_requests = 0;
shared u32 err_drops = 0;

module l3_switch {
  channel l3_cc;
  channel encap_cc;
  channel bridge_cc;
  channel arp_cc;
  channel err_cc;

  // -- data path ---------------------------------------------------------------

  ppf l2_clsfr(ether_pkt *ph) from rx {
    u32 port = ph->meta.rx_port;
    bool is_arp = ph->type == ETH_TYPE_ARP;
    if (is_arp) {
      channel_put(arp_cc, packet_copy(ph));
    }
    bool to_router = ph->dst == port_mac[port];
    bool is_ip = ph->type == ETH_TYPE_IP;
    if (to_router && is_ip) {
      ipv4_pkt *iph = packet_decap(ph);
      channel_put(l3_cc, iph);
    } else {
      channel_put(bridge_cc, ph);
    }
  }

  ppf l3_fwdr(ipv4_pkt *iph) from l3_cc {
    // Header validation: version, IHL, TTL, full header checksum.
    u32 ttl = iph->ttl;
    u32 sum = (iph->ver << 12) | (iph->ihl << 8) | iph->tos;
    sum = sum + iph->length;
    sum = sum + iph->ident;
    sum = sum + iph->flags_frag;
    sum = sum + ((ttl << 8) | iph->proto);
    sum = sum + iph->checksum;
    u32 srcw = iph->src;
    sum = sum + (srcw >> 16) + (srcw & 0xffff);
    u32 dst = iph->dst;
    sum = sum + (dst >> 16) + (dst & 0xffff);
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    bool bad = iph->ver != 4 || iph->ihl != 5 || ttl <= 1 || sum != 0xffff;
    if (bad) {
      channel_put(err_cc, packet_as(iph, ether));
    } else {
      // Longest-prefix match in the trie.
      u32 e = trie16[dst >> 16];
      if ((e & 0x40000000) != 0) {
        u32 block = e & 0xffff;
        e = trie8[(block << 8) + ((dst >> 8) & 0xff)];
      }
      u32 nh = 0;
      if ((e & 0x80000000) != 0) {
        nh = e & 0xffff;
      }
      // TTL decrement + incremental checksum update (RFC 1624).
      u32 old_word = (ttl << 8) | iph->proto;
      u32 new_word = ((ttl - 1) << 8) | iph->proto;
      u32 csum = iph->checksum;
      u32 upd = (csum ^ 0xffff) + (old_word ^ 0xffff) + new_word;
      upd = (upd & 0xffff) + (upd >> 16);
      upd = (upd & 0xffff) + (upd >> 16);
      iph->ttl = ttl - 1;
      iph->checksum = upd ^ 0xffff;
      iph->meta.nexthop = nh;
      channel_put(encap_cc, iph);
    }
  }

  ppf eth_encap(ipv4_pkt *iph) from encap_cc {
    u32 nh = iph->meta.nexthop;
    u64 dmac = nh_mac[nh];
    u32 out_port = nh_port[nh];
    ether_pkt *eph = packet_encap(iph, ether);
    eph->dst = dmac;
    eph->src = port_mac[out_port];
    eph->type = ETH_TYPE_IP;
    channel_put(tx, eph);
  }

  ppf l2_bridge(ether_pkt *ph) from bridge_cc {
    u64 dst = ph->dst;
    u32 idx = ((u32) (dst ^ (dst >> 16) ^ (dst >> 32))) & (BR_SLOTS - 1);
    u32 probes = 0;
    u32 out = 0xffffffff;
    while (probes < 4) {
      u64 mac = br_mac[idx];
      if (mac == dst) {
        out = br_port[idx];
        break;
      }
      if (mac == 0) {
        break;
      }
      idx = (idx + 1) & (BR_SLOTS - 1);
      probes += 1;
    }
    if (out == 0xffffffff) {
      channel_put(err_cc, ph);
    } else {
      channel_put(tx, ph);
    }
  }

  // -- control path (XScale) ------------------------------------------------------

  ppf arp_handler(ether_pkt *ph) from arp_cc {
    arp_pkt *ap = packet_decap(ph);
    bool is_request = ap->oper == 1;
    u32 port = ap->meta.rx_port;
    critical (arp_lock) {
      arp_requests = arp_requests + 1;
    }
    if (is_request) {
      // Build an ARP reply claiming the router's port MAC.
      ether_pkt *re = packet_create(ether, 50);
      re->dst = ap->sha;
      re->src = port_mac[port];
      re->type = ETH_TYPE_ARP;
      arp_pkt *rap = packet_decap(re);
      rap->htype = 1;
      rap->ptype = ETH_TYPE_IP;
      rap->hlen = 6;
      rap->plen = 4;
      rap->oper = 2;
      rap->sha = port_mac[port];
      rap->spa = ap->tpa;
      rap->tha = ap->sha;
      rap->tpa = ap->spa;
      ether_pkt *out = packet_encap(rap, ether);
      channel_put(tx, out);
    }
    packet_drop(ap);
  }

  ppf err_handler(ether_pkt *ph) from err_cc {
    critical (err_lock) {
      err_drops = err_drops + 1;
    }
    packet_drop(ph);
  }

  // -- boot-time trie construction --------------------------------------------------

  init {
    for (u32 r = 0; r < N_ROUTES; r++) {
      u32 prefix = route_prefix[r];
      u32 len = route_len[r];
      u32 leaf = 0x80000000 | route_nh[r];
      if (len <= 16) {
        u32 span = 1 << (16 - len);
        u32 base = prefix >> 16;
        for (u32 i = 0; i < span; i++) {
          u32 e = trie16[base + i];
          if ((e & 0x40000000) != 0) {
            // A longer prefix already expanded here: fill its empty slots.
            u32 block = e & 0xffff;
            for (u32 j = 0; j < 256; j++) {
              if (trie8[(block << 8) + j] == 0) {
                trie8[(block << 8) + j] = leaf;
              }
            }
          } else {
            trie16[base + i] = leaf;
          }
        }
      } else {
        u32 idx = prefix >> 16;
        u32 e = trie16[idx];
        u32 block = 0;
        if ((e & 0x40000000) != 0) {
          block = e & 0xffff;
        } else {
          block = trie8_next;
          trie8_next = trie8_next + 1;
          for (u32 j = 0; j < 256; j++) {
            trie8[(block << 8) + j] = e;  // inherit the shorter route (or 0)
          }
          trie16[idx] = 0x40000000 | block;
        }
        u32 span8 = 1 << (24 - len);
        u32 base8 = (prefix >> 8) & 0xff;
        for (u32 i = 0; i < span8; i++) {
          trie8[(block << 8) + base8 + i] = leaf;
        }
      }
    }
  }
}
"""


def build_source(routes: RouteTable, bridge: BridgeTable) -> str:
    rendered = render_route_table(routes) + "\n" + render_bridge_table(bridge)
    return _TEMPLATE % {"tables": rendered}


class L3SwitchApp:
    """Bundled application: source + matching trace generator + oracles."""

    name = NAME

    def __init__(self, n_routes: int = 64, seed: int = 42):
        self.routes = make_route_table(n_routes=n_routes, seed=seed)
        assert all(r.length <= 24 for r in self.routes.routes), \
            "the Baker trie builder supports prefixes up to /24"
        self.bridge = make_bridge_table(seed=seed + 1)
        self.source = build_source(self.routes, self.bridge)

    def make_trace(self, count: int, seed: int = 1,
                   bridged_fraction: float = 0.10,
                   arp_fraction: float = 0.02,
                   bad_fraction: float = 0.01) -> Trace:
        """Routed IPv4 traffic plus bridged stations, a little ARP, and a
        trickle of invalid packets (TTL expiry) for the error path."""
        rng = random.Random(seed)
        dsts = self.routes.addresses_in(max(count, 64), seed=seed + 7)
        stations = sorted(self.bridge.entries)
        trace = Trace()
        for i in range(count):
            port = i % tables.N_PORTS
            roll = rng.random()
            if roll < arp_fraction:
                arp_req = (
                    (1).to_bytes(2, "big") + ETH_TYPE_IP.to_bytes(2, "big")
                    + bytes([6, 4]) + (1).to_bytes(2, "big")
                    + (0x020000000000 | i).to_bytes(6, "big")
                    + (0x0A000001 + i).to_bytes(4, "big")
                    + bytes(6)
                    + (0xC0A80101).to_bytes(4, "big")
                )
                frame = build_ethernet(0xFFFFFFFFFFFF, 0x020000000000 | i,
                                       ETH_TYPE_ARP, arp_req)
            elif roll < arp_fraction + bridged_fraction:
                dst_mac = stations[rng.randrange(len(stations))]
                ip = build_ipv4(0x0A000001 + i, dsts[i % len(dsts)],
                                total_length=46)
                frame = build_ethernet(dst_mac, 0x020000000000 | i,
                                       ETH_TYPE_IP, ip)
            else:
                ttl = 1 if rng.random() < bad_fraction else 64
                ip = build_ipv4(0x0A000001 + i, dsts[i % len(dsts)],
                                ttl=ttl, total_length=46)
                frame = build_ethernet(tables.ROUTER_MACS[port],
                                       0x020000000000 | i, ETH_TYPE_IP, ip)
            trace.packets.append(TracePacket(frame, port))
        return trace

    # -- oracles for tests ---------------------------------------------------------

    def expected_nexthop(self, dst_addr: int) -> int:
        return self.routes.lookup(dst_addr)

    def expected_bridge_port(self, mac: int):
        return self.bridge.entries.get(mac)
