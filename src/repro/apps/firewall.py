"""Firewall: the paper's second benchmark application.

A transparent (bridging) firewall between an internal and an external
network (paper section 6.1): a classifier matches the 5-tuple (source
and destination IPs, ports, protocol) against an *ordered* list of
user-defined rules; the first match decides pass/drop and attaches a
flow id to the packet's metadata. Matching walks dynamic-offset headers
(IPv4 options legal, L4 beyond), so this is the paper's workload where
static offset resolution has the least to bite on, and the rule table's
access pattern (every rule touched for late-matching packets) defeats
the 16-entry software cache -- exactly why Table 1's Firewall rows show
no SWC change.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.apps import tables
from repro.apps.tables import (
    FirewallConfig,
    make_firewall_rules,
    render_firewall_rules,
)
from repro.profiler.trace import (
    ETH_TYPE_IP,
    Trace,
    TracePacket,
    build_ethernet,
    build_ipv4,
    build_udp,
)

NAME = "firewall"

_TEMPLATE = r"""
protocol ether {
  dst : 48;
  src : 48;
  type : 16;
  demux { 14 };
}

protocol ipv4 {
  ver : 4;
  ihl : 4;
  tos : 8;
  length : 16;
  ident : 16;
  flags_frag : 16;
  ttl : 8;
  proto : 8;
  checksum : 16;
  src : 32;
  dst : 32;
  demux { ihl << 2 };
}

protocol l4 {
  sport : 16;
  dport : 16;
  demux { 4 };
}

metadata {
  u32 flow_id;
}

const u32 ETH_TYPE_IP = 0x0800;

// -- rule tables (generated) ----------------------------------------------------
%(tables)s

// Per-rule drop counters (control plane reads them; updated on the drop
// path only, inside a critical section).
u32 fw_drop_count[64];
shared u32 fw_passed = 0;

module firewall {
  channel match_cc;
  channel drop_cc;
  channel other_cc;

  ppf clsfr(ether_pkt *ph) from rx {
    if (ph->type == ETH_TYPE_IP) {
      ipv4_pkt *iph = packet_decap(ph);
      channel_put(match_cc, iph);
    } else {
      channel_put(other_cc, ph);
    }
  }

  ppf rule_match(ipv4_pkt *iph) from match_cc {
    u32 src = iph->src;
    u32 dst = iph->dst;
    u32 proto = iph->proto;
    u32 hdr_bytes = iph->ihl << 2;
    l4_pkt *l4h = packet_decap(iph);
    u32 sport = l4h->sport;
    u32 dport = l4h->dport;

    u32 action = 0;
    u32 flow = 0;
    u32 matched_rule = 0xffffffff;
    for (u32 r = 0; r < N_RULES; r++) {
      u32 row = r << 4;  // 16-word rule rows
      // Most selective field first; later fields load only on a partial
      // match, so a failing rule usually costs two table reads.
      if ((dst & fw_rules[row + 3]) == (fw_rules[row + 2] & fw_rules[row + 3])) {
        if ((src & fw_rules[row + 1]) == (fw_rules[row + 0] & fw_rules[row + 1])) {
          if (dport >= fw_rules[row + 6] && dport <= fw_rules[row + 7]) {
            if (sport >= fw_rules[row + 4] && sport <= fw_rules[row + 5]) {
              u32 rproto = fw_rules[row + 8];
              if (rproto == 0 || rproto == proto) {
                action = fw_rules[row + 9];
                flow = fw_rules[row + 10];
                matched_rule = r;
                break;
              }
            }
          }
        }
      }
    }

    // Restore the frame head (L4 + IPv4 + Ethernet) before it leaves.
    packet_extend(l4h, hdr_bytes + 14);
    ether_pkt *eph = packet_as(l4h, ether);
    if (action == 1) {
      eph->meta.flow_id = matched_rule;
      channel_put(drop_cc, eph);
    } else {
      eph->meta.flow_id = flow;
      channel_put(tx, eph);
    }
  }

  // Non-IP frames bridge straight through (transparent device).
  ppf passthru(ether_pkt *ph) from other_cc {
    channel_put(tx, ph);
  }

  // -- control path (XScale): drop accounting ---------------------------------------

  ppf dropper(ether_pkt *ph) from drop_cc {
    // Per-rule drop statistic. The increment is intentionally
    // lock-free: on hardware each ME keeps its own counter slice; a
    // per-packet critical section here would serialize the data path.
    u32 rule = ph->meta.flow_id;
    fw_drop_count[rule & 63] = fw_drop_count[rule & 63] + 1;
    packet_drop(ph);
  }

  init {
    for (u32 i = 0; i < 64; i++) {
      fw_drop_count[i] = 0;
    }
  }
}
"""


def build_source(config: FirewallConfig) -> str:
    return _TEMPLATE % {"tables": render_firewall_rules(config)}


class FirewallApp:
    """Bundled application: source + trace generator + oracle."""

    name = NAME

    def __init__(self, n_rules: int = 12, seed: int = 44,
                 drop_fraction: float = 0.4):
        self.config = make_firewall_rules(n_rules=n_rules, seed=seed,
                                          drop_fraction=drop_fraction)
        self.source = build_source(self.config)

    def _flows(self, n_flows: int, seed: int) -> List[Tuple[int, int, int, int, int]]:
        """5-tuples biased toward the configured rules so both early and
        late rules (and the catch-all) get exercised."""
        rng = random.Random(seed)
        flows = []
        rules = self.config.rules[:-1]
        for i in range(n_flows):
            if rules and rng.random() < 0.7:
                rule = rules[rng.randrange(len(rules))]
                src = (rule.src_ip | rng.getrandbits(12)) if rule.src_mask else rng.getrandbits(32)
                dst = rule.dst_ip | rng.getrandbits(8)
                dport = rng.randint(rule.dport_lo, min(rule.dport_hi, rule.dport_lo + 50))
                proto = rule.proto or rng.choice([6, 17])
            else:
                src = 0x0A000000 | rng.getrandbits(16)
                dst = 0xC0A80000 | rng.getrandbits(16)
                dport = rng.randrange(0xFFFF)
                proto = rng.choice([6, 17])
            flows.append((src, dst, rng.randrange(1024, 0xFFFF), dport, proto))
        return flows

    def make_trace(self, count: int, seed: int = 2, n_flows: int = 48) -> Trace:
        rng = random.Random(seed)
        flows = self._flows(n_flows, seed + 5)
        trace = Trace()
        for i in range(count):
            port = i % tables.N_PORTS
            src, dst, sport, dport, proto = flows[rng.randrange(len(flows))]
            udp = build_udp(sport, dport)
            ip = build_ipv4(src, dst, payload=udp, proto=proto, total_length=46)
            frame = build_ethernet(tables.ROUTER_MACS[port],
                                   0x020000000000 | i, ETH_TYPE_IP, ip)
            trace.packets.append(TracePacket(frame, port))
        return trace

    # -- oracle --------------------------------------------------------------------

    def expected_action(self, src: int, dst: int, sport: int, dport: int,
                        proto: int) -> Tuple[int, int]:
        return self.config.classify(src, dst, sport, dport, proto)
