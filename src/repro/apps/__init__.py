"""The paper's three benchmark applications, written in Baker.

Usage::

    from repro.apps import get_app
    app = get_app("l3switch")
    trace = app.make_trace(200, seed=1)
    result = compile_baker(app.source, options_for("SWC"), trace)
"""

from __future__ import annotations

from typing import Dict, Union

from repro.apps.firewall import FirewallApp
from repro.apps.l3switch import L3SwitchApp
from repro.apps.mpls import MplsApp

APP_CLASSES = {
    "l3switch": L3SwitchApp,
    "firewall": FirewallApp,
    "mpls": MplsApp,
}

_cache: Dict[str, object] = {}


def get_app(name: str):
    """A cached default-configuration instance of one application."""
    if name not in _cache:
        _cache[name] = APP_CLASSES[name]()
    return _cache[name]


def all_apps():
    return [get_app(name) for name in APP_CLASSES]
