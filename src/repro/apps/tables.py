"""Synthetic application tables.

The paper evaluates with the NPF IP-forwarding and MPLS-forwarding
benchmark tables plus home-grown Firewall rule sets; none are public, so
these generators build equivalent synthetic tables with realistic
structure: route tables with a mixed prefix-length distribution, MPLS
label bindings, and ordered firewall rule lists. Each generator returns
both the Python-side data (for trace generation and oracle checks) and a
Baker global-initializer fragment that compiles into the application.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

# Router port MACs (3 ports, as on the IXP2400 eval board's 3x1G optics).
ROUTER_MACS: List[int] = [0x0A0000000001, 0x0A0000000002, 0x0A0000000003]
N_PORTS = 3


def render_u32_array(name: str, values: Sequence[int], size: int = None) -> str:
    size = size if size is not None else len(values)
    inits = ", ".join("%#x" % (v & 0xFFFFFFFF) for v in values)
    return "u32 %s[%d] = { %s };" % (name, size, inits)


def render_u64_array(name: str, values: Sequence[int], size: int = None) -> str:
    size = size if size is not None else len(values)
    inits = ", ".join("%#x" % (v & 0xFFFFFFFFFFFFFFFF) for v in values)
    return "u64 %s[%d] = { %s };" % (name, size, inits)


# -- routes (L3-Switch) ----------------------------------------------------------


@dataclass
class Route:
    prefix: int  # network-order IPv4 prefix (host bits zero)
    length: int  # prefix length
    nexthop: int  # next-hop id (index into the next-hop table)


@dataclass
class RouteTable:
    routes: List[Route]
    nexthops: List[Tuple[int, int]]  # (dst_mac, out_port) per next-hop id
    default_nexthop: int = 0

    def lookup(self, addr: int) -> int:
        """Longest-prefix match (Python oracle)."""
        best_len, best_nh = -1, self.default_nexthop
        for r in self.routes:
            if r.length > best_len:
                mask = (0xFFFFFFFF << (32 - r.length)) & 0xFFFFFFFF if r.length else 0
                if (addr & mask) == r.prefix:
                    best_len, best_nh = r.length, r.nexthop
        return best_nh

    def addresses_in(self, count: int, seed: int = 0) -> List[int]:
        """Destination addresses covered by the table (for traces)."""
        rng = random.Random(seed)
        out = []
        for _ in range(count):
            r = self.routes[rng.randrange(len(self.routes))]
            host_bits = 32 - r.length
            out.append(r.prefix | rng.getrandbits(host_bits) if host_bits else r.prefix)
        return out


def make_route_table(n_routes: int = 64, n_nexthops: int = 12,
                     seed: int = 42) -> RouteTable:
    """Routes with an NPF-like prefix-length mix (8..24, peaked at 16/24),
    pre-sorted by ascending length so the Baker trie builder can insert
    shorter prefixes first."""
    rng = random.Random(seed)
    lengths = [8, 12, 16, 16, 16, 20, 24, 24]
    routes: List[Route] = []
    seen = set()
    while len(routes) < n_routes:
        length = rng.choice(lengths)
        prefix = rng.getrandbits(32) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
        if (prefix, length) in seen or prefix >> 24 in (0, 10, 127):
            continue
        seen.add((prefix, length))
        routes.append(Route(prefix, length, 1 + rng.randrange(n_nexthops - 1)))
    routes.sort(key=lambda r: r.length)
    nexthops = [(0x0C0000000000 + i, i % N_PORTS) for i in range(n_nexthops)]
    return RouteTable(routes, nexthops)


def render_route_table(table: RouteTable) -> str:
    """Baker globals for the route list and next-hop table.

    The next-hop table uses a 16-byte stride (u64 mac implies two words,
    one word port, one pad) so SWC can cache it without a divide."""
    n = len(table.routes)
    lines = [
        "const u32 N_ROUTES = %d;" % n,
        render_u32_array("route_prefix", [r.prefix for r in table.routes]),
        render_u32_array("route_len", [r.length for r in table.routes]),
        render_u32_array("route_nh", [r.nexthop for r in table.routes]),
        render_u64_array("nh_mac", [mac for mac, _ in table.nexthops]),
        render_u32_array("nh_port", [port for _, port in table.nexthops]),
        render_u64_array("port_mac", ROUTER_MACS),
    ]
    return "\n".join(lines)


# -- bridge table (L3-Switch L2 path) ------------------------------------------------


@dataclass
class BridgeTable:
    """Static MAC -> port table, direct-indexed open addressing."""

    slots: int
    entries: Dict[int, int]  # mac -> port

    def bucket(self, mac: int) -> int:
        return (mac ^ (mac >> 16) ^ (mac >> 32)) & (self.slots - 1)


def make_bridge_table(n_stations: int = 24, slots: int = 64,
                      seed: int = 43) -> BridgeTable:
    rng = random.Random(seed)
    entries: Dict[int, int] = {}
    while len(entries) < n_stations:
        mac = 0x020000000000 | rng.getrandbits(24)
        entries[mac] = rng.randrange(N_PORTS)
    return BridgeTable(slots, entries)


def render_bridge_table(table: BridgeTable) -> str:
    macs = [0] * table.slots
    ports = [0xFFFFFFFF] * table.slots
    for mac, port in table.entries.items():
        idx = table.bucket(mac)
        for probe in range(table.slots):
            slot = (idx + probe) & (table.slots - 1)
            if macs[slot] == 0:
                macs[slot] = mac
                ports[slot] = port
                break
    return "\n".join([
        "const u32 BR_SLOTS = %d;" % table.slots,
        render_u64_array("br_mac", macs),
        render_u32_array("br_port", ports),
    ])


# -- firewall rules --------------------------------------------------------------------


@dataclass
class FirewallRule:
    src_ip: int
    src_mask: int
    dst_ip: int
    dst_mask: int
    sport_lo: int
    sport_hi: int
    dport_lo: int
    dport_hi: int
    proto: int  # 0 = any
    action: int  # 0 = pass, 1 = drop
    flow_id: int

    def matches(self, src: int, dst: int, sport: int, dport: int, proto: int) -> bool:
        return (
            (src & self.src_mask) == (self.src_ip & self.src_mask)
            and (dst & self.dst_mask) == (self.dst_ip & self.dst_mask)
            and self.sport_lo <= sport <= self.sport_hi
            and self.dport_lo <= dport <= self.dport_hi
            and (self.proto == 0 or self.proto == proto)
        )


@dataclass
class FirewallConfig:
    rules: List[FirewallRule]

    def classify(self, src: int, dst: int, sport: int, dport: int,
                 proto: int) -> Tuple[int, int]:
        """(action, flow_id) of the first matching rule (Python oracle)."""
        for rule in self.rules:
            if rule.matches(src, dst, sport, dport, proto):
                return rule.action, rule.flow_id
        return 0, 0


def make_firewall_rules(n_rules: int = 24, drop_fraction: float = 0.4,
                        seed: int = 44) -> FirewallConfig:
    """An ordered rule list ending in a catch-all pass rule. Rules guard
    internal /16 networks and well-known port ranges."""
    rng = random.Random(seed)
    rules: List[FirewallRule] = []
    for i in range(n_rules - 1):
        net = 0xC0A80000 | (rng.randrange(16) << 8)  # 192.168.x.0/24-ish
        wide_src = rng.random() < 0.5
        port_lo = rng.choice([0, 22, 80, 443, 1024, 8000])
        port_hi = port_lo + rng.choice([0, 7, 63, 1023])
        rules.append(FirewallRule(
            src_ip=0 if wide_src else (0x0A000000 | rng.getrandbits(16)),
            src_mask=0 if wide_src else 0xFFFF0000,
            dst_ip=net,
            dst_mask=0xFFFFFF00,
            sport_lo=0,
            sport_hi=0xFFFF,
            dport_lo=port_lo,
            dport_hi=min(port_hi, 0xFFFF),
            proto=rng.choice([0, 6, 17]),
            action=1 if rng.random() < drop_fraction else 0,
            flow_id=i + 1,
        ))
    rules.append(FirewallRule(0, 0, 0, 0, 0, 0xFFFF, 0, 0xFFFF, 0, 0, 0))
    return FirewallConfig(rules)


# Word offsets within a packed 16-word rule row.
RULE_WORDS = 16
R_SRC, R_SRC_MASK, R_DST, R_DST_MASK = 0, 1, 2, 3
R_SPORT_LO, R_SPORT_HI, R_DPORT_LO, R_DPORT_HI = 4, 5, 6, 7
R_PROTO, R_ACTION, R_FLOW = 8, 9, 10


def render_firewall_rules(config: FirewallConfig) -> str:
    """Rules packed as 16-word rows of one flat table (one row per rule,
    like a struct array; power-of-two stride keeps indexing shift-only)."""
    n = len(config.rules)
    words = []
    for r in config.rules:
        row = [r.src_ip, r.src_mask, r.dst_ip, r.dst_mask,
               r.sport_lo, r.sport_hi, r.dport_lo, r.dport_hi,
               r.proto, r.action, r.flow_id] + [0] * (RULE_WORDS - 11)
        words.extend(row)
    lines = [
        "const u32 N_RULES = %d;" % n,
        render_u32_array("fw_rules", words),
        render_u64_array("port_mac", ROUTER_MACS),
    ]
    return "\n".join(lines)


# -- MPLS label bindings ------------------------------------------------------------------


MPLS_OP_INVALID = 0
MPLS_OP_SWAP = 1
MPLS_OP_POP = 2
MPLS_OP_PUSH = 3

ILM_SIZE = 1024


@dataclass
class MplsConfig:
    """Incoming label map: label -> (op, out_label, nexthop)."""

    ilm: Dict[int, Tuple[int, int, int]]  # label -> (op, out_label, nexthop)
    ftn: Dict[int, Tuple[int, int]]  # dst /16 prefix -> (label, nexthop)
    nexthops: List[Tuple[int, int]]  # (dst_mac, out_port)

    def hot_labels(self) -> List[int]:
        return sorted(self.ilm)


def make_mpls_config(n_labels: int = 16, n_nexthops: int = 8,
                     seed: int = 45) -> MplsConfig:
    rng = random.Random(seed)
    ilm: Dict[int, Tuple[int, int, int]] = {}
    labels = rng.sample(range(16, ILM_SIZE), n_labels)
    for i, label in enumerate(labels):
        kind = (MPLS_OP_SWAP, MPLS_OP_POP, MPLS_OP_PUSH)[i % 3]
        out_label = labels[(i * 7 + 3) % n_labels]
        ilm[label] = (kind, out_label, 1 + rng.randrange(n_nexthops - 1))
    ftn = {}
    for i in range(8):
        prefix16 = 0xC0A8 + i
        ftn[prefix16] = (labels[i % n_labels], 1 + rng.randrange(n_nexthops - 1))
    nexthops = [(0x0E0000000000 + i, i % N_PORTS) for i in range(n_nexthops)]
    return MplsConfig(ilm, ftn, nexthops)


# -- live-churn mutations (the repro.serve control plane) -------------------------
#
# Each helper draws a deterministic sequence of single-word (or
# single-u64) rewrites against the *rendered* table layout: ``target``
# is the Baker global, ``offset``/``width`` address the element exactly
# as the XScale global adapter does, and ``old_value`` is asserted
# against live memory before the store (catching any layout drift
# loudly). Helpers also update the Python-side table object so oracles
# and later mutations see the post-update state. ``probe`` carries what
# a stale-traffic scan needs: retired values that no valid packet
# should carry once the data plane is coherent again.


@dataclass
class TableMutation:
    """One control-plane table update, addressed at the byte level."""

    kind: str                 # churn kind (route-flap / fw-toggle / ...)
    target: str               # Baker global name
    index: int                # element index within the table
    offset: int               # byte offset within the global
    width: int                # byte width of the store
    old_value: int
    new_value: int
    probe: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        return "%s %s[%d] %#x->%#x" % (self.kind, self.target, self.index,
                                       self.old_value, self.new_value)


def route_flap_mutations(table: RouteTable, count: int,
                         seed: int = 0) -> List[TableMutation]:
    """Next-hop MAC rewrites (a neighbor re-resolving to a new address).

    Flapped next hops get fresh MACs from a reserved 0x0D... range, so a
    retired MAC never becomes valid again -- any Tx frame carrying it
    after the update is provably stale (the SWC delayed-coherency
    window made visible). ``nh_mac`` is SWC-cached at +SWC, so the
    store also raises the cache-update flag when the serve control
    plane applies it.
    """
    rng = random.Random(seed)
    muts: List[TableMutation] = []
    for k in range(count):
        # Next hop 0 is the default route target; flap real next hops.
        i = 1 + rng.randrange(len(table.nexthops) - 1)
        old_mac, port = table.nexthops[i]
        new_mac = 0x0D0000000000 | ((seed & 0xFFFF) << 16) | k
        table.nexthops[i] = (new_mac, port)
        muts.append(TableMutation(
            kind="route-flap", target="nh_mac", index=i,
            offset=i * 8, width=8, old_value=old_mac, new_value=new_mac,
            probe={"stale_dst_mac": old_mac}))
    return muts


def firewall_rule_mutations(config: FirewallConfig, count: int,
                            seed: int = 0) -> List[TableMutation]:
    """Action toggles (pass<->drop) on non-catch-all rules.

    The firewall caches nothing under SWC (the rule table is too large
    for the CAM), so these updates take effect immediately -- the
    control contrast to the route-flap case. The visible impact is a
    step in the per-window drop/forward counts for flows the toggled
    rule matches.
    """
    rng = random.Random(seed)
    muts: List[TableMutation] = []
    for _ in range(count):
        i = rng.randrange(len(config.rules) - 1)  # keep the catch-all
        rule = config.rules[i]
        old_action, new_action = rule.action, 1 - rule.action
        rule.action = new_action
        muts.append(TableMutation(
            kind="fw-toggle", target="fw_rules", index=i,
            offset=(i * RULE_WORDS + R_ACTION) * 4, width=4,
            old_value=old_action, new_value=new_action,
            probe={"flow_id": rule.flow_id}))
    return muts


def mpls_label_mutations(config: "MplsConfig", count: int, seed: int = 0,
                         ) -> List[TableMutation]:
    """Outgoing-label rewrites on SWAP entries (LSP re-signaling).

    Candidates are SWAP entries whose *current* outgoing label is not
    also pushed by the FTN (ingress) table; replacement labels come
    from an unused range above the ILM. Both together make the retired
    label unambiguous: once the data plane is coherent, no Tx frame
    should carry it, so late occurrences measure the SWC
    delayed-coherency window on the cached ``ilm`` table.
    """
    rng = random.Random(seed)
    ftn_labels = {label for label, _ in config.ftn.values()}
    used = set(config.ilm) | ftn_labels
    used.update(out for _, out, _ in config.ilm.values())
    next_fresh = ILM_SIZE + 1 + (seed % 101)
    muts: List[TableMutation] = []
    for _ in range(count):
        candidates = sorted(
            label for label, (op, out, _nh) in config.ilm.items()
            if op == MPLS_OP_SWAP and out not in ftn_labels)
        if not candidates:
            break
        label = candidates[rng.randrange(len(candidates))]
        op, old_out, nh = config.ilm[label]
        while next_fresh in used:
            next_fresh += 1
        new_out = next_fresh
        used.add(new_out)
        config.ilm[label] = (op, new_out, nh)
        old_word = (op << 30) | (old_out << 10) | nh
        new_word = (op << 30) | (new_out << 10) | nh
        muts.append(TableMutation(
            kind="mpls-relabel", target="ilm", index=label,
            offset=label * 4, width=4, old_value=old_word,
            new_value=new_word,
            probe={"stale_mpls_label": old_out, "new_mpls_label": new_out}))
    return muts


def render_mpls_config(config: MplsConfig) -> str:
    # ilm_entry word: op(2) << 30 | out_label(20) << 10 | nexthop(10)
    ilm_words = [0] * ILM_SIZE
    for label, (op, out_label, nh) in config.ilm.items():
        ilm_words[label] = (op << 30) | (out_label << 10) | nh
    ftn_labels = [0] * 256
    ftn_nh = [0] * 256
    for prefix16, (label, nh) in config.ftn.items():
        idx = prefix16 & 0xFF
        ftn_labels[idx] = label
        ftn_nh[idx] = nh
    lines = [
        render_u32_array("ilm", ilm_words),
        render_u32_array("ftn_label", ftn_labels),
        render_u32_array("ftn_nh", ftn_nh),
        render_u64_array("nh_mac", [mac for mac, _ in config.nexthops]),
        render_u32_array("nh_port", [port for _, port in config.nexthops]),
    ]
    return "\n".join(lines)
