"""IR -> LIR lowering (the code generator's main stage).

Turns the optimized, aggregated IR into ME instructions over virtual
registers. 64-bit IR values are expanded into register pairs (high word
first, matching big-endian memory order); packet primitives are expanded
by :mod:`repro.cg.pktlower`; calls follow the convention in
:mod:`repro.cg.abi`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple, Union

from repro.baker import types as T
from repro.cg import abi
from repro.cg import isa
from repro.cg.isa import (
    Alu, Bal, Br, Cmp, CtxArb, Imm, Immed, Insn, LIRBlock, LIRFunction,
    LoadSym, Mem, Mov, Reg, RingPut, Rtn, StackRead, StackWrite, SymRef,
    TestAndSet, AtomicRelease, VReg,
)
from repro.cg.melayout import SWC_REGION_BASE
from repro.ir import instructions as I
from repro.ir.module import IRFunction, IRModule
from repro.ir.values import Const, Operand, Temp
from repro.opt.aliases import AliasClasses
from repro.options import CompilerOptions

MAX_ALU_IMM = 0xFF  # largest constant an ALU/cmp instruction embeds


class CodegenError(Exception):
    pass


def _is64_type(t: T.Type) -> bool:
    return isinstance(t, T.IntType) and t.bits > 32


def _is64(v: Operand) -> bool:
    if isinstance(v, Temp):
        return _is64_type(v.type)
    if isinstance(v, Const):
        return _is64_type(v.type) or v.value > 0xFFFFFFFF
    return False


class LowerContext:
    """Shared state for lowering all functions of one ME image."""

    def __init__(self, mod: IRModule, opts: CompilerOptions):
        self.mod = mod
        self.opts = opts
        self.helpers: Dict[str, LIRFunction] = {}  # packet helper routines

    def ring_sym(self, channel: str) -> SymRef:
        return SymRef("ring.%s" % channel)

    def lock_sym(self, lock: str) -> SymRef:
        return SymRef("lock.%s" % lock)

    def global_sym(self, name: str, addend: int = 0) -> SymRef:
        return SymRef(name, addend)

    def global_space(self, name: str) -> str:
        return self.mod.globals[name].memory


class FunctionLowerer:
    def __init__(self, ctx: LowerContext, ir_fn: IRFunction):
        self.ctx = ctx
        self.ir_fn = ir_fn
        self.fn = LIRFunction(ir_fn.name)
        self.aliases = AliasClasses(ir_fn)
        self.t32: Dict[Temp, VReg] = {}
        self.t64: Dict[Temp, Tuple[VReg, VReg]] = {}
        self.cur: LIRBlock = None  # type: ignore[assignment]
        self._label_n = 0
        self.array_base: Dict[str, int] = {}
        self.meta_memo: Dict[Tuple[Temp, str], VReg] = {}
        # Function-wide memo for the packet parameter's buffer address:
        # `buf` never changes for a given packet and the entry block
        # dominates everything, so one read serves the whole function.
        self.persistent_buf: Dict[Temp, VReg] = {}
        self._use_counts: Counter = Counter()
        self._single_defs: Dict[Temp, I.Instr] = {}
        # Leafness must anticipate the out-of-line packet helpers that
        # BASE/-O1 lowering introduces (they clobber the link register).
        self._has_calls = any(isinstance(i, I.Call) for i in ir_fn.all_instrs())
        if not ctx.opts.inline and not self._has_calls:
            self._has_calls = any(
                isinstance(i, (I.PktLoadField, I.PktStoreField,
                               I.PktLoadWords, I.PktStoreWords))
                for i in ir_fn.all_instrs()
            )

    # -- small helpers ----------------------------------------------------------

    def vreg(self, hint: str = "") -> VReg:
        return VReg(hint)

    def emit(self, insn: Insn) -> Insn:
        return self.cur.emit(insn)

    def label(self, hint: str) -> str:
        self._label_n += 1
        return "%s__%s%d" % (self.fn.entry_label, hint, self._label_n)

    def new_block(self, label: Optional[str] = None, hint: str = "l") -> LIRBlock:
        """Create a block and fall through into it: inserted immediately
        after the current block (LIR fallthrough is positional)."""
        bb = LIRBlock(label or self.label(hint))
        blocks = self.fn.blocks
        if self.cur is not None and self.cur in blocks:
            blocks.insert(blocks.index(self.cur) + 1, bb)
        else:
            blocks.append(bb)
        self.cur = bb
        return bb

    def ir_block_label(self, bb) -> str:
        return "%s__%s" % (self.fn.entry_label, bb.label)

    def materialize(self, value: int, hint: str = "c") -> VReg:
        r = self.vreg(hint)
        self.emit(Immed(r, value & 0xFFFFFFFF))
        return r

    def reg32(self, op: Operand) -> VReg:
        """IR operand -> a 32-bit register (low half of 64-bit values)."""
        if isinstance(op, Const):
            return self.materialize(op.value & 0xFFFFFFFF)
        if _is64(op):
            return self.pair(op)[1]
        if op not in self.t32:
            self.t32[op] = self.vreg(op.hint)
        return self.t32[op]

    def val32(self, op: Operand) -> Union[VReg, Imm]:
        """Like reg32 but small constants stay immediate operands."""
        if isinstance(op, Const) and 0 <= op.value <= MAX_ALU_IMM:
            return Imm(op.value)
        return self.reg32(op)

    def pair(self, op: Operand) -> Tuple[VReg, VReg]:
        """IR operand -> (hi, lo) register pair."""
        if isinstance(op, Const):
            hi = self.materialize((op.value >> 32) & 0xFFFFFFFF, "chi")
            lo = self.materialize(op.value & 0xFFFFFFFF, "clo")
            return hi, lo
        if not _is64(op):
            hi = self.materialize(0, "zext")
            return hi, self.reg32(op)
        if op not in self.t64:
            self.t64[op] = (self.vreg(op.hint + ".hi"), self.vreg(op.hint + ".lo"))
        return self.t64[op]

    def dst32(self, temp: Temp) -> VReg:
        if temp not in self.t32:
            self.t32[temp] = self.vreg(temp.hint)
        return self.t32[temp]

    def dst_pair(self, temp: Temp) -> Tuple[VReg, VReg]:
        if temp not in self.t64:
            self.t64[temp] = (self.vreg(temp.hint + ".hi"), self.vreg(temp.hint + ".lo"))
        return self.t64[temp]

    def global_addr(self, name: str, offset: Operand) -> Tuple[VReg, Union[Imm, VReg]]:
        """(addr_a, addr_b) operands for a global access."""
        if isinstance(offset, Const):
            base = self.vreg("gaddr")
            self.emit(LoadSym(base, self.ctx.global_sym(name, offset.value)))
            return base, Imm(0)
        base = self.vreg("gaddr")
        self.emit(LoadSym(base, self.ctx.global_sym(name)))
        return base, self.reg32(offset)

    # -- driver -----------------------------------------------------------------

    def lower(self) -> LIRFunction:
        self.fn.is_leaf = not self._has_calls
        self._count_uses()
        self._assign_arrays()
        entry = self.fn.new_block(self.fn.entry_label)
        self.cur = entry
        self._emit_prologue()
        self._hoist_param_buf()
        # Pre-create one LIR block per IR block for stable branch targets.
        for bb in self.ir_fn.blocks:
            self.fn.new_block(self.ir_block_label(bb))
        self.emit(Br("always", self.ir_block_label(self.ir_fn.entry)))
        from repro.ir.cfg import compute_cfg

        compute_cfg(self.ir_fn)
        end_memos: Dict[object, Dict] = {}
        for bb in self.ir_fn.blocks:
            self.cur = next(
                b for b in self.fn.blocks if b.label == self.ir_block_label(bb)
            )
            # The metadata memo survives into a single-predecessor block:
            # every path there runs through that predecessor, so values
            # cached at its end are still valid.
            if len(bb.preds) == 1 and bb.preds[0] in end_memos and bb.preds[0] is not bb:
                self.meta_memo = dict(end_memos[bb.preds[0]])
            else:
                self.meta_memo = {}
            for instr in bb.instrs:
                self.lower_instr(instr)
            end_memos[bb] = dict(self.meta_memo)
            self._lower_terminator(bb)
        return self.fn

    def _count_uses(self) -> None:
        defs: Counter = Counter()
        for instr in self.ir_fn.all_instrs():
            for u in instr.uses():
                if isinstance(u, Temp):
                    self._use_counts[u] += 1
            for d in instr.defs():
                defs[d] += 1
        for instr in self.ir_fn.all_instrs():
            ds = instr.defs()
            if len(ds) == 1 and defs[ds[0]] == 1:
                self._single_defs[ds[0]] = instr

    def _assign_arrays(self) -> None:
        # Slot 0 is the saved link register for non-leaf functions.
        next_slot = abi.LINK_SLOT + 1 if self._has_calls else 0
        for name, arr in self.ir_fn.local_arrays.items():
            self.array_base[name] = next_slot
            next_slot += arr.size_bytes // 4
        self.fn.frame_slots = next_slot

    def _emit_prologue(self) -> None:
        if self._has_calls:
            self.emit(StackWrite(abi.LINK_SLOT, abi.LINK))
        slot = 0
        for p in self.ir_fn.params:
            if _is64(p):
                hi, lo = self.dst_pair(p)
                self.emit(Mov(hi, abi.ARG_REGS[slot]))
                self.emit(Mov(lo, abi.ARG_REGS[slot + 1]))
                slot += 2
            else:
                self.emit(Mov(self.dst32(p), abi.ARG_REGS[slot]))
                slot += 1
            if slot > len(abi.ARG_REGS):
                raise CodegenError("%s: too many parameters" % self.ir_fn.name)

    def _hoist_param_buf(self) -> None:
        """For a PPF whose body contains statically-resolved packet
        accesses (which need only ``buf``, not ``head``), read the packet
        parameter's buffer address once at entry."""
        if self.ir_fn.kind != "ppf" or not self.ctx.opts.inline:
            return
        params = [p for p in self.ir_fn.params if p.type.is_packet]
        if not params:
            return
        has_static = any(
            isinstance(i, (I.PktLoadField, I.PktStoreField,
                           I.PktLoadWords, I.PktStoreWords))
            and getattr(i, "c_offset_bits", None) is not None
            for i in self.ir_fn.all_instrs()
        )
        if not (self.ctx.opts.soar and has_static):
            return
        from repro.baker.packetmodel import META_BUF_ADDR
        from repro.cg.isa import Mem

        cls = self.aliases.class_of(params[0])
        buf = self.vreg("buf")
        self.emit(Mem("sram", "read", [buf], self.reg32(params[0]),
                      Imm(META_BUF_ADDR * 4), 1, category=isa.CAT_PACKET))
        self.persistent_buf[cls] = buf

    def _emit_epilogue_and_return(self, value: Optional[Operand]) -> None:
        results = []
        if value is not None:
            if _is64_type(self.ir_fn.ret_type):
                hi, lo = self.pair(value)
                self.emit(Mov(abi.RET_HI, hi))
                self.emit(Mov(abi.RET_LO, lo))
                results = [abi.RET_HI, abi.RET_LO]
            else:
                self.emit(Mov(abi.RET_LO, self.reg32(value)))
                results = [abi.RET_LO]
        if self._has_calls:
            tmp = self.vreg("ra")
            self.emit(StackRead(tmp, abi.LINK_SLOT))
            self.emit(Rtn(tmp, result_regs=results))
        else:
            self.emit(Rtn(abi.LINK, result_regs=results))

    # -- terminators -------------------------------------------------------------

    def _lower_terminator(self, bb) -> None:
        term = bb.terminator
        if isinstance(term, I.Jump):
            self.emit(Br("always", self.ir_block_label(term.target)))
        elif isinstance(term, I.Branch):
            then_l = self.ir_block_label(term.then_bb)
            else_l = self.ir_block_label(term.else_bb)
            fused = None
            if isinstance(term.cond, Temp):
                def_instr = self._single_defs.get(term.cond)
                if (isinstance(def_instr, I.Cmp)
                        and self._use_counts[term.cond] == 1
                        and def_instr in bb.instrs):
                    fused = def_instr
            if fused is not None:
                self.emit_cmp_branch(fused.op, fused.a, fused.b, then_l, else_l)
            else:
                self.emit(Cmp(self.reg32(term.cond), Imm(0)))
                self.emit(Br("ne", then_l))
                self.emit(Br("always", else_l))
        elif isinstance(term, I.Ret):
            self._emit_epilogue_and_return(term.value)
        else:  # pragma: no cover
            raise CodegenError("bad terminator %r" % term)

    def emit_cmp_branch(self, op: str, a: Operand, b: Operand,
                        then_l: str, else_l: str) -> None:
        if _is64(a) or _is64(b):
            self._emit_cmp_branch64(op, a, b, then_l, else_l)
            return
        self.emit(Cmp(self.reg32(a), self.val32(b)))
        self.emit(Br(op, then_l))
        self.emit(Br("always", else_l))

    def _emit_cmp_branch64(self, op: str, a: Operand, b: Operand,
                           then_l: str, else_l: str) -> None:
        ahi, alo = self.pair(a)
        bhi, blo = self.pair(b)
        if op == "eq":
            self.emit(Cmp(ahi, bhi))
            self.emit(Br("ne", else_l))
            self.new_block(hint="eq64")
            self.emit(Cmp(alo, blo))
            self.emit(Br("eq", then_l))
            self.emit(Br("always", else_l))
        elif op == "ne":
            self.emit(Cmp(ahi, bhi))
            self.emit(Br("ne", then_l))
            self.new_block(hint="ne64")
            self.emit(Cmp(alo, blo))
            self.emit(Br("ne", then_l))
            self.emit(Br("always", else_l))
        elif op in ("lt_u", "le_u", "gt_u", "ge_u"):
            strict = "lt_u" if op.startswith("l") else "gt_u"
            self.emit(Cmp(ahi, bhi))
            self.emit(Br(strict, then_l))
            self.new_block(hint="ord64a")
            self.emit(Cmp(ahi, bhi))
            self.emit(Br("ne", else_l))
            self.new_block(hint="ord64b")
            self.emit(Cmp(alo, blo))
            self.emit(Br(op, then_l))
            self.emit(Br("always", else_l))
        else:
            raise CodegenError("signed 64-bit comparison is not supported")

    # -- instructions ------------------------------------------------------------------

    def lower_instr(self, instr: I.Instr) -> None:
        from repro.cg import pktlower

        if isinstance(instr, I.Assign):
            self._lower_assign(instr)
        elif isinstance(instr, I.BinOp):
            self._lower_binop(instr)
        elif isinstance(instr, I.Cmp):
            self._lower_cmp_value(instr)
        elif isinstance(instr, I.Call):
            self._lower_call(instr)
        elif isinstance(instr, I.LoadG):
            self._lower_loadg(instr)
        elif isinstance(instr, I.LoadGWords):
            space = self.ctx.global_space(instr.g)
            addr_a, addr_b = self.global_addr(instr.g, instr.offset)
            self.emit(Mem(space, "read", [self.dst32(d) for d in instr.dsts],
                          addr_a, addr_b, instr.nwords, category=isa.CAT_APP))
        elif isinstance(instr, I.StoreG):
            self._lower_storeg(instr)
        elif isinstance(instr, I.LoadL):
            self._lower_loadl(instr)
        elif isinstance(instr, I.StoreL):
            self._lower_storel(instr)
        elif isinstance(instr, I.ChanPut):
            self.meta_memo.clear()
            self.emit(RingPut(self.ctx.ring_sym(instr.channel), self.reg32(instr.ph)))
        elif isinstance(instr, I.LockAcquire):
            self._lower_lock_acquire(instr)
        elif isinstance(instr, I.LockRelease):
            self.emit(AtomicRelease(self._lock_addr(instr.lock)))
        elif isinstance(instr, I.CamLookup):
            self.emit(isa.CamLookup(self.dst32(instr.dst), self.reg32(instr.key)))
        elif isinstance(instr, I.CamWrite):
            self.emit(isa.CamWrite(self.val32(instr.entry), self.reg32(instr.key)))
        elif isinstance(instr, I.CamClear):
            self.emit(isa.CamClear())
        elif isinstance(instr, I.LmLoad):
            self._lower_lm(instr, read=True)
        elif isinstance(instr, I.LmStore):
            self._lower_lm(instr, read=False)
        elif isinstance(instr, I.PktInstr):
            pktlower.lower_packet_instr(self, instr)
        else:  # pragma: no cover
            raise CodegenError("cannot lower %r" % instr)

    def _lower_assign(self, instr: I.Assign) -> None:
        if _is64(instr.dst):
            hi, lo = self.dst_pair(instr.dst)
            shi, slo = self.pair(instr.src)
            self.emit(Mov(hi, shi))
            self.emit(Mov(lo, slo))
        else:
            self.emit(Mov(self.dst32(instr.dst), self.val32(instr.src)))

    def _lower_binop(self, instr: I.BinOp) -> None:
        wide = _is64(instr.dst)
        if not wide:
            if instr.op == "lshr" and (_is64(instr.a)) and isinstance(instr.b, Const):
                # 32-bit result of a 64-bit right shift: funnel the pair.
                self._lower_narrowing_shift(instr)
                return
            if instr.op in ("div_u", "div_s", "rem_u", "rem_s"):
                raise CodegenError(
                    "the microengine has no divide instruction; "
                    "division reached code generation in %s" % self.ir_fn.name
                )
            a = self.reg32(instr.a)
            b = self.val32(instr.b)
            self.emit(Alu(instr.op, self.dst32(instr.dst), a, b))
            return
        self._lower_binop64(instr)

    def _lower_narrowing_shift(self, instr: I.BinOp) -> None:
        k = instr.b.value & 63
        hi, lo = self.pair(instr.a)
        dst = self.dst32(instr.dst)
        if k == 0:
            self.emit(Mov(dst, lo))
        elif k == 32:
            self.emit(Mov(dst, hi))
        elif k < 32:
            t1 = self.vreg()
            self.emit(Alu("lshr", t1, lo, Imm(k)))
            t2 = self.vreg()
            self.emit(Alu("shl", t2, hi, Imm(32 - k)))
            self.emit(Alu("or", dst, t1, t2))
        else:
            self.emit(Alu("lshr", dst, hi, Imm(k - 32)))

    def _lower_binop64(self, instr: I.BinOp) -> None:
        op = instr.op
        dhi, dlo = self.dst_pair(instr.dst)
        if op in ("and", "or", "xor"):
            ahi, alo = self.pair(instr.a)
            bhi, blo = self.pair(instr.b)
            self.emit(Alu(op, dhi, ahi, bhi))
            self.emit(Alu(op, dlo, alo, blo))
            return
        if op in ("shl", "lshr") and isinstance(instr.b, Const):
            k = instr.b.value & 63
            ahi, alo = self.pair(instr.a)
            if k == 0:
                self.emit(Mov(dhi, ahi))
                self.emit(Mov(dlo, alo))
            elif op == "shl":
                if k >= 32:
                    self.emit(Alu("shl", dhi, alo, Imm(k - 32)) if k > 32
                              else Mov(dhi, alo))
                    self.emit(Immed(dlo, 0))
                else:
                    t1, t2 = self.vreg(), self.vreg()
                    self.emit(Alu("shl", t1, ahi, Imm(k)))
                    self.emit(Alu("lshr", t2, alo, Imm(32 - k)))
                    self.emit(Alu("or", dhi, t1, t2))
                    self.emit(Alu("shl", dlo, alo, Imm(k)))
            else:  # lshr
                if k >= 32:
                    self.emit(Alu("lshr", dlo, ahi, Imm(k - 32)) if k > 32
                              else Mov(dlo, ahi))
                    self.emit(Immed(dhi, 0))
                else:
                    t1, t2 = self.vreg(), self.vreg()
                    self.emit(Alu("lshr", t1, alo, Imm(k)))
                    self.emit(Alu("shl", t2, ahi, Imm(32 - k)))
                    self.emit(Alu("or", dlo, t1, t2))
                    self.emit(Alu("lshr", dhi, ahi, Imm(k)))
            return
        if op in ("shl", "lshr"):
            # Dynamic 64-bit shift: branch on amount >= 32.
            ahi, alo = self.pair(instr.a)
            amount = self.reg32(instr.b)
            k = self.vreg("sh64")
            self.emit(Alu("and", k, amount, Imm(63)))
            big_l = self.label("sh64big")
            done_l = self.label("sh64done")
            self.emit(Cmp(k, Imm(32)))
            self.emit(Br("ge_u", big_l))
            # k < 32: funnel between the halves (guard k == 0).
            inv = self.vreg()
            self.emit(Alu("sub", inv, Imm(32), k))
            if op == "lshr":
                t1 = self.vreg()
                self.emit(Alu("lshr", t1, alo, k))
                t2 = self.vreg()
                self.emit(Alu("shl", t2, ahi, inv))
            else:
                t1 = self.vreg()
                self.emit(Alu("shl", t1, ahi, k))
                t2 = self.vreg()
                self.emit(Alu("lshr", t2, alo, inv))
            nz_l = self.label("sh64nz")
            self.emit(Cmp(k, Imm(0)))
            self.emit(Br("ne", nz_l))
            self.emit(Immed(t2, 0))
            self.new_block(nz_l)
            if op == "lshr":
                self.emit(Alu("or", dlo, t1, t2))
                self.emit(Alu("lshr", dhi, ahi, k))
            else:
                self.emit(Alu("or", dhi, t1, t2))
                self.emit(Alu("shl", dlo, alo, k))
            self.emit(Br("always", done_l))
            self.new_block(big_l)
            kk = self.vreg()
            self.emit(Alu("sub", kk, k, Imm(32)))
            if op == "lshr":
                self.emit(Alu("lshr", dlo, ahi, kk))
                self.emit(Immed(dhi, 0))
            else:
                self.emit(Alu("shl", dhi, alo, kk))
                self.emit(Immed(dlo, 0))
            self.new_block(done_l)
            return
        if op in ("add", "sub"):
            ahi, alo = self.pair(instr.a)
            bhi, blo = self.pair(instr.b)
            carry = self.vreg("carry")
            lo_tmp = self.vreg("lo64")
            self.emit(Alu(op, lo_tmp, alo, blo))
            # carry/borrow via an unsigned compare + branch.
            self.emit(Immed(carry, 0))
            done = self.label("carry")
            ref = alo if op == "add" else blo
            self.emit(Cmp(lo_tmp if op == "add" else alo,
                          alo if op == "add" else blo))
            self.emit(Br("ge_u" if op == "add" else "ge_u", done))
            self.emit(Immed(carry, 1))
            self.new_block(done)
            hi_tmp = self.vreg("hi64")
            self.emit(Alu(op, hi_tmp, ahi, bhi))
            self.emit(Alu(op, dhi, hi_tmp, carry))
            self.emit(Mov(dlo, lo_tmp))
            return
        raise CodegenError("64-bit %s is not supported by the ME code generator" % op)

    def _lower_cmp_value(self, instr: I.Cmp) -> None:
        dst = self.dst32(instr.dst)
        true_l = self.label("cmpt")
        self.emit(Immed(dst, 1))
        done_l = self.label("cmpd")
        set0_l = self.label("cmpf")
        self.emit_cmp_branch(instr.op, instr.a, instr.b, done_l, set0_l)
        self.new_block(set0_l)
        self.emit(Immed(dst, 0))
        self.new_block(done_l)

    def _lower_call(self, instr: I.Call) -> None:
        self.meta_memo.clear()
        slot = 0
        moves: List[Tuple[Reg, Operand]] = []
        for arg in instr.args:
            if _is64(arg):
                hi, lo = self.pair(arg)
                moves.append((abi.ARG_REGS[slot], hi))
                moves.append((abi.ARG_REGS[slot + 1], lo))
                slot += 2
            else:
                moves.append((abi.ARG_REGS[slot], self.reg32(arg)))
                slot += 1
            if slot > len(abi.ARG_REGS):
                raise CodegenError("too many call arguments for %s" % instr.func)
        for dst, src in moves:
            self.emit(Mov(dst, src))
        target = LIRFunction(instr.func).entry_label
        self.emit(Bal(target, abi.LINK,
                      arg_regs=[dst for dst, _ in moves],
                      ret_regs=[abi.RET_LO, abi.RET_HI]))
        if instr.dst is not None:
            if _is64(instr.dst):
                hi, lo = self.dst_pair(instr.dst)
                self.emit(Mov(hi, abi.RET_HI))
                self.emit(Mov(lo, abi.RET_LO))
            else:
                self.emit(Mov(self.dst32(instr.dst), abi.RET_LO))

    # -- memory ------------------------------------------------------------------------

    def _lower_loadg(self, instr: I.LoadG) -> None:
        space = self.ctx.global_space(instr.g)
        addr_a, addr_b = self.global_addr(instr.g, instr.offset)
        if instr.width == 8:
            hi, lo = self.dst_pair(instr.dst)
            self.emit(Mem(space, "read", [hi, lo], addr_a, addr_b, 2,
                          category=isa.CAT_APP))
        else:
            self.emit(Mem(space, "read", [self.dst32(instr.dst)], addr_a, addr_b,
                          1, category=isa.CAT_APP))

    def _lower_storeg(self, instr: I.StoreG) -> None:
        space = self.ctx.global_space(instr.g)
        addr_a, addr_b = self.global_addr(instr.g, instr.offset)
        if instr.width == 8:
            hi, lo = self.pair(instr.value)
            self.emit(Mem(space, "write", [hi, lo], addr_a, addr_b, 2,
                          category=isa.CAT_APP))
        else:
            self.emit(Mem(space, "write", [self.reg32(instr.value)], addr_a,
                          addr_b, 1, category=isa.CAT_APP))

    def _stack_index(self, array: str, offset: Operand) -> Tuple[int, Optional[VReg]]:
        base = self.array_base[array]
        if isinstance(offset, Const):
            return base + offset.value // 4, None
        idx = self.vreg("aidx")
        self.emit(Alu("lshr", idx, self.reg32(offset), Imm(2)))
        return base, idx

    def _lower_loadl(self, instr: I.LoadL) -> None:
        slot, idx = self._stack_index(instr.array, instr.offset)
        if instr.width == 8:
            hi, lo = self.dst_pair(instr.dst)
            if idx is None:
                self.emit(StackRead(hi, slot))
                self.emit(StackRead(lo, slot + 1))
            else:
                self.emit(StackRead(hi, slot, idx))
                idx2 = self.vreg()
                self.emit(Alu("add", idx2, idx, Imm(1)))
                self.emit(StackRead(lo, slot, idx2))
        else:
            self.emit(StackRead(self.dst32(instr.dst), slot, idx))

    def _lower_storel(self, instr: I.StoreL) -> None:
        slot, idx = self._stack_index(instr.array, instr.offset)
        if instr.width == 8:
            hi, lo = self.pair(instr.value)
            if idx is None:
                self.emit(StackWrite(slot, hi))
                self.emit(StackWrite(slot + 1, lo))
            else:
                self.emit(StackWrite(slot, hi, idx))
                idx2 = self.vreg()
                self.emit(Alu("add", idx2, idx, Imm(1)))
                self.emit(StackWrite(slot, lo, idx2))
        else:
            self.emit(StackWrite(slot, self.reg32(instr.value), idx))

    def _lower_lm(self, instr, read: bool) -> None:
        if isinstance(instr.index, Const):
            base = None
            offset = SWC_REGION_BASE + instr.index.value
        else:
            base = self.vreg("lmidx")
            self.emit(Alu("add", base, self.reg32(instr.index),
                          Imm(SWC_REGION_BASE) if SWC_REGION_BASE <= MAX_ALU_IMM
                          else self.materialize(SWC_REGION_BASE)))
            offset = 0
        if read:
            self.emit(isa.LmRead(self.dst32(instr.dst), base, offset))
        else:
            self.emit(isa.LmWrite(base, offset, self.reg32(instr.value)))

    # -- locks ------------------------------------------------------------------------

    def _lock_addr(self, lock: str) -> VReg:
        r = self.vreg("lock")
        self.emit(LoadSym(r, self.ctx.lock_sym(lock)))
        return r

    def _lower_lock_acquire(self, instr: I.LockAcquire) -> None:
        self.meta_memo.clear()
        spin = self.label("lockspin")
        got = self.label("lockgot")
        addr = self._lock_addr(instr.lock)
        self.new_block(spin)
        t = self.vreg("tas")
        self.emit(TestAndSet(t, addr))
        self.emit(Cmp(t, Imm(0)))
        self.emit(Br("eq", got))
        self.emit(CtxArb())
        self.emit(Br("always", spin))
        self.new_block(got)


def lower_function(ctx: LowerContext, ir_fn: IRFunction) -> LIRFunction:
    """Lower one IR function to LIR (virtual registers)."""
    return FunctionLowerer(ctx, ir_fn).lower()
