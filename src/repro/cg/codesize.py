"""Code size estimation (paper Figure 5: IPA "Estimate code sizes").

Aggregation must reject merges whose combined code would overflow an
ME's 4096-instruction store *before* code generation runs, so this
module predicts the ME instruction count of an IR function under a given
option set. The packet-primitive costs mirror the paper's measurements
(a generic packet data access costs ``38 + 5*words`` instructions;
static-offset resolution removes "more than half" of that).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.ir import instructions as I
from repro.ir.module import IRFunction, IRModule
from repro.options import CompilerOptions

# Baseline expansion: ordinary ALU/branch IR maps nearly 1:1 onto the ME
# ISA, plus register shuffling.
_SIMPLE_FACTOR = 1.4

# Generic (unresolved-offset) packet data access: paper section 5.3.
GENERIC_ACCESS_BASE = 38
GENERIC_ACCESS_PER_WORD = 5
STATIC_ACCESS_BASE = 12
CALL_OVERHEAD = 6
ENCAP_COST = 14  # metadata head/len read-modify-write
SYNC_COST = 10
META_ACCESS_COST = 6
CHANNEL_PUT_COST = 12
LOCK_COST = 10
DISPATCH_LOOP_COST = 30


def _access_words(instr: I.Instr) -> int:
    if isinstance(instr, (I.PktLoadWords, I.PktStoreWords)):
        return instr.nwords
    width = getattr(instr, "bit_width", 32)
    return max(1, (width + 31) // 32)


def estimate_instr(instr: I.Instr, opts: CompilerOptions) -> float:
    """Estimated ME instructions for one IR instruction."""
    if isinstance(instr, (I.PktLoadField, I.PktStoreField,
                          I.PktLoadWords, I.PktStoreWords)):
        words = _access_words(instr)
        static = opts.soar and getattr(instr, "c_offset_bits", None) is not None
        base = STATIC_ACCESS_BASE if static else GENERIC_ACCESS_BASE
        cost = base + GENERIC_ACCESS_PER_WORD * words
        if not opts.inline:
            # BASE/-O1 call an out-of-line access helper.
            cost = CALL_OVERHEAD + 4
        return cost
    if isinstance(instr, (I.PktEncap, I.PktDecap)):
        return ENCAP_COST if opts.inline else CALL_OVERHEAD + 4
    if isinstance(instr, I.PktSyncHead):
        return SYNC_COST
    if isinstance(instr, (I.MetaLoad, I.MetaStore, I.PktLength)):
        return META_ACCESS_COST
    if isinstance(instr, (I.PktCopy, I.PktCreate, I.PktDrop, I.PktAdjust)):
        return 20 if opts.inline else CALL_OVERHEAD + 4
    if isinstance(instr, I.ChanPut):
        return CHANNEL_PUT_COST
    if isinstance(instr, I.Call):
        return CALL_OVERHEAD + len(instr.args)
    if isinstance(instr, (I.LockAcquire, I.LockRelease)):
        return LOCK_COST
    if isinstance(instr, (I.LoadG, I.LoadGWords, I.StoreG, I.LoadL, I.StoreL)):
        return 3
    if isinstance(instr, I.CamClear):
        return 1
    return _SIMPLE_FACTOR


def estimate_function(fn: IRFunction, opts: CompilerOptions) -> int:
    """Estimated ME instruction-store footprint of one function."""
    total = 0.0
    for instr in fn.all_instrs():
        total += estimate_instr(instr, opts)
    return int(total) + 2  # entry/exit glue


def estimate_closure(mod: IRModule, roots: Iterable[str],
                     opts: CompilerOptions) -> int:
    """Footprint of a set of entry functions plus everything they call
    (each callee counted once -- code is shared within an ME), plus the
    dispatch loop and, at BASE/-O1, the shared out-of-line packet helper
    bodies."""
    from repro.ir.callgraph import CallGraph

    cg = CallGraph(mod)
    seen: Set[str] = set()
    total = DISPATCH_LOOP_COST
    stack = list(roots)
    uses_packet_prims = False
    while stack:
        name = stack.pop()
        if name in seen or name not in mod.functions:
            continue
        seen.add(name)
        fn = mod.functions[name]
        total += estimate_function(fn, opts)
        for instr in fn.all_instrs():
            if isinstance(instr, I.PktInstr):
                uses_packet_prims = True
        stack.extend(cg.callees.get(name, ()))
    if uses_packet_prims and not opts.inline:
        total += 300  # shared generic packet-handling helper bodies
    return total


def record_budget_fit(subject: str, code_size: int, budget: int,
                      estimate: Optional[int] = None) -> None:
    """Ledger hook: how an assembled image compares against the control
    store (and how good the pre-codegen estimate was)."""
    from repro.obs import ledger as obs_ledger

    led = obs_ledger.get_ledger()
    if not led.enabled:
        return
    led.record(
        "codesize", subject,
        "fits" if code_size <= budget else "overflows",
        reason="%d of %d control-store words used" % (code_size, budget),
        code_size=code_size, budget=budget, estimate=estimate,
        headroom=budget - code_size)
