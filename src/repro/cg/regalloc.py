"""Global register allocation with the dual-bank constraint.

The ME's 32 GPRs are split into two banks of 16; an ALU instruction with
two register source operands must read one operand from each bank (paper
section 4.1, and Zhuang & Pande's PLDI'03 problem). The allocator:

1. normalizes the LIR so branches only end blocks;
2. homes every value live across a call into a stack slot (calls clobber
   all GPRs under our convention -- this is where the paper's stack
   traffic at BASE/-O1 comes from);
3. builds an interference graph over virtual registers plus precolored
   physical nodes;
4. colors greedily in decreasing-degree order, *preferring* a bank that
   differs from already-colored bank-conflict partners;
5. spills on demand (stack slots + short reload ranges) and retries;
6. fixes any residual same-bank ALU pairs with a reserved-register move.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.cg import abi
from repro.obs import ledger as obs_ledger
from repro.cg.isa import (
    Alu, Bal, Br, Cmp, Imm, Insn, LIRBlock, LIRFunction, Mov, PReg, Reg,
    Rtn, StackRead, StackWrite, VReg, N_PER_BANK,
)


class RegAllocError(Exception):
    pass


ALL_COLORS: List[PReg] = [PReg("a", i) for i in range(N_PER_BANK)] + [
    PReg("b", i) for i in range(N_PER_BANK)
]
USABLE = [c for c in ALL_COLORS if c not in abi.RESERVED]


def _ends_block(insn: Insn) -> bool:
    return isinstance(insn, (Br, Rtn))


def normalize(fn: LIRFunction) -> None:
    """Split blocks so control transfers appear only as the final
    instruction of a block (lowering emits mid-block branches freely)."""
    new_blocks: List[LIRBlock] = []
    for bb in fn.blocks:
        cur = LIRBlock(bb.label)
        new_blocks.append(cur)
        for idx, insn in enumerate(bb.insns):
            cur.insns.append(insn)
            if _ends_block(insn) and idx != len(bb.insns) - 1:
                cur = LIRBlock("%s__split%d" % (bb.label, idx))
                new_blocks.append(cur)
    fn.blocks = new_blocks


def _build_cfg(fn: LIRFunction) -> Dict[str, List[str]]:
    labels = {bb.label: i for i, bb in enumerate(fn.blocks)}
    succs: Dict[str, List[str]] = {}
    for i, bb in enumerate(fn.blocks):
        out: List[str] = []
        last = bb.insns[-1] if bb.insns else None
        if isinstance(last, Br):
            out.append(last.target)
            if last.cond != "always" and i + 1 < len(fn.blocks):
                out.append(fn.blocks[i + 1].label)
        elif isinstance(last, Rtn):
            pass
        elif i + 1 < len(fn.blocks):
            out.append(fn.blocks[i + 1].label)
        succs[bb.label] = [t for t in out if t in labels]
    return succs


def _liveness(fn: LIRFunction, succs: Dict[str, List[str]]):
    """Backward liveness over VRegs and PRegs together."""
    live_in: Dict[str, Set[Reg]] = {bb.label: set() for bb in fn.blocks}
    live_out: Dict[str, Set[Reg]] = {bb.label: set() for bb in fn.blocks}
    blocks = {bb.label: bb for bb in fn.blocks}
    changed = True
    while changed:
        changed = False
        for bb in reversed(fn.blocks):
            out: Set[Reg] = set()
            for s in succs[bb.label]:
                out |= live_in[s]
            if out != live_out[bb.label]:
                live_out[bb.label] = set(out)
            live = set(out)
            for insn in reversed(bb.insns):
                for d in insn.writes():
                    live.discard(d)
                for u in insn.reads():
                    if isinstance(u, (VReg, PReg)):
                        live.add(u)
            if live != live_in[bb.label]:
                live_in[bb.label] = live
                changed = True
    return live_in, live_out


# -- call-live homing -----------------------------------------------------------------


def home_call_live(fn: LIRFunction) -> None:
    """Values live across a ``bal`` get a frame slot; defs write through,
    post-call uses reload. (The called routine may clobber every GPR.)"""
    if not any(isinstance(i, Bal) for i in fn.all_insns()):
        return
    succs = _build_cfg(fn)
    _, live_out = _liveness(fn, succs)

    call_live: Set[VReg] = set()
    for bb in fn.blocks:
        live = set(live_out[bb.label])
        for insn in reversed(bb.insns):
            defs = insn.writes()
            for d in defs:
                live.discard(d)
            if isinstance(insn, Bal):
                call_live.update(v for v in live if isinstance(v, VReg))
            for u in insn.reads():
                if isinstance(u, (VReg, PReg)):
                    live.add(u)
    if not call_live:
        return

    slots: Dict[VReg, int] = {}
    for v in sorted(call_live, key=lambda r: r.id):
        slots[v] = fn.frame_slots
        fn.frame_slots += 1
    obs_ledger.get_ledger().record(
        "regalloc", fn.name, "call_live_homed",
        reason="values live across a call get frame slots "
               "(calls clobber all GPRs)",
        slots=len(slots))

    for bb in fn.blocks:
        fresh: Dict[VReg, VReg] = {}  # currently valid in-register copies
        out: List[Insn] = []
        for insn in bb.insns:
            # Reload stale uses into short-lived copies.
            reads = {u for u in insn.reads() if isinstance(u, VReg) and u in call_live}
            mapping: Dict[VReg, VReg] = {}
            for u in reads:
                if u in fresh:
                    mapping[u] = fresh[u]
                else:
                    copy = VReg(u.hint + ".rl")
                    out.append(StackRead(copy, slots[u]))
                    fresh[u] = copy
                    mapping[u] = copy
            orig_defs = [d for d in insn.writes() if isinstance(d, VReg)]
            if mapping:
                insn.map_regs(
                    lambda r: mapping.get(r, r) if isinstance(r, VReg) else r
                )
            out.append(insn)
            # Write-through every definition of a call-live value (the
            # def may have been renamed by the use-mapping above).
            for d in orig_defs:
                if d in call_live:
                    written = mapping.get(d, d)
                    out.append(StackWrite(slots[d], written))
                    fresh[d] = written
            if isinstance(insn, Bal):
                fresh.clear()
        bb.insns = out


# -- interference & coloring -----------------------------------------------------------


def _conflict_partners(fn: LIRFunction) -> Dict[Reg, Set[Reg]]:
    """Pairs of registers read together by one ALU/cmp instruction, which
    therefore want different banks."""
    partners: Dict[Reg, Set[Reg]] = defaultdict(set)
    for insn in fn.all_insns():
        if isinstance(insn, (Alu, Cmp)):
            a, b = insn.a, insn.b
            if isinstance(a, (VReg, PReg)) and isinstance(b, (VReg, PReg)) and a is not b:
                partners[a].add(b)
                partners[b].add(a)
    return partners


def allocate_function(fn: LIRFunction, max_rounds: int = 8) -> None:
    """Run register allocation in place (virtual -> physical registers)."""
    normalize(fn)
    home_call_live(fn)
    unspillable: Set[VReg] = set()

    for round_no in range(max_rounds):
        succs = _build_cfg(fn)
        live_in, live_out = _liveness(fn, succs)

        # Interference graph.
        adj: Dict[Reg, Set[Reg]] = defaultdict(set)
        vregs: Set[VReg] = set()
        for bb in fn.blocks:
            live: Set[Reg] = set(live_out[bb.label])
            for insn in reversed(bb.insns):
                defs = insn.writes()
                # Defs of one instruction interfere with each other and
                # with everything live after it.
                for d in defs:
                    if isinstance(d, VReg):
                        vregs.add(d)
                    for other in live:
                        if other is not d:
                            adj[d].add(other)
                            adj[other].add(d)
                    for d2 in defs:
                        if d2 is not d:
                            adj[d].add(d2)
                            adj[d2].add(d)
                for d in defs:
                    live.discard(d)
                for u in insn.reads():
                    if isinstance(u, (VReg, PReg)):
                        live.add(u)
                        if isinstance(u, VReg):
                            vregs.add(u)

        partners = _conflict_partners(fn)
        coloring: Dict[VReg, PReg] = {}

        def color_of(r: Reg) -> Optional[PReg]:
            if isinstance(r, PReg):
                return r
            return coloring.get(r)

        # Chaitin-Briggs simplify/select: repeatedly remove a node with
        # fewer than K uncolored-neighbor edges (it is trivially
        # colorable); when none exists, optimistically remove the
        # highest-degree spillable node. Color in reverse removal order.
        K = len(USABLE)
        degree = {v: sum(1 for n in adj[v] if isinstance(n, VReg)) for v in vregs}
        remaining = set(vregs)
        stack: List[VReg] = []

        def remove(v: VReg) -> None:
            remaining.discard(v)
            stack.append(v)
            for n in adj[v]:
                if isinstance(n, VReg) and n in remaining:
                    degree[n] -= 1

        while remaining:
            simplicial = min(
                (v for v in remaining if degree[v] < K),
                key=lambda v: (degree[v], v.id),
                default=None,
            )
            if simplicial is not None:
                remove(simplicial)
                continue
            spill_pref = [v for v in remaining if v not in unspillable]
            victim_pool = spill_pref or list(remaining)
            remove(max(victim_pool, key=lambda v: (degree[v], -v.id)))

        to_spill: List[VReg] = []
        for v in reversed(stack):
            taken = {color_of(n) for n in adj[v]}
            taken.discard(None)
            partner_banks = {
                color_of(p).bank for p in partners.get(v, ()) if color_of(p) is not None
            }
            preferred = None
            fallback = None
            for c in USABLE:
                if c in taken:
                    continue
                if fallback is None:
                    fallback = c
                if c.bank not in partner_banks:
                    preferred = c
                    break
            choice = preferred or fallback
            if choice is None:
                to_spill.append(v)
                continue
            coloring[v] = choice

        if not to_spill:
            _rewrite(fn, coloring)
            _fix_bank_conflicts(fn)
            return
        # Prefer spilling long-lived original values; the short-range
        # reload copies minted by earlier spills must not re-spill (that
        # thrashes), so they are only chosen when nothing else is left.
        candidates = [v for v in to_spill if v not in unspillable]
        if not candidates:
            candidates = to_spill[:1]
        led = obs_ledger.get_ledger()
        for victim in candidates:
            led.record("regalloc", fn.name, "spilled",
                       reason="no color available for %s" % victim.hint,
                       round=round_no, uncolorable=len(to_spill))
            unspillable.update(_spill(fn, victim))
    obs_ledger.get_ledger().record(
        "regalloc", fn.name, "failed",
        reason="allocation did not converge", rounds=max_rounds)
    raise RegAllocError("register allocation did not converge for %s" % fn.name)


def _rewrite(fn: LIRFunction, coloring: Dict[VReg, PReg]) -> None:
    def sub(r: Reg) -> Reg:
        if isinstance(r, VReg):
            return coloring[r]
        return r

    for insn in fn.all_insns():
        insn.map_regs(sub)


def _spill(fn: LIRFunction, victim: VReg) -> List[VReg]:
    """Give ``victim`` a frame slot; each def stores, each use reloads
    into a fresh short-lived vreg. Returns the copies created (the
    caller marks them unspillable)."""
    slot = fn.frame_slots
    fn.frame_slots += 1
    copies: List[VReg] = [victim]
    for bb in fn.blocks:
        out: List[Insn] = []
        for insn in bb.insns:
            wrote_victim = any(d is victim for d in insn.writes())
            uses_victim = any(u is victim for u in insn.reads())
            copy = None
            if uses_victim:
                copy = VReg(victim.hint + ".sp")
                copies.append(copy)
                out.append(StackRead(copy, slot))
                insn.map_regs(lambda r: copy if r is victim else r)
            out.append(insn)
            if wrote_victim:
                out.append(StackWrite(slot, copy if uses_victim else victim))
        bb.insns = out
    return copies


def _fix_bank_conflicts(fn: LIRFunction) -> None:
    """Residual ALU/cmp instructions whose two register sources share a
    bank get one operand moved through the reserved fixup register of the
    opposite bank."""
    for bb in fn.blocks:
        out: List[Insn] = []
        for insn in bb.insns:
            if isinstance(insn, (Alu, Cmp)):
                a, b = insn.a, insn.b
                if (isinstance(a, PReg) and isinstance(b, PReg)
                        and a.bank == b.bank and a != b):
                    fix = abi.FIXUP_B if a.bank == "a" else abi.FIXUP_A
                    out.append(Mov(fix, b))
                    insn.b = fix
            out.append(insn)
        bb.insns = out


def allocate(fns: List[LIRFunction]) -> None:
    for fn in fns:
        allocate_function(fn)
