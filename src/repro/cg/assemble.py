"""Final assembly: per-aggregate ME images.

Lowers every function reachable from an aggregate's entry PPFs, runs
register allocation, places stack frames, flattens everything (dispatch
loop first, then functions, then the shared packet helpers), resolves
branch targets, and enforces the 4096-instruction control store limit.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cg.isa import Bal, Br, Insn, LIRFunction, Rtn
from repro.cg.lower import CodegenError, LowerContext, lower_function
from repro.cg.codesize import record_budget_fit
from repro.cg.melayout import CODE_STORE_WORDS, record_stack_fit
from repro.cg.regalloc import allocate_function
from repro.cg.stack import StackLayoutResult, layout_frames, resolve_stack_accesses
from repro.ir.callgraph import CallGraph
from repro.rts.dispatch import DISPATCH_NAME, build_dispatch


@dataclass
class MEImage:
    """Everything an ME needs to run one aggregate."""

    name: str
    insns: List[Insn] = field(default_factory=list)
    entry: int = 0
    label_index: Dict[str, int] = field(default_factory=dict)
    code_size: int = 0
    functions: List[str] = field(default_factory=list)
    stack_layout: Optional[StackLayoutResult] = None
    inputs: List[Tuple[str, str]] = field(default_factory=list)  # (ring, entry)
    # Predecoded step programs. ``decode_cache`` is the per-chip
    # identity fast path (weak keys: a cached CompileResult outlives
    # many benchmark chips, and each chip owns multi-MiB memory arrays
    # that must not be pinned here). ``_decode_plans`` holds
    # (used_symbols, prog) pairs: programs capture no chip-owned
    # objects, only resolved symbol values, so a program built for one
    # chip is reused by any later chip whose symbol table matches --
    # repeated simulator runs skip the decode entirely.
    decode_cache: "weakref.WeakKeyDictionary" = field(
        default_factory=weakref.WeakKeyDictionary, repr=False, compare=False)
    _decode_plans: list = field(default_factory=list, repr=False,
                                compare=False)
    _decode_fp: Optional[int] = field(default=None, repr=False, compare=False)

    def describe(self) -> str:
        return "%s: %d instrs (%d control-store words), %d functions" % (
            self.name, len(self.insns), self.code_size, len(self.functions))

    # Predecode caches hold weak chip references and exec-generated
    # closures -- both per-process artifacts that cannot (and must not)
    # cross a pickle boundary. A cached image deserializes with empty
    # caches and rebuilds them lazily on first dispatch.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["decode_cache"] = None
        state["_decode_plans"] = []
        state["_decode_fp"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.decode_cache = weakref.WeakKeyDictionary()

    def _fingerprint(self) -> int:
        # Content hash over the canonical formatting (plus resolved
        # branch targets, which format_insn omits): in-place edits of
        # the instruction list -- the oracle tests corrupt images this
        # way -- must not be served a stale predecoded program.
        return hash(tuple(
            (repr(i), getattr(i, "resolved", None)) for i in self.insns))

    def predecoded(self, chip):
        """The fast-dispatch program for this image on ``chip``: every
        instruction bound once to a handler closure with operands
        pre-resolved (:mod:`repro.ixp.predecode`). Built on first use --
        after the loader has placed symbols and created rings -- and
        shared by every ME running this image on the same chip."""
        from repro.ixp.predecode import plan_matches, predecode_image

        # Insn edits invalidate everything, including per-chip entries:
        # the identity fast path must never outlive the content check.
        fp = self._fingerprint()
        if fp != self._decode_fp:
            self._decode_plans.clear()
            self.decode_cache = weakref.WeakKeyDictionary()
            self._decode_fp = fp
        cached = self.decode_cache.get(chip)
        if cached is not None:
            used, prog = cached
            # Same chip object, but a symbol the plan depends on may
            # have been rebound (or bound late) since the first decode;
            # revalidate the observed bindings before reusing.
            if plan_matches(used, chip):
                return prog
        for used, prog in self._decode_plans:
            if plan_matches(used, chip):
                break
        else:
            prog, used = predecode_image(self, chip)
            self._decode_plans.append((used, prog))
        self.decode_cache[chip] = (used, prog)
        return prog


def _entry_ppfs(mod, plan, agg) -> List[str]:
    entries = []
    for ppf in agg.ppfs:
        fn = mod.functions[ppf]
        externals = [c for c in fn.input_channels if c not in plan.internal_channels]
        if externals:
            entries.append(ppf)
    return entries


def build_image(result, agg) -> MEImage:
    """Compile one ME aggregate into an executable image."""
    mod, opts, plan = result.mod, result.opts, result.plan
    ctx = LowerContext(mod, opts)
    cg = CallGraph(mod)

    entries = _entry_ppfs(mod, plan, agg)
    reachable: List[str] = []
    for ppf in entries:
        for name in [ppf] + sorted(cg.transitive_callees(ppf)):
            if name not in reachable and name in mod.functions:
                reachable.append(name)

    lirs: Dict[str, LIRFunction] = {}
    for name in reachable:
        lirs[name] = lower_function(ctx, mod.functions[name])

    inputs: List[Tuple[str, str]] = []
    for ppf in entries:
        fn = mod.functions[ppf]
        for chan in fn.input_channels:
            if chan not in plan.internal_channels:
                inputs.append(("ring.%s" % chan, lirs[ppf].entry_label))
    dispatch = build_dispatch(inputs)

    all_fns: Dict[str, LIRFunction] = {DISPATCH_NAME: dispatch}
    all_fns.update(lirs)
    all_fns.update(ctx.helpers)

    for fn in all_fns.values():
        allocate_function(fn)
    # Helpers may have been created during lowering of several functions;
    # any created after allocation started would be missed -- helpers are
    # created during lower_function, which already ran, so the set is
    # stable here.
    layout = layout_frames(all_fns, roots=[DISPATCH_NAME], stack_opt=opts.stack_opt)
    resolve_stack_accesses(all_fns, layout)

    image = MEImage(name=agg.name, inputs=inputs, stack_layout=layout)
    order = [DISPATCH_NAME] + [n for n in reachable] + sorted(ctx.helpers)
    for name in order:
        fn = all_fns[name]
        image.functions.append(name)
        for bb in fn.blocks:
            image.label_index[bb.label] = len(image.insns)
            image.insns.extend(bb.insns)
    # Resolve branch targets.
    for idx, insn in enumerate(image.insns):
        if isinstance(insn, (Br, Bal)):
            target = image.label_index.get(insn.target)
            if target is None:
                raise CodegenError("unresolved branch target %r" % insn.target)
            insn.resolved = target
    image.entry = image.label_index[dispatch.entry_label]
    image.code_size = sum(i.size for i in image.insns)
    record_budget_fit(agg.name, image.code_size, CODE_STORE_WORDS,
                      estimate=agg.code_size)
    record_stack_fit(agg.name, layout)
    if image.code_size > CODE_STORE_WORDS:
        raise CodegenError(
            "aggregate %s needs %d control-store words (limit %d); "
            "aggregation should have split it"
            % (agg.name, image.code_size, CODE_STORE_WORDS)
        )
    return image


def generate_images(result) -> None:
    """Populate ``result.images`` with one MEImage per ME aggregate."""
    for agg in result.plan.me_aggregates:
        result.images[agg.name] = build_image(result, agg)
