"""Per-ME Local Memory layout and related constants (paper sections 3.2
and 5.4).

The IXP2400 gives each ME 640 words of Local Memory. Shangri-La reserves
48 words per thread for stack frames (8 threads = 384 words); the
remainder holds the software-controlled cache region and a few scratch
words.
"""

from __future__ import annotations

LM_WORDS = 640
N_THREADS = 8

STACK_WORDS_PER_THREAD = 48
STACK_REGION_WORDS = STACK_WORDS_PER_THREAD * N_THREADS  # 384

SWC_REGION_BASE = STACK_REGION_WORDS  # 384
SWC_REGION_WORDS = LM_WORDS - SWC_REGION_BASE  # 256

# SRAM stack-overflow area: per-thread bytes for frames that did not fit
# Local Memory (the expensive case the paper's stack optimization avoids).
SRAM_STACK_BYTES_PER_THREAD = 1024

# Instruction store per ME.
CODE_STORE_WORDS = 4096


def thread_lm_base(thread: int) -> int:
    return thread * STACK_WORDS_PER_THREAD


def record_stack_fit(subject: str, layout) -> None:
    """Ledger hook: did the aggregate's stack frames fit Local Memory, or
    did some overflow to (slow) SRAM?"""
    from repro.obs import ledger as obs_ledger

    led = obs_ledger.get_ledger()
    if not led.enabled or layout is None:
        return
    led.record(
        "melayout", subject,
        "sram_overflow" if layout.any_sram_frames else "lm_only",
        reason="stack frames overflow Local Memory into SRAM"
               if layout.any_sram_frames
               else "all stack frames fit Local Memory",
        lm_words=layout.lm_words_used, sram_words=layout.sram_words_used,
        lm_budget=STACK_WORDS_PER_THREAD)
