"""LIR / ME assembly pretty-printing."""

from __future__ import annotations

from repro.cg import isa


def format_insn(insn: isa.Insn) -> str:
    if isinstance(insn, isa.Alu):
        return "alu %r = %r %s %r" % (insn.dst, insn.a, insn.op, insn.b)
    if isinstance(insn, isa.Immed):
        return "immed %r = %#x" % (insn.dst, insn.value)
    if isinstance(insn, isa.LoadSym):
        return "load_sym %r = %r" % (insn.dst, insn.sym)
    if isinstance(insn, isa.Mov):
        return "mov %r = %r" % (insn.dst, insn.src)
    if isinstance(insn, isa.Cmp):
        return "cmp %r, %r" % (insn.a, insn.b)
    if isinstance(insn, isa.Br):
        return "br.%s %s" % (insn.cond, insn.target)
    if isinstance(insn, isa.Bal):
        return "bal %s, link=%r" % (insn.target, insn.link)
    if isinstance(insn, isa.Rtn):
        return "rtn %r" % insn.addr
    if isinstance(insn, isa.Mem):
        mask = " mask=%#x" % insn.byte_mask if insn.byte_mask is not None else ""
        return "%s_%s [%s] @%r+%r x%d (%s)%s" % (
            insn.space, insn.rw,
            ", ".join(repr(r) for r in insn.regs),
            insn.addr_a, insn.addr_b, insn.units, insn.category, mask,
        )
    if isinstance(insn, isa.RingGet):
        return "ring_get %r <- %r" % (insn.dst, insn.ring)
    if isinstance(insn, isa.RingPut):
        return "ring_put %r -> %r" % (insn.src, insn.ring)
    if isinstance(insn, isa.TestAndSet):
        return "test_and_set %r @%r" % (insn.dst, insn.addr_a)
    if isinstance(insn, isa.AtomicRelease):
        return "atomic_release @%r" % insn.addr_a
    if isinstance(insn, isa.LmRead):
        return "lm_read %r = LM[%r + %d]" % (insn.dst, insn.base, insn.offset)
    if isinstance(insn, isa.LmWrite):
        return "lm_write LM[%r + %d] = %r" % (insn.base, insn.offset, insn.src)
    if isinstance(insn, isa.CamLookup):
        return "cam_lookup %r = %r" % (insn.dst, insn.key)
    if isinstance(insn, isa.CamWrite):
        return "cam_write [%r] = %r" % (insn.entry, insn.key)
    if isinstance(insn, isa.CamClear):
        return "cam_clear"
    if isinstance(insn, isa.CtxArb):
        return "ctx_arb"
    if isinstance(insn, isa.Halt):
        return "halt"
    if isinstance(insn, isa.StackRead):
        return "stack_read %r = frame[%d%s]" % (
            insn.dst, insn.slot, "+%r" % insn.index if insn.index is not None else "")
    if isinstance(insn, isa.StackWrite):
        return "stack_write frame[%d%s] = %r" % (
            insn.slot, "+%r" % insn.index if insn.index is not None else "", insn.src)
    return "<%s>" % type(insn).__name__


def format_function(fn: isa.LIRFunction) -> str:
    lines = ["; function %s (frame=%d words)" % (fn.name, fn.frame_slots)]
    for bb in fn.blocks:
        lines.append("%s:" % bb.label)
        for insn in bb.insns:
            lines.append("    %s" % format_insn(insn))
    return "\n".join(lines)
